#!/bin/sh
# Undo strip.sh: restore manifests, bench crate, and dep-requiring test files.
set -e
cd /root/repo
B=.verify-tmp
[ -e "$B/stripped" ] || { echo "not stripped"; exit 0; }
cp "$B/root-Cargo.toml" Cargo.toml
for c in model core datalog algebra vtree; do
  cp "$B/$c-Cargo.toml" "crates/$c/Cargo.toml"
done
mv "$B/bench" crates/bench
cp "$B/bench-Cargo.toml" crates/bench/Cargo.toml
mv "$B/invariants.rs" "$B/paper_examples.rs" "$B/proptests.rs" tests/
rm -f Cargo.lock "$B/stripped"
echo "restored"
