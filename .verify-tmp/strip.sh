#!/bin/sh
# Temporarily remove network-only dev-deps (rand/proptest/criterion) so the
# workspace builds offline. Restore with restore.sh before committing.
set -e
cd /root/repo
B=.verify-tmp
[ -e "$B/stripped" ] && { echo "already stripped"; exit 0; }
cp Cargo.toml "$B/root-Cargo.toml"
for c in model core datalog algebra vtree bench; do
  cp "crates/$c/Cargo.toml" "$B/$c-Cargo.toml"
done
mv crates/bench "$B/bench"
mv tests/invariants.rs tests/paper_examples.rs tests/proptests.rs "$B/"
sed -i '/proptest/d; /^rand/d; /criterion/d' Cargo.toml
for c in model core datalog algebra vtree; do
  sed -i '/proptest/d; /^rand/d; /criterion/d' "crates/$c/Cargo.toml"
done
touch "$B/stripped"
echo "stripped"
