//! # iql-algebra — the complex-object algebra baseline
//!
//! An executable algebra over *complex values* (no oids): constants, finite
//! tuples, finite sets — the complex-object data models the paper
//! generalizes (Thomas–Fischer, Abiteboul–Beeri; Sections 2.3 and 3.4).
//! The flagship operations are **nest**, **unnest**, and **powerset**
//! (Example 3.4.1/3.4.2's comparison points): IQL expresses each with
//! invented oids, and the benchmarks compare the two realizations.
//!
//! Values reuse the model crate's [`Constant`] and [`AttrName`]; a complex
//! value is exactly an oid-free [`iql_model::OValue`], and [`to_ovalue`] /
//! [`from_ovalue`] convert between the two. [`intern_value`] /
//! [`value_of_id`] convert directly against an interned value store,
//! without materializing the intermediate tree.

use iql_model::{AttrName, Constant, Node, OValue, ValueId, ValueInterner, ValueReader};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A complex value: constant, tuple, or set — an o-value without oids.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A constant from `D`.
    Const(Constant),
    /// A finite tuple.
    Tuple(BTreeMap<AttrName, Value>),
    /// A finite, duplicate-free set.
    Set(BTreeSet<Value>),
}

impl Value {
    /// A string constant.
    pub fn str(s: &str) -> Value {
        Value::Const(Constant::str(s))
    }

    /// An integer constant.
    pub fn int(i: i64) -> Value {
        Value::Const(Constant::int(i))
    }

    /// A tuple from pairs.
    pub fn tuple<I, A>(fields: I) -> Value
    where
        I: IntoIterator<Item = (A, Value)>,
        A: Into<AttrName>,
    {
        Value::Tuple(fields.into_iter().map(|(a, v)| (a.into(), v)).collect())
    }

    /// A set from elements.
    pub fn set<I: IntoIterator<Item = Value>>(elems: I) -> Value {
        Value::Set(elems.into_iter().collect())
    }

    /// The empty set.
    pub fn empty_set() -> Value {
        Value::Set(BTreeSet::new())
    }

    /// Tuple field access.
    pub fn field(&self, a: AttrName) -> Option<&Value> {
        match self {
            Value::Tuple(f) => f.get(&a),
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", to_ovalue(self))
    }
}

/// Converts a complex value into the (oid-free) o-value representation.
pub fn to_ovalue(v: &Value) -> OValue {
    match v {
        Value::Const(c) => OValue::Const(c.clone()),
        Value::Tuple(fields) => {
            OValue::Tuple(fields.iter().map(|(a, v)| (*a, to_ovalue(v))).collect())
        }
        Value::Set(elems) => OValue::Set(elems.iter().map(to_ovalue).collect()),
    }
}

/// Converts an oid-free o-value into a complex value; `None` if any oid
/// occurs (oids have no meaning in the value-based algebra).
pub fn from_ovalue(v: &OValue) -> Option<Value> {
    match v {
        OValue::Const(c) => Some(Value::Const(c.clone())),
        OValue::Oid(_) => None,
        OValue::Tuple(fields) => {
            let mut out = BTreeMap::new();
            for (a, fv) in fields {
                out.insert(*a, from_ovalue(fv)?);
            }
            Some(Value::Tuple(out))
        }
        OValue::Set(elems) => {
            let mut out = BTreeSet::new();
            for e in elems {
                out.insert(from_ovalue(e)?);
            }
            Some(Value::Set(out))
        }
    }
}

/// Interns a complex value directly into an o-value store — the id-world
/// boundary for algebra results flowing into an [`iql_model::Instance`],
/// with no intermediate [`OValue`] tree.
pub fn intern_value<I: ValueInterner + ?Sized>(v: &Value, interner: &mut I) -> ValueId {
    match v {
        Value::Const(c) => interner.const_id(c.clone()),
        Value::Tuple(fields) => {
            let entries: Vec<(AttrName, ValueId)> = fields
                .iter()
                .map(|(a, fv)| (*a, intern_value(fv, interner)))
                .collect();
            interner.tuple_id(entries)
        }
        Value::Set(elems) => {
            let ids: Vec<ValueId> = elems.iter().map(|e| intern_value(e, interner)).collect();
            interner.set_id(ids)
        }
    }
}

/// Reads an interned o-value back as a complex value; `None` if any oid
/// occurs (oids have no meaning in the value-based algebra).
pub fn value_of_id<R: ValueReader + ?Sized>(id: ValueId, reader: &R) -> Option<Value> {
    match reader.node(id) {
        Node::Const(c) => Some(Value::Const(c.clone())),
        Node::Oid(_) => None,
        Node::Tuple(fields) => {
            let mut out = BTreeMap::new();
            for &(a, fv) in fields.iter() {
                out.insert(a, value_of_id(fv, reader)?);
            }
            Some(Value::Tuple(out))
        }
        Node::Set(elems) => {
            let mut out = BTreeSet::new();
            for &e in elems.iter() {
                out.insert(value_of_id(e, reader)?);
            }
            Some(Value::Set(out))
        }
    }
}

/// A relation: a duplicate-free set of complex values (usually tuples).
pub type Rel = BTreeSet<Value>;

/// σ — selection by predicate.
pub fn select<F: Fn(&Value) -> bool>(rel: &Rel, pred: F) -> Rel {
    rel.iter().filter(|v| pred(v)).cloned().collect()
}

/// π — projection of tuples onto `attrs` (non-tuples and tuples missing an
/// attribute are dropped).
pub fn project(rel: &Rel, attrs: &[AttrName]) -> Rel {
    rel.iter()
        .filter_map(|v| match v {
            Value::Tuple(fields) => {
                let mut out = BTreeMap::new();
                for a in attrs {
                    out.insert(*a, fields.get(a)?.clone());
                }
                Some(Value::Tuple(out))
            }
            _ => None,
        })
        .collect()
}

/// ⋈ — natural join on common attributes.
pub fn join(left: &Rel, right: &Rel) -> Rel {
    let mut out = Rel::new();
    for l in left {
        let Value::Tuple(lf) = l else { continue };
        for r in right {
            let Value::Tuple(rf) = r else { continue };
            let compatible = lf.iter().all(|(a, v)| rf.get(a).is_none_or(|rv| rv == v));
            if compatible {
                let mut merged = lf.clone();
                for (a, v) in rf {
                    merged.insert(*a, v.clone());
                }
                out.insert(Value::Tuple(merged));
            }
        }
    }
    out
}

/// ∪ — union.
pub fn union(a: &Rel, b: &Rel) -> Rel {
    a.union(b).cloned().collect()
}

/// − — difference.
pub fn difference(a: &Rel, b: &Rel) -> Rel {
    a.difference(b).cloned().collect()
}

/// ∩ — intersection.
pub fn intersect(a: &Rel, b: &Rel) -> Rel {
    a.intersection(b).cloned().collect()
}

/// A per-element map (the restricted "replace" of complex-object algebras).
pub fn map<F: Fn(&Value) -> Value>(rel: &Rel, f: F) -> Rel {
    rel.iter().map(f).collect()
}

/// ν — nest: groups tuples by all attributes except `nested`, collecting
/// the `nested` values of each group into a set stored under `nested`
/// (Example 3.4.1's `nest R2 into R3`).
///
/// ```
/// use iql_algebra::{nest, unnest, Rel, Value};
/// let flat: Rel = [("k", 1), ("k", 2), ("m", 3)]
///     .iter()
///     .map(|(a, b)| Value::tuple([("a", Value::str(a)), ("b", Value::int(*b))]))
///     .collect();
/// let grouped = nest(&flat, "b".into());
/// assert_eq!(grouped.len(), 2);
/// assert_eq!(unnest(&grouped, "b".into()), flat);
/// ```
pub fn nest(rel: &Rel, nested: AttrName) -> Rel {
    let mut groups: BTreeMap<BTreeMap<AttrName, Value>, BTreeSet<Value>> = BTreeMap::new();
    for v in rel {
        let Value::Tuple(fields) = v else { continue };
        let Some(nval) = fields.get(&nested) else {
            continue;
        };
        let mut key = fields.clone();
        key.remove(&nested);
        groups.entry(key).or_default().insert(nval.clone());
    }
    groups
        .into_iter()
        .map(|(mut key, set)| {
            key.insert(nested, Value::Set(set));
            Value::Tuple(key)
        })
        .collect()
}

/// μ — unnest: replaces the set-valued attribute `nested` by one tuple per
/// element (Example 3.4.1's `unnest R1 into R2`). Tuples whose `nested`
/// field is not a set are dropped.
pub fn unnest(rel: &Rel, nested: AttrName) -> Rel {
    let mut out = Rel::new();
    for v in rel {
        let Value::Tuple(fields) = v else { continue };
        let Some(Value::Set(elems)) = fields.get(&nested) else {
            continue;
        };
        for e in elems {
            let mut t = fields.clone();
            t.insert(nested, e.clone());
            out.insert(Value::Tuple(t));
        }
    }
    out
}

/// The powerset of a set of values — the expensive operation of the LDM and
/// Abiteboul–Beeri algebras (Section 3.4): exponential in the input size.
pub fn powerset(rel: &Rel) -> BTreeSet<Rel> {
    let elems: Vec<&Value> = rel.iter().collect();
    assert!(
        elems.len() < usize::BITS as usize,
        "powerset of {} elements would overflow",
        elems.len()
    );
    let mut out = BTreeSet::new();
    for mask in 0..(1usize << elems.len()) {
        let subset: Rel = elems
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, v)| (*v).clone())
            .collect();
        out.insert(subset);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: &str) -> AttrName {
        AttrName::new(n)
    }

    fn pairs(data: &[(&str, &str)]) -> Rel {
        data.iter()
            .map(|(x, y)| Value::tuple([("a", Value::str(x)), ("b", Value::str(y))]))
            .collect()
    }

    #[test]
    fn select_project() {
        let r = pairs(&[("k1", "v1"), ("k2", "v2")]);
        let sel = select(&r, |v| v.field(a("a")) == Some(&Value::str("k1")));
        assert_eq!(sel.len(), 1);
        let proj = project(&r, &[a("a")]);
        assert_eq!(proj.len(), 2);
        assert!(proj.contains(&Value::tuple([("a", Value::str("k1"))])));
    }

    #[test]
    fn natural_join() {
        let r = pairs(&[("k1", "v1"), ("k2", "v2")]);
        let s: Rel = [("v1", "z1"), ("v2", "z2"), ("v9", "z9")]
            .iter()
            .map(|(b, c)| Value::tuple([("b", Value::str(b)), ("c", Value::str(c))]))
            .collect();
        let j = join(&r, &s);
        assert_eq!(j.len(), 2);
        for v in &j {
            let Value::Tuple(f) = v else { panic!() };
            assert_eq!(f.len(), 3);
        }
    }

    #[test]
    fn join_with_no_common_attrs_is_product() {
        let r: Rel = [
            Value::tuple([("a", Value::int(1))]),
            Value::tuple([("a", Value::int(2))]),
        ]
        .into_iter()
        .collect();
        let s: Rel = [Value::tuple([("b", Value::int(3))])].into_iter().collect();
        assert_eq!(join(&r, &s).len(), 2);
    }

    #[test]
    fn nest_unnest_inverse_on_grouped_data() {
        let flat = pairs(&[("k1", "v1"), ("k1", "v2"), ("k2", "v3")]);
        let nested = nest(&flat, a("b"));
        assert_eq!(nested.len(), 2);
        assert!(nested.contains(&Value::tuple([
            ("a", Value::str("k1")),
            ("b", Value::set([Value::str("v1"), Value::str("v2")])),
        ])));
        let back = unnest(&nested, a("b"));
        assert_eq!(back, flat);
    }

    #[test]
    fn unnest_drops_empty_sets() {
        // unnest(nest(R)) = R holds, but nest(unnest(S)) ≠ S when S has
        // empty-set groups — the classic asymmetry.
        let s: Rel = [Value::tuple([
            ("a", Value::str("k")),
            ("b", Value::empty_set()),
        ])]
        .into_iter()
        .collect();
        assert!(unnest(&s, a("b")).is_empty());
    }

    #[test]
    fn powerset_sizes() {
        let r: Rel = (0..4).map(Value::int).collect();
        assert_eq!(powerset(&r).len(), 16);
        assert_eq!(powerset(&Rel::new()).len(), 1);
    }

    #[test]
    fn set_ops() {
        let r: Rel = (0..3).map(Value::int).collect();
        let s: Rel = (2..5).map(Value::int).collect();
        assert_eq!(union(&r, &s).len(), 5);
        assert_eq!(intersect(&r, &s).len(), 1);
        assert_eq!(difference(&r, &s).len(), 2);
    }

    #[test]
    fn ovalue_roundtrip() {
        let v = Value::tuple([
            ("name", Value::str("x")),
            ("tags", Value::set([Value::int(1), Value::int(2)])),
        ]);
        let ov = to_ovalue(&v);
        assert_eq!(from_ovalue(&ov), Some(v));
        // Oids don't convert.
        let with_oid = OValue::oid(iql_model::Oid::from_raw(1));
        assert_eq!(from_ovalue(&with_oid), None);
    }

    #[test]
    fn interned_roundtrip_agrees_with_tree_path() {
        use iql_model::ValueStore;
        let v = Value::tuple([
            ("name", Value::str("x")),
            ("tags", Value::set([Value::int(1), Value::int(2)])),
        ]);
        let mut store = ValueStore::new();
        let id = intern_value(&v, &mut store);
        // Direct interning produces the same id as interning the tree form.
        assert_eq!(store.intern(&to_ovalue(&v)), id);
        assert_eq!(value_of_id(id, &store), Some(v));
        // Oid nodes don't convert.
        let oid_id = store.oid_id(iql_model::Oid::from_raw(1));
        assert_eq!(value_of_id(oid_id, &store), None);
    }

    #[test]
    fn map_applies_per_element() {
        let r: Rel = (0..3).map(Value::int).collect();
        let m = map(&r, |v| Value::set([v.clone()]));
        assert_eq!(m.len(), 3);
        assert!(m.contains(&Value::set([Value::int(0)])));
    }
}
