//! E11 — Datalog-in-IQL vs the dedicated relational engines (Section 3.4 /
//! Section 5): same transitive closure, three evaluators. The expected
//! shape: semi-naive < naive < IQL's naive inflationary evaluator, with
//! the gap growing in n. Also the `eval_indexing` ablation (DESIGN.md §5.2):
//! the IQL evaluator with scan indexes on vs off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_bench::{bench_config, edge_instance, random_digraph};
use iql_core::eval::run;
use iql_core::programs::transitive_closure_program;
use iql_datalog::{eval, Strategy};
use iql_model::Constant;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let iql_tc = transitive_closure_program();
    let dl =
        iql_datalog::parse_program("Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).")
            .unwrap();
    let mut group = c.benchmark_group("datalog_baseline");
    group.sample_size(10);
    for n in [10usize, 20, 40] {
        let edges = random_digraph(n, 2 * n, 3);
        let input = edge_instance(&iql_tc, "Edge", ("src", "dst"), &edges);
        group.bench_with_input(BenchmarkId::new("iql", n), &input, |b, i| {
            b.iter(|| run(&iql_tc, i, &cfg).unwrap());
        });
        let mut no_index = cfg.clone();
        no_index.use_index = false;
        group.bench_with_input(BenchmarkId::new("iql_no_index", n), &input, |b, i| {
            b.iter(|| run(&iql_tc, i, &no_index).unwrap());
        });
        let mut naive_iql = cfg.clone();
        naive_iql.use_seminaive = false;
        group.bench_with_input(BenchmarkId::new("iql_naive", n), &input, |b, i| {
            b.iter(|| run(&iql_tc, i, &naive_iql).unwrap());
        });

        let mut db = iql_datalog::Database::new();
        for (s, d) in &edges {
            db.insert("Edge", vec![Constant::str(s), Constant::str(d)])
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("dl_naive", n), &db, |b, db| {
            b.iter(|| eval(&dl, db, Strategy::Naive).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("dl_seminaive", n), &db, |b, db| {
            b.iter(|| eval(&dl, db, Strategy::SemiNaive).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
