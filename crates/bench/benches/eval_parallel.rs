//! E17 — parallel rule evaluation ablation.
//!
//! Runs the `parallel_join_program` workload (five independent join/invent
//! rules over one `Edge` relation, then weak assignment) at 1/2/4/8 worker
//! threads. The merge phase is deterministic, so every thread count
//! produces the bit-identical instance; only wall time should move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_bench::{edge_instance, random_digraph};
use iql_core::eval::{run, EvalConfig};
use iql_core::programs::parallel_join_program;

fn bench(c: &mut Criterion) {
    let prog = parallel_join_program();
    let mut group = c.benchmark_group("eval_parallel");
    group.sample_size(10);
    for n in [60usize, 120] {
        let edges = random_digraph(n, 4 * n, 11);
        let input = edge_instance(&prog, "Edge", ("src", "dst"), &edges);
        for threads in [1usize, 2, 4, 8] {
            let cfg = EvalConfig::builder()
                .max_steps(100_000)
                .enum_budget(1 << 22)
                .threads(threads)
                .build();
            group.bench_with_input(
                BenchmarkId::new(format!("threads-{threads}"), n),
                &input,
                |b, input| {
                    b.iter(|| run(&prog, input, &cfg).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
