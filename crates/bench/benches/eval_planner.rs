//! E18 — cost-based join planning ablation.
//!
//! Two workloads, each run planner-on vs planner-off:
//!
//! * `skewed` — the `skewed_join_program` three-way join whose last link
//!   is the equality `w = w2`: the syntactic plan crosses the big join
//!   result with `Tiny` and filters afterwards, while the planner starts
//!   from `Tiny`, binds through the equality, and probes the persistent
//!   indexes — so planner-on should win by a wide margin as `keys` grows.
//! * `parallel_join` — the `parallel_join_program` regression guard: its
//!   rules are already well-ordered, so the planner must not lose more
//!   than noise here.
//! * `plan_cache` — transitive closure over a long chain (one inflationary
//!   step per path length, so hundreds of steps): the epoch-keyed plan
//!   cache reuses each rule's compiled plan across the quiet steps, while
//!   the cache-off arm replans every rule every step.
//!
//! The planner and the plan cache are pure optimizations — both arms of
//! every pair produce the bit-identical output instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_bench::{chain, edge_instance, random_digraph, skewed_join_instance, skewed_join_tables};
use iql_core::eval::{run, EvalConfig};
use iql_core::programs::{parallel_join_program, skewed_join_program, transitive_closure_program};

fn planner_config(on: bool) -> EvalConfig {
    EvalConfig::builder()
        .max_steps(100_000)
        .enum_budget(1 << 22)
        .planner(on)
        .build()
}

fn cache_config(on: bool) -> EvalConfig {
    EvalConfig::builder()
        .max_steps(100_000)
        .enum_budget(1 << 22)
        .plan_cache(on)
        .build()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_planner");
    group.sample_size(10);

    let skewed = skewed_join_program();
    for keys in [500usize, 2000] {
        let (big, mid, tiny) = skewed_join_tables(keys, 8, 200);
        let input = skewed_join_instance(&skewed, &big, &mid, &tiny);
        for on in [true, false] {
            let cfg = planner_config(on);
            let arm = if on { "planner-on" } else { "planner-off" };
            group.bench_with_input(
                BenchmarkId::new(format!("skewed/{arm}"), keys),
                &input,
                |b, input| {
                    b.iter(|| run(&skewed, input, &cfg).unwrap());
                },
            );
        }
    }

    let guard = parallel_join_program();
    let edges = random_digraph(80, 320, 11);
    let input = edge_instance(&guard, "Edge", ("src", "dst"), &edges);
    for on in [true, false] {
        let cfg = planner_config(on);
        let arm = if on { "planner-on" } else { "planner-off" };
        group.bench_with_input(
            BenchmarkId::new(format!("parallel_join/{arm}"), 80),
            &input,
            |b, input| {
                b.iter(|| run(&guard, input, &cfg).unwrap());
            },
        );
    }

    let tc = transitive_closure_program();
    for n in [64usize, 128] {
        let edges = chain(n, "n");
        let input = edge_instance(&tc, "Edge", ("src", "dst"), &edges);
        for on in [true, false] {
            let cfg = cache_config(on);
            let arm = if on { "cache-on" } else { "cache-off" };
            group.bench_with_input(
                BenchmarkId::new(format!("plan_cache/{arm}"), n),
                &input,
                |b, input| {
                    b.iter(|| run(&tc, input, &cfg).unwrap());
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
