//! E2 — Example 1.2: graph relation → cyclic class representation.
//!
//! Regenerates the scaling series of the paper's flagship transformation:
//! one P-oid per node, successors grouped through a temporary set-valued
//! class, weak assignment closing the cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_bench::{bench_config, edge_instance, random_digraph};
use iql_core::eval::run;
use iql_core::programs::{class_to_graph_program, graph_to_class_program};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let encode = graph_to_class_program();
    let decode = class_to_graph_program();
    let mut group = c.benchmark_group("graph_transform");
    group.sample_size(10);
    for n in [10usize, 30, 100] {
        let edges = random_digraph(n, 2 * n, 7);
        let input = edge_instance(&encode, "R", ("src", "dst"), &edges);
        group.bench_with_input(BenchmarkId::new("encode", n), &input, |b, input| {
            b.iter(|| run(&encode, input, &cfg).unwrap());
        });
        let encoded = run(&encode, &input, &cfg).unwrap();
        let back_in = encoded.output.project(&decode.input).unwrap();
        group.bench_with_input(BenchmarkId::new("decode", n), &back_in, |b, back_in| {
            b.iter(|| run(&decode, back_in, &cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
