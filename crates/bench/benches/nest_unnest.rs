//! E3 — Example 3.4.1: nest/unnest in IQL (invented oids) vs the
//! complex-object algebra's direct ν/μ operators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_bench::{bench_config, edge_instance, grouped_pairs};
use iql_core::eval::run;
use iql_core::programs::{nest_program, unnest_program};
use iql_model::{Instance, RelName};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let nest_p = nest_program();
    let unnest_p = unnest_program();
    let mut group = c.benchmark_group("nest_unnest");
    group.sample_size(10);
    for keys in [10usize, 30, 100] {
        let pairs = grouped_pairs(keys, 8);
        let input = edge_instance(&nest_p, "R2", ("a", "b"), &pairs);
        group.bench_with_input(BenchmarkId::new("iql_nest", keys), &input, |b, input| {
            b.iter(|| run(&nest_p, input, &cfg).unwrap());
        });

        let rel: iql_algebra::Rel = pairs
            .iter()
            .map(|(a, b)| {
                iql_algebra::Value::tuple([
                    ("a", iql_algebra::Value::str(a)),
                    ("b", iql_algebra::Value::str(b)),
                ])
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("algebra_nest", keys), &rel, |b, rel| {
            b.iter(|| iql_algebra::nest(rel, "b".into()));
        });

        // Unnest the nested forms.
        let nested = run(&nest_p, &input, &cfg).unwrap();
        let mut back_in = Instance::new(Arc::clone(&unnest_p.input));
        for v in nested.output.relation(RelName::new("R3")).unwrap() {
            back_in
                .insert_unchecked(RelName::new("R1"), v.clone())
                .unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("iql_unnest", keys),
            &back_in,
            |b, back_in| {
                b.iter(|| run(&unnest_p, back_in, &cfg).unwrap());
            },
        );
        let alg_nested = iql_algebra::nest(&rel, "b".into());
        group.bench_with_input(
            BenchmarkId::new("algebra_unnest", keys),
            &alg_nested,
            |b, alg_nested| {
                b.iter(|| iql_algebra::unnest(alg_nested, "b".into()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
