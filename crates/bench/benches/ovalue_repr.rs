//! Ablation (DESIGN.md §5.1): interned-name + canonical-BTree o-values vs a
//! naive string-keyed representation — compares construction, comparison,
//! and set-dedup cost on the tuple shapes IQL joins over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_model::OValue;
use std::collections::{BTreeMap, BTreeSet};

/// The strawman: string-keyed tuples, no interning.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum NaiveValue {
    Str(String),
    Tuple(BTreeMap<String, NaiveValue>),
}

fn make_ovalues(n: usize) -> Vec<OValue> {
    (0..n)
        .map(|i| {
            OValue::tuple([
                ("src", OValue::str(&format!("node{}", i % 97))),
                ("dst", OValue::str(&format!("node{}", (i * 7) % 97))),
            ])
        })
        .collect()
}

fn make_naive(n: usize) -> Vec<NaiveValue> {
    (0..n)
        .map(|i| {
            NaiveValue::Tuple(BTreeMap::from([
                (
                    "src".to_string(),
                    NaiveValue::Str(format!("node{}", i % 97)),
                ),
                (
                    "dst".to_string(),
                    NaiveValue::Str(format!("node{}", (i * 7) % 97)),
                ),
            ]))
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ovalue_repr");
    group.sample_size(20);
    for n in [1000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("interned_build_dedup", n), &n, |b, &n| {
            b.iter(|| {
                let set: BTreeSet<OValue> = make_ovalues(n).into_iter().collect();
                set.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("naive_build_dedup", n), &n, |b, &n| {
            b.iter(|| {
                let set: BTreeSet<NaiveValue> = make_naive(n).into_iter().collect();
                set.len()
            });
        });
        let ovals = make_ovalues(n);
        group.bench_with_input(BenchmarkId::new("interned_sort", n), &ovals, |b, v| {
            b.iter(|| {
                let mut v = v.clone();
                v.sort();
                v.len()
            });
        });
        let navals = make_naive(n);
        group.bench_with_input(BenchmarkId::new("naive_sort", n), &navals, |b, v| {
            b.iter(|| {
                let mut v = v.clone();
                v.sort();
                v.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
