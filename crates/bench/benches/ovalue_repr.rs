//! Ablation (DESIGN.md §5.1 and "Value representation"): three rungs of
//! the representation ladder —
//!
//! 1. a naive string-keyed tree (the strawman),
//! 2. the interned-name + canonical-BTree `OValue` tree,
//! 3. the hash-consed `ValueStore` arena (`ValueId` handles).
//!
//! Compares construction/dedup/sort (rungs 1–2), plus intern cost, deep
//! equality, and join-probe throughput (rungs 2–3) on the tuple shapes
//! IQL joins over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_model::{OValue, ValueId, ValueInterner, ValueStore};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The strawman: string-keyed tuples, no interning.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum NaiveValue {
    Str(String),
    Tuple(BTreeMap<String, NaiveValue>),
}

fn make_ovalues(n: usize) -> Vec<OValue> {
    (0..n)
        .map(|i| {
            OValue::tuple([
                ("src", OValue::str(&format!("node{}", i % 97))),
                ("dst", OValue::str(&format!("node{}", (i * 7) % 97))),
            ])
        })
        .collect()
}

fn make_naive(n: usize) -> Vec<NaiveValue> {
    (0..n)
        .map(|i| {
            NaiveValue::Tuple(BTreeMap::from([
                (
                    "src".to_string(),
                    NaiveValue::Str(format!("node{}", i % 97)),
                ),
                (
                    "dst".to_string(),
                    NaiveValue::Str(format!("node{}", (i * 7) % 97)),
                ),
            ]))
        })
        .collect()
}

/// Deep values with heavy shared substructure — the shape ν-values take
/// after a few derivation rounds, where hash-consing pays off most.
fn make_deep(n: usize) -> Vec<OValue> {
    (0..n)
        .map(|i| {
            let leaf = |k: usize| {
                OValue::tuple([
                    ("name", OValue::str(&format!("node{}", k % 23))),
                    ("rank", OValue::int((k % 7) as i64)),
                ])
            };
            OValue::tuple([
                ("left", leaf(i)),
                ("right", leaf(i * 7)),
                ("kids", OValue::set((0..4).map(|j| leaf((i + j) % 31)))),
            ])
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ovalue_repr");
    group.sample_size(20);
    for n in [1000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("interned_build_dedup", n), &n, |b, &n| {
            b.iter(|| {
                let set: BTreeSet<OValue> = make_ovalues(n).into_iter().collect();
                set.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("naive_build_dedup", n), &n, |b, &n| {
            b.iter(|| {
                let set: BTreeSet<NaiveValue> = make_naive(n).into_iter().collect();
                set.len()
            });
        });
        let ovals = make_ovalues(n);
        group.bench_with_input(BenchmarkId::new("interned_sort", n), &ovals, |b, v| {
            b.iter(|| {
                let mut v = v.clone();
                v.sort();
                v.len()
            });
        });
        let navals = make_naive(n);
        group.bench_with_input(BenchmarkId::new("naive_sort", n), &navals, |b, v| {
            b.iter(|| {
                let mut v = v.clone();
                v.sort();
                v.len()
            });
        });
    }
    group.finish();

    // Tree vs hash-consed arena: intern cost, equality, join probe.
    let mut group = c.benchmark_group("ovalue_repr/arena");
    group.sample_size(20);
    for n in [1000usize, 10_000] {
        let deep = make_deep(n);

        // Cost of admission: interning the whole batch into a fresh arena.
        group.bench_with_input(BenchmarkId::new("intern_batch", n), &deep, |b, v| {
            b.iter(|| {
                let mut store = ValueStore::new();
                let ids: Vec<ValueId> = v.iter().map(|x| store.intern(x)).collect();
                (store.len(), ids.len())
            });
        });

        // Deep equality: all-pairs over a window, tree compare vs id compare.
        let window = &deep[..deep.len().min(256)];
        group.bench_with_input(BenchmarkId::new("tree_equality", n), &window, |b, v| {
            b.iter(|| {
                let mut eq = 0usize;
                for a in v.iter() {
                    for b2 in v.iter() {
                        eq += usize::from(a == b2);
                    }
                }
                eq
            });
        });
        let mut store = ValueStore::new();
        let win_ids: Vec<ValueId> = window.iter().map(|x| store.intern(x)).collect();
        group.bench_with_input(BenchmarkId::new("id_equality", n), &win_ids, |b, v| {
            b.iter(|| {
                let mut eq = 0usize;
                for &a in v.iter() {
                    for &b2 in v.iter() {
                        eq += usize::from(a == b2);
                    }
                }
                eq
            });
        });

        // Join probe: hash-map lookups keyed by whole values vs by ids —
        // the inner loop of matching and condition-(†) dedup.
        let tree_index: HashMap<&OValue, usize> =
            deep.iter().enumerate().map(|(i, v)| (v, i)).collect();
        group.bench_with_input(BenchmarkId::new("tree_join_probe", n), &deep, |b, v| {
            b.iter(|| {
                let mut hits = 0usize;
                for probe in v.iter() {
                    hits += usize::from(tree_index.contains_key(probe));
                }
                hits
            });
        });
        let ids: Vec<ValueId> = deep.iter().map(|x| store.intern(x)).collect();
        let id_index: HashMap<ValueId, usize> =
            ids.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        group.bench_with_input(BenchmarkId::new("id_join_probe", n), &ids, |b, v| {
            b.iter(|| {
                let mut hits = 0usize;
                for probe in v.iter() {
                    hits += usize::from(id_index.contains_key(probe));
                }
                hits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
