//! E4 — Example 3.4.2: the powerset three ways — range-restricted IQL with
//! invented oids, the non-range-restricted `X = X` program (enumeration
//! fallback), and the algebra's direct operator. All exponential; the
//! benchmark pins the 2^n *shape*.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_bench::{bench_config, unary_instance, universe};
use iql_core::eval::run;
use iql_core::programs::{powerset_program, powerset_unrestricted_program};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let constructive = powerset_program();
    let unrestricted = powerset_unrestricted_program();
    let mut group = c.benchmark_group("powerset");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let vals = universe(n);
        // The constructive program invents Θ(4^n) oids — cap it lower.
        if n <= 4 {
            let i1 = unary_instance(&constructive, "R", "a", &vals);
            group.bench_with_input(BenchmarkId::new("iql_oids", n), &i1, |b, i| {
                b.iter(|| run(&constructive, i, &cfg).unwrap());
            });
        }
        let i2 = unary_instance(&unrestricted, "R", "a", &vals);
        group.bench_with_input(BenchmarkId::new("iql_enum", n), &i2, |b, i| {
            b.iter(|| run(&unrestricted, i, &cfg).unwrap());
        });
        let rel: iql_algebra::Rel = vals.iter().map(|v| iql_algebra::Value::str(v)).collect();
        group.bench_with_input(BenchmarkId::new("algebra", n), &rel, |b, rel| {
            b.iter(|| iql_algebra::powerset(rel));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
