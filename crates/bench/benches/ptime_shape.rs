//! E10 — Theorem 5.4: IQLrr programs evaluate in PTIME. The benchmark
//! produces the polynomial scaling series for transitive closure (an IQLrr
//! program) over chains and random digraphs; contrast with the exponential
//! `powerset` bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_bench::{bench_config, chain, edge_instance, random_digraph};
use iql_core::eval::run;
use iql_core::programs::transitive_closure_program;
use iql_core::sublang::{classify, SubLanguage};

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let tc = transitive_closure_program();
    assert_eq!(classify(&tc), SubLanguage::Iqlrr);
    let mut group = c.benchmark_group("ptime_shape");
    group.sample_size(10);
    for n in [10usize, 20, 40] {
        let input = edge_instance(&tc, "Edge", ("src", "dst"), &chain(n, "c"));
        group.bench_with_input(BenchmarkId::new("tc_chain", n), &input, |b, i| {
            b.iter(|| run(&tc, i, &cfg).unwrap());
        });
        let input = edge_instance(&tc, "Edge", ("src", "dst"), &random_digraph(n, 2 * n, 3));
        group.bench_with_input(BenchmarkId::new("tc_random", n), &input, |b, i| {
            b.iter(|| run(&tc, i, &cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
