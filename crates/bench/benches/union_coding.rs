//! E5 — Example 3.4.3: union-type encode/decode over random cyclic
//! P-instances, including the O-isomorphism verification of losslessness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_bench::bench_config;
use iql_core::eval::run;
use iql_core::programs::{union_decode_program, union_encode_program};
use iql_model::{ClassName, Instance, OValue};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_union_instance(prog: &iql_core::Program, n: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inst = Instance::new(Arc::clone(&prog.input));
    let p = ClassName::new("P");
    let oids: Vec<_> = (0..n).map(|_| inst.create_oid(p).unwrap()).collect();
    for &o in &oids {
        if rng.gen_bool(0.5) {
            inst.define_value(o, OValue::oid(oids[rng.gen_range(0..n)]))
                .unwrap();
        } else {
            inst.define_value(
                o,
                OValue::tuple([
                    ("A1", OValue::oid(oids[rng.gen_range(0..n)])),
                    ("A2", OValue::oid(oids[rng.gen_range(0..n)])),
                ]),
            )
            .unwrap();
        }
    }
    inst
}

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let enc = union_encode_program();
    let dec = union_decode_program();
    let mut group = c.benchmark_group("union_coding");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let input = random_union_instance(&enc, n, 42);
        group.bench_with_input(BenchmarkId::new("encode", n), &input, |b, i| {
            b.iter(|| run(&enc, i, &cfg).unwrap());
        });
        let encoded = run(&enc, &input, &cfg).unwrap();
        let back_in = encoded.output.project(&dec.input).unwrap();
        group.bench_with_input(BenchmarkId::new("decode", n), &back_in, |b, i| {
            b.iter(|| run(&dec, i, &cfg).unwrap());
        });
        let decoded = run(&dec, &back_in, &cfg).unwrap();
        group.bench_with_input(
            BenchmarkId::new("iso_check", n),
            &(decoded.output.clone(), input.clone()),
            |b, (d, i)| {
                b.iter(|| assert!(iql_model::iso::are_o_isomorphic(d, i)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
