//! E13 — Section 7 / Figure 2: φ and ψ translations and bisimulation
//! equality over rings of mutually-referencing pure values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iql_model::{AttrName, ClassName, Constant, TypeExpr};
use iql_vtree::{phi, psi, vinstances_equal, Node, VInstance, VSchema};

fn ring_schema() -> VSchema {
    VSchema::new([(
        ClassName::new("Bnode"),
        TypeExpr::tuple([
            ("label", TypeExpr::base()),
            ("next", TypeExpr::set_of(TypeExpr::class("Bnode"))),
        ]),
    )])
    .unwrap()
}

fn ring(schema: &VSchema, n: usize) -> VInstance {
    let mut vinst = VInstance::new(schema);
    let slots: Vec<_> = (0..n).map(|_| vinst.forest.reserve()).collect();
    for i in 0..n {
        let label = vinst.forest.add_const(Constant::str(&format!("p{i}")));
        let next = vinst.forest.add_set([slots[(i + 1) % n]]);
        vinst.forest.set_node(
            slots[i],
            Node::Tuple(
                [("label", label), ("next", next)]
                    .map(|(a, id)| (AttrName::new(a), id))
                    .into(),
            ),
        );
        vinst.add(ClassName::new("Bnode"), slots[i]);
    }
    vinst
}

fn bench(c: &mut Criterion) {
    let schema = ring_schema();
    let mut group = c.benchmark_group("vtree_roundtrip");
    group.sample_size(10);
    for n in [8usize, 32, 128] {
        let vinst = ring(&schema, n);
        group.bench_with_input(BenchmarkId::new("phi", n), &vinst, |b, v| {
            b.iter(|| phi(&schema, v).unwrap());
        });
        let (obj, _) = phi(&schema, &vinst).unwrap();
        group.bench_with_input(BenchmarkId::new("psi", n), &obj, |b, o| {
            b.iter(|| psi(o).unwrap());
        });
        let back = psi(&obj).unwrap();
        group.bench_with_input(BenchmarkId::new("bisim_eq", n), &back, |b, back| {
            b.iter(|| assert!(vinstances_equal(back, &vinst)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
