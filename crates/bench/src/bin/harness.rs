//! The experiment harness: regenerates every example, figure, and
//! complexity theorem of the paper as a printed table or artifact.
//!
//! ```text
//! cargo run -p iql-bench --bin harness --release            # all experiments
//! cargo run -p iql-bench --bin harness --release -- e4 e10  # a subset
//! ```
//!
//! Experiment ids follow `DESIGN.md` §4 / `EXPERIMENTS.md`.

use iql_bench::*;
use iql_core::eval::run;
use iql_core::programs::*;
use iql_core::sublang::{classify, SubLanguage};
use iql_core::Program;
use iql_model::instance::genesis_instance;
use iql_model::iso::are_o_isomorphic;
use iql_model::{ClassName, Instance, OValue, RelName, TypeExpr};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
        "e16", "e17",
    ];
    let selected: Vec<&str> = if args.is_empty() {
        all.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for exp in selected {
        match exp {
            "e1" => e1_genesis(),
            "e2" => e2_graph_transform(),
            "e3" => e3_nest_unnest(),
            "e4" => e4_powerset(),
            "e5" => e5_union_types(),
            "e6" => e6_determinacy(),
            "e7" | "e8" => e7_quadrangle_choose(),
            "e9" => e9_deletions(),
            "e10" => e10_ptime_shape(),
            "e11" => e11_datalog_baseline(),
            "e12" => e12_inheritance(),
            "e13" => e13_value_model(),
            "e14" => e14_type_normalization(),
            "e15" => e15_iqlv(),
            "e16" => e16_flattener(),
            "e17" => e17_parallel_ablation(),
            other => eprintln!("unknown experiment {other}"),
        }
    }
}

// ---------------------------------------------------------------------
// E1 — Example 1.1: the Genesis schema and instance
// ---------------------------------------------------------------------

fn e1_genesis() {
    println!("\n== E1: Example 1.1 — Genesis schema & instance ==");
    let (inst, oids) = genesis_instance();
    inst.validate()
        .expect("Genesis instance validates (Def 2.3.2)");
    println!("{}", inst.schema());
    println!("{inst}");
    let [_, _, _, _, _, other] = oids;
    println!(
        "ν(other) undefined: {} (incomplete information, Remark 2.3.3)",
        inst.value(other).is_none()
    );
    println!("ground facts: {}", inst.fact_count());
    println!(
        "paper check: 6 class facts, 5 relation facts, 5 value facts → 16 total: {}",
        if inst.fact_count() == 16 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}

// ---------------------------------------------------------------------
// E2 — Example 1.2: graph relation → cyclic class representation
// ---------------------------------------------------------------------

fn e2_graph_transform() {
    println!("\n== E2: Example 1.2 — acyclic→cyclic representation (scaling) ==");
    let cfg = bench_config();
    let enc = graph_to_class_program();
    let dec = class_to_graph_program();
    println!(
        "classification: encode = {}, decode = {}",
        classify(&enc),
        classify(&dec)
    );
    let mut rows = Vec::new();
    for n in [10usize, 30, 100, 300] {
        let edges = random_digraph(n, 2 * n, 7);
        let input = edge_instance(&enc, "R", ("src", "dst"), &edges);
        let (out, t_enc) = timed_run(&enc, &input, &cfg);
        let nodes = out.output.class(ClassName::new("P")).unwrap().len();
        // Round-trip back to edges.
        let back_in = out.output.project(&dec.input).unwrap();
        let (flat, t_dec) = timed_run(&dec, &back_in, &cfg);
        let edges_back = flat.output.relation(RelName::new("Out")).unwrap().len();
        assert_eq!(edges_back, edges.len(), "lossless roundtrip");
        rows.push(Row {
            n,
            cells: vec![
                ("encode".into(), t_enc.as_secs_f64(), Some(nodes)),
                ("decode".into(), t_dec.as_secs_f64(), Some(edges_back)),
                ("invented".into(), 0.0, Some(out.report.invented)),
            ],
        });
    }
    print_table(
        "graph transform (n nodes, 2n edges); counts = P-oids / edges-back / invented",
        &rows,
    );
    println!("shape check: invented oids = 2·nodes (one P + one P' per node): OK by construction");
}

// ---------------------------------------------------------------------
// E3 — Example 3.4.1: nest/unnest, IQL vs complex-object algebra
// ---------------------------------------------------------------------

fn e3_nest_unnest() {
    println!("\n== E3: Example 3.4.1 — nest/unnest: IQL (invented oids) vs algebra ==");
    let cfg = bench_config();
    let nest_p = nest_program();
    let unnest_p = unnest_program();
    let mut rows = Vec::new();
    for n in [10usize, 30, 100, 300] {
        let pairs = grouped_pairs(n, 8);
        let input = edge_instance(&nest_p, "R2", ("a", "b"), &pairs);
        let (nested, t_iql) = timed_run(&nest_p, &input, &cfg);
        let groups = nested.output.relation(RelName::new("R3")).unwrap().len();

        // Algebra baseline.
        let rel: iql_algebra::Rel = pairs
            .iter()
            .map(|(a, b)| {
                iql_algebra::Value::tuple([
                    ("a", iql_algebra::Value::str(a)),
                    ("b", iql_algebra::Value::str(b)),
                ])
            })
            .collect();
        let (alg_nested, t_alg) = timed(|| iql_algebra::nest(&rel, "b".into()));
        assert_eq!(alg_nested.len(), groups, "IQL and algebra agree");

        // Unnest both ways back.
        let mut back_in = Instance::new(Arc::clone(&unnest_p.input));
        for v in nested.output.relation(RelName::new("R3")).unwrap() {
            back_in
                .insert_unchecked(RelName::new("R1"), v.clone())
                .unwrap();
        }
        let (_flat, t_unnest) = timed_run(&unnest_p, &back_in, &cfg);
        let (_alg_flat, t_alg_unnest) = timed(|| iql_algebra::unnest(&alg_nested, "b".into()));

        rows.push(Row {
            n: n * 8,
            cells: vec![
                ("iql-nest".into(), t_iql.as_secs_f64(), Some(groups)),
                (
                    "alg-nest".into(),
                    t_alg.as_secs_f64(),
                    Some(alg_nested.len()),
                ),
                ("iql-unnest".into(), t_unnest.as_secs_f64(), None),
                ("alg-unnest".into(), t_alg_unnest.as_secs_f64(), None),
            ],
        });
    }
    print_table("nest/unnest (n = flat tuples, 8 per group)", &rows);
    println!("shape check: algebra beats IQL by a constant-to-growing factor (no rule engine), same results");
}

// ---------------------------------------------------------------------
// E4 — Example 3.4.2: the two powerset programs (exponential)
// ---------------------------------------------------------------------

fn e4_powerset() {
    println!("\n== E4: Example 3.4.2 — powerset: range-restricted (oids) vs X=X vs algebra ==");
    let cfg = bench_config();
    let constructive = powerset_program();
    let unrestricted = powerset_unrestricted_program();
    println!(
        "classification: constructive = {}, unrestricted = {} (both escape IQLpr, as the paper requires)",
        classify(&constructive),
        classify(&unrestricted)
    );
    let mut rows = Vec::new();
    for n in 2usize..=6 {
        let vals = universe(n);
        let i1 = unary_instance(&constructive, "R", "a", &vals);
        let (o1, t1) = timed_run(&constructive, &i1, &cfg);
        let c1 = o1.output.relation(RelName::new("R1")).unwrap().len();
        let i2 = unary_instance(&unrestricted, "R", "a", &vals);
        let (o2, t2) = timed_run(&unrestricted, &i2, &cfg);
        let c2 = o2.output.relation(RelName::new("R1")).unwrap().len();
        let rel: iql_algebra::Rel = vals.iter().map(|v| iql_algebra::Value::str(v)).collect();
        let (ps, t3) = timed(|| iql_algebra::powerset(&rel));
        assert_eq!(c1, 1 << n);
        assert_eq!(c2, 1 << n);
        assert_eq!(ps.len(), 1 << n);
        rows.push(Row {
            n,
            cells: vec![
                ("iql-oids".into(), t1.as_secs_f64(), Some(c1)),
                ("iql-X=X".into(), t2.as_secs_f64(), Some(c2)),
                ("algebra".into(), t3.as_secs_f64(), Some(ps.len())),
            ],
        });
    }
    print_table("powerset of n elements (counts = 2^n subsets)", &rows);
    println!("shape check: all three grow exponentially; the constructive program pays oid-invention overhead");
}

// ---------------------------------------------------------------------
// E5 — Example 3.4.3: union-type encode/decode is lossless
// ---------------------------------------------------------------------

fn random_union_instance(prog: &Program, n: usize, seed: u64) -> Instance {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inst = Instance::new(Arc::clone(&prog.input));
    let p = ClassName::new("P");
    let oids: Vec<_> = (0..n).map(|_| inst.create_oid(p).unwrap()).collect();
    for &o in &oids {
        if rng.gen_bool(0.5) {
            let target = oids[rng.gen_range(0..n)];
            inst.define_value(o, OValue::oid(target)).unwrap();
        } else {
            let a = oids[rng.gen_range(0..n)];
            let b = oids[rng.gen_range(0..n)];
            inst.define_value(
                o,
                OValue::tuple([("A1", OValue::oid(a)), ("A2", OValue::oid(b))]),
            )
            .unwrap();
        }
    }
    inst.validate().unwrap();
    inst
}

fn e5_union_types() {
    println!("\n== E5: Example 3.4.3 — union-type encode/decode roundtrip ==");
    let cfg = bench_config();
    let enc = union_encode_program();
    let dec = union_decode_program();
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16] {
        let input = random_union_instance(&enc, n, 11 + n as u64);
        let (encoded, t_enc) = timed_run(&enc, &input, &cfg);
        let back_in = encoded.output.project(&dec.input).unwrap();
        let (decoded, t_dec) = timed_run(&dec, &back_in, &cfg);
        let iso = are_o_isomorphic(&decoded.output, &input);
        assert!(iso, "decode(encode(I)) ≅ I at n={n}");
        rows.push(Row {
            n,
            cells: vec![
                ("encode".into(), t_enc.as_secs_f64(), Some(n)),
                ("decode".into(), t_dec.as_secs_f64(), Some(n)),
                ("roundtrip≅".into(), 0.0, Some(usize::from(iso))),
            ],
        });
    }
    print_table("union encode/decode over random cyclic P-instances", &rows);
    println!("shape check: every roundtrip O-isomorphic — no information lost (paper's claim)");
}

// ---------------------------------------------------------------------
// E6 — Theorem 4.1.3: determinacy up to O-isomorphism
// ---------------------------------------------------------------------

fn e6_determinacy() {
    println!("\n== E6: Theorem 4.1.3 — determinate up to renaming of oids ==");
    let cfg = bench_config();
    let prog = graph_to_class_program();
    let mut checks = 0;
    let mut ok = 0;
    for n in [5usize, 10, 20] {
        for seed in 0..3u64 {
            let edges = random_digraph(n, 2 * n, seed);
            let i1 = edge_instance(&prog, "R", ("src", "dst"), &edges);
            let mut rev = edges.clone();
            rev.reverse();
            let i2 = edge_instance(&prog, "R", ("src", "dst"), &rev);
            let o1 = run(&prog, &i1, &cfg).unwrap();
            let o2 = run(&prog, &i2, &cfg).unwrap();
            checks += 1;
            if are_o_isomorphic(&o1.output, &o2.output) {
                ok += 1;
            }
        }
    }
    println!("{ok}/{checks} permuted-input runs produced O-isomorphic outputs");
    assert_eq!(ok, checks);
}

// ---------------------------------------------------------------------
// E7/E8 — Figure 1 + Theorems 4.2.4/4.3.1/4.4.1
// ---------------------------------------------------------------------

fn e7_quadrangle_choose() {
    println!("\n== E7/E8: Figure 1 — copies in IQL, selection with IQL⁺ choose ==");
    let cfg = bench_config();
    let copies = quadrangle_program();
    let full = quadrangle_choose_program();
    let mk_input = |prog: &Program| {
        let mut input = Instance::new(Arc::clone(&prog.input));
        for v in ["a", "b"] {
            input
                .insert(RelName::new("R"), OValue::tuple([("a", OValue::str(v))]))
                .unwrap();
        }
        input
    };
    let out1 = run(&copies, &mk_input(&copies), &cfg).unwrap();
    println!(
        "plain IQL (Thm 4.2.4): built {} Q-objects, {} Rp arcs — TWO copies of the quadrangle",
        out1.output.class(ClassName::new("Q")).unwrap().len(),
        out1.output.relation(RelName::new("Rp")).unwrap().len()
    );
    println!("plain IQL cannot pick one copy (Thm 4.3.1: copy elimination is inexpressible).");
    let out2 = run(&full, &mk_input(&full), &cfg).unwrap();
    println!(
        "IQL⁺ (Thm 4.4.1): choose selected one copy generically → {} Qout objects, {} OutRp arcs",
        out2.output.class(ClassName::new("Qout")).unwrap().len(),
        out2.output.relation(RelName::new("OutRp")).unwrap().len()
    );
    for f in out2.output.ground_facts() {
        println!("  {f}");
    }
    // Section 4.4 solution 2: with an explicit order on constants, plain
    // IQL (no choose) eliminates copies.
    let ordered = quadrangle_ordered_program();
    let mut input = Instance::new(Arc::clone(&ordered.input));
    for v in ["a", "b"] {
        input
            .insert(RelName::new("R"), OValue::tuple([("a", OValue::str(v))]))
            .unwrap();
    }
    input
        .insert(
            RelName::new("Lt"),
            OValue::tuple([("lo", OValue::str("a")), ("hi", OValue::str("b"))]),
        )
        .unwrap();
    let out3 = run(&ordered, &input, &cfg).unwrap();
    println!(
        "ordered-database variant (no choose): {} Qout objects, {} arcs — order breaks the symmetry",
        out3.output.class(ClassName::new("Qout")).unwrap().len(),
        out3.output.relation(RelName::new("OutRp")).unwrap().len()
    );
}

// ---------------------------------------------------------------------
// E9 — Section 4.5: IQL* deletions with cascade
// ---------------------------------------------------------------------

fn e9_deletions() {
    println!("\n== E9: Section 4.5 — IQL* deletions ==");
    let unit = iql_core::parser::parse_unit(
        r#"
        schema {
          relation Emp: [name: D, dept: D];
          relation Closed: [dept: D];
        }
        program {
          input Emp, Closed;
          output Emp;
          del Emp(x, d) :- Closed(d), Emp(x, d);
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    println!(
        "classification: {} (deletions are an IQL* extension)",
        classify(&prog)
    );
    let mut input = Instance::new(Arc::clone(&prog.input));
    for (n, d) in [("ann", "sales"), ("bob", "sales"), ("cal", "eng")] {
        input
            .insert(
                RelName::new("Emp"),
                OValue::tuple([("name", OValue::str(n)), ("dept", OValue::str(d))]),
            )
            .unwrap();
    }
    input
        .insert(
            RelName::new("Closed"),
            OValue::tuple([("dept", OValue::str("sales"))]),
        )
        .unwrap();
    let out = run(&prog, &input, &bench_config()).unwrap();
    let left = out.output.relation(RelName::new("Emp")).unwrap();
    println!(
        "after closing 'sales': {} employees remain (expected 1)",
        left.len()
    );
    assert_eq!(left.len(), 1);
}

// ---------------------------------------------------------------------
// E10 — Theorem 5.4: PTIME shape for IQLrr vs exponential escape
// ---------------------------------------------------------------------

fn e10_ptime_shape() {
    println!("\n== E10: Theorem 5.4 — IQLrr scales polynomially; powerset escapes ==");
    let cfg = bench_config();
    let tc = transitive_closure_program();
    assert_eq!(classify(&tc), SubLanguage::Iqlrr);
    let mut rows = Vec::new();
    let mut times = Vec::new();
    for n in [10usize, 20, 40, 80] {
        let edges = chain(n, "c");
        let input = edge_instance(&tc, "Edge", ("src", "dst"), &edges);
        let (out, t) = timed_run(&tc, &input, &cfg);
        let pairs = out.output.relation(RelName::new("Tc")).unwrap().len();
        times.push((n as f64, t.as_secs_f64()));
        rows.push(Row {
            n,
            cells: vec![("tc-chain".into(), t.as_secs_f64(), Some(pairs))],
        });
    }
    print_table(
        "IQLrr transitive closure on chains (counts = closure pairs)",
        &rows,
    );
    // Log-log slope between the first and last points ≈ polynomial degree.
    let (n0, t0) = times[0];
    let (n1, t1) = times[times.len() - 1];
    let slope = (t1 / t0).ln() / (n1 / n0).ln();
    println!(
        "empirical log-log slope ≈ {slope:.2} (polynomial; naive evaluation of TC is ~n^3-n^4)"
    );

    let ps = powerset_program();
    let mut ratios = Vec::new();
    let mut prev: Option<f64> = None;
    for n in 2usize..=6 {
        let vals = universe(n);
        let input = unary_instance(&ps, "R", "a", &vals);
        let (_, t) = timed_run(&ps, &input, &cfg);
        if let Some(p) = prev {
            ratios.push(t.as_secs_f64() / p);
        }
        prev = Some(t.as_secs_f64());
    }
    println!(
        "powerset per-increment time ratios: {:?} (≫ constant — exponential escape from PTIME)",
        ratios
            .iter()
            .map(|r| format!("{r:.1}x"))
            .collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------
// E11 — Section 5: Datalog-in-IQL vs dedicated engines
// ---------------------------------------------------------------------

fn e11_datalog_baseline() {
    println!("\n== E11: Datalog TC — IQL evaluator vs naive vs semi-naive engines ==");
    let cfg = bench_config();
    let iql_tc = transitive_closure_program();
    let dl =
        iql_datalog::parse_program("Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).")
            .unwrap();
    let mut rows = Vec::new();
    for n in [10usize, 20, 40, 80] {
        let edges = random_digraph(n, 2 * n, 3);
        let input = edge_instance(&iql_tc, "Edge", ("src", "dst"), &edges);
        let (iql_out, t_iql) = timed_run(&iql_tc, &input, &cfg);
        let iql_pairs = iql_out.output.relation(RelName::new("Tc")).unwrap().len();
        let naive_cfg = cfg.to_builder().seminaive(false).build();
        let (_, t_iql_naive) = timed_run(&iql_tc, &input, &naive_cfg);

        let mut db = iql_datalog::Database::new();
        for (s, d) in &edges {
            db.insert(
                "Edge",
                vec![iql_model::Constant::str(s), iql_model::Constant::str(d)],
            )
            .unwrap();
        }
        let ((naive_out, _), t_naive) =
            timed(|| iql_datalog::eval(&dl, &db, iql_datalog::Strategy::Naive).unwrap());
        let ((semi_out, _), t_semi) =
            timed(|| iql_datalog::eval(&dl, &db, iql_datalog::Strategy::SemiNaive).unwrap());
        let naive_pairs = naive_out.relation("Tc").unwrap().len();
        let semi_pairs = semi_out.relation("Tc").unwrap().len();
        assert_eq!(iql_pairs, naive_pairs);
        assert_eq!(naive_pairs, semi_pairs);
        rows.push(Row {
            n,
            cells: vec![
                ("iql-semi".into(), t_iql.as_secs_f64(), Some(iql_pairs)),
                ("iql-naive".into(), t_iql_naive.as_secs_f64(), None),
                ("dl-naive".into(), t_naive.as_secs_f64(), Some(naive_pairs)),
                (
                    "dl-seminaive".into(),
                    t_semi.as_secs_f64(),
                    Some(semi_pairs),
                ),
            ],
        });
    }
    print_table(
        "transitive closure, random digraphs (n nodes, 2n edges)",
        &rows,
    );
    println!("shape check: identical closures; semi-naive beats naive in BOTH engines by a growing factor;\n  the typed IQL evaluator tracks the relational engines within small constants");
}

// ---------------------------------------------------------------------
// E12 — Section 6: inheritance via union types
// ---------------------------------------------------------------------

fn e12_inheritance() {
    println!("\n== E12: Section 6 — person/student/instructor/ta inheritance ==");
    let u = iql_model::inherit::university_schema();
    println!("merged type of Ta (Example 6.2.1 → 6.1.2):");
    println!("  tTa = {}", u.merged_type(ClassName::new("Ta")).unwrap());
    let plain = u.translate().unwrap();
    println!("translated (union-type) schema — inheritance as shorthand:");
    println!("{plain}");

    // A program querying all persons' names across the hierarchy, run over
    // the translated schema: IQL unchanged (Section 6 conclusion).
    let unit = iql_core::parser::parse_unit(
        r#"
        schema {
          class Person: [name: D];
          class Student isa Person: [course_taken: D];
          class Instructor isa Person: [course_taught: D];
          class Ta isa Student, Instructor: [];
          relation Names: [n: D];
        }
        program {
          input Person, Student, Instructor, Ta;
          output Names;
          Names(x) :- Person(p), p^ = [name: x];
          Names(x) :- Student(p), p^ = [name: x, course_taken: c];
          Names(x) :- Instructor(p), p^ = [name: x, course_taught: c];
          Names(x) :- Ta(p), p^ = [name: x, course_taken: c, course_taught: d];
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    let mk = |i: &mut Instance, class: &str, fields: &[(&str, &str)]| {
        let o = i.create_oid(ClassName::new(class)).unwrap();
        i.define_value(
            o,
            OValue::tuple(
                fields
                    .iter()
                    .map(|(a, v)| (*a, OValue::str(v)))
                    .collect::<Vec<_>>(),
            ),
        )
        .unwrap();
    };
    mk(&mut input, "Person", &[("name", "plato")]);
    mk(
        &mut input,
        "Student",
        &[("name", "sue"), ("course_taken", "db")],
    );
    mk(
        &mut input,
        "Instructor",
        &[("name", "ike"), ("course_taught", "db")],
    );
    mk(
        &mut input,
        "Ta",
        &[
            ("name", "tina"),
            ("course_taken", "ai"),
            ("course_taught", "db"),
        ],
    );
    let out = run(&prog, &input, &bench_config()).unwrap();
    let names = out.output.relation(RelName::new("Names")).unwrap();
    println!("names across the hierarchy: {names:?} (expected 4)");
    assert_eq!(names.len(), 4);
}

// ---------------------------------------------------------------------
// E13 — Section 7 / Figure 2: φ, ψ, and ψ∘φ = id
// ---------------------------------------------------------------------

fn e13_value_model() {
    println!("\n== E13: Figure 2 / Prop 7.1.3-7.1.4 — value-based model roundtrip ==");
    use iql_vtree::{phi, psi, vinstances_equal, VInstance, VSchema};
    let schema = VSchema::new([(
        ClassName::new("Vnode"),
        TypeExpr::tuple([
            ("label", TypeExpr::base()),
            ("next", TypeExpr::set_of(TypeExpr::class("Vnode"))),
        ]),
    )])
    .unwrap();
    let mut rows = Vec::new();
    for n in [4usize, 16, 64, 256] {
        // Build a ring of n persons, each pointing to the next — a deeply
        // cyclic family of pure values.
        let mut vinst = VInstance::new(&schema);
        let slots: Vec<_> = (0..n).map(|_| vinst.forest.reserve()).collect();
        for i in 0..n {
            let label = vinst
                .forest
                .add_const(iql_model::Constant::str(&format!("p{i}")));
            let next = vinst.forest.add_set([slots[(i + 1) % n]]);
            vinst.forest.set_node(
                slots[i],
                iql_vtree::Node::Tuple(
                    [("label", label), ("next", next)]
                        .map(|(a, id)| (iql_model::AttrName::new(a), id))
                        .into(),
                ),
            );
            vinst.add(ClassName::new("Vnode"), slots[i]);
        }
        vinst.validate(&schema).unwrap();
        let ((obj, _), t_phi) = timed(|| phi(&schema, &vinst).unwrap());
        let (back, t_psi) = timed(|| psi(&obj).unwrap());
        let (equal, t_eq) = timed(|| vinstances_equal(&back, &vinst));
        assert!(equal, "ψ(φ(I)) = I at n={n}");
        rows.push(Row {
            n,
            cells: vec![
                ("phi".into(), t_phi.as_secs_f64(), Some(obj.objects().len())),
                ("psi".into(), t_psi.as_secs_f64(), Some(back.size())),
                (
                    "bisim-eq".into(),
                    t_eq.as_secs_f64(),
                    Some(usize::from(equal)),
                ),
            ],
        });
    }
    print_table("φ/ψ roundtrip over n-rings of mutual references", &rows);
    println!("shape check: near-linear-with-log growth; every roundtrip exact (Prop 7.1.4)");
}

// ---------------------------------------------------------------------
// E14 — Propositions 2.2.1/6.1: intersection reduction & elimination
// ---------------------------------------------------------------------

fn random_type(depth: usize, rng: &mut impl rand::Rng) -> TypeExpr {
    use TypeExpr as T;
    if depth == 0 {
        return match rng.gen_range(0..3) {
            0 => T::base(),
            1 => T::class(["Ca", "Cb"][rng.gen_range(0..2usize)]),
            _ => T::empty(),
        };
    }
    match rng.gen_range(0..5) {
        0 => random_type(0, rng),
        1 => T::set_of(random_type(depth - 1, rng)),
        2 => T::tuple([
            ("f1", random_type(depth - 1, rng)),
            ("f2", random_type(depth - 1, rng)),
        ]),
        3 => T::union(random_type(depth - 1, rng), random_type(depth - 1, rng)),
        _ => T::inter(random_type(depth - 1, rng), random_type(depth - 1, rng)),
    }
}

fn e14_type_normalization() {
    println!("\n== E14: Prop 2.2.1 — intersection reduction & elimination ==");
    use iql_model::types::{ClassMap, EnumUniverse};
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    let mut checked = 0usize;
    let mut agreed = 0usize;
    // A small disjoint universe to sample membership against.
    let mut cm = ClassMap::default();
    cm.classes
        .insert(ClassName::new("Ca"), [iql_model::Oid::from_raw(1)].into());
    cm.classes
        .insert(ClassName::new("Cb"), [iql_model::Oid::from_raw(2)].into());
    let consts = vec![iql_model::Constant::int(0), iql_model::Constant::int(1)];
    for _ in 0..500 {
        let t = random_type(3, &mut rng);
        let free = t.intersection_free_disjoint();
        assert!(free.is_intersection_free());
        let reduced = t.intersection_reduce();
        assert!(reduced.is_intersection_reduced());
        // Sample membership agreement over the enumerable fragment.
        let u = EnumUniverse {
            constants: &consts,
            classes: &cm,
            budget: 4096,
        };
        let probe = TypeExpr::union(
            TypeExpr::union(TypeExpr::base(), TypeExpr::class("Ca")),
            TypeExpr::union(
                TypeExpr::class("Cb"),
                TypeExpr::set_of(TypeExpr::union(TypeExpr::base(), TypeExpr::class("Ca"))),
            ),
        );
        if let Ok(samples) = probe.enumerate(&u) {
            checked += 1;
            let ok = samples.iter().all(|v| {
                t.member(v, &cm) == free.member(v, &cm)
                    && t.member(v, &cm) == reduced.member(v, &cm)
            });
            if ok {
                agreed += 1;
            }
        }
    }
    println!("{agreed}/{checked} random types: normal forms agree with the original on all sampled values");
    assert_eq!(agreed, checked);
}

// ---------------------------------------------------------------------
// E15 — Theorem 7.1.5: IQLv on value-based instances
// ---------------------------------------------------------------------

fn e15_iqlv() {
    println!("\n== E15: Theorem 7.1.5 — IQLv = ψ ∘ IQL ∘ φ ==");
    use iql_vtree::{run_on_values, VInstance, VSchema};
    let schema = VSchema::new([(
        ClassName::new("Vnode"),
        TypeExpr::tuple([
            ("label", TypeExpr::base()),
            ("next", TypeExpr::set_of(TypeExpr::class("Vnode"))),
        ]),
    )])
    .unwrap();
    // Copy nodes with a successor into a second class, purely value-based.
    let unit = iql_core::parser::parse_unit(
        r#"
        schema {
          class Vnode: [label: D, next: {Vnode}];
          class Vbusy: [label: D, next: {Vnode}];
          relation Has: [p: Vnode, s: Vbusy];
        }
        program {
          input Vnode;
          output Vbusy, Vnode;
          stage {
            Has(p, s) :- Vnode(p), p^ = [label: n, next: F], F != {};
          }
          stage {
            s^ = p^ :- Has(p, s);
          }
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut vinst = VInstance::new(&schema);
    // One self-loop node and one sink.
    let loop_slot = vinst.forest.reserve();
    let l1 = vinst.forest.add_const(iql_model::Constant::str("loop"));
    let n1 = vinst.forest.add_set([loop_slot]);
    vinst.forest.set_node(
        loop_slot,
        iql_vtree::Node::Tuple(
            [("label", l1), ("next", n1)]
                .map(|(a, id)| (iql_model::AttrName::new(a), id))
                .into(),
        ),
    );
    let l2 = vinst.forest.add_const(iql_model::Constant::str("sink"));
    let n2 = vinst.forest.add_set([]);
    let sink = vinst.forest.add_tuple([("label", l2), ("next", n2)]);
    vinst.add(ClassName::new("Vnode"), loop_slot);
    vinst.add(ClassName::new("Vnode"), sink);
    vinst.validate(&schema).unwrap();

    let out = run_on_values(&prog, &schema, &vinst, &bench_config()).unwrap();
    let busy = out.classes[&ClassName::new("Vbusy")].len();
    println!("Vbusy values: {busy} (expected 1: only the self-loop node has a successor)");
    assert_eq!(busy, 1);
    println!("oids served purely as language primitives — none appear in the value-based output");
}

// ---------------------------------------------------------------------
// E16 — Proposition 4.2.2: the generated flattening program
// ---------------------------------------------------------------------

fn e16_flattener() {
    println!("\n== E16: Prop 4.2.2 — schema-driven flattener, generated as IQL ==");
    use iql_core::encode::{decode, encode, flat_schema, generate_flattener};
    let cfg = bench_config();
    let mut rows = Vec::new();
    for n in [10usize, 30, 100] {
        let enc_prog_schema = iql_model::SchemaBuilder::new()
            .relation(
                "E",
                TypeExpr::tuple([("s", TypeExpr::base()), ("d", TypeExpr::base())]),
            )
            .build()
            .unwrap();
        let prog = generate_flattener(&enc_prog_schema).unwrap();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for (s, d) in random_digraph(n, 2 * n, 5) {
            input
                .insert_unchecked(
                    RelName::new("E"),
                    OValue::tuple([("s", OValue::str(&s)), ("d", OValue::str(&d))]),
                )
                .unwrap();
        }
        let (out, t_prog) = timed_run(&prog, &input, &cfg);
        let flat_view = out.output.project(&Arc::new(flat_schema())).unwrap();
        let (native, t_native) = timed(|| encode(&input).unwrap());
        let back = decode(&flat_view, input.schema()).unwrap();
        assert!(are_o_isomorphic(&back, &input), "decode ∘ flattener = id");
        rows.push(Row {
            n,
            cells: vec![
                (
                    "iql-flatten".into(),
                    t_prog.as_secs_f64(),
                    Some(flat_view.fact_count()),
                ),
                (
                    "native-encode".into(),
                    t_native.as_secs_f64(),
                    Some(native.fact_count()),
                ),
            ],
        });
    }
    print_table(
        "flattening a binary relation (n nodes, 2n edges); counts = flat facts",
        &rows,
    );
    println!("shape check: the generated IQL program and the native encoder agree up to decode;");
    println!("  the Genesis and union-type schemas are covered by unit tests (encode::tests)");
}

// ---------------------------------------------------------------------
// E17 — parallel evaluation ablation (both engines)
// ---------------------------------------------------------------------

fn e17_parallel_ablation() {
    println!("\n== E17: parallel rule evaluation — worker-count ablation ==");
    let prog = parallel_join_program();
    let mut rows = Vec::new();
    for n in [60usize, 120, 240] {
        let edges = random_digraph(n, 4 * n, 11);
        let input = edge_instance(&prog, "Edge", ("src", "dst"), &edges);
        let mut cells = Vec::new();
        let mut baseline: Option<iql_core::eval::EvalOutput> = None;
        for threads in [1usize, 2, 4, 8] {
            let cfg = bench_config().to_builder().threads(threads).build();
            let (out, t) = timed_run(&prog, &input, &cfg);
            cells.push((format!("iql-t{threads}"), t.as_secs_f64(), None));
            match &baseline {
                None => baseline = Some(out),
                Some(b) => {
                    assert_eq!(
                        b.full.ground_facts(),
                        out.full.ground_facts(),
                        "parallel output differs at {threads} threads"
                    );
                    assert_eq!(
                        b.report.counters(),
                        out.report.counters(),
                        "report drift at {threads} threads"
                    );
                }
            }
        }
        rows.push(Row { n, cells });
    }
    print_table(
        "parallel_join_program, random digraphs (n nodes, 4n edges)",
        &rows,
    );

    let dl =
        iql_datalog::parse_program("Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).")
            .unwrap();
    let mut rows = Vec::new();
    for n in [40usize, 80, 160] {
        let edges = random_digraph(n, 2 * n, 3);
        let mut db = iql_datalog::Database::new();
        for (s, d) in &edges {
            db.insert(
                "Edge",
                vec![iql_model::Constant::str(s), iql_model::Constant::str(d)],
            )
            .unwrap();
        }
        let mut cells = Vec::new();
        let mut baseline = None;
        for threads in [1usize, 2, 4, 8] {
            let ((out, _), t) = timed(|| {
                iql_datalog::eval_with(&dl, &db, iql_datalog::Strategy::SemiNaive, threads).unwrap()
            });
            match &baseline {
                None => baseline = Some(out),
                Some(b) => assert_eq!(*b, out, "datalog drift at {threads} threads"),
            }
            cells.push((format!("dl-t{threads}"), t.as_secs_f64(), None));
        }
        rows.push(Row { n, cells });
    }
    print_table("datalog semi-naive TC (n nodes, 2n edges)", &rows);
    println!("shape check: every thread count yields the bit-identical instance (same oids);");
    println!("  speedup appears once the per-step search work dominates the merge");
}
