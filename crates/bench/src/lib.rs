//! Workload generators and experiment drivers shared by the Criterion
//! benches and the table-printing `harness` binary.
//!
//! Each paper experiment (see `DESIGN.md` §4 and `EXPERIMENTS.md`) has a
//! driver here returning plain measurement structs; benches wrap drivers in
//! Criterion, the harness prints them as tables.

pub mod workloads;

pub use workloads::*;

use iql_core::eval::{run, EvalConfig, EvalOutput};
use iql_core::Program;
use iql_model::{Instance, OValue, RelName};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default evaluation limits for experiments (generous enumeration budget
/// for the powerset workloads).
pub fn bench_config() -> EvalConfig {
    EvalConfig::builder()
        .max_steps(100_000)
        .enum_budget(1 << 22)
        .max_facts(50_000_000)
        .build()
}

/// Builds an input instance holding one binary relation of string pairs.
pub fn edge_instance(
    prog: &Program,
    rel: &str,
    attrs: (&str, &str),
    edges: &[(String, String)],
) -> Instance {
    let mut input = Instance::new(Arc::clone(&prog.input));
    let r = RelName::new(rel);
    for (s, d) in edges {
        input
            .insert_unchecked(
                r,
                OValue::tuple([(attrs.0, OValue::str(s)), (attrs.1, OValue::str(d))]),
            )
            .expect("relation declared");
    }
    input
}

/// Builds the `skewed_join_program` input instance from its three tables
/// (see [`workloads::skewed_join_tables`]).
pub fn skewed_join_instance(
    prog: &Program,
    big: &[(String, String)],
    mid: &[(String, String)],
    tiny: &[(String, String)],
) -> Instance {
    let mut input = Instance::new(Arc::clone(&prog.input));
    for (rel, (a1, a2), rows) in [
        ("Big", ("k", "v"), big),
        ("Mid", ("k", "w"), mid),
        ("Tiny", ("w", "t"), tiny),
    ] {
        let r = RelName::new(rel);
        for (x, y) in rows {
            input
                .insert_unchecked(
                    r,
                    OValue::tuple([(a1, OValue::str(x)), (a2, OValue::str(y))]),
                )
                .expect("relation declared");
        }
    }
    input
}

/// Builds an input instance holding one unary relation of string values.
pub fn unary_instance(prog: &Program, rel: &str, attr: &str, values: &[String]) -> Instance {
    let mut input = Instance::new(Arc::clone(&prog.input));
    let r = RelName::new(rel);
    for v in values {
        input
            .insert_unchecked(r, OValue::tuple([(attr, OValue::str(v))]))
            .expect("relation declared");
    }
    input
}

/// Times one program run, returning the output and wall time.
pub fn timed_run(prog: &Program, input: &Instance, cfg: &EvalConfig) -> (EvalOutput, Duration) {
    let start = Instant::now();
    let out = run(prog, input, cfg).expect("experiment program runs");
    (out, start.elapsed())
}

/// Times an arbitrary closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// One row of a scaling table.
#[derive(Debug, Clone)]
pub struct Row {
    /// The size parameter (n).
    pub n: usize,
    /// Labelled measurements: (label, seconds, optional count).
    pub cells: Vec<(String, f64, Option<usize>)>,
}

/// Prints a scaling table with aligned columns.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    // Header from the first row's labels.
    print!("{:>8}", "n");
    for (label, _, _) in &rows[0].cells {
        print!("  {label:>18}");
    }
    println!();
    for row in rows {
        print!("{:>8}", row.n);
        for (_, secs, count) in &row.cells {
            match count {
                Some(c) => print!("  {:>10.4}s {c:>6}", secs),
                None => print!("  {:>17.4}s", secs),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql_core::programs::transitive_closure_program;

    #[test]
    fn timed_run_produces_output() {
        let prog = transitive_closure_program();
        let edges = workloads::chain(5, "n");
        let input = edge_instance(&prog, "Edge", ("src", "dst"), &edges);
        let (out, d) = timed_run(&prog, &input, &bench_config());
        assert_eq!(out.output.relation(RelName::new("Tc")).unwrap().len(), 15);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn print_table_smoke() {
        print_table(
            "smoke",
            &[Row {
                n: 10,
                cells: vec![("x".into(), 0.5, Some(3))],
            }],
        );
    }
}
