//! Synthetic workload generators.
//!
//! The paper has no datasets (it is a theory paper); these generators
//! produce the graph/relation shapes its examples and theorems quantify
//! over: chains and random digraphs for transitive closure and the
//! Example-1.2 transformation, grouped key/value pairs for nest/unnest, and
//! small universes for the exponential powerset workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A chain `p0 → p1 → … → pn` (n edges).
pub fn chain(n: usize, prefix: &str) -> Vec<(String, String)> {
    (0..n)
        .map(|i| (format!("{prefix}{i}"), format!("{prefix}{}", i + 1)))
        .collect()
}

/// A directed cycle over `n` nodes.
pub fn cycle(n: usize, prefix: &str) -> Vec<(String, String)> {
    (0..n)
        .map(|i| (format!("{prefix}{i}"), format!("{prefix}{}", (i + 1) % n)))
        .collect()
}

/// A random simple digraph with `n` nodes and (about) `m` distinct edges,
/// deterministic in `seed`.
pub fn random_digraph(n: usize, m: usize, seed: u64) -> Vec<(String, String)> {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    let cap = m.min(n * (n - 1));
    let mut attempts = 0usize;
    while edges.len() < cap && attempts < cap * 20 {
        attempts += 1;
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            edges.insert((s, d));
        }
    }
    edges
        .into_iter()
        .map(|(s, d)| (format!("v{s}"), format!("v{d}")))
        .collect()
}

/// `keys` groups of `per_key` values, flattened to (key, value) pairs — the
/// nest/unnest workload.
pub fn grouped_pairs(keys: usize, per_key: usize) -> Vec<(String, String)> {
    let mut out = Vec::with_capacity(keys * per_key);
    for k in 0..keys {
        for v in 0..per_key {
            out.push((format!("k{k}"), format!("w{k}_{v}")));
        }
    }
    out
}

/// The skewed three-relation join workload behind `skewed_join_program`:
/// `Big` holds `keys × fanout` tuples, `Mid` maps every key to one join
/// value, and `Tiny` keeps only `survivors` of those values — so a plan
/// that scans `Big` first discards almost everything at `Tiny`, while a
/// plan that starts from `Tiny` touches `survivors × fanout` tuples.
#[allow(clippy::type_complexity)]
pub fn skewed_join_tables(
    keys: usize,
    fanout: usize,
    survivors: usize,
) -> (
    Vec<(String, String)>,
    Vec<(String, String)>,
    Vec<(String, String)>,
) {
    let big = (0..keys)
        .flat_map(|k| (0..fanout).map(move |v| (format!("k{k}"), format!("v{k}_{v}"))))
        .collect();
    let mid = (0..keys)
        .map(|k| (format!("k{k}"), format!("w{k}")))
        .collect();
    let tiny = (0..survivors.min(keys))
        .map(|k| (format!("w{k}"), format!("t{k}")))
        .collect();
    (big, mid, tiny)
}

/// A universe of `n` distinct constants — the powerset workload.
pub fn universe(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("d{i}")).collect()
}

/// A layered DAG: `layers` layers of `width` nodes, each node wired to
/// `fanout` random nodes of the next layer. Used for stratified-negation
/// and reachability workloads.
pub fn layered_dag(layers: usize, width: usize, fanout: usize, seed: u64) -> Vec<(String, String)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for l in 0..layers.saturating_sub(1) {
        for w in 0..width {
            let mut targets = BTreeSet::new();
            while targets.len() < fanout.min(width) {
                targets.insert(rng.gen_range(0..width));
            }
            for t in targets {
                out.push((format!("l{l}_{w}"), format!("l{}_{t}", l + 1)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_and_cycle_shapes() {
        assert_eq!(chain(3, "x").len(), 3);
        let c = cycle(4, "y");
        assert_eq!(c.len(), 4);
        assert_eq!(c[3].1, "y0");
    }

    #[test]
    fn random_digraph_is_deterministic_and_simple() {
        let a = random_digraph(10, 30, 42);
        let b = random_digraph(10, 30, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        for (s, d) in &a {
            assert_ne!(s, d, "no self loops");
        }
        let set: BTreeSet<_> = a.iter().collect();
        assert_eq!(set.len(), a.len(), "no duplicate edges");
    }

    #[test]
    fn grouped_pairs_shape() {
        let g = grouped_pairs(3, 4);
        assert_eq!(g.len(), 12);
        assert!(g.iter().filter(|(k, _)| k == "k1").count() == 4);
    }

    #[test]
    fn skewed_join_tables_shape() {
        let (big, mid, tiny) = skewed_join_tables(10, 3, 2);
        assert_eq!(big.len(), 30);
        assert_eq!(mid.len(), 10);
        assert_eq!(tiny.len(), 2);
        assert!(tiny.iter().all(|(w, _)| w == "w0" || w == "w1"));
    }

    #[test]
    fn layered_dag_shape() {
        let d = layered_dag(3, 4, 2, 7);
        assert_eq!(d.len(), 2 * 4 * 2);
        assert!(d
            .iter()
            .all(|(s, _)| s.starts_with("l0") || s.starts_with("l1")));
    }
}
