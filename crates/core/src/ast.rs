//! Abstract syntax of IQL programs (Section 3.1).
//!
//! A program `G(S, Sin, Sout)` is a finite set of rules over a schema `S`,
//! together with input and output projections. Terms, literals, and rules
//! follow the paper's definitions, with the engineering extensions the paper
//! itself sanctions:
//!
//! * constants in terms (Remark 3.1.1);
//! * sequential composition `;` as a first-class *stage* list (Section 3.4 —
//!   composition is definable with negation, so stages are a shorthand);
//! * the IQL⁺ `choose` literal (Section 4.4);
//! * IQL\* deletion heads (Section 4.5).

use iql_model::{AttrName, ClassName, Constant, RelName, Schema, TypeExpr};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A variable name. Variables are program-scoped identifiers; each carries a
/// type determined by declaration or inference (Section 3.3).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarName(Arc<str>);

impl VarName {
    /// Makes a variable name.
    pub fn new(s: &str) -> Self {
        VarName(Arc::from(s))
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for VarName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for VarName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for VarName {
    fn from(s: &str) -> Self {
        VarName::new(s)
    }
}

/// A term (Section 3.1). Every term has a type; typing is computed by the
/// checker and stored per-rule in [`Rule::var_types`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A variable `x`.
    Var(VarName),
    /// A constant (extension per Remark 3.1.1).
    Const(Constant),
    /// A relation name used as a set term (`R` has type `{T(R)}`).
    Rel(RelName),
    /// A class name used as a set term (`P` has type `{P}`).
    Class(ClassName),
    /// `x̂` — dereference of a class-typed variable; has type `T(P)`.
    Deref(VarName),
    /// A set term `{t1, …, tk}` (possibly empty).
    Set(Vec<Term>),
    /// A tuple term `[A1: t1, …, Ak: tk]` (possibly empty).
    Tuple(BTreeMap<AttrName, Term>),
}

impl Term {
    /// A variable term.
    pub fn var<V: Into<VarName>>(v: V) -> Term {
        Term::Var(v.into())
    }

    /// A dereference term `x̂`.
    pub fn deref<V: Into<VarName>>(v: V) -> Term {
        Term::Deref(v.into())
    }

    /// A string-constant term.
    pub fn str(s: &str) -> Term {
        Term::Const(Constant::str(s))
    }

    /// An integer-constant term.
    pub fn int(i: i64) -> Term {
        Term::Const(Constant::int(i))
    }

    /// A tuple term from pairs.
    pub fn tuple<I, A>(fields: I) -> Term
    where
        I: IntoIterator<Item = (A, Term)>,
        A: Into<AttrName>,
    {
        Term::Tuple(fields.into_iter().map(|(a, t)| (a.into(), t)).collect())
    }

    /// A set term.
    pub fn set<I: IntoIterator<Item = Term>>(elems: I) -> Term {
        Term::Set(elems.into_iter().collect())
    }

    /// All variables occurring in the term (including under `Deref`).
    pub fn vars(&self, out: &mut std::collections::BTreeSet<VarName>) {
        match self {
            Term::Var(v) | Term::Deref(v) => {
                out.insert(v.clone());
            }
            Term::Const(_) | Term::Rel(_) | Term::Class(_) => {}
            Term::Set(elems) => {
                for t in elems {
                    t.vars(out);
                }
            }
            Term::Tuple(fields) => {
                for t in fields.values() {
                    t.vars(out);
                }
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Rel(r) => write!(f, "{r}"),
            Term::Class(p) => write!(f, "{p}"),
            Term::Deref(v) => write!(f, "{v}^"),
            Term::Set(elems) => {
                write!(f, "{{")?;
                for (i, t) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
            Term::Tuple(fields) => {
                write!(f, "[")?;
                for (i, (a, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}: {t}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A body literal (Section 3.1), plus the IQL⁺ `choose` marker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Literal {
    /// `t1(t2)` (positive) or `¬t1(t2)` (negative): membership of `t2` in
    /// the set denoted by `t1`.
    Member {
        /// The set term `t1` (of type `{t}`).
        set: Term,
        /// The element term `t2` (of type `t`).
        elem: Term,
        /// `false` for `¬t1(t2)`.
        positive: bool,
    },
    /// `t1 = t2` (positive) or `t1 ≠ t2` (negative). Positive equalities may
    /// coerce across union types (rule-typing condition 2, Section 3.1).
    Eq {
        /// Left term.
        left: Term,
        /// Right term.
        right: Term,
        /// `false` for `t1 ≠ t2`.
        positive: bool,
    },
    /// IQL⁺'s `choose` (Section 4.4): head-only variables of this rule draw
    /// from *existing* objects (one generic choice) instead of inventing.
    Choose,
}

impl Literal {
    /// Positive membership `set(elem)`.
    pub fn member(set: Term, elem: Term) -> Literal {
        Literal::Member {
            set,
            elem,
            positive: true,
        }
    }

    /// Negative membership `¬set(elem)`.
    pub fn not_member(set: Term, elem: Term) -> Literal {
        Literal::Member {
            set,
            elem,
            positive: false,
        }
    }

    /// Equality `t1 = t2`.
    pub fn eq(left: Term, right: Term) -> Literal {
        Literal::Eq {
            left,
            right,
            positive: true,
        }
    }

    /// Inequality `t1 ≠ t2`.
    pub fn neq(left: Term, right: Term) -> Literal {
        Literal::Eq {
            left,
            right,
            positive: false,
        }
    }

    /// All variables occurring in the literal.
    pub fn vars(&self, out: &mut std::collections::BTreeSet<VarName>) {
        match self {
            Literal::Member { set, elem, .. } => {
                set.vars(out);
                elem.vars(out);
            }
            Literal::Eq { left, right, .. } => {
                left.vars(out);
                right.vars(out);
            }
            Literal::Choose => {}
        }
    }

    /// Is the literal positive (usable to bind variables)?
    pub fn is_positive(&self) -> bool {
        match self {
            Literal::Member { positive, .. } | Literal::Eq { positive, .. } => *positive,
            Literal::Choose => true,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Member {
                set,
                elem,
                positive,
            } => {
                if !positive {
                    write!(f, "not ")?;
                }
                write!(f, "{set}({elem})")
            }
            Literal::Eq {
                left,
                right,
                positive,
            } => {
                write!(f, "{left} {} {right}", if *positive { "=" } else { "!=" })
            }
            Literal::Choose => write!(f, "choose"),
        }
    }
}

/// A rule head — a *fact* (Section 3.1), or an IQL\* deletion (Section 4.5).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Head {
    /// `R(t)` — derive a relation fact.
    Rel(RelName, Term),
    /// `P(x)` — derive a class fact. With `x` head-only this is pure
    /// invention into `P`; with `x` from the body it is a (trivial)
    /// membership assertion.
    Class(ClassName, VarName),
    /// `x̂(t)` — add `t` to the set value of the oid bound to `x`
    /// (set-valued classes only).
    SetMember(VarName, Term),
    /// `x̂ = t` — *weak assignment*: define the value of the oid bound to
    /// `x`, only if currently undefined and uniquely derived this step
    /// (condition (†), Section 3.2).
    Assign(VarName, Term),
    /// `del R(t)` — IQL\* deletion of a relation fact.
    DeleteRel(RelName, Term),
    /// `del P(x)` — IQL\* deletion of the oid bound to `x` (with cascade).
    DeleteOid(ClassName, VarName),
    /// `del x̂(t)` — IQL\* removal of a member from a set-valued oid.
    DeleteSetMember(VarName, Term),
}

impl Head {
    /// All variables occurring in the head.
    pub fn vars(&self, out: &mut std::collections::BTreeSet<VarName>) {
        match self {
            Head::Rel(_, t) | Head::DeleteRel(_, t) => t.vars(out),
            Head::Class(_, v) | Head::DeleteOid(_, v) => {
                out.insert(v.clone());
            }
            Head::SetMember(v, t) | Head::Assign(v, t) | Head::DeleteSetMember(v, t) => {
                out.insert(v.clone());
                t.vars(out);
            }
        }
    }

    /// Is this a deletion head (IQL\*)?
    pub fn is_deletion(&self) -> bool {
        matches!(
            self,
            Head::DeleteRel(..) | Head::DeleteOid(..) | Head::DeleteSetMember(..)
        )
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Head::Rel(r, t) => write!(f, "{r}({t})"),
            Head::Class(p, v) => write!(f, "{p}({v})"),
            Head::SetMember(v, t) => write!(f, "{v}^({t})"),
            Head::Assign(v, t) => write!(f, "{v}^ = {t}"),
            Head::DeleteRel(r, t) => write!(f, "del {r}({t})"),
            Head::DeleteOid(p, v) => write!(f, "del {p}({v})"),
            Head::DeleteSetMember(v, t) => write!(f, "del {v}^({t})"),
        }
    }
}

/// A rule `L ← L1, …, Lk` with its (declared or inferred) variable typing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head fact.
    pub head: Head,
    /// The body literals, in source order.
    pub body: Vec<Literal>,
    /// Types of all variables in the rule (explicit `var` declarations
    /// merged with inference; complete after type checking).
    pub var_types: BTreeMap<VarName, TypeExpr>,
}

impl Rule {
    /// A rule with no explicit variable declarations.
    pub fn new(head: Head, body: Vec<Literal>) -> Rule {
        Rule {
            head,
            body,
            var_types: BTreeMap::new(),
        }
    }

    /// Adds an explicit variable typing (overrides inference).
    pub fn with_var<V: Into<VarName>>(mut self, v: V, t: TypeExpr) -> Rule {
        self.var_types.insert(v.into(), t);
        self
    }

    /// Variables occurring in the body.
    pub fn body_vars(&self) -> std::collections::BTreeSet<VarName> {
        let mut out = std::collections::BTreeSet::new();
        for l in &self.body {
            l.vars(&mut out);
        }
        out
    }

    /// Variables occurring in the head but not the body — the *invention*
    /// variables (they must have class type, rule condition 3).
    pub fn invention_vars(&self) -> std::collections::BTreeSet<VarName> {
        let body = self.body_vars();
        let mut head = std::collections::BTreeSet::new();
        self.head.vars(&mut head);
        head.difference(&body).cloned().collect()
    }

    /// Does the body contain `choose`?
    pub fn has_choose(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Choose))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ";")
    }
}

/// One stage of a program: a rule set evaluated to its inflationary fixpoint
/// before the next stage starts (the `;` composition of Section 3.4).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Stage {
    /// The rules of this stage.
    pub rules: Vec<Rule>,
}

impl Stage {
    /// A stage from rules.
    pub fn new(rules: Vec<Rule>) -> Stage {
        Stage { rules }
    }
}

/// A full program `G(S, Sin, Sout)` (Section 3): stages over schema `S`,
/// with input and output projections.
#[derive(Clone, Debug)]
pub struct Program {
    /// The full schema `S` (inputs, outputs, and temporaries).
    pub schema: Arc<Schema>,
    /// The input projection `Sin`.
    pub input: Arc<Schema>,
    /// The output projection `Sout`.
    pub output: Arc<Schema>,
    /// Sequentially composed stages.
    pub stages: Vec<Stage>,
}

impl Program {
    /// All rules across all stages.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.stages.iter().flat_map(|s| s.rules.iter())
    }

    /// Does any rule use `choose` (IQL⁺)?
    pub fn uses_choose(&self) -> bool {
        self.rules().any(Rule::has_choose)
    }

    /// Does any rule delete (IQL\*)?
    pub fn uses_deletion(&self) -> bool {
        self.rules().any(|r| r.head.is_deletion())
    }
}

impl Program {
    /// Renders the program (schema, input/output declarations, stages, and
    /// explicit `var` typings) as parseable IQL source — the inverse of
    /// [`crate::parser::parse_unit`] up to formatting.
    pub fn to_source(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.schema);
        let _ = writeln!(s, "program {{");
        let inputs: Vec<String> = self
            .input
            .relations()
            .map(|r| r.to_string())
            .chain(self.input.classes().map(|c| c.to_string()))
            .collect();
        if !inputs.is_empty() {
            let _ = writeln!(s, "  input {};", inputs.join(", "));
        }
        let outputs: Vec<String> = self
            .output
            .relations()
            .map(|r| r.to_string())
            .chain(self.output.classes().map(|c| c.to_string()))
            .collect();
        if !outputs.is_empty() {
            let _ = writeln!(s, "  output {};", outputs.join(", "));
        }
        for stage in &self.stages {
            let _ = writeln!(s, "  stage {{");
            for r in &stage.rules {
                // Emit the (checked) variable typings explicitly so the
                // reparse needs no inference.
                if !r.var_types.is_empty() {
                    let decls: Vec<String> = r
                        .var_types
                        .iter()
                        .map(|(v, t)| format!("{v}: {t}"))
                        .collect();
                    let _ = writeln!(s, "    var {};", decls.join(", "));
                }
                let _ = writeln!(s, "    {r}");
            }
            let _ = writeln!(s, "  }}");
        }
        let _ = writeln!(s, "}}");
        s
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_collection() {
        let r = Rule::new(
            Head::Rel(
                RelName::new("Rx"),
                Term::tuple([("a", Term::var("x")), ("b", Term::var("p"))]),
            ),
            vec![Literal::member(
                Term::Rel(RelName::new("Sx")),
                Term::var("x"),
            )],
        );
        assert_eq!(r.body_vars().len(), 1);
        let inv = r.invention_vars();
        assert_eq!(inv.len(), 1);
        assert!(inv.contains(&VarName::new("p")));
    }

    #[test]
    fn deref_counts_the_variable() {
        let mut vars = std::collections::BTreeSet::new();
        Term::deref("z").vars(&mut vars);
        assert!(vars.contains(&VarName::new("z")));
    }

    #[test]
    fn display_rule() {
        let r = Rule::new(
            Head::SetMember(VarName::new("z"), Term::var("y")),
            vec![
                Literal::member(
                    Term::Rel(RelName::new("R2")),
                    Term::tuple([("A1", Term::var("x")), ("A2", Term::var("y"))]),
                ),
                Literal::neq(Term::var("x"), Term::var("y")),
            ],
        );
        let s = r.to_string();
        assert!(s.contains("z^(y)"));
        assert!(s.contains("!="));
    }

    #[test]
    fn choose_and_delete_flags() {
        let r1 = Rule::new(
            Head::Class(ClassName::new("Pc"), VarName::new("v")),
            vec![Literal::Choose],
        );
        assert!(r1.has_choose());
        let r2 = Rule::new(
            Head::DeleteRel(RelName::new("Rd"), Term::var("x")),
            vec![Literal::member(
                Term::Rel(RelName::new("Rd")),
                Term::var("x"),
            )],
        );
        assert!(r2.head.is_deletion());
    }
}
