//! A fluent, programmatic builder for IQL programs — the API used by
//! examples, tests, and the benchmark harness (the textual syntax of
//! [`crate::parser`] produces the same [`Program`] values).

use crate::ast::{Program, Rule, Stage};
use crate::error::Result;
use crate::typecheck::check_program;
use iql_model::{ClassName, RelName, Schema};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Builds a [`Program`] over a schema, declaring input/output projections
/// and stages of rules.
pub struct ProgramBuilder {
    schema: Schema,
    input_rels: BTreeSet<RelName>,
    input_classes: BTreeSet<ClassName>,
    output_rels: BTreeSet<RelName>,
    output_classes: BTreeSet<ClassName>,
    stages: Vec<Stage>,
}

impl ProgramBuilder {
    /// Starts a builder over the full program schema `S`.
    pub fn new(schema: Schema) -> Self {
        ProgramBuilder {
            schema,
            input_rels: BTreeSet::new(),
            input_classes: BTreeSet::new(),
            output_rels: BTreeSet::new(),
            output_classes: BTreeSet::new(),
            stages: vec![Stage::default()],
        }
    }

    /// Adds a relation to the input projection `Sin`.
    pub fn input_relation<N: Into<RelName>>(mut self, r: N) -> Self {
        self.input_rels.insert(r.into());
        self
    }

    /// Adds a class to the input projection `Sin`.
    pub fn input_class<N: Into<ClassName>>(mut self, c: N) -> Self {
        self.input_classes.insert(c.into());
        self
    }

    /// Adds a relation to the output projection `Sout`.
    pub fn output_relation<N: Into<RelName>>(mut self, r: N) -> Self {
        self.output_rels.insert(r.into());
        self
    }

    /// Adds a class to the output projection `Sout`.
    pub fn output_class<N: Into<ClassName>>(mut self, c: N) -> Self {
        self.output_classes.insert(c.into());
        self
    }

    /// Appends a rule to the current stage.
    pub fn rule(mut self, r: Rule) -> Self {
        self.stages
            .last_mut()
            .expect("at least one stage")
            .rules
            .push(r);
        self
    }

    /// Starts a new stage (sequential composition `;`).
    pub fn then(mut self) -> Self {
        self.stages.push(Stage::default());
        self
    }

    /// Finishes: projects the input/output schemas, assembles the program,
    /// and runs the type checker (inference included).
    pub fn build(self) -> Result<Program> {
        let schema = Arc::new(self.schema);
        let input = Arc::new(schema.project(&self.input_rels, &self.input_classes)?);
        let output = Arc::new(schema.project(&self.output_rels, &self.output_classes)?);
        let stages: Vec<Stage> = self
            .stages
            .into_iter()
            .filter(|s| !s.rules.is_empty())
            .collect();
        let mut prog = Program {
            schema,
            input,
            output,
            stages,
        };
        check_program(&mut prog)?;
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Head, Literal, Term};
    use crate::eval::{run, EvalConfig};
    use iql_model::{Instance, OValue, SchemaBuilder, TypeExpr};

    /// Example 1.2 end-to-end: transform a graph stored as a binary relation
    /// `R : [A1:D, A2:D]` into the cyclic class representation
    /// `P : [A1:D, A2:{P}]`.
    fn graph_program() -> Program {
        use TypeExpr as T;
        let schema = SchemaBuilder::new()
            .relation("R", T::tuple([("A1", T::base()), ("A2", T::base())]))
            .relation("R0", T::tuple([("A1", T::base())]))
            .relation(
                "Rp",
                T::tuple([
                    ("A1", T::base()),
                    ("A2", T::class("P")),
                    ("A3", T::class("Pp")),
                ]),
            )
            .class(
                "P",
                T::tuple([("A1", T::base()), ("A2", T::set_of(T::class("P")))]),
            )
            .class("Pp", T::set_of(T::class("P")))
            .build()
            .unwrap();

        let r = |n: &str| Term::Rel(RelName::new(n));
        let t2 = |a: Term, b: Term| Term::tuple([("A1", a), ("A2", b)]);
        let t1 = |a: Term| Term::tuple([("A1", a)]);
        let t3 = |a: Term, b: Term, c: Term| Term::tuple([("A1", a), ("A2", b), ("A3", c)]);

        ProgramBuilder::new(schema)
            .input_relation("R")
            .output_class("P")
            // Stage 1: node names.
            .rule(Rule::new(
                Head::Rel(RelName::new("R0"), t1(Term::var("x"))),
                vec![Literal::member(r("R"), t2(Term::var("x"), Term::var("y")))],
            ))
            .rule(Rule::new(
                Head::Rel(RelName::new("R0"), t1(Term::var("x"))),
                vec![Literal::member(r("R"), t2(Term::var("y"), Term::var("x")))],
            ))
            .then()
            // Stage 2: invent two oids per node.
            .rule(Rule::new(
                Head::Rel(
                    RelName::new("Rp"),
                    t3(Term::var("x"), Term::var("p"), Term::var("pp")),
                ),
                vec![Literal::member(r("R0"), t1(Term::var("x")))],
            ))
            .then()
            // Stage 3: group successors through the temporary class Pp.
            .rule(Rule::new(
                Head::SetMember("pp".into(), Term::var("q")),
                vec![
                    Literal::member(r("Rp"), t3(Term::var("x"), Term::var("p"), Term::var("pp"))),
                    Literal::member(r("Rp"), t3(Term::var("y"), Term::var("q"), Term::var("qq"))),
                    Literal::member(r("R"), t2(Term::var("x"), Term::var("y"))),
                ],
            ))
            .then()
            // Stage 4: weak assignment builds the node values.
            .rule(Rule::new(
                Head::Assign(
                    "p".into(),
                    Term::tuple([("A1", Term::var("x")), ("A2", Term::deref("pp"))]),
                ),
                vec![Literal::member(
                    r("Rp"),
                    t3(Term::var("x"), Term::var("p"), Term::var("pp")),
                )],
            ))
            .build()
            .unwrap()
    }

    use iql_model::RelName;

    #[test]
    fn example_1_2_graph_transformation() {
        let prog = graph_program();
        let mut input = Instance::new(Arc::clone(&prog.input));
        let r = RelName::new("R");
        // A 3-cycle a→b→c→a plus an edge a→c.
        for (s, d) in [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")] {
            input
                .insert(
                    r,
                    OValue::tuple([("A1", OValue::str(s)), ("A2", OValue::str(d))]),
                )
                .unwrap();
        }
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        let p = ClassName::new("P");
        let oids: Vec<_> = out.output.class(p).unwrap().iter().copied().collect();
        assert_eq!(oids.len(), 3, "one P-oid per node");
        out.output.validate().unwrap();

        // Reconstruct the successor map by node name.
        let mut succs: std::collections::BTreeMap<String, BTreeSet<String>> = Default::default();
        let name_of: std::collections::BTreeMap<_, _> = oids
            .iter()
            .map(|o| {
                let OValue::Tuple(fields) = out.output.value(*o).unwrap() else {
                    panic!("node value must be a tuple")
                };
                let OValue::Const(c) = &fields[&"A1".into()] else {
                    panic!()
                };
                (*o, c.to_string())
            })
            .collect();
        for o in &oids {
            let OValue::Tuple(fields) = out.output.value(*o).unwrap() else {
                panic!()
            };
            let OValue::Set(kids) = &fields[&"A2".into()] else {
                panic!()
            };
            let names: BTreeSet<String> = kids
                .iter()
                .map(|k| {
                    let OValue::Oid(ko) = k else { panic!() };
                    name_of[ko].clone()
                })
                .collect();
            succs.insert(name_of[o].clone(), names);
        }
        assert_eq!(
            succs[&"\"a\"".to_string()],
            BTreeSet::from(["\"b\"".to_string(), "\"c\"".to_string()])
        );
        assert_eq!(
            succs[&"\"b\"".to_string()],
            BTreeSet::from(["\"c\"".to_string()])
        );
        assert_eq!(
            succs[&"\"c\"".to_string()],
            BTreeSet::from(["\"a\"".to_string()])
        );
    }

    #[test]
    fn determinate_up_to_o_isomorphism() {
        // Theorem 4.1.3: two runs (here: the same run twice — oid draws are
        // deterministic per run, so we instead permute the input insertion
        // order) yield O-isomorphic outputs.
        let prog = graph_program();
        let r = RelName::new("R");
        let edges = [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")];
        let mut i1 = Instance::new(Arc::clone(&prog.input));
        for (s, d) in edges {
            i1.insert(
                r,
                OValue::tuple([("A1", OValue::str(s)), ("A2", OValue::str(d))]),
            )
            .unwrap();
        }
        let mut i2 = Instance::new(Arc::clone(&prog.input));
        for (s, d) in edges.iter().rev() {
            i2.insert(
                r,
                OValue::tuple([("A1", OValue::str(s)), ("A2", OValue::str(d))]),
            )
            .unwrap();
        }
        let o1 = run(&prog, &i1, &EvalConfig::default()).unwrap();
        let o2 = run(&prog, &i2, &EvalConfig::default()).unwrap();
        assert!(iql_model::iso::are_o_isomorphic(&o1.output, &o2.output));
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let prog = graph_program();
        let input = Instance::new(Arc::clone(&prog.input));
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        assert_eq!(out.output.class(ClassName::new("P")).unwrap().len(), 0);
        assert_eq!(out.report.invented, 0);
    }

    use iql_model::ClassName;
    use std::collections::BTreeSet;

    #[test]
    fn unknown_projection_names_are_rejected() {
        let schema = SchemaBuilder::new()
            .relation("Known", TypeExpr::base())
            .build()
            .unwrap();
        let err = ProgramBuilder::new(schema)
            .input_relation("Missing")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("Missing"));
    }

    #[test]
    fn empty_stages_are_dropped() {
        let schema = SchemaBuilder::new()
            .relation("A", TypeExpr::base())
            .relation("B", TypeExpr::base())
            .build()
            .unwrap();
        let prog = ProgramBuilder::new(schema)
            .input_relation("A")
            .output_relation("B")
            .then() // empty stage before any rule
            .rule(Rule::new(
                Head::Rel(RelName::new("B"), Term::var("x")),
                vec![Literal::member(
                    Term::Rel(RelName::new("A")),
                    Term::var("x"),
                )],
            ))
            .then() // trailing empty stage
            .build()
            .unwrap();
        assert_eq!(prog.stages.len(), 1);
    }

    #[test]
    fn builder_runs_type_inference() {
        let schema = SchemaBuilder::new()
            .relation("A", TypeExpr::base())
            .relation("B", TypeExpr::base())
            .build()
            .unwrap();
        let prog = ProgramBuilder::new(schema)
            .input_relation("A")
            .output_relation("B")
            .rule(Rule::new(
                Head::Rel(RelName::new("B"), Term::var("x")),
                vec![Literal::member(
                    Term::Rel(RelName::new("A")),
                    Term::var("x"),
                )],
            ))
            .build()
            .unwrap();
        let rule = &prog.stages[0].rules[0];
        assert_eq!(
            rule.var_types[&crate::ast::VarName::new("x")],
            TypeExpr::Base
        );
    }
}
