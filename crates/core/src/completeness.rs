//! The "completeness up to copy" machinery of Section 4.2.
//!
//! Theorem 4.2.4 shows every dio-transformation is expressible in IQL *up
//! to copy*: instead of one output instance, a program may produce finitely
//! many O-isomorphic copies with pairwise-disjoint oid sets, separated by a
//! fresh relation `R̄` of type `{P1 ∨ … ∨ Pn}` listing each copy's object
//! set (Definition 4.2.3). Theorem 4.3.1 shows the final selection — *copy
//! elimination* — is not expressible in IQL; IQL⁺'s `choose` recovers it
//! (Theorem 4.4.1).
//!
//! This module makes the definition executable:
//!
//! * [`copy_schema`] — builds `S̄`, the schema for copies of `S`;
//! * [`make_copies`] — materializes an *instance with copies* of `I`;
//! * [`check_instance_with_copies`] — verifies the two conditions of
//!   Definition 4.2.3 (ground facts partition into blocks; every block is
//!   an O-isomorphic copy of `I`);
//! * [`eliminate_copies`] — the extra-linguistic selection step (what IQL
//!   itself cannot do): picks one block and projects back to `S`.

use crate::error::{IqlError, Result};
use iql_model::iso::find_o_isomorphism;
use iql_model::{GroundFact, Instance, OValue, Oid, RelName, Schema, TypeExpr};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The base name used for the copy-separating relation `R̄`. When copying
/// an instance that already has a copies relation (copies of copies), a
/// numeric suffix keeps the new one fresh.
pub fn copies_relation() -> RelName {
    RelName::new("CopiesBar")
}

/// A `R̄` name not declared by `s`.
fn fresh_copies_relation(s: &Schema) -> RelName {
    if !s.has_relation(copies_relation()) {
        return copies_relation();
    }
    for k in 2.. {
        let r = RelName::new(&format!("CopiesBar{k}"));
        if !s.has_relation(r) {
            return r;
        }
    }
    unreachable!("unbounded search")
}

/// The copy-separating relation of a schema produced by [`copy_schema`]:
/// the `CopiesBar*`-named relation with the largest suffix.
fn copies_relation_of(s: &Schema) -> Result<RelName> {
    s.relations()
        .filter(|r| {
            let n = r.as_str();
            n.strip_prefix("CopiesBar")
                .is_some_and(|rest| rest.is_empty() || rest.chars().all(|c| c.is_ascii_digit()))
        })
        .max_by_key(|r| (r.as_str().len(), *r))
        .ok_or_else(|| IqlError::Invalid("schema has no copies relation".into()))
}

/// Builds `S̄`: `S` plus the relation `R̄ : {P1 ∨ … ∨ Pn}` (Definition
/// 4.2.3). Errors if `S` has no classes (copies of a pure-relational
/// instance need no separation — Proposition 4.2.7's automatic case).
pub fn copy_schema(s: &Schema) -> Result<Schema> {
    let classes: Vec<_> = s.classes().collect();
    if classes.is_empty() {
        return Err(IqlError::Invalid(
            "copy schemas need at least one class; relational outputs don't need copies (Prop 4.2.7)"
                .into(),
        ));
    }
    let union = TypeExpr::union_all(classes.into_iter().map(TypeExpr::Class));
    let bar = fresh_copies_relation(s);
    let with_bar = Schema::new(
        std::iter::once((bar, TypeExpr::set_of(union)))
            .chain(
                s.relations()
                    .map(|r| (r, s.relation_type(r).expect("declared").clone())),
            )
            .collect::<Vec<_>>(),
        s.classes()
            .map(|c| (c, s.class_type(c).expect("declared").clone()))
            .collect::<Vec<_>>(),
    )?;
    Ok(with_bar)
}

/// Materializes an instance with `k ≥ 1` copies of `original` over
/// [`copy_schema`]: copies are O-isomorphic, their oid sets pairwise
/// disjoint, and `R̄` holds each copy's object set.
pub fn make_copies(original: &Instance, k: usize) -> Result<Instance> {
    if k == 0 {
        return Err(IqlError::Invalid("need at least one copy".into()));
    }
    let bar_schema = Arc::new(copy_schema(original.schema())?);
    let mut out = Instance::new(Arc::clone(&bar_schema));
    let objects: Vec<Oid> = original.objects().into_iter().collect();
    for _ in 0..k {
        // Fresh oids for this copy, drawn from the combined instance so
        // disjointness is automatic.
        let mut map: BTreeMap<Oid, Oid> = BTreeMap::new();
        for &o in &objects {
            let class = original
                .class_of(o)
                .ok_or_else(|| IqlError::Invalid(format!("stray oid {o}")))?;
            let fresh = out.create_oid(class)?;
            map.insert(o, fresh);
        }
        for r in original.schema().relations() {
            for v in original.relation(r)? {
                out.insert_unchecked(r, v.rename_oids(&map))?;
            }
        }
        for (&o, &fresh) in &map {
            if let Some(v) = original.value(o) {
                out.overwrite_value(fresh, v.rename_oids(&map))?;
            }
        }
        let block: OValue = OValue::Set(map.values().map(|o| OValue::Oid(*o)).collect());
        let bar = copies_relation_of(&bar_schema)?;
        out.insert_unchecked(bar, block)?;
    }
    out.validate().map_err(IqlError::Model)?;
    Ok(out)
}

/// Extracts the copy blocks (sets of oids) recorded in `R̄`.
fn blocks(with_copies: &Instance) -> Result<Vec<BTreeSet<Oid>>> {
    let mut out = Vec::new();
    let bar = copies_relation_of(with_copies.schema())?;
    for v in with_copies.relation(bar)? {
        let OValue::Set(elems) = v else {
            return Err(IqlError::Invalid("R̄ must hold sets of oids".into()));
        };
        let mut block = BTreeSet::new();
        for e in elems {
            let OValue::Oid(o) = e else {
                return Err(IqlError::Invalid("R̄ elements must be oids".into()));
            };
            block.insert(*o);
        }
        out.push(block);
    }
    Ok(out)
}

/// Restricts `with_copies` to one block and reprojects onto `schema`.
fn restrict_to_block(
    with_copies: &Instance,
    schema: &Arc<Schema>,
    block: &BTreeSet<Oid>,
) -> Result<Instance> {
    let mut out = Instance::new(Arc::clone(schema));
    for p in schema.classes() {
        for o in with_copies.class(p)? {
            if block.contains(o) {
                out.adopt_oid(p, *o)?;
                if let Some(v) = with_copies.value(*o) {
                    out.overwrite_value(*o, v.clone())?;
                }
            }
        }
    }
    for r in schema.relations() {
        for v in with_copies.relation(r)? {
            let mut oids = BTreeSet::new();
            v.collect_oids(&mut oids);
            if oids.iter().all(|o| block.contains(o)) {
                out.insert_unchecked(r, v.clone())?;
            }
        }
    }
    Ok(out)
}

/// Checks Definition 4.2.3 and returns the number of copies:
///
/// 1. the blocks listed in `R̄` are pairwise disjoint and cover every oid;
/// 2. each block, restricted to `S`, is O-isomorphic to `original`;
/// 3. the `S`-ground-facts of the whole instance are exactly the union of
///    the blocks' ground facts.
pub fn check_instance_with_copies(with_copies: &Instance, original: &Instance) -> Result<usize> {
    let schema = original.schema();
    let blocks = blocks(with_copies)?;
    // Disjointness and coverage.
    let mut seen: BTreeSet<Oid> = BTreeSet::new();
    for b in &blocks {
        for o in b {
            if !seen.insert(*o) {
                return Err(IqlError::Invalid(format!("oid {o} in two copy blocks")));
            }
        }
    }
    let mut class_oids: BTreeSet<Oid> = BTreeSet::new();
    for p in schema.classes() {
        class_oids.extend(with_copies.class(p)?.iter().copied());
    }
    if seen != class_oids {
        return Err(IqlError::Invalid(
            "copy blocks do not cover exactly the instance's oids".into(),
        ));
    }
    // Per-block isomorphism, and ground-fact union.
    let mut union_facts: BTreeSet<GroundFact> = BTreeSet::new();
    for b in &blocks {
        let restricted = restrict_to_block(with_copies, schema, b)?;
        if find_o_isomorphism(&restricted, original).is_none() {
            return Err(IqlError::Invalid(
                "a copy block is not O-isomorphic to the original".into(),
            ));
        }
        union_facts.extend(restricted.ground_facts());
    }
    let bar = copies_relation_of(with_copies.schema())?;
    let s_facts: BTreeSet<GroundFact> = with_copies
        .ground_facts()
        .into_iter()
        .filter(|f| !matches!(f, GroundFact::Rel(r, _) if *r == bar))
        .collect();
    if s_facts != union_facts {
        return Err(IqlError::Invalid(
            "instance facts are not the union of the copies' facts".into(),
        ));
    }
    Ok(blocks.len())
}

/// Copy elimination — the step Theorem 4.3.1 proves inexpressible in IQL.
/// Selects the block whose canonical rendering is smallest (any block works:
/// they are pairwise O-isomorphic) and reprojects onto `schema`.
pub fn eliminate_copies(with_copies: &Instance, schema: &Arc<Schema>) -> Result<Instance> {
    let blocks = blocks(with_copies)?;
    let first = blocks
        .into_iter()
        .min()
        .ok_or_else(|| IqlError::Invalid("no copies to select from".into()))?;
    restrict_to_block(with_copies, schema, &first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql_model::instance::genesis_instance;
    use iql_model::iso::are_o_isomorphic;

    #[test]
    fn copies_of_genesis_verify_and_eliminate() {
        let (genesis, _) = genesis_instance();
        for k in 1..=3usize {
            let with_copies = make_copies(&genesis, k).unwrap();
            assert_eq!(
                check_instance_with_copies(&with_copies, &genesis).unwrap(),
                k
            );
            let one = eliminate_copies(&with_copies, genesis.schema()).unwrap();
            assert!(are_o_isomorphic(&one, &genesis));
        }
    }

    #[test]
    fn copy_schema_shape() {
        let (genesis, _) = genesis_instance();
        let bar = copy_schema(genesis.schema()).unwrap();
        let t = bar.relation_type(copies_relation()).unwrap();
        // {Gen1 ∨ Gen2}
        assert!(matches!(t, TypeExpr::Set(_)));
        assert_eq!(bar.classes().count(), 2);
    }

    #[test]
    fn tampered_copies_are_rejected() {
        let (genesis, _) = genesis_instance();
        let mut with_copies = make_copies(&genesis, 2).unwrap();
        // Damage one copy: drop a relation fact.
        let r = RelName::new("FoundedLineage");
        let victim = with_copies
            .relation(r)
            .unwrap()
            .iter()
            .next()
            .cloned()
            .unwrap();
        with_copies.remove(r, &victim).unwrap();
        assert!(check_instance_with_copies(&with_copies, &genesis).is_err());
    }

    #[test]
    fn relational_schemas_do_not_need_copies() {
        let schema = iql_model::SchemaBuilder::new()
            .relation("Ronly", TypeExpr::base())
            .build()
            .unwrap();
        assert!(copy_schema(&schema).is_err());
    }
}
