//! Control-flow shorthands (Section 3.4).
//!
//! "It is shown in Abiteboul and Vianu \[1988\] that control mechanisms such
//! as composition, if-then-else, and while-statements can be simulated in
//! detDL (using negation and inflationary semantics). These mechanisms can
//! now be used as shorthands." Composition is native ([`crate::ast::Stage`]
//! lists); this module provides the remaining idioms as *rule
//! transformations* over **flag relations** — nullary relations of type
//! `[]` whose only possible fact is the empty tuple, acting as booleans:
//!
//! * [`flag_type`] — the type of a flag relation;
//! * [`set_flag`] — a rule deriving the flag from a condition body;
//! * [`guarded`] — a stage whose rules fire only when a flag is set
//!   (the *then* branch);
//! * [`unless`] — a stage whose rules fire only when it is not
//!   (the *else* branch; sound under stage composition, where the flag is
//!   final before the branch runs).
//!
//! A `while` loop is already inherent to inflationary fixpoints: a stage
//! re-fires as long as its rules derive new facts; conditional loops are
//! expressed by guarding the loop body on a flag the body maintains.

use crate::ast::{Head, Literal, Rule, Stage, Term};
use iql_model::{RelName, TypeExpr};

/// The type of a flag relation: `[]` — the only inhabitant is the empty
/// tuple, so the relation is either `{}` (false) or `{[]}` (true).
pub fn flag_type() -> TypeExpr {
    TypeExpr::unit()
}

/// The fact term for a flag: the empty tuple.
pub fn flag_fact() -> Term {
    Term::tuple(Vec::<(&str, Term)>::new())
}

/// A rule that raises `flag` when `condition` holds.
pub fn set_flag(flag: RelName, condition: Vec<Literal>) -> Rule {
    Rule::new(Head::Rel(flag, flag_fact()), condition)
}

/// Guards every rule of `stage` on `flag` being set (the *then* branch).
pub fn guarded(stage: Stage, flag: RelName) -> Stage {
    transform(stage, flag, true)
}

/// Guards every rule of `stage` on `flag` being **unset** (the *else*
/// branch). Sound when the flag's value is final before this stage runs —
/// which stage composition guarantees when the flag is only derived in
/// earlier stages (stratification by stages).
pub fn unless(stage: Stage, flag: RelName) -> Stage {
    transform(stage, flag, false)
}

fn transform(stage: Stage, flag: RelName, positive: bool) -> Stage {
    Stage::new(
        stage
            .rules
            .into_iter()
            .map(|mut r| {
                let lit = Literal::Member {
                    set: Term::Rel(flag),
                    elem: flag_fact(),
                    positive,
                };
                r.body.insert(0, lit);
                r
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::eval::{run, EvalConfig};
    use iql_model::{Instance, OValue, SchemaBuilder};
    use std::sync::Arc;

    /// If the input contains "trigger", copy A to Out; else copy B to Out.
    fn if_then_else_program() -> crate::ast::Program {
        use TypeExpr as T;
        let schema = SchemaBuilder::new()
            .relation("In", T::base())
            .relation("A", T::base())
            .relation("B", T::base())
            .relation("Out", T::base())
            .relation("Cond", flag_type())
            .build()
            .unwrap();
        let cond = RelName::new("Cond");
        let then_branch = Stage::new(vec![Rule::new(
            Head::Rel(RelName::new("Out"), Term::var("x")),
            vec![Literal::member(
                Term::Rel(RelName::new("A")),
                Term::var("x"),
            )],
        )]);
        let else_branch = Stage::new(vec![Rule::new(
            Head::Rel(RelName::new("Out"), Term::var("x")),
            vec![Literal::member(
                Term::Rel(RelName::new("B")),
                Term::var("x"),
            )],
        )]);

        let mut builder = ProgramBuilder::new(schema)
            .input_relation("In")
            .input_relation("A")
            .input_relation("B")
            .output_relation("Out")
            // Stage 1: evaluate the condition.
            .rule(set_flag(
                cond,
                vec![Literal::member(
                    Term::Rel(RelName::new("In")),
                    Term::str("trigger"),
                )],
            ))
            .then();
        // Stage 2: both branches, complementarily guarded.
        for r in guarded(then_branch, cond).rules {
            builder = builder.rule(r);
        }
        for r in unless(else_branch, cond).rules {
            builder = builder.rule(r);
        }
        builder.build().unwrap()
    }

    fn run_with(input_vals: &[&str]) -> Vec<String> {
        let prog = if_then_else_program();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for v in input_vals {
            input.insert(RelName::new("In"), OValue::str(v)).unwrap();
        }
        input
            .insert(RelName::new("A"), OValue::str("from-A"))
            .unwrap();
        input
            .insert(RelName::new("B"), OValue::str("from-B"))
            .unwrap();
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        out.output
            .relation(RelName::new("Out"))
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect()
    }

    #[test]
    fn if_branch_taken_when_condition_holds() {
        assert_eq!(run_with(&["trigger"]), vec!["\"from-A\"".to_string()]);
    }

    #[test]
    fn else_branch_taken_when_condition_fails() {
        assert_eq!(
            run_with(&["something-else"]),
            vec!["\"from-B\"".to_string()]
        );
    }

    #[test]
    fn flag_relations_are_booleans() {
        // The flag type has exactly one inhabitant.
        let t = flag_type();
        let cm = iql_model::ClassMap::default();
        assert!(t.member(&OValue::unit(), &cm));
        assert!(!t.member(&OValue::empty_set(), &cm));
        assert!(!t.member(&OValue::int(0), &cm));
    }

    #[test]
    fn while_via_inflationary_fixpoint() {
        // "while new nodes are reachable, keep extending" is just the
        // inflationary fixpoint — pinned here as a regression of the idiom.
        use TypeExpr as T;
        let schema = SchemaBuilder::new()
            .relation("Edge", T::tuple([("s", T::base()), ("d", T::base())]))
            .relation("Reach", T::base())
            .build()
            .unwrap();
        let prog = ProgramBuilder::new(schema)
            .input_relation("Edge")
            .output_relation("Reach")
            .rule(Rule::new(
                Head::Rel(RelName::new("Reach"), Term::str("start")),
                vec![],
            ))
            .rule(Rule::new(
                Head::Rel(RelName::new("Reach"), Term::var("y")),
                vec![
                    Literal::member(Term::Rel(RelName::new("Reach")), Term::var("x")),
                    Literal::member(
                        Term::Rel(RelName::new("Edge")),
                        Term::tuple([("s", Term::var("x")), ("d", Term::var("y"))]),
                    ),
                ],
            ))
            .build()
            .unwrap();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for (s, d) in [("start", "m"), ("m", "end"), ("x", "y")] {
            input
                .insert(
                    RelName::new("Edge"),
                    OValue::tuple([("s", OValue::str(s)), ("d", OValue::str(d))]),
                )
                .unwrap();
        }
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        assert_eq!(out.output.relation(RelName::new("Reach")).unwrap().len(), 3);
    }
}
