//! The relational encoding of arbitrary instances (Proposition 4.2.2).
//!
//! The proof of Proposition 4.2.2 starts: *"The instance is first encoded by
//! an IQL program in a relational schema. Oids are invented to denote more
//! structured o-values."* This module materializes that encoding as a data
//! transformation: any instance flattens into the fixed schema
//! [`flat_schema`], in which one class `Node` supplies identifiers for
//! original oids **and** for every distinct composite (tuple/set) o-value,
//! and flat relations record the structure:
//!
//! ```text
//! class Node: [];
//! relation KindTuple:  [node: Node];
//! relation KindSet:    [node: Node];
//! relation TupleField: [parent: Node, attr: D, child: D | Node];
//! relation SetElem:    [parent: Node, elem: D | Node];
//! relation OrigClass:  [node: Node, class: D];     // π, class name as a constant
//! relation RelFact:    [rel: D, value: D | Node];  // ρ
//! relation ValueOf:    [obj: Node, value: D | Node];  // ν
//! ```
//!
//! [`decode`] inverts it exactly (up to O-isomorphism on oids), which the
//! tests verify on the Genesis instance and on cyclic graph instances.
//! Because every structured value becomes a flat identifier, the encoded
//! instance is "essentially relational": the only class has the unit type,
//! so any relationally-complete machinery can now operate on it — the hinge
//! of the paper's completeness argument.

use crate::error::{IqlError, Result};
use iql_model::{
    AttrName, ClassName, Constant, Instance, OValue, Oid, RelName, Schema, SchemaBuilder, TypeExpr,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn node_class() -> ClassName {
    ClassName::new("Node")
}

/// The fixed flat target schema (see module docs).
pub fn flat_schema() -> Schema {
    use TypeExpr as T;
    let node_or_d = || T::union(T::base(), T::class("Node"));
    SchemaBuilder::new()
        .class("Node", T::unit())
        .relation("KindTuple", T::tuple([("node", T::class("Node"))]))
        .relation("KindSet", T::tuple([("node", T::class("Node"))]))
        .relation(
            "TupleField",
            T::tuple([
                ("parent", T::class("Node")),
                ("attr", T::base()),
                ("child", node_or_d()),
            ]),
        )
        .relation(
            "SetElem",
            T::tuple([("parent", T::class("Node")), ("elem", node_or_d())]),
        )
        .relation(
            "OrigClass",
            T::tuple([("node", T::class("Node")), ("class", T::base())]),
        )
        .relation(
            "RelFact",
            T::tuple([("rel", T::base()), ("value", node_or_d())]),
        )
        .relation(
            "ValueOf",
            T::tuple([("obj", T::class("Node")), ("value", node_or_d())]),
        )
        .build()
        .expect("flat schema is well-formed")
}

struct Encoder {
    flat: Instance,
    /// Original oid → node oid.
    oid_node: BTreeMap<Oid, Oid>,
    /// Distinct composite o-value → node oid (values deduplicate).
    value_node: BTreeMap<OValue, Oid>,
}

impl Encoder {
    fn tuple2(a: (&str, OValue), b: (&str, OValue)) -> OValue {
        OValue::tuple([a, b])
    }

    /// Encodes an o-value to its flat representative: constants stay,
    /// oids map to their node, composites get (shared) structure nodes.
    fn enc(&mut self, v: &OValue) -> Result<OValue> {
        match v {
            OValue::Const(c) => Ok(OValue::Const(c.clone())),
            OValue::Oid(o) => self
                .oid_node
                .get(o)
                .map(|n| OValue::Oid(*n))
                .ok_or_else(|| IqlError::Invalid(format!("stray oid {o} during encode"))),
            OValue::Tuple(fields) => {
                if let Some(n) = self.value_node.get(v) {
                    return Ok(OValue::Oid(*n));
                }
                let n = self.flat.create_oid(node_class())?;
                self.value_node.insert(v.clone(), n);
                self.flat.insert_unchecked(
                    RelName::new("KindTuple"),
                    OValue::tuple([("node", OValue::Oid(n))]),
                )?;
                for (a, fv) in fields {
                    let child = self.enc(fv)?;
                    self.flat.insert_unchecked(
                        RelName::new("TupleField"),
                        OValue::tuple([
                            ("parent", OValue::Oid(n)),
                            ("attr", OValue::str(a.as_str())),
                            ("child", child),
                        ]),
                    )?;
                }
                Ok(OValue::Oid(n))
            }
            OValue::Set(elems) => {
                if let Some(n) = self.value_node.get(v) {
                    return Ok(OValue::Oid(*n));
                }
                let n = self.flat.create_oid(node_class())?;
                self.value_node.insert(v.clone(), n);
                self.flat.insert_unchecked(
                    RelName::new("KindSet"),
                    OValue::tuple([("node", OValue::Oid(n))]),
                )?;
                for e in elems {
                    let elem = self.enc(e)?;
                    self.flat.insert_unchecked(
                        RelName::new("SetElem"),
                        Self::tuple2(("parent", OValue::Oid(n)), ("elem", elem)),
                    )?;
                }
                Ok(OValue::Oid(n))
            }
        }
    }
}

/// Flattens an instance into [`flat_schema`] (Proposition 4.2.2's encoding).
pub fn encode(inst: &Instance) -> Result<Instance> {
    let mut enc = Encoder {
        flat: Instance::new(Arc::new(flat_schema())),
        oid_node: BTreeMap::new(),
        value_node: BTreeMap::new(),
    };
    // Nodes for the original oids, tagged with their class.
    for p in inst.schema().classes() {
        for o in inst.class(p)? {
            let n = enc.flat.create_oid(node_class())?;
            enc.oid_node.insert(*o, n);
            enc.flat.insert_unchecked(
                RelName::new("OrigClass"),
                Encoder::tuple2(("node", OValue::Oid(n)), ("class", OValue::str(p.as_str()))),
            )?;
        }
    }
    // ρ: relation facts.
    for r in inst.schema().relations() {
        for v in inst.relation(r)? {
            let value = enc.enc(v)?;
            enc.flat.insert_unchecked(
                RelName::new("RelFact"),
                Encoder::tuple2(("rel", OValue::str(r.as_str())), ("value", value)),
            )?;
        }
    }
    // ν: values of oids.
    for p in inst.schema().classes() {
        for o in inst.class(p)? {
            if let Some(v) = inst.value(*o) {
                let value = enc.enc(v)?;
                let n = enc.oid_node[o];
                enc.flat.insert_unchecked(
                    RelName::new("ValueOf"),
                    Encoder::tuple2(("obj", OValue::Oid(n)), ("value", value)),
                )?;
            }
        }
    }
    enc.flat.validate().map_err(IqlError::Model)?;
    Ok(enc.flat)
}

/// Inverts [`encode`] against the original schema. The result is equal to
/// the original instance up to renaming of oids (tests pin exact equality
/// of the relational parts and O-isomorphism overall).
pub fn decode(flat: &Instance, schema: &Arc<Schema>) -> Result<Instance> {
    let get = |rel: &str| flat.relation(RelName::new(rel));
    let field = |v: &OValue, a: &str| -> Result<OValue> {
        match v {
            OValue::Tuple(fields) => fields
                .get(&AttrName::new(a))
                .cloned()
                .ok_or_else(|| IqlError::Invalid(format!("missing field {a}"))),
            _ => Err(IqlError::Invalid("expected a tuple fact".into())),
        }
    };
    let as_oid = |v: OValue| -> Result<Oid> {
        match v {
            OValue::Oid(o) => Ok(o),
            other => Err(IqlError::Invalid(format!("expected oid, got {other}"))),
        }
    };
    let as_str = |v: OValue| -> Result<String> {
        match v {
            OValue::Const(Constant::Str(s)) => Ok(s.to_string()),
            other => Err(IqlError::Invalid(format!("expected string, got {other}"))),
        }
    };

    let mut out = Instance::new(Arc::clone(schema));
    // Original oids from OrigClass.
    let mut node_oid: BTreeMap<Oid, Oid> = BTreeMap::new();
    for fact in get("OrigClass")? {
        let n = as_oid(field(fact, "node")?)?;
        let class = ClassName::new(&as_str(field(fact, "class")?)?);
        let o = out.create_oid(class)?;
        node_oid.insert(n, o);
    }
    // Structure tables.
    let mut kind: BTreeMap<Oid, u8> = BTreeMap::new(); // 1 tuple, 2 set
    for fact in get("KindTuple")? {
        kind.insert(as_oid(field(fact, "node")?)?, 1);
    }
    for fact in get("KindSet")? {
        kind.insert(as_oid(field(fact, "node")?)?, 2);
    }
    let mut tuple_fields: BTreeMap<Oid, Vec<(String, OValue)>> = BTreeMap::new();
    for fact in get("TupleField")? {
        let parent = as_oid(field(fact, "parent")?)?;
        tuple_fields
            .entry(parent)
            .or_default()
            .push((as_str(field(fact, "attr")?)?, field(fact, "child")?));
    }
    let mut set_elems: BTreeMap<Oid, Vec<OValue>> = BTreeMap::new();
    for fact in get("SetElem")? {
        let parent = as_oid(field(fact, "parent")?)?;
        set_elems
            .entry(parent)
            .or_default()
            .push(field(fact, "elem")?);
    }

    // Recursive value reconstruction. Structure nodes form a DAG (they
    // dedup by value), so plain recursion with a depth guard suffices.
    fn rebuild(
        v: &OValue,
        node_oid: &BTreeMap<Oid, Oid>,
        kind: &BTreeMap<Oid, u8>,
        tuple_fields: &BTreeMap<Oid, Vec<(String, OValue)>>,
        set_elems: &BTreeMap<Oid, Vec<OValue>>,
        depth: usize,
    ) -> Result<OValue> {
        if depth > 10_000 {
            return Err(IqlError::Invalid("flat structure is cyclic".into()));
        }
        match v {
            OValue::Const(c) => Ok(OValue::Const(c.clone())),
            OValue::Oid(n) => {
                if let Some(o) = node_oid.get(n) {
                    return Ok(OValue::Oid(*o));
                }
                match kind.get(n) {
                    Some(1) => {
                        let mut fields: BTreeMap<AttrName, OValue> = BTreeMap::new();
                        for (a, child) in tuple_fields.get(n).into_iter().flatten() {
                            fields.insert(
                                AttrName::new(a),
                                rebuild(child, node_oid, kind, tuple_fields, set_elems, depth + 1)?,
                            );
                        }
                        Ok(OValue::Tuple(fields))
                    }
                    Some(2) => {
                        let mut elems = std::collections::BTreeSet::new();
                        for e in set_elems.get(n).into_iter().flatten() {
                            elems.insert(rebuild(
                                e,
                                node_oid,
                                kind,
                                tuple_fields,
                                set_elems,
                                depth + 1,
                            )?);
                        }
                        Ok(OValue::Set(elems))
                    }
                    _ => Err(IqlError::Invalid(format!("node {n} has no kind"))),
                }
            }
            other => Err(IqlError::Invalid(format!(
                "unexpected composite {other} in flat relation"
            ))),
        }
    }

    // ρ.
    for fact in get("RelFact")? {
        let rel = RelName::new(&as_str(field(fact, "rel")?)?);
        let value = rebuild(
            &field(fact, "value")?,
            &node_oid,
            &kind,
            &tuple_fields,
            &set_elems,
            0,
        )?;
        out.insert_unchecked(rel, value)?;
    }
    // ν.
    for fact in get("ValueOf")? {
        let n = as_oid(field(fact, "obj")?)?;
        let o = *node_oid
            .get(&n)
            .ok_or_else(|| IqlError::Invalid(format!("ValueOf on non-oid node {n}")))?;
        let value = rebuild(
            &field(fact, "value")?,
            &node_oid,
            &kind,
            &tuple_fields,
            &set_elems,
            0,
        )?;
        out.overwrite_value(o, value)?;
    }
    out.validate().map_err(IqlError::Model)?;
    Ok(out)
}

// ---------------------------------------------------------------------
// The encoding as an IQL program (Proposition 4.2.2, literally)
// ---------------------------------------------------------------------

/// How to obtain the flat representative of a value bound to a variable.
enum Child {
    /// The value is its own representative (base-domain constants).
    Direct,
    /// Look the representative up in a two-column temp relation
    /// `(value, representative)`.
    Lookup(RelName, AttrName, AttrName),
}

struct Gen {
    temps: Vec<(RelName, TypeExpr)>,
    rules: Vec<crate::ast::Rule>,
    counter: usize,
}

impl Gen {
    fn fresh_rel(&mut self, prefix: &str, ty: TypeExpr) -> RelName {
        self.counter += 1;
        let name = RelName::new(&format!("Enc{prefix}{}", self.counter));
        self.temps.push((name, ty));
        name
    }

    /// Literals that bind `c` to the representative of the value in `var`.
    fn lookup_literals(&self, child: &Child, var: &str, c: &str) -> Vec<crate::ast::Literal> {
        use crate::ast::{Literal, Term};
        match child {
            Child::Direct => vec![Literal::eq(Term::var(c), Term::var(var))],
            Child::Lookup(rel, va, ca) => vec![Literal::member(
                Term::Rel(*rel),
                Term::tuple([(va.as_str(), Term::var(var)), (ca.as_str(), Term::var(c))]),
            )],
        }
    }

    /// Generates the encoding rules for values of (normalized) type `t`
    /// flowing through the unary source relation `src : [v: t]`; returns
    /// how parents reference those values.
    fn gen_type(&mut self, t: &TypeExpr, src: RelName) -> Result<Child> {
        use crate::ast::{Head, Literal, Rule, Term};
        let v = |x: &str| Term::var(x);
        let node_ty = TypeExpr::class("Node");
        match t {
            TypeExpr::Empty | TypeExpr::Base => Ok(Child::Direct),
            TypeExpr::Class(q) => Ok(Child::Lookup(
                RelName::new(&format!("EncOid_{q}")),
                AttrName::new("o"),
                AttrName::new("n"),
            )),
            TypeExpr::Set(te) => {
                let node_rel = self.fresh_rel(
                    "Node",
                    TypeExpr::tuple([("v", t.clone()), ("n", node_ty.clone())]),
                );
                let src_atom = Literal::member(Term::Rel(src), Term::tuple([("v", v("v"))]));
                self.rules.push(Rule::new(
                    Head::Rel(node_rel, Term::tuple([("v", v("v")), ("n", v("n"))])),
                    vec![src_atom.clone()],
                ));
                let node_atom = Literal::member(
                    Term::Rel(node_rel),
                    Term::tuple([("v", v("v")), ("n", v("n"))]),
                );
                self.rules.push(Rule::new(
                    Head::Rel(RelName::new("KindSet"), Term::tuple([("node", v("n"))])),
                    vec![node_atom.clone()],
                ));
                // Element source and recursion.
                let elem_src = self.fresh_rel("Src", TypeExpr::tuple([("v", (**te).clone())]));
                self.rules.push(
                    Rule::new(
                        Head::Rel(elem_src, Term::tuple([("v", v("x"))])),
                        vec![src_atom.clone(), Literal::member(v("v"), v("x"))],
                    )
                    .with_var("x", (**te).clone()),
                );
                let child = self.gen_type(te, elem_src)?;
                let mut body = vec![node_atom, Literal::member(v("v"), v("x"))];
                body.extend(self.lookup_literals(&child, "x", "c"));
                self.rules.push(
                    Rule::new(
                        Head::Rel(
                            RelName::new("SetElem"),
                            Term::tuple([("parent", v("n")), ("elem", v("c"))]),
                        ),
                        body,
                    )
                    .with_var("x", (**te).clone()),
                );
                Ok(Child::Lookup(
                    node_rel,
                    AttrName::new("v"),
                    AttrName::new("n"),
                ))
            }
            TypeExpr::Tuple(fields) => {
                let node_rel = self.fresh_rel(
                    "Node",
                    TypeExpr::tuple([("v", t.clone()), ("n", node_ty.clone())]),
                );
                let src_atom = Literal::member(Term::Rel(src), Term::tuple([("v", v("v"))]));
                self.rules.push(Rule::new(
                    Head::Rel(node_rel, Term::tuple([("v", v("v")), ("n", v("n"))])),
                    vec![src_atom],
                ));
                let node_atom = Literal::member(
                    Term::Rel(node_rel),
                    Term::tuple([("v", v("v")), ("n", v("n"))]),
                );
                self.rules.push(Rule::new(
                    Head::Rel(RelName::new("KindTuple"), Term::tuple([("node", v("n"))])),
                    vec![node_atom.clone()],
                ));
                // Destructuring pattern [a1: x1, …, ak: xk].
                let pattern = Term::Tuple(
                    fields
                        .keys()
                        .enumerate()
                        .map(|(i, a)| (*a, Term::var(format!("x{i}").as_str())))
                        .collect(),
                );
                for (i, (attr, ft)) in fields.iter().enumerate() {
                    let xi = format!("x{i}");
                    let field_src = self.fresh_rel("Src", TypeExpr::tuple([("v", ft.clone())]));
                    self.rules.push(Rule::new(
                        Head::Rel(field_src, Term::tuple([("v", v(&xi))])),
                        vec![node_atom.clone(), Literal::eq(v("v"), pattern.clone())],
                    ));
                    let child = self.gen_type(ft, field_src)?;
                    let mut body = vec![node_atom.clone(), Literal::eq(v("v"), pattern.clone())];
                    body.extend(self.lookup_literals(&child, &xi, "c"));
                    self.rules.push(Rule::new(
                        Head::Rel(
                            RelName::new("TupleField"),
                            Term::tuple([
                                ("parent", v("n")),
                                ("attr", Term::str(attr.as_str())),
                                ("child", v("c")),
                            ]),
                        ),
                        body,
                    ));
                }
                Ok(Child::Lookup(
                    node_rel,
                    AttrName::new("v"),
                    AttrName::new("n"),
                ))
            }
            TypeExpr::Union(_, _) => {
                // One branch source per union component; a shared Ref
                // relation collects each value's representative. The
                // branch-filtering coercion `w = v` with `w` typed at the
                // branch is the paper's Example-3.4.3 idiom: the typed
                // valuation semantics makes it a runtime discriminator.
                let mut branches = Vec::new();
                flatten_union(t, &mut branches);
                let ref_rel = self.fresh_rel(
                    "Ref",
                    TypeExpr::tuple([
                        ("v", t.clone()),
                        (
                            "c",
                            TypeExpr::union(TypeExpr::base(), TypeExpr::class("Node")),
                        ),
                    ]),
                );
                for b in branches {
                    let branch_src = self.fresh_rel("Src", TypeExpr::tuple([("v", b.clone())]));
                    self.rules.push(
                        Rule::new(
                            Head::Rel(branch_src, Term::tuple([("v", v("w"))])),
                            vec![
                                Literal::member(Term::Rel(src), Term::tuple([("v", v("v"))])),
                                Literal::eq(v("w"), v("v")),
                            ],
                        )
                        .with_var("w", b.clone())
                        .with_var("v", t.clone()),
                    );
                    let child = self.gen_type(&b, branch_src)?;
                    let mut body = vec![Literal::member(
                        Term::Rel(branch_src),
                        Term::tuple([("v", v("w"))]),
                    )];
                    body.extend(self.lookup_literals(&child, "w", "c"));
                    self.rules.push(
                        Rule::new(
                            Head::Rel(ref_rel, Term::tuple([("v", v("w")), ("c", v("c"))])),
                            body,
                        )
                        .with_var("w", b.clone()),
                    );
                }
                Ok(Child::Lookup(
                    ref_rel,
                    AttrName::new("v"),
                    AttrName::new("c"),
                ))
            }
            TypeExpr::Intersect(_, _) => Err(IqlError::Invalid(
                "normalize types before generating the flattener".into(),
            )),
        }
    }
}

fn flatten_union(t: &TypeExpr, out: &mut Vec<TypeExpr>) {
    match t {
        TypeExpr::Union(a, b) => {
            flatten_union(a, out);
            flatten_union(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Generates the IQL program that flattens instances of `schema` into
/// [`flat_schema`] — Proposition 4.2.2's "the instance is first encoded by
/// an IQL program in a relational schema. Oids are invented to denote more
/// structured o-values", as an actual program. Running it and [`decode`]-ing
/// the output reproduces the input up to O-isomorphism (tested).
///
/// Intersection types are normalized away first (Proposition 2.2.1); the
/// schema must not already use the flat/temporary names (`Node`, `Enc…`,
/// `KindTuple`, …).
pub fn generate_flattener(schema: &Schema) -> Result<crate::ast::Program> {
    use crate::ast::{Head, Literal, Rule, Term};
    let flat = flat_schema();
    // Collision checks.
    for r in flat.relations() {
        if schema.has_relation(r) {
            return Err(IqlError::Invalid(format!("schema already declares {r}")));
        }
    }
    if schema.has_class(node_class()) {
        return Err(IqlError::Invalid(
            "schema already declares class Node".into(),
        ));
    }
    for r in schema.relations() {
        if r.as_str().starts_with("Enc") {
            return Err(IqlError::Invalid(format!(
                "relation {r} collides with Enc* temps"
            )));
        }
    }

    let mut g = Gen {
        temps: Vec::new(),
        rules: Vec::new(),
        counter: 0,
    };
    let v = |x: &str| Term::var(x);

    // Per class: oid nodes, OrigClass, and ν encoding.
    for p in schema.classes() {
        let oid_rel = RelName::new(&format!("EncOid_{p}"));
        g.temps.push((
            oid_rel,
            TypeExpr::tuple([("o", TypeExpr::Class(p)), ("n", TypeExpr::class("Node"))]),
        ));
        g.rules.push(Rule::new(
            Head::Rel(oid_rel, Term::tuple([("o", v("o")), ("n", v("n"))])),
            vec![Literal::member(Term::Class(p), v("o"))],
        ));
        let oid_atom = Literal::member(
            Term::Rel(oid_rel),
            Term::tuple([("o", v("o")), ("n", v("n"))]),
        );
        g.rules.push(Rule::new(
            Head::Rel(
                RelName::new("OrigClass"),
                Term::tuple([("node", v("n")), ("class", Term::str(p.as_str()))]),
            ),
            vec![oid_atom.clone()],
        ));
        // ν values: w = o^ skips undefined ν, exactly like the encoder.
        let t = schema.class_type(p)?.intersection_free_disjoint();
        let val_src = g.fresh_rel("Src", TypeExpr::tuple([("v", t.clone())]));
        g.rules.push(
            Rule::new(
                Head::Rel(val_src, Term::tuple([("v", v("w"))])),
                vec![oid_atom.clone(), Literal::eq(v("w"), Term::deref("o"))],
            )
            .with_var("w", t.clone()),
        );
        let child = g.gen_type(&t, val_src)?;
        let mut body = vec![oid_atom, Literal::eq(v("w"), Term::deref("o"))];
        body.extend(g.lookup_literals(&child, "w", "c"));
        g.rules.push(
            Rule::new(
                Head::Rel(
                    RelName::new("ValueOf"),
                    Term::tuple([("obj", v("n")), ("value", v("c"))]),
                ),
                body,
            )
            .with_var("w", t.clone()),
        );
    }

    // Per relation: RelFact over encoded values.
    for r in schema.relations() {
        let t = schema.relation_type(r)?.intersection_free_disjoint();
        let src = g.fresh_rel("Src", TypeExpr::tuple([("v", t.clone())]));
        g.rules.push(
            Rule::new(
                Head::Rel(src, Term::tuple([("v", v("x"))])),
                vec![Literal::member(Term::Rel(r), v("x"))],
            )
            .with_var("x", t.clone()),
        );
        let child = g.gen_type(&t, src)?;
        let mut body = vec![Literal::member(
            Term::Rel(src),
            Term::tuple([("v", v("x"))]),
        )];
        body.extend(g.lookup_literals(&child, "x", "c"));
        g.rules.push(
            Rule::new(
                Head::Rel(
                    RelName::new("RelFact"),
                    Term::tuple([("rel", Term::str(r.as_str())), ("value", v("c"))]),
                ),
                body,
            )
            .with_var("x", t.clone()),
        );
    }

    // Assemble the program schema in one shot: original + flat + temps
    // (temp types reference both original classes and Node, so the parts
    // cannot be validated separately).
    let combined = Schema::new(
        schema
            .relations()
            .map(|r| Ok((r, schema.relation_type(r)?.clone())))
            .chain(
                flat.relations()
                    .map(|r| Ok((r, flat.relation_type(r)?.clone()))),
            )
            .chain(g.temps.iter().map(|(r, t)| Ok((*r, t.clone()))))
            .collect::<Result<Vec<_>>>()?,
        schema
            .classes()
            .map(|c| Ok((c, schema.class_type(c)?.clone())))
            .chain(flat.classes().map(|c| Ok((c, flat.class_type(c)?.clone()))))
            .collect::<Result<Vec<_>>>()?,
    )
    .map_err(IqlError::Model)?;
    let input_rels = schema.relations().collect();
    let input_classes = schema.classes().collect();
    let output_rels = flat.relations().collect();
    let output_classes = flat.classes().collect();
    let combined = Arc::new(combined);
    let input = Arc::new(combined.project(&input_rels, &input_classes)?);
    let output = Arc::new(combined.project(&output_rels, &output_classes)?);
    let mut prog = crate::ast::Program {
        schema: combined,
        input,
        output,
        stages: vec![crate::ast::Stage::new(g.rules)],
    };
    crate::typecheck::check_program(&mut prog)?;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql_model::instance::genesis_instance;
    use iql_model::iso::are_o_isomorphic;

    #[test]
    fn genesis_roundtrips_through_the_flat_encoding() {
        let (genesis, _) = genesis_instance();
        let flat = encode(&genesis).unwrap();
        // The flat instance is "essentially relational": its single class
        // has the unit type and carries no values.
        assert_eq!(flat.schema().classes().count(), 1);
        for o in flat.class(super::node_class()).unwrap() {
            assert!(flat.value(*o).is_none());
        }
        let back = decode(&flat, genesis.schema()).unwrap();
        assert!(are_o_isomorphic(&back, &genesis));
    }

    #[test]
    fn structured_values_share_nodes() {
        // Two relation facts containing the same set share its node.
        let schema = SchemaBuilder::new()
            .relation("A", TypeExpr::set_of(TypeExpr::base()))
            .relation("B", TypeExpr::set_of(TypeExpr::base()))
            .build()
            .unwrap()
            .into_shared();
        let mut inst = Instance::new(schema);
        let v = OValue::set([OValue::int(1), OValue::int(2)]);
        inst.insert(RelName::new("A"), v.clone()).unwrap();
        inst.insert(RelName::new("B"), v).unwrap();
        let flat = encode(&inst).unwrap();
        // One set node, two RelFacts.
        assert_eq!(flat.relation(RelName::new("KindSet")).unwrap().len(), 1);
        assert_eq!(flat.relation(RelName::new("RelFact")).unwrap().len(), 2);
        let back = decode(&flat, inst.schema()).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn cyclic_nu_survives_encoding() {
        // adam/eve-style mutual reference entirely through ν.
        let schema = SchemaBuilder::new()
            .class("Cp", TypeExpr::tuple([("other", TypeExpr::class("Cp"))]))
            .build()
            .unwrap()
            .into_shared();
        let mut inst = Instance::new(schema);
        let a = inst.create_oid(ClassName::new("Cp")).unwrap();
        let b = inst.create_oid(ClassName::new("Cp")).unwrap();
        inst.define_value(a, OValue::tuple([("other", OValue::oid(b))]))
            .unwrap();
        inst.define_value(b, OValue::tuple([("other", OValue::oid(a))]))
            .unwrap();
        inst.validate().unwrap();
        let flat = encode(&inst).unwrap();
        let back = decode(&flat, inst.schema()).unwrap();
        assert!(are_o_isomorphic(&back, &inst));
    }

    #[test]
    fn generated_flattener_matches_native_encode_on_genesis() {
        use crate::eval::{run, EvalConfig};
        let (genesis, _) = genesis_instance();
        let prog = generate_flattener(genesis.schema()).unwrap();
        let input = genesis.project(&prog.input).unwrap();
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        // The program's flat output decodes back to Genesis.
        let reprojected = out.output.project(&Arc::new(flat_schema())).unwrap();
        let back = decode(&reprojected, genesis.schema()).unwrap();
        assert!(
            are_o_isomorphic(&back, &genesis),
            "decode(run(flattener, I)) ≅ I — Prop 4.2.2's encoding, in IQL itself"
        );
    }

    #[test]
    fn generated_flattener_handles_union_types() {
        use crate::eval::{run, EvalConfig};
        // The Example-3.4.3 union schema: P : P ∨ [A1:P, A2:P].
        let schema = SchemaBuilder::new()
            .class(
                "P",
                TypeExpr::union(
                    TypeExpr::class("P"),
                    TypeExpr::tuple([("A1", TypeExpr::class("P")), ("A2", TypeExpr::class("P"))]),
                ),
            )
            .build()
            .unwrap()
            .into_shared();
        let mut inst = Instance::new(Arc::clone(&schema));
        let p = ClassName::new("P");
        let a = inst.create_oid(p).unwrap();
        let b = inst.create_oid(p).unwrap();
        inst.define_value(a, OValue::oid(b)).unwrap();
        inst.define_value(
            b,
            OValue::tuple([("A1", OValue::oid(a)), ("A2", OValue::oid(b))]),
        )
        .unwrap();
        inst.validate().unwrap();

        let prog = generate_flattener(&schema).unwrap();
        let input = inst.project(&prog.input).unwrap();
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        let reprojected = out.output.project(&Arc::new(flat_schema())).unwrap();
        let back = decode(&reprojected, &schema).unwrap();
        assert!(are_o_isomorphic(&back, &inst));
    }

    #[test]
    fn generated_flattener_handles_nested_sets() {
        use crate::eval::{run, EvalConfig};
        let schema = SchemaBuilder::new()
            .relation("Deep", TypeExpr::set_of(TypeExpr::set_of(TypeExpr::base())))
            .build()
            .unwrap()
            .into_shared();
        let mut inst = Instance::new(Arc::clone(&schema));
        inst.insert(
            RelName::new("Deep"),
            OValue::set([
                OValue::set([OValue::int(1), OValue::int(2)]),
                OValue::empty_set(),
            ]),
        )
        .unwrap();
        let prog = generate_flattener(&schema).unwrap();
        let out = run(
            &prog,
            &inst.project(&prog.input).unwrap(),
            &EvalConfig::default(),
        )
        .unwrap();
        let back = decode(
            &out.output.project(&Arc::new(flat_schema())).unwrap(),
            &schema,
        )
        .unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn flattener_rejects_name_collisions() {
        let schema = SchemaBuilder::new()
            .relation("RelFact", TypeExpr::base())
            .build()
            .unwrap();
        assert!(generate_flattener(&schema).is_err());
    }

    #[test]
    fn empty_instance_encodes_to_empty_tables() {
        let schema = SchemaBuilder::new()
            .relation("R", TypeExpr::base())
            .build()
            .unwrap()
            .into_shared();
        let inst = Instance::new(schema);
        let flat = encode(&inst).unwrap();
        assert_eq!(flat.fact_count(), 0);
        let back = decode(&flat, inst.schema()).unwrap();
        assert_eq!(back, inst);
    }
}
