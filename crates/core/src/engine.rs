//! The unified evaluation facade.
//!
//! [`Engine`] packages a compiled [`Program`] with an [`EvalConfig`] behind
//! one entry point, so callers configure once and run many inputs:
//!
//! ```
//! use iql_core::engine::Engine;
//! use iql_core::eval::EvalConfig;
//! use iql_core::parser::parse_unit;
//!
//! let unit = parse_unit(
//!     r#"
//!     schema {
//!       relation Edge: [src: D, dst: D];
//!       relation Tc:   [src: D, dst: D];
//!     }
//!     program {
//!       input Edge;
//!       output Tc;
//!       Tc(x, y) :- Edge(x, y);
//!       Tc(x, z) :- Tc(x, y), Edge(y, z);
//!     }
//!     instance {
//!       Edge("a", "b");
//!       Edge("b", "c");
//!     }
//!     "#,
//! )
//! .unwrap();
//! let engine = Engine::new(unit.program.unwrap())
//!     .with_config(EvalConfig::builder().threads(2).build());
//! let out = engine.run(&unit.instance.unwrap()).unwrap();
//! assert_eq!(
//!     out.output.relation(iql_model::RelName::new("Tc")).unwrap().len(),
//!     3
//! );
//! ```

use crate::ast::Program;
use crate::error::Result;
use crate::eval::{self, EvalConfig, EvalOutput};
use crate::govern::RunOutcome;
use iql_model::Instance;
use std::sync::Arc;

/// A program plus its evaluation configuration — the stable API surface in
/// front of [`eval::run`].
#[derive(Debug, Clone)]
pub struct Engine {
    program: Program,
    config: EvalConfig,
}

impl Engine {
    /// Wraps `program` with the default configuration.
    pub fn new(program: Program) -> Self {
        Engine {
            program,
            config: EvalConfig::default(),
        }
    }

    /// Replaces the configuration (builder style).
    pub fn with_config(mut self, config: EvalConfig) -> Self {
        self.config = config;
        self
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The active configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Runs the program on `input` (an instance of the program's input
    /// projection), producing the output projection and run statistics.
    pub fn run(&self, input: &Instance) -> Result<EvalOutput> {
        eval::run(&self.program, input, &self.config)
    }

    /// Runs the program on an empty input instance — the common case for
    /// programs whose facts live in the rules themselves.
    pub fn run_empty(&self) -> Result<EvalOutput> {
        let input = Instance::new(Arc::clone(&self.program.input));
        self.run(&input)
    }

    /// Runs the program under the configuration's resource governor,
    /// degrading gracefully: a blown budget, passed deadline, flipped
    /// cancellation token, or contained worker panic yields
    /// [`RunOutcome::Aborted`] with the last consistent partial result
    /// instead of an error. See [`eval::run_governed`].
    pub fn run_governed(&self, input: &Instance) -> Result<RunOutcome> {
        eval::run_governed(&self.program, input, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::transitive_closure_program;
    use iql_model::{OValue, RelName};

    #[test]
    fn engine_runs_like_eval_run() {
        let prog = transitive_closure_program();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for (s, d) in [("a", "b"), ("b", "c"), ("c", "d")] {
            input
                .insert(
                    RelName::new("Edge"),
                    OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
                )
                .unwrap();
        }
        let direct = eval::run(&prog, &input, &EvalConfig::default()).unwrap();
        let engine = Engine::new(transitive_closure_program());
        let via = engine.run(&input).unwrap();
        assert_eq!(
            direct.output.ground_facts(),
            via.output.ground_facts(),
            "facade must be a pure wrapper"
        );
        assert_eq!(engine.config().threads, 1);
    }

    #[test]
    fn engine_run_empty_uses_input_projection() {
        let engine = Engine::new(transitive_closure_program());
        let out = engine.run_empty().unwrap();
        assert!(out.output.relation(RelName::new("Tc")).unwrap().is_empty());
    }
}
