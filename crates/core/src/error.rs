//! Error types for the IQL language layer.

use crate::ast::VarName;
use std::fmt;

/// Errors from parsing, type checking, and evaluation of IQL programs.
#[derive(Debug, Clone, PartialEq)]
pub enum IqlError {
    /// A parse error with line/column and message.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// What went wrong.
        msg: String,
    },
    /// A variable's type could not be inferred; declare it with `var x: T`.
    CannotInfer {
        /// The untypable variable.
        var: VarName,
        /// The rule, rendered.
        rule: String,
    },
    /// A term failed to type-check.
    TypeError {
        /// Description of the mismatch.
        msg: String,
        /// The rule, rendered.
        rule: String,
    },
    /// A head-only (invention) variable whose type is not a class name
    /// (violates rule condition 3, Section 3.1).
    InventionNotClassTyped {
        /// The offending variable.
        var: VarName,
        /// The rule, rendered.
        rule: String,
    },
    /// Evaluation exceeded the configured step limit — the program may not
    /// terminate (cf. the `R3(y,z) ← R3(x,y)` example, Section 3.4).
    StepLimit {
        /// The configured limit.
        limit: usize,
    },
    /// Evaluation exceeded the configured fact budget.
    FactBudget {
        /// The configured limit.
        limit: usize,
    },
    /// Evaluation exceeded the configured invented-oid budget.
    OidBudget {
        /// The configured limit.
        limit: usize,
    },
    /// The working instance's value store exceeded its interned-node
    /// budget.
    StoreBudget {
        /// The configured limit (nodes).
        limit: usize,
    },
    /// The working instance's value store exceeded its byte budget.
    MemoryBudget {
        /// The configured limit (approximate heap bytes).
        limit: usize,
    },
    /// Evaluation ran past its wall-clock deadline.
    Deadline,
    /// Evaluation was cancelled through the external token.
    Cancelled,
    /// A worker thread panicked while evaluating a rule; the panic was
    /// contained by the evaluator and did not poison the worker pool.
    WorkerPanic {
        /// Index of the rule whose search task panicked.
        rule: usize,
    },
    /// Active-domain type enumeration for a variable exceeded its budget.
    EnumBudget {
        /// The variable whose type was being enumerated.
        var: VarName,
        /// The type expression, rendered.
        ty: String,
        /// The configured budget.
        budget: usize,
    },
    /// A `choose` could not be made generically: the candidates fall into
    /// more than one automorphism orbit, so any pick would violate
    /// genericity (Section 4.4).
    ChoiceNotGeneric {
        /// Number of distinct orbits found.
        orbits: usize,
    },
    /// A `choose` found no candidate objects of the required type.
    ChoiceEmpty,
    /// An error bubbled up from the data model.
    Model(iql_model::ModelError),
    /// The input instance does not match the program's input schema.
    BadInput(String),
    /// Catch-all with context.
    Invalid(String),
}

impl fmt::Display for IqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IqlError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            IqlError::CannotInfer { var, rule } => write!(
                f,
                "cannot infer a type for variable {var} in rule `{rule}`; add an explicit `var {var}: T` declaration"
            ),
            IqlError::TypeError { msg, rule } => {
                write!(f, "type error in rule `{rule}`: {msg}")
            }
            IqlError::InventionNotClassTyped { var, rule } => write!(
                f,
                "invention variable {var} in rule `{rule}` must have a class type (rule condition 3)"
            ),
            IqlError::StepLimit { limit } => write!(
                f,
                "evaluation exceeded {limit} inflationary steps; the program may not terminate"
            ),
            IqlError::FactBudget { limit } => {
                write!(f, "evaluation exceeded the fact budget of {limit}")
            }
            IqlError::OidBudget { limit } => {
                write!(f, "evaluation exceeded the invented-oid budget of {limit}")
            }
            IqlError::StoreBudget { limit } => {
                write!(f, "value store exceeded its budget of {limit} interned nodes")
            }
            IqlError::MemoryBudget { limit } => {
                write!(f, "value store exceeded its memory budget of {limit} bytes")
            }
            IqlError::Deadline => write!(f, "evaluation exceeded its wall-clock deadline"),
            IqlError::Cancelled => write!(f, "evaluation cancelled"),
            IqlError::WorkerPanic { rule } => {
                write!(f, "worker evaluating rule {rule} panicked (contained)")
            }
            IqlError::EnumBudget { var, ty, budget } => write!(
                f,
                "enumerating the active domain of variable {var}: type {ty} exceeded the budget of {budget} values"
            ),
            IqlError::ChoiceNotGeneric { orbits } => write!(
                f,
                "choose: candidates split into {orbits} automorphism orbits; a deterministic pick would violate genericity"
            ),
            IqlError::ChoiceEmpty => write!(f, "choose: no candidate objects of the required type"),
            IqlError::Model(e) => write!(f, "{e}"),
            IqlError::BadInput(msg) => write!(f, "bad input instance: {msg}"),
            IqlError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for IqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IqlError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<iql_model::ModelError> for IqlError {
    fn from(e: iql_model::ModelError) -> Self {
        IqlError::Model(e)
    }
}

/// The hard-error twin of each governor trip, for all-or-nothing callers
/// ([`crate::eval::run`]) and for crossing worker boundaries inside the
/// evaluator.
impl From<crate::govern::AbortReason> for IqlError {
    fn from(reason: crate::govern::AbortReason) -> Self {
        use crate::govern::AbortReason;
        match reason {
            AbortReason::StepLimit { limit } => IqlError::StepLimit { limit },
            AbortReason::FactBudget { limit } => IqlError::FactBudget { limit },
            AbortReason::OidBudget { limit } => IqlError::OidBudget { limit },
            AbortReason::StoreBudget { limit } => IqlError::StoreBudget { limit },
            AbortReason::MemoryBudget { limit } => IqlError::MemoryBudget { limit },
            AbortReason::Deadline => IqlError::Deadline,
            AbortReason::Cancelled => IqlError::Cancelled,
            AbortReason::WorkerPanic { rule } => IqlError::WorkerPanic { rule },
        }
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, IqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = IqlError::Model(iql_model::ModelError::StrayOid(1));
        assert!(std::error::Error::source(&e).is_some());
        let p = IqlError::Parse {
            line: 3,
            col: 9,
            msg: "expected `:-`".into(),
        };
        assert!(p.to_string().contains("3:9"));
    }
}
