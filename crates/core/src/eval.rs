//! The naive inflationary evaluator (Section 3.2).
//!
//! Semantics follows the paper exactly: evaluation proceeds in *steps*; each
//! step
//!
//! 1. computes the **valuation-domain** — all `(rule, θ)` with `I ⊨ θ body`
//!    such that *no extension* of `θ` already satisfies the head (this
//!    head-satisfaction guard is what terminates oid invention);
//! 2. picks a **valuation-map** — fresh, pairwise-distinct oids for every
//!    head-only variable of every `(rule, θ)` (or, under IQL⁺ `choose`, an
//!    existing object chosen generically, Section 4.4);
//! 3. adds the derived ground facts, subject to the **weak-assignment**
//!    condition (†): a non-set oid's value is set only if currently
//!    undefined and uniquely derived this step.
//!
//! Stages (`;` composition) run each rule set to its inflationary fixpoint
//! before the next starts. IQL\* deletion heads are applied at the end of
//! each step with cascading oid deletion (Section 4.5); a fact both added
//! and deleted in one step ends up deleted (a documented choice — the paper
//! leaves the conflict policy to the `*`-language machinery).
//!
//! Variables not bound by any positive literal fall back to **active-domain
//! enumeration** of their type — precisely the paper's valuation semantics,
//! and the engine behind the non-range-restricted powerset program of
//! Example 3.4.2. Enumeration is guarded by a configurable budget.

use crate::ast::{Head, Literal, Program, Rule, Stage, Term, VarName};
use crate::error::{IqlError, Result};
use crate::govern::{governor_from_config, AbortReason, Aborted, Governor, Pacer, RunOutcome};
use crate::planner::{build_plan, plan_rule, Op, PlanSource, RulePlan};
use iql_exec::{chunk_ranges, rule_delta_supported, run_tasks};
use iql_model::iso::orbits;
use iql_model::{
    AttrName, ClassName, IdView, Instance, Node, OValue, Oid, Overlay, OverlayLog, TypeExpr,
    ValueId, ValueInterner, ValueReader, ValueStore,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// A valuation `θ` of rule variables to o-values — the public face of a
/// valuation. Internally the evaluator works on [`IdBinding`]s over the
/// instance's hash-consing [`iql_model::ValueStore`] and converts at the
/// boundary.
pub type Binding = BTreeMap<VarName, OValue>;

/// A valuation over interned ids: `Copy` values, O(1) equality, and clones
/// that copy machine words instead of o-value trees. Ids are relative to
/// the working instance's store, possibly extended by a worker-local
/// [`Overlay`] during the search phase.
type IdBinding = BTreeMap<VarName, ValueId>;

/// Evaluation limits and switches.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`EvalConfig::default`] or the fluent [`EvalConfig::builder`] so new
/// knobs stop being breaking changes. Individual fields stay public and may
/// be reassigned on an existing value.
///
/// ```
/// use iql_core::eval::EvalConfig;
/// let cfg = EvalConfig::builder().threads(8).seminaive(false).build();
/// assert_eq!(cfg.threads, 8);
/// assert!(!cfg.use_seminaive);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EvalConfig {
    /// Maximum inflationary steps per stage before reporting
    /// [`IqlError::StepLimit`].
    pub max_steps: usize,
    /// Budget for active-domain type enumeration (per variable, per step).
    pub enum_budget: usize,
    /// Hard cap on total ground facts in the working instance.
    pub max_facts: usize,
    /// Validate the output instance against the output schema.
    pub check_output: bool,
    /// Build per-scan hash indexes on bound tuple attributes (the ablation
    /// knob for the `eval_indexing` benchmark; on by default).
    pub use_index: bool,
    /// Cost-based join planning: reorder body literals by estimated
    /// selectivity from the instance's cardinality statistics and probe the
    /// instance's *persistent* secondary indexes instead of rebuilding
    /// per-step hash maps. A pure optimization — outputs are bit-identical
    /// with the planner on or off (the merge phase canonicalizes fire order
    /// wherever it is observable). The ablation knob for the `eval_planner`
    /// benchmark; on by default.
    pub use_planner: bool,
    /// Delta-driven (semi-naive) evaluation of eligible rules: rules whose
    /// bodies read only relations/classes (no dereferences, no enumeration
    /// fallbacks, no choose, no deletion heads) are re-evaluated only
    /// against the facts added in the previous step. Sound for inflationary
    /// semantics because negation and the invention guard are *monotone
    /// blockers*: once a valuation is blocked it stays blocked, so every
    /// valuation fires at exactly its first-valid step either way. The
    /// ablation knob for the naive-vs-seminaive comparison; on by default.
    pub use_seminaive: bool,
    /// Reuse each rule's compiled plan across steps while the instance's
    /// statistics epoch stands still ([`iql_model::Instance::stats_epoch`]),
    /// replanning only when the cardinality picture moves — an extent or
    /// distinct-count crosses a re-plan threshold, or a new index is built.
    /// A pure optimization: plans only change discovery order, which the
    /// merge phase canonicalizes wherever observable, so outputs are
    /// bit-identical with the cache on or off. On by default.
    pub use_plan_cache: bool,
    /// N-IQL mode (the paper's Remark N-IQL): `choose` may pick among
    /// candidates even when the choice violates genericity — the language
    /// becomes *nondeterministic complete* instead of determinate. Off by
    /// default; when off, a non-generic choice raises
    /// [`IqlError::ChoiceNotGeneric`].
    pub nondeterministic_choice: bool,
    /// Worker threads for the per-step valuation search: `1` evaluates
    /// rules sequentially (the default), `0` uses one worker per available
    /// core, and any other value pins the pool size. Workers only *search*
    /// — fact insertion, condition-(†) dedup, and oid allocation happen in
    /// a deterministic merge phase — so the output instance is bit-identical
    /// (same invented-oid numbering) for every setting.
    pub threads: usize,
    /// Wall-clock deadline for the whole run (all stages). Polled inside
    /// the valuation search, so a deadline stops evaluation mid-step; the
    /// governed entry point ([`run_governed`]) then returns the last
    /// *completed* step as a partial result. `None` (default) = no limit.
    pub deadline: Option<Duration>,
    /// Cap on oids invented over the whole run. `None` = no limit.
    pub max_oids: Option<usize>,
    /// High-water mark on interned nodes in the working instance's value
    /// store. `None` = no limit.
    pub max_store_nodes: Option<usize>,
    /// High-water mark on the value store's (approximate) heap bytes —
    /// the `--max-memory` CLI knob. `None` = no limit.
    pub max_store_bytes: Option<usize>,
    /// External cancellation token: flip it to `true` (e.g. from a Ctrl-C
    /// handler) and evaluation stops at the next poll point, mid-step.
    pub cancel_token: Option<Arc<AtomicBool>>,
    /// Test hook: make the search task(s) of this rule index panic, to
    /// exercise worker-panic containment. Not part of the stable API.
    #[doc(hidden)]
    pub test_panic_rule: Option<usize>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_steps: 10_000,
            enum_budget: 1 << 20,
            max_facts: 10_000_000,
            check_output: true,
            use_index: true,
            use_planner: true,
            use_seminaive: true,
            use_plan_cache: true,
            nondeterministic_choice: false,
            threads: 1,
            deadline: None,
            max_oids: None,
            max_store_nodes: None,
            max_store_bytes: None,
            cancel_token: None,
            test_panic_rule: None,
        }
    }
}

impl EvalConfig {
    /// Starts a fluent builder seeded with the defaults.
    pub fn builder() -> EvalConfigBuilder {
        EvalConfigBuilder::default()
    }

    /// Re-opens this configuration as a builder, for deriving a variant:
    /// `cfg.to_builder().threads(4).build()`.
    pub fn to_builder(&self) -> EvalConfigBuilder {
        EvalConfigBuilder { cfg: self.clone() }
    }

    /// The worker-pool size this configuration resolves to: `threads`
    /// itself, or one per available core when `threads == 0`.
    pub fn effective_threads(&self) -> usize {
        iql_exec::effective_threads(self.threads)
    }
}

/// Fluent builder for [`EvalConfig`] (see [`EvalConfig::builder`]).
#[derive(Debug, Clone, Default)]
pub struct EvalConfigBuilder {
    cfg: EvalConfig,
}

impl EvalConfigBuilder {
    /// Sets the inflationary step limit per stage.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.cfg.max_steps = n;
        self
    }

    /// Sets the active-domain enumeration budget.
    pub fn enum_budget(mut self, n: usize) -> Self {
        self.cfg.enum_budget = n;
        self
    }

    /// Sets the hard cap on total ground facts.
    pub fn max_facts(mut self, n: usize) -> Self {
        self.cfg.max_facts = n;
        self
    }

    /// Toggles output-schema validation of the result.
    pub fn check_output(mut self, on: bool) -> Self {
        self.cfg.check_output = on;
        self
    }

    /// Toggles per-scan hash indexes.
    pub fn index(mut self, on: bool) -> Self {
        self.cfg.use_index = on;
        self
    }

    /// Toggles cost-based join planning over persistent indexes.
    pub fn planner(mut self, on: bool) -> Self {
        self.cfg.use_planner = on;
        self
    }

    /// Toggles delta-driven (semi-naive) evaluation of eligible rules.
    pub fn seminaive(mut self, on: bool) -> Self {
        self.cfg.use_seminaive = on;
        self
    }

    /// Toggles the epoch-keyed plan cache.
    pub fn plan_cache(mut self, on: bool) -> Self {
        self.cfg.use_plan_cache = on;
        self
    }

    /// Toggles N-IQL nondeterministic `choose`.
    pub fn nondeterministic_choice(mut self, on: bool) -> Self {
        self.cfg.nondeterministic_choice = on;
        self
    }

    /// Sets the worker-pool size (`1` sequential, `0` one per core).
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Sets a wall-clock deadline for the whole run.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.cfg.deadline = Some(d);
        self
    }

    /// Caps the number of oids invented over the whole run.
    pub fn max_oids(mut self, n: usize) -> Self {
        self.cfg.max_oids = Some(n);
        self
    }

    /// Caps the interned-node count of the working value store.
    pub fn max_store_nodes(mut self, n: usize) -> Self {
        self.cfg.max_store_nodes = Some(n);
        self
    }

    /// Caps the working value store's approximate heap bytes.
    pub fn max_store_bytes(mut self, n: usize) -> Self {
        self.cfg.max_store_bytes = Some(n);
        self
    }

    /// Attaches an external cancellation token.
    pub fn cancel_token(mut self, token: Arc<AtomicBool>) -> Self {
        self.cfg.cancel_token = Some(token);
        self
    }

    /// Test hook: panic in the search task(s) of rule `ri`.
    #[doc(hidden)]
    pub fn test_panic_rule(mut self, ri: usize) -> Self {
        self.cfg.test_panic_rule = Some(ri);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> EvalConfig {
        self.cfg
    }
}

/// Wall-clock profile of one inflationary step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepTiming {
    /// Stage index (in program order).
    pub stage: usize,
    /// Step index within the stage.
    pub step: usize,
    /// Nanoseconds spent in the (parallelisable) valuation-search phase.
    pub search_nanos: u64,
    /// Nanoseconds spent in the deterministic merge/apply phase.
    pub apply_nanos: u64,
    /// `(rule, θ)` pairs fired this step.
    pub fires: usize,
}

/// Statistics from one program run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalReport {
    /// Total inflationary steps across stages.
    pub steps: usize,
    /// Stages started.
    pub stages: usize,
    /// Oids invented.
    pub invented: usize,
    /// Ground facts added.
    pub facts_added: usize,
    /// Times the enumeration fallback fired.
    pub enum_fallbacks: usize,
    /// Facts deleted (IQL\*).
    pub facts_deleted: usize,
    /// Rule plans the cost-based planner reordered away from textual order
    /// (counted per rule per step, whether the step's plan was fresh or
    /// cached).
    pub plans_reordered: usize,
    /// Rule plans built fresh — the first step of a stage, every step with
    /// the cache off, and every statistics-epoch invalidation.
    pub plans_fresh: usize,
    /// Rule plans reused from the epoch-keyed plan cache (counted per rule
    /// per step on a hit).
    pub plans_cached: usize,
    /// Scan probes answered by a persistent secondary index.
    pub index_hits: usize,
    /// Scan probes that fell back to a per-step rebuilt local index (delta
    /// or chunk-restricted scans, or planner-off runs).
    pub index_misses: usize,
    /// Per-step wall-clock timings, in evaluation order. Timing varies run
    /// to run; compare [`EvalReport::counters`] when checking determinism.
    pub step_timings: Vec<StepTiming>,
    /// Per-rule derivation counters: `(stage, rule) → fired valuations`.
    pub rule_fires: BTreeMap<(usize, usize), usize>,
}

/// The deterministic counters of an [`EvalReport`]: `(steps, invented,
/// facts_added, enum_fallbacks, facts_deleted, rule_fires)`.
pub type RunCounters<'a> = (
    usize,
    usize,
    usize,
    usize,
    usize,
    &'a BTreeMap<(usize, usize), usize>,
);

impl EvalReport {
    /// The run's deterministic counters, without wall-clock timings —
    /// identical across reruns and thread counts of the same program/input.
    /// Planner counters are excluded: they describe *how* the engine
    /// evaluated (ablation-arm-dependent), not *what* it computed.
    pub fn counters(&self) -> RunCounters<'_> {
        (
            self.steps,
            self.invented,
            self.facts_added,
            self.enum_fallbacks,
            self.facts_deleted,
            &self.rule_fires,
        )
    }
}

impl fmt::Display for EvalReport {
    /// Two summary lines: the semantic counters, then the planner's
    /// decisions — what `iql run --stats` prints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "steps={} stages={} invented={} facts_added={} facts_deleted={} enum_fallbacks={}",
            self.steps,
            self.stages,
            self.invented,
            self.facts_added,
            self.facts_deleted,
            self.enum_fallbacks,
        )?;
        write!(
            f,
            "planner: plans_reordered={} plans_fresh={} plans_cached={} index_hits={} index_misses={}",
            self.plans_reordered,
            self.plans_fresh,
            self.plans_cached,
            self.index_hits,
            self.index_misses,
        )
    }
}

/// The result of running a program.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    /// The full fixpoint instance over `S`.
    pub full: Instance,
    /// The projection `J[Sout]`.
    pub output: Instance,
    /// Run statistics.
    pub report: EvalReport,
}

/// Runs `prog` on `input` (an instance of `Sin`), producing `J[Sout]`.
///
/// All-or-nothing semantics: a tripped resource limit (step/fact/oid/store
/// budget, deadline, cancellation, contained worker panic) surfaces as the
/// corresponding hard [`IqlError`] and the partial work is discarded. Use
/// [`run_governed`] to keep the last consistent snapshot instead.
pub fn run(prog: &Program, input: &Instance, cfg: &EvalConfig) -> Result<EvalOutput> {
    run_governed(prog, input, cfg)?.into_result()
}

/// Runs `prog` on `input` under the limits of `cfg`, degrading gracefully:
/// a tripped limit yields [`RunOutcome::Aborted`] carrying the working
/// instance after the last *completed* inflationary step — a valid partial
/// answer under inflationary semantics — instead of an error.
///
/// Real faults (bad input, unknown relations, non-generic `choose`, …)
/// still return `Err`; only resource trips degrade.
pub fn run_governed(prog: &Program, input: &Instance, cfg: &EvalConfig) -> Result<RunOutcome> {
    // Input must be an instance of Sin.
    if !prog.input.is_projection_of(input.schema()) || !input.schema().is_projection_of(&prog.input)
    {
        return Err(IqlError::BadInput(format!(
            "input instance schema differs from the program's input projection\nexpected: {}\nfound: {}",
            prog.input,
            input.schema()
        )));
    }
    input
        .validate()
        .map_err(|e| IqlError::BadInput(e.to_string()))?;

    // Working instance over the full schema S, seeded with the input.
    let mut work = Instance::new(Arc::clone(&prog.schema));
    for r in prog.input.relations() {
        for v in input.relation(r)? {
            work.insert_unchecked(r, v.clone())?;
        }
    }
    for p in prog.input.classes() {
        for o in input.class(p)? {
            work.adopt_oid(p, *o)?;
            if let Some(v) = input.value(*o) {
                work.overwrite_value(*o, v.clone())?;
            }
        }
    }

    // One governor for the whole run: the deadline clock spans all stages.
    let gov = governor_from_config(cfg);
    let mut report = EvalReport::default();
    let mut trip: Option<AbortReason> = None;
    for stage in &prog.stages {
        if let Some(reason) = run_stage_governed(stage, &mut work, cfg, &gov, &mut report)? {
            trip = Some(reason);
            break;
        }
    }

    let output = work.project(&prog.output)?;
    match trip {
        None => {
            if cfg.check_output {
                output
                    .validate()
                    .map_err(|e| IqlError::Invalid(format!("output instance invalid: {e}")))?;
            }
            Ok(RunOutcome::Complete(Box::new(EvalOutput {
                full: work,
                output,
                report,
            })))
        }
        Some(reason) => {
            // No output validation on a partial snapshot: an invented oid
            // whose weak assignment has not fired yet is expected mid-run.
            let at_step = report.steps;
            let elapsed = gov.elapsed();
            let partial = EvalOutput {
                full: work,
                output,
                report: report.clone(),
            };
            Ok(RunOutcome::Aborted(Box::new(Aborted {
                reason,
                at_step,
                elapsed,
                partial,
                report,
            })))
        }
    }
}

/// Runs one stage to its inflationary fixpoint. All-or-nothing: a tripped
/// limit surfaces as a hard error (a fresh [`Governor`] is resolved from
/// `cfg`, so the deadline clock starts here).
pub fn run_stage(
    stage: &Stage,
    work: &mut Instance,
    cfg: &EvalConfig,
    report: &mut EvalReport,
) -> Result<()> {
    let gov = governor_from_config(cfg);
    match run_stage_governed(stage, work, cfg, &gov, report)? {
        None => Ok(()),
        Some(reason) => Err(reason.into()),
    }
}

/// Runs one stage to its inflationary fixpoint under `gov`, returning
/// `Ok(Some(reason))` on a resource trip with `work` left at the last
/// consistent snapshot (the deterministic budgets are checked at step
/// boundaries; an asynchronous mid-step trip discards the whole
/// interrupted step).
fn run_stage_governed(
    stage: &Stage,
    work: &mut Instance,
    cfg: &EvalConfig,
    gov: &Governor,
    report: &mut EvalReport,
) -> Result<Option<AbortReason>> {
    let stage_idx = report.stages;
    report.stages += 1;
    let mut delta: Option<Delta> = None; // None ⇒ first step: full evaluation
                                         // Epoch-keyed plan cache: a compiled plan borrows only its rule, never
                                         // the instance, so it survives across steps — it is rebuilt exactly
                                         // when the instance's statistics epoch has moved since it was planned.
                                         // The epoch is recorded *after* planning, because planning itself
                                         // ensures indexes (which bumps the epoch); a plan must not invalidate
                                         // itself.
    let mut cached: Option<(u64, Vec<RulePlan<'_>>)> = None;
    for step in 0.. {
        if let Some(reason) = gov.trip_async() {
            return Ok(Some(reason));
        }
        if step >= gov.max_steps {
            return Ok(Some(AbortReason::StepLimit {
                limit: gov.max_steps,
            }));
        }
        report.steps += 1;
        let hit = cfg.use_plan_cache
            && cached
                .as_ref()
                .is_some_and(|(epoch, _)| *epoch == work.stats_epoch());
        if hit {
            report.plans_cached += stage.rules.len();
        } else {
            let plans: Vec<RulePlan<'_>> = stage
                .rules
                .iter()
                .map(|r| plan_rule(r, work, cfg))
                .collect::<Result<Vec<_>>>()?;
            report.plans_fresh += plans.len();
            cached = Some((work.stats_epoch(), plans));
        }
        let plans = &cached.as_ref().expect("planned above").1;
        report.plans_reordered += plans.iter().filter(|p| p.reordered).count();
        let (changed, delta_out) = match one_step(
            stage,
            stage_idx,
            step,
            work,
            cfg,
            gov,
            report,
            delta.as_ref(),
            plans,
        )? {
            StepOut::Tripped(reason) => return Ok(Some(reason)),
            StepOut::Done {
                trip: Some(reason), ..
            } => {
                // A contained worker panic: the step applied minus the
                // panicked rule's derivations, then the run aborts so
                // the fault is never silent.
                return Ok(Some(reason));
            }
            StepOut::Done {
                changed,
                delta,
                trip: None,
            } => (changed, delta),
        };
        if !changed {
            break;
        }
        delta = if cfg.use_seminaive {
            Some(delta_out)
        } else {
            None
        };
        // Deterministic budgets, checked at the step boundary: the trip
        // point depends only on program and input, so the partial snapshot
        // is identical across thread counts. `fact_count` walks the
        // instance, so only pay for it when a budget is actually set.
        if gov.max_facts != usize::MAX && work.fact_count() > gov.max_facts {
            return Ok(Some(AbortReason::FactBudget {
                limit: gov.max_facts,
            }));
        }
        if let Some(limit) = gov.max_oids {
            if report.invented > limit {
                return Ok(Some(AbortReason::OidBudget { limit }));
            }
        }
        if let Some(limit) = gov.max_store_nodes {
            if work.store().len() > limit {
                return Ok(Some(AbortReason::StoreBudget { limit }));
            }
        }
        if let Some(limit) = gov.max_store_bytes {
            if work.store().heap_bytes() > limit {
                return Ok(Some(AbortReason::MemoryBudget { limit }));
            }
        }
    }
    Ok(None)
}

/// What [`one_step`] reports back to the stage driver.
enum StepOut {
    /// An asynchronous signal (deadline/cancellation) tripped mid-search;
    /// the whole step was discarded and the instance is untouched (the
    /// value store may have absorbed interned nodes — harmless, facts are
    /// what define the snapshot).
    Tripped(AbortReason),
    /// The step applied. `trip` carries a contained worker panic: the
    /// panicked rule's derivations are missing from this step and the run
    /// must abort after it.
    Done {
        changed: bool,
        delta: Delta,
        trip: Option<AbortReason>,
    },
}

/// The facts added by one step — what semi-naive evaluation joins against.
/// Relation deltas are interned ids into the working instance's store: the
/// store is append-only, so ids minted in step `n` stay valid in step `n+1`.
#[derive(Debug, Default, Clone)]
struct Delta {
    rels: BTreeMap<iql_model::RelName, BTreeSet<ValueId>>,
    classes: BTreeMap<ClassName, BTreeSet<Oid>>,
}

/// Is a rule syntactically eligible for delta-driven evaluation? Its truth
/// at a valuation must depend only on relation/class facts (monotone) and
/// the binding itself: no dereferences (ν changes untracked), no relation/
/// class terms inside comparisons (their whole extent is state), no
/// enumeration fallbacks (the active domain grows), no choose, no deletion.
fn rule_seminaive_eligible(rule: &Rule) -> bool {
    fn simple(t: &Term) -> bool {
        match t {
            Term::Var(_) | Term::Const(_) => true,
            Term::Rel(_) | Term::Class(_) | Term::Deref(_) => false,
            Term::Set(elems) => elems.iter().all(simple),
            Term::Tuple(fields) => fields.values().all(simple),
        }
    }
    if rule.head.is_deletion() || rule.has_choose() {
        return false;
    }
    // Head terms must be state-independent too: a head like `R1(z^)`
    // derives a *different* fact as ν(z) grows, so its valuations must be
    // re-fired every step (the constructive powerset depends on this).
    let head_ok = match &rule.head {
        Head::Rel(_, t) | Head::SetMember(_, t) | Head::Assign(_, t) => simple(t),
        Head::Class(_, _) => true,
        Head::DeleteRel(..) | Head::DeleteOid(..) | Head::DeleteSetMember(..) => false,
    };
    if !head_ok {
        return false;
    }
    let body_ok = rule.body.iter().all(|lit| match lit {
        Literal::Member { set, elem, .. } => {
            matches!(set, Term::Rel(_) | Term::Class(_) | Term::Var(_)) && simple(elem)
        }
        Literal::Eq { left, right, .. } => simple(left) && simple(right),
        Literal::Choose => false,
    });
    if !body_ok {
        return false;
    }
    // No enumeration fallbacks in the plan.
    match build_plan(rule) {
        Ok(plan) => !plan.iter().any(|op| matches!(op, Op::Enumerate { .. })),
        Err(_) => false,
    }
}

/// One unit of the phase-1 valuation search: one rule, optionally
/// restricted to the `outer`-th slice of its outermost relation/class scan
/// (how a single large rule is spread across workers).
struct SearchTask {
    ri: usize,
    /// `(skip, take)` over the first plan op's source scan.
    outer: Option<(usize, usize)>,
    /// Evaluate delta-driven (the rule is seminaive-eligible this step).
    delta_driven: bool,
}

/// What a search task produces: *pending* derivations only — guard-filtered
/// valuations in canonical (plan/delta) order — plus local statistics and
/// the worker's overlay log. Binding ids below the log's base length are
/// store ids of the frozen pre-step instance; ids at or above it index into
/// the log and are remapped when the merge phase absorbs it. Nothing here
/// touches the instance; all mutation happens in the deterministic merge.
struct SearchOut {
    fires: Vec<IdBinding>,
    enum_fallbacks: usize,
    index_hits: usize,
    index_misses: usize,
    log: OverlayLog,
}

/// Per-task scan statistics, threaded through [`find_valuations_id`].
#[derive(Default)]
struct ScanCounters {
    /// Probes answered by a persistent secondary index.
    index_hits: usize,
    /// Probes answered by a per-step rebuilt local index.
    index_misses: usize,
}

/// Does the previous step's delta contain any fact a scan over `source`
/// could draw? An empty source makes the whole delta-restricted run empty.
fn delta_has_source(delta: &Delta, source: &PlanSource) -> bool {
    match source {
        PlanSource::Rel(r) => delta.rels.get(r).is_some_and(|s| !s.is_empty()),
        PlanSource::Class(p) => delta.classes.get(p).is_some_and(|s| !s.is_empty()),
    }
}

/// [`run_search_task`] behind a panic barrier: a panic anywhere in the
/// search (or injected via `cfg.test_panic_rule`) is contained here, on the
/// worker's own stack, and surfaced as [`IqlError::WorkerPanic`] carrying
/// the rule index — it never unwinds through the scoped pool, so sibling
/// tasks finish normally and their results survive.
fn run_search_task_caught(
    task: &SearchTask,
    stage: &Stage,
    plan: &RulePlan<'_>,
    work: &Instance,
    cfg: &EvalConfig,
    gov: &Governor,
    delta_in: Option<&Delta>,
) -> Result<SearchOut> {
    catch_unwind(AssertUnwindSafe(|| {
        if cfg.test_panic_rule == Some(task.ri) {
            panic!("injected panic for rule {} (test hook)", task.ri);
        }
        run_search_task(task, stage, plan, work, cfg, gov, delta_in)
    }))
    .unwrap_or(Err(IqlError::WorkerPanic { rule: task.ri }))
}

/// Runs one search task against the frozen pre-step instance. Values the
/// body conjures that the store has not seen (constants from the rule text,
/// freshly built tuples/sets) are interned into a worker-local [`Overlay`];
/// the base store is never touched, so tasks run in parallel borrow-free.
#[allow(clippy::too_many_arguments)]
fn run_search_task(
    task: &SearchTask,
    stage: &Stage,
    plan: &RulePlan<'_>,
    work: &Instance,
    cfg: &EvalConfig,
    gov: &Governor,
    delta_in: Option<&Delta>,
) -> Result<SearchOut> {
    let rule = &stage.rules[task.ri];
    let view = work.id_view();
    let mut ov = Overlay::new(work.store());
    let mut enum_fallbacks = 0usize;
    let mut counters = ScanCounters::default();
    let valuations: Vec<IdBinding> = if task.delta_driven {
        // One run per relation/class scan, with that scan restricted to the
        // previous step's delta (a valuation is new only if at least one of
        // its supporting facts is). Positions whose source has no delta
        // facts are skipped — their restricted run is empty by definition.
        let delta = delta_in.expect("delta-driven task requires a delta");
        let mut acc: BTreeSet<IdBinding> = BTreeSet::new();
        for i in 0..plan.nscans() {
            if !delta_has_source(delta, &plan.sources[i]) {
                continue;
            }
            let vals = find_valuations_id(
                rule,
                plan,
                work,
                &view,
                &mut ov,
                cfg,
                gov,
                Some((delta, i)),
                None,
                &mut counters,
            )?;
            enum_fallbacks += plan.enum_fallbacks;
            acc.extend(vals);
        }
        acc.into_iter().collect()
    } else {
        let vals = find_valuations_id(
            rule,
            plan,
            work,
            &view,
            &mut ov,
            cfg,
            gov,
            None,
            task.outer,
            &mut counters,
        )?;
        enum_fallbacks += plan.enum_fallbacks;
        vals
    };
    let mut fires = Vec::new();
    let mut pacer = Pacer::new(gov);
    for theta in valuations {
        if let Some(reason) = pacer.tick(gov) {
            return Err(reason.into());
        }
        let fire = if rule.head.is_deletion() {
            // Deletion rules fire when the fact to delete exists.
            deletion_applicable_id(rule, &theta, &view, &mut ov)
        } else {
            !head_satisfiable_id(rule, &theta, &view, &mut ov)
        };
        if fire {
            fires.push(theta);
        }
    }
    Ok(SearchOut {
        fires,
        enum_fallbacks,
        index_hits: counters.index_hits,
        index_misses: counters.index_misses,
        log: ov.into_log(),
    })
}

/// Extent of a rule's outermost relation/class scan, when the rule is
/// eligible for chunked parallel evaluation: the plan must open with a
/// source scan and contain no enumeration fallback (enumeration cost would
/// be duplicated per chunk, and fallback counters would drift from the
/// sequential run).
fn outer_scan_len(plan: &RulePlan<'_>, inst: &Instance) -> Option<usize> {
    if plan.enum_fallbacks > 0 {
        return None;
    }
    match plan.ops.first() {
        Some(Op::Scan {
            src: Term::Rel(r), ..
        }) => inst.relation(*r).ok().map(|s| s.len()),
        Some(Op::Scan {
            src: Term::Class(p),
            ..
        }) => inst.class(*p).ok().map(|s| s.len()),
        _ => None,
    }
}

/// Minimum slice of an outermost scan worth handing to a worker.
const OUTER_CHUNK_MIN: usize = 32;

/// One application of the inflationary one-step operator `g1`.
#[allow(clippy::too_many_arguments)]
fn one_step(
    stage: &Stage,
    stage_idx: usize,
    step: usize,
    work: &mut Instance,
    cfg: &EvalConfig,
    gov: &Governor,
    report: &mut EvalReport,
    delta_in: Option<&Delta>,
    plans: &[RulePlan<'_>],
) -> Result<StepOut> {
    // Phase 1: valuation-domain against the frozen pre-step instance. Rule
    // bodies only *read* the snapshot, so the search is embarrassingly
    // parallel: partition the eligible rules (and the outermost scan of
    // large single rules) across the shared runtime's worker pool. Workers
    // produce pending derivations only; the merge below walks tasks in
    // fixed (rule, chunk) order, so the fires list — and with it fact
    // insertion and oid numbering — is bit-identical to the sequential run.
    // Plans arrive from the stage driver (freshly built or cache-reused;
    // either way their probe indexes are ensured on the instance).
    let search_started = std::time::Instant::now();
    let nthreads = cfg.effective_threads();
    // Deletions un-block guards (a deleted head fact lets an old valuation
    // fire again), so any deletion rule in the stage disables delta-driven
    // evaluation for the whole stage.
    let stage_deletes = stage.rules.iter().any(|r| r.head.is_deletion());
    let mut tasks: Vec<SearchTask> = Vec::new();
    for (ri, rule) in stage.rules.iter().enumerate() {
        let delta_driven = delta_in.is_some()
            && cfg.use_seminaive
            && !stage_deletes
            && rule_seminaive_eligible(rule);
        if delta_driven {
            // Early exit: when every scan source of the rule is empty in
            // the delta, each delta-restricted run is empty — don't even
            // schedule the task. (`changed` bookkeeping can keep a stage
            // running on ν-only progress with an empty relation delta.)
            let delta = delta_in.expect("delta-driven requires a delta");
            if !rule_delta_supported(plans[ri].sources.iter(), |s| delta_has_source(delta, s)) {
                continue;
            }
            tasks.push(SearchTask {
                ri,
                outer: None,
                delta_driven: true,
            });
            continue;
        }
        let chunkable = if nthreads > 1 {
            outer_scan_len(&plans[ri], work)
        } else {
            None
        };
        match chunkable {
            Some(len) => {
                // Slice the outermost scan into `(skip, take)` ranges via
                // the shared runtime (same arithmetic for both engines).
                // A single-range answer means "don't slice": `outer: None`
                // keeps the persistent-index fast path available.
                let ranges = chunk_ranges(len, nthreads, OUTER_CHUNK_MIN);
                if ranges.len() <= 1 {
                    tasks.push(SearchTask {
                        ri,
                        outer: None,
                        delta_driven: false,
                    });
                } else {
                    for (skip, take) in ranges {
                        tasks.push(SearchTask {
                            ri,
                            outer: Some((skip, take)),
                            delta_driven: false,
                        });
                    }
                }
            }
            None => tasks.push(SearchTask {
                ri,
                outer: None,
                delta_driven: false,
            }),
        }
    }

    // The shared worker-pool driver: inline when sequential, else a scoped
    // pool over an atomic task cursor, results returned in task order.
    let frozen: &Instance = work;
    let results: Vec<Result<SearchOut>> = run_tasks(&tasks, nthreads, |t| {
        run_search_task_caught(t, stage, &plans[t.ri], frozen, cfg, gov, delta_in)
    });

    // Deterministic merge of the search outputs: fixed rule order (tasks
    // are (rule, chunk)-sorted by construction), then each task's canonical
    // valuation order. The first error in task order wins. Each task's
    // overlay log is absorbed into the base store in that same order:
    // chunks slice the outermost scan in extent order, so replaying the
    // logs in task order reproduces the interning sequence of a sequential
    // run id for id — which is what keeps parallel output bit-identical.
    //
    // Governor routing: a deadline/cancellation trip inside any task
    // abandons the whole step (partial fires would make the snapshot
    // thread-count-dependent). A contained worker panic skips only the
    // panicked task's output — the surviving rules' derivations still
    // apply — and is reported upward so the run aborts after this step.
    let mut step_trip: Option<AbortReason> = None;
    let mut fires: Vec<(usize, IdBinding)> = Vec::new();
    for (task, out) in tasks.iter().zip(results) {
        let out = match out {
            Ok(out) => out,
            Err(IqlError::Deadline) => return Ok(StepOut::Tripped(AbortReason::Deadline)),
            Err(IqlError::Cancelled) => return Ok(StepOut::Tripped(AbortReason::Cancelled)),
            Err(IqlError::WorkerPanic { rule }) => {
                if step_trip.is_none() {
                    step_trip = Some(AbortReason::WorkerPanic { rule });
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        report.enum_fallbacks += out.enum_fallbacks;
        report.index_hits += out.index_hits;
        report.index_misses += out.index_misses;
        let base_len = out.log.base_len();
        let remap = work.store_mut().absorb(&out.log);
        for theta in out.fires {
            let theta = theta
                .into_iter()
                .map(|(v, id)| {
                    let id = if id.raw() < base_len {
                        id
                    } else {
                        remap[(id.raw() - base_len) as usize]
                    };
                    (v, id)
                })
                .collect();
            fires.push((task.ri, theta));
        }
    }
    // Canonical merge order: where fire order is observable — oid invention
    // numbers fresh oids in fire order, and deletions apply in it — sort
    // fires by rule, then by the *tree order* of the binding values. The
    // key compares resolved value structure, not raw ids, so every ablation
    // arm (planner, index, threads) lands on the same canonical order even
    // though each discovers and interns valuations differently. Elsewhere
    // fire order is unobservable (facts and assignments merge as sets), so
    // the sort — and its cost — is skipped.
    let order_observable = stage
        .rules
        .iter()
        .any(|r| !r.invention_vars().is_empty() || r.head.is_deletion());
    if order_observable && fires.len() > 1 {
        let store = work.store();
        fires.sort_by(|(ra, ta), (rb, tb)| ra.cmp(rb).then_with(|| cmp_id_bindings(store, ta, tb)));
    }
    let search_nanos = search_started.elapsed().as_nanos() as u64;
    let nfires = fires.len();
    for (ri, _) in &fires {
        *report.rule_fires.entry((stage_idx, *ri)).or_default() += 1;
    }
    let apply_started = std::time::Instant::now();

    // Phase 2: valuation-map (invention / choose) and fact derivation.
    let mut changed = false;
    let mut delta_out = Delta::default();
    let mut assignments: BTreeMap<Oid, BTreeSet<ValueId>> = BTreeMap::new();
    let mut deletions: Vec<(usize, IdBinding)> = Vec::new();
    // Pre-step ν snapshot for condition (†).
    let predefined: BTreeSet<Oid> = work
        .objects()
        .into_iter()
        .filter(|o| !work.is_set_valued(*o) && work.value(*o).is_some())
        .collect();
    // Choose candidates are computed against the frozen pre-step state, so
    // resolve every needed choice before any mutation happens.
    let mut choose_cache: BTreeMap<ClassName, Oid> = BTreeMap::new();
    for (ri, _) in &fires {
        let rule = &stage.rules[*ri];
        if rule.has_choose() && !rule.head.is_deletion() {
            for v in rule.invention_vars() {
                if let Some(TypeExpr::Class(p)) = rule.var_types.get(&v) {
                    choose_existing(work, *p, &mut choose_cache, cfg)?;
                }
            }
        }
    }

    for (ri, theta) in fires {
        let rule = &stage.rules[ri];
        if rule.head.is_deletion() {
            deletions.push((ri, theta));
            continue;
        }
        // Extend θ over the invention variables.
        let mut full = theta;
        for v in rule.invention_vars() {
            let class = match rule.var_types.get(&v) {
                Some(TypeExpr::Class(p)) => *p,
                _ => {
                    return Err(IqlError::Invalid(format!(
                        "invention variable {v} lost its class type"
                    )))
                }
            };
            let oid = if rule.has_choose() {
                choose_existing(work, class, &mut choose_cache, cfg)?
            } else {
                report.invented += 1;
                changed = true;
                let fresh = work.create_oid(class)?;
                delta_out.classes.entry(class).or_default().insert(fresh);
                fresh
            };
            let vid = work.store_mut().oid_id(oid);
            full.insert(v.clone(), vid);
        }
        // Derive the head fact. Head terms are evaluated over a split
        // borrow of the working instance — mutable store (the head may
        // build values the store has not seen) plus an id view of ρ/π/ν.
        match &rule.head {
            Head::Rel(r, t) => {
                let v = {
                    let (store, view) = work.store_and_view();
                    eval_term_id(t, &full, &view, store)
                }
                .ok_or_else(|| {
                    IqlError::Invalid(format!("head term {t} undefined at application"))
                })?;
                if work.insert_id(*r, v)? {
                    report.facts_added += 1;
                    changed = true;
                    delta_out.rels.entry(*r).or_default().insert(v);
                }
            }
            Head::Class(_, _) => {
                // Membership was established by invention (or was already
                // true for body-bound variables).
            }
            Head::SetMember(x, t) => {
                let oid = binding_oid_id(&full, x, work.store())?;
                let v = {
                    let (store, view) = work.store_and_view();
                    eval_term_id(t, &full, &view, store)
                }
                .ok_or_else(|| {
                    IqlError::Invalid(format!("head term {t} undefined at application"))
                })?;
                if work.add_set_member_id(oid, v)? {
                    report.facts_added += 1;
                    changed = true;
                }
            }
            Head::Assign(x, t) => {
                let oid = binding_oid_id(&full, x, work.store())?;
                let v = {
                    let (store, view) = work.store_and_view();
                    eval_term_id(t, &full, &view, store)
                }
                .ok_or_else(|| {
                    IqlError::Invalid(format!("head term {t} undefined at application"))
                })?;
                assignments.entry(oid).or_default().insert(v);
            }
            Head::DeleteRel(..) | Head::DeleteOid(..) | Head::DeleteSetMember(..) => {
                unreachable!("deletions routed above")
            }
        }
    }

    // Phase 3: weak assignments per condition (†).
    for (oid, values) in assignments {
        if predefined.contains(&oid) {
            continue; // value already determined — ignore new derivations
        }
        if values.len() != 1 {
            continue; // ambiguous parallel derivations — ignore all
        }
        let v = values.into_iter().next().expect("len checked");
        if work.define_value_id(oid, v)? {
            report.facts_added += 1;
            changed = true;
        }
    }

    // Phase 4: deletions (IQL*) — applied last; deletion wins over a
    // same-step addition. Deletion is the cold path: resolve the binding
    // ids back to o-value trees and reuse the tree-level removal API.
    for (ri, theta) in deletions {
        let rule = &stage.rules[ri];
        let theta: Binding = theta
            .iter()
            .map(|(v, &id)| (v.clone(), work.store().resolve(id)))
            .collect();
        match &rule.head {
            Head::DeleteRel(r, t) => {
                if let Some(v) = eval_term(t, &theta, work) {
                    if work.remove(*r, &v)? {
                        report.facts_deleted += 1;
                        changed = true;
                    }
                }
            }
            Head::DeleteOid(_, x) => {
                let oid = binding_oid(&theta, x)?;
                if work.class_of(oid).is_some() {
                    work.delete_oid(oid)?;
                    report.facts_deleted += 1;
                    changed = true;
                }
            }
            Head::DeleteSetMember(x, t) => {
                let oid = binding_oid(&theta, x)?;
                if let Some(v) = eval_term(t, &theta, work) {
                    if let Some(OValue::Set(s)) = work.value(oid) {
                        if s.contains(&v) {
                            let mut s2 = s.clone();
                            s2.remove(&v);
                            work.overwrite_value(oid, OValue::Set(s2))?;
                            report.facts_deleted += 1;
                            changed = true;
                        }
                    }
                }
            }
            _ => unreachable!(),
        }
    }

    report.step_timings.push(StepTiming {
        stage: stage_idx,
        step,
        search_nanos,
        apply_nanos: apply_started.elapsed().as_nanos() as u64,
        fires: nfires,
    });
    Ok(StepOut::Done {
        changed,
        delta: delta_out,
        trip: step_trip,
    })
}

/// Total order on two valuations of the same rule by variable name, then by
/// the tree order of the bound values ([`ValueReader::cmp_resolved`]) —
/// id-numbering-independent, hence canonical across evaluation strategies.
fn cmp_id_bindings(store: &ValueStore, a: &IdBinding, b: &IdBinding) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let mut ib = b.iter();
    for (va, ia) in a {
        let Some((vb, id_b)) = ib.next() else {
            return Ordering::Greater;
        };
        let o = va.cmp(vb).then_with(|| store.cmp_resolved(*ia, *id_b));
        if o != Ordering::Equal {
            return o;
        }
    }
    if ib.next().is_some() {
        Ordering::Less
    } else {
        Ordering::Equal
    }
}

fn binding_oid(binding: &Binding, v: &VarName) -> Result<Oid> {
    match binding.get(v) {
        Some(OValue::Oid(o)) => Ok(*o),
        other => Err(IqlError::Invalid(format!(
            "variable {v} should be bound to an oid, found {other:?}"
        ))),
    }
}

fn binding_oid_id<R: ValueReader + ?Sized>(
    binding: &IdBinding,
    v: &VarName,
    reader: &R,
) -> Result<Oid> {
    match binding.get(v).map(|&id| reader.as_oid(id)) {
        Some(Some(o)) => Ok(o),
        _ => {
            let found = binding.get(v).map(|&id| reader.resolve(id));
            Err(IqlError::Invalid(format!(
                "variable {v} should be bound to an oid, found {found:?}"
            )))
        }
    }
}

/// Picks an existing object of `class` generically (Section 4.4): legal when
/// the candidates are pairwise automorphic (then any pick yields an
/// isomorphic result — we take the canonical minimum) or unique.
fn choose_existing(
    work: &Instance,
    class: ClassName,
    cache: &mut BTreeMap<ClassName, Oid>,
    cfg: &EvalConfig,
) -> Result<Oid> {
    if let Some(o) = cache.get(&class) {
        return Ok(*o);
    }
    let candidates: Vec<Oid> = work.class(class)?.iter().copied().collect();
    if candidates.is_empty() {
        return Err(IqlError::ChoiceEmpty);
    }
    let picked = if candidates.len() == 1 {
        candidates[0]
    } else {
        if cfg.nondeterministic_choice {
            // N-IQL: any pick is allowed; take the canonical minimum so
            // runs stay reproducible even though the semantics is
            // nondeterministic.
            candidates[0]
        } else {
            let orbs = orbits(work, &candidates);
            if orbs.len() > 1 {
                return Err(IqlError::ChoiceNotGeneric { orbits: orbs.len() });
            }
            candidates[0]
        }
    };
    cache.insert(class, picked);
    Ok(picked)
}

// ---------------------------------------------------------------------
// Term evaluation and pattern matching
// ---------------------------------------------------------------------

/// Evaluates a term under a binding; `None` means the valuation is undefined
/// on the term (unbound variable, or dereference of an undefined oid).
pub fn eval_term(term: &Term, binding: &Binding, inst: &Instance) -> Option<OValue> {
    match term {
        Term::Var(v) => binding.get(v).cloned(),
        Term::Const(c) => Some(OValue::Const(c.clone())),
        Term::Rel(r) => Some(OValue::Set(inst.relation(*r).ok()?.clone())),
        Term::Class(p) => Some(OValue::Set(
            inst.class(*p)
                .ok()?
                .iter()
                .copied()
                .map(OValue::Oid)
                .collect(),
        )),
        Term::Deref(v) => match binding.get(v) {
            Some(OValue::Oid(o)) => inst.value(*o).cloned(),
            _ => None,
        },
        Term::Set(elems) => {
            let mut out = BTreeSet::new();
            for e in elems {
                out.insert(eval_term(e, binding, inst)?);
            }
            Some(OValue::Set(out))
        }
        Term::Tuple(fields) => {
            let mut out = BTreeMap::new();
            for (a, t) in fields {
                out.insert(*a, eval_term(t, binding, inst)?);
            }
            Some(OValue::Tuple(out))
        }
    }
}

/// Matches `pattern` against `value` under `binding`, collecting **every**
/// extending binding into `out`. Most patterns are deterministic (zero or
/// one extension); set-literal patterns may match in several ways
/// (`{x, y} = {1, 2}` binds both assignments), and each is a distinct
/// valuation per the paper's semantics.
///
/// Newly bound variables are checked against their declared type: a
/// valuation must satisfy `θx ∈ ⟦t⟧π` (Section 3.2). This is what makes
/// union-coercion equalities (`w = v` with `w` typed at one branch of
/// `v`'s union type) act as runtime branch filters — exactly how the
/// paper's Example 3.4.3 discriminates union values.
///
/// This is the tree-level companion of the interned matcher the evaluator
/// uses internally; it is exposed for tooling and tests that work with
/// [`OValue`]s directly.
pub fn match_term_all(
    pattern: &Term,
    value: &OValue,
    binding: &Binding,
    types: &BTreeMap<VarName, TypeExpr>,
    inst: &Instance,
    out: &mut Vec<Binding>,
) {
    match pattern {
        Term::Var(v) => match binding.get(v) {
            Some(bound) => {
                if bound == value {
                    out.push(binding.clone());
                }
            }
            None => {
                if let Some(ty) = types.get(v) {
                    if !ty.member(value, inst) {
                        return; // ill-typed binding is not a valuation
                    }
                }
                let mut b = binding.clone();
                b.insert(v.clone(), value.clone());
                out.push(b);
            }
        },
        Term::Const(c) => {
            if matches!(value, OValue::Const(c2) if c == c2) {
                out.push(binding.clone());
            }
        }
        Term::Rel(_) | Term::Class(_) | Term::Deref(_) => {
            if eval_term(pattern, binding, inst).as_ref() == Some(value) {
                out.push(binding.clone());
            }
        }
        Term::Tuple(fields) => {
            let OValue::Tuple(vals) = value else { return };
            if fields.len() != vals.len() || !fields.keys().eq(vals.keys()) {
                return;
            }
            let mut frontier = vec![binding.clone()];
            for (a, p) in fields {
                let mut next = Vec::new();
                for b in &frontier {
                    match_term_all(p, &vals[a], b, types, inst, &mut next);
                }
                frontier = next;
                if frontier.is_empty() {
                    return;
                }
            }
            out.extend(frontier);
        }
        Term::Set(pats) => {
            let OValue::Set(vals) = value else { return };
            // Bijective match: pattern elements map to distinct set
            // elements (duplicates among instantiated pattern elements
            // would collapse, so sizes must agree). ALL assignments are
            // produced.
            if pats.len() != vals.len() {
                return;
            }
            let vals: Vec<&OValue> = vals.iter().collect();
            fn go(
                pats: &[Term],
                vals: &[&OValue],
                used: &mut Vec<bool>,
                binding: &Binding,
                types: &BTreeMap<VarName, TypeExpr>,
                inst: &Instance,
                out: &mut Vec<Binding>,
            ) {
                let Some(p) = pats.first() else {
                    out.push(binding.clone());
                    return;
                };
                for (i, v) in vals.iter().enumerate() {
                    if used[i] {
                        continue;
                    }
                    let mut exts = Vec::new();
                    match_term_all(p, v, binding, types, inst, &mut exts);
                    if !exts.is_empty() {
                        used[i] = true;
                        for ext in &exts {
                            go(&pats[1..], vals, used, ext, types, inst, out);
                        }
                        used[i] = false;
                    }
                }
            }
            let mut used = vec![false; vals.len()];
            let mut local = Vec::new();
            go(pats, &vals, &mut used, binding, types, inst, &mut local);
            // Distinct assignment orders can produce identical bindings
            // (e.g. ground pattern elements); dedup locally to keep
            // valuations set-like without resorting the caller's
            // accumulator on every match.
            local.sort();
            local.dedup();
            out.extend(local);
        }
    }
}

// ---------------------------------------------------------------------
// Interned term evaluation and pattern matching
//
// The evaluator's hot path works entirely on ValueIds: scans iterate
// interned fact sets, joins probe id-keyed hash indexes, and bindings map
// variables to Copy ids. Reads go through an IdView of the frozen
// instance; values the rule text conjures out of thin air are interned
// into the worker's Overlay (base-first lookup, so anything the base store
// already knows keeps its base id — which makes base-id membership probes
// sound even against overlay-produced ids).
// ---------------------------------------------------------------------

/// Evaluates a term under an id binding; `None` means the valuation is
/// undefined on the term. The interned twin of [`eval_term`].
fn eval_term_id<I: ValueInterner>(
    term: &Term,
    binding: &IdBinding,
    view: &IdView<'_>,
    interner: &mut I,
) -> Option<ValueId> {
    match term {
        Term::Var(v) => binding.get(v).copied(),
        Term::Const(c) => Some(interner.const_id(c.clone())),
        Term::Rel(r) => {
            let ids: Vec<ValueId> = view.relation_ids(*r).ok()?.iter().copied().collect();
            Some(interner.set_id(ids))
        }
        Term::Class(p) => {
            let oids: Vec<Oid> = view.class(*p).ok()?.iter().copied().collect();
            let ids: Vec<ValueId> = oids.into_iter().map(|o| interner.oid_id(o)).collect();
            Some(interner.set_id(ids))
        }
        Term::Deref(v) => {
            let o = interner.as_oid(*binding.get(v)?)?;
            view.value_id(o)
        }
        Term::Set(elems) => {
            let mut ids = Vec::with_capacity(elems.len());
            for e in elems {
                ids.push(eval_term_id(e, binding, view, interner)?);
            }
            Some(interner.set_id(ids))
        }
        Term::Tuple(fields) => {
            let mut entries = Vec::with_capacity(fields.len());
            for (a, t) in fields {
                entries.push((*a, eval_term_id(t, binding, view, interner)?));
            }
            Some(interner.tuple_id(entries))
        }
    }
}

/// The interned twin of [`match_term_all`]: collects every extension of
/// `binding` matching `pattern` against the value behind `value`.
fn match_term_all_id<I: ValueInterner>(
    pattern: &Term,
    value: ValueId,
    binding: &IdBinding,
    types: &BTreeMap<VarName, TypeExpr>,
    view: &IdView<'_>,
    interner: &mut I,
    out: &mut Vec<IdBinding>,
) {
    match pattern {
        Term::Var(v) => match binding.get(v) {
            Some(&bound) => {
                if bound == value {
                    out.push(binding.clone());
                }
            }
            None => {
                if let Some(ty) = types.get(v) {
                    if !ty.member_id(value, interner, view) {
                        return; // ill-typed binding is not a valuation
                    }
                }
                let mut b = binding.clone();
                b.insert(v.clone(), value);
                out.push(b);
            }
        },
        Term::Const(c) => {
            if matches!(interner.node(value), Node::Const(c2) if c == c2) {
                out.push(binding.clone());
            }
        }
        Term::Rel(_) | Term::Class(_) | Term::Deref(_) => {
            if eval_term_id(pattern, binding, view, interner) == Some(value) {
                out.push(binding.clone());
            }
        }
        Term::Tuple(fields) => {
            let Node::Tuple(entries) = interner.node(value) else {
                return;
            };
            if fields.len() != entries.len()
                || !fields.keys().copied().eq(entries.iter().map(|(a, _)| *a))
            {
                return;
            }
            // Both sides are attribute-sorted, so position i of the node
            // is the value of the i-th pattern field.
            let entries = Arc::clone(entries);
            let mut frontier = vec![binding.clone()];
            for ((_, p), &(_, vid)) in fields.iter().zip(entries.iter()) {
                let mut next = Vec::new();
                for b in &frontier {
                    match_term_all_id(p, vid, b, types, view, interner, &mut next);
                }
                frontier = next;
                if frontier.is_empty() {
                    return;
                }
            }
            out.extend(frontier);
        }
        Term::Set(pats) => {
            let Node::Set(vals) = interner.node(value) else {
                return;
            };
            // Bijective match, as in the tree matcher: every assignment of
            // pattern elements to distinct set elements is produced.
            if pats.len() != vals.len() {
                return;
            }
            let vals = Arc::clone(vals);
            #[allow(clippy::too_many_arguments)]
            fn go<I: ValueInterner>(
                pats: &[Term],
                vals: &[ValueId],
                used: &mut Vec<bool>,
                binding: &IdBinding,
                types: &BTreeMap<VarName, TypeExpr>,
                view: &IdView<'_>,
                interner: &mut I,
                out: &mut Vec<IdBinding>,
            ) {
                let Some(p) = pats.first() else {
                    out.push(binding.clone());
                    return;
                };
                for (i, &v) in vals.iter().enumerate() {
                    if used[i] {
                        continue;
                    }
                    let mut exts = Vec::new();
                    match_term_all_id(p, v, binding, types, view, interner, &mut exts);
                    if !exts.is_empty() {
                        used[i] = true;
                        for ext in &exts {
                            go(&pats[1..], vals, used, ext, types, view, interner, out);
                        }
                        used[i] = false;
                    }
                }
            }
            let mut used = vec![false; vals.len()];
            let mut local = Vec::new();
            go(
                pats, &vals, &mut used, binding, types, view, interner, &mut local,
            );
            // Distinct assignment orders can produce identical bindings;
            // dedup locally to keep valuations set-like.
            local.sort();
            local.dedup();
            out.extend(local);
        }
    }
}

fn undo_id(binding: &mut IdBinding, trail: &mut Vec<VarName>, mark: usize) {
    while trail.len() > mark {
        let v = trail.pop().expect("trail non-empty");
        binding.remove(&v);
    }
}

// ---------------------------------------------------------------------
// Valuation search
// ---------------------------------------------------------------------

/// Renders the execution plan of a rule body — `EXPLAIN` for IQL. Useful
/// for understanding evaluation cost (scans vs. hash joins vs. enumeration
/// fallbacks) and exposed through the `iql explain` CLI subcommand.
pub fn explain_rule(rule: &Rule) -> Result<String> {
    let plan = build_plan(rule)?;
    let mut out = format!("plan for: {rule}\n");
    render_ops(&plan, &mut out);
    Ok(out)
}

/// Renders the plan the evaluator would execute for `rule` against the
/// current statistics of `work`: cost-based order and static probe choices
/// applied, probe indexes ensured — exactly what [`plan_rule`] hands the
/// executor. Backs the CLI's `run --explain`.
pub fn explain_rule_planned(rule: &Rule, work: &mut Instance, cfg: &EvalConfig) -> Result<String> {
    let plan = plan_rule(rule, work, cfg)?;
    let mut out = format!(
        "plan for: {rule}{}\n",
        if plan.reordered { "  [reordered]" } else { "" }
    );
    render_ops(&plan.ops, &mut out);
    Ok(out)
}

fn render_ops(ops: &[Op<'_>], out: &mut String) {
    use std::fmt::Write;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Scan {
                src,
                pat,
                probe: Some((attr, key)),
            } => {
                let _ = writeln!(
                    out,
                    "  {i}: scan {src} via index .{attr}={key}, match {pat}"
                );
            }
            Op::Scan {
                src,
                pat,
                probe: None,
            } => {
                let _ = writeln!(out, "  {i}: scan {src}, match {pat}");
            }
            Op::BindEq { src, pat } => {
                let _ = writeln!(out, "  {i}: eval {src}, match {pat}");
            }
            Op::Enumerate { item: (var, ty) } => {
                let _ = writeln!(
                    out,
                    "  {i}: enumerate {var} over active-domain {ty}  [expensive]"
                );
            }
            Op::Filter { guard } => {
                let _ = writeln!(out, "  {i}: filter {guard}");
            }
            Op::NegGuard { guard } => {
                let _ = writeln!(out, "  {i}: filter {guard}");
            }
        }
    }
}

/// Computes all valuations `θ` of the body variables with `I ⊨ θ body`,
/// executing a pre-built [`RulePlan`].
///
/// When `delta` is `Some((d, i))`, the `i`-th relation/class scan of the
/// plan draws from the delta instead of the full extent — the
/// differentiated join of semi-naive evaluation. When `outer` is
/// `Some((skip, take))`, the *first* plan op (a relation/class scan — the
/// caller checks eligibility via [`outer_scan_len`]) iterates only that
/// slice of its extent, in extent order — how one large rule is partitioned
/// across parallel workers without perturbing valuation order.
///
/// Index usage per relation scan, in preference order:
/// 1. the planner's statically chosen probe attribute against the
///    instance's *persistent* index (full-extent scans only — counted as
///    `index_hits`);
/// 2. the same probe attribute against a scan-local index over the
///    materialized candidates (delta/sliced scans — `index_misses`);
/// 3. the legacy per-binding dynamic probe with lazily built local
///    indexes (`index_misses`), when the planner chose no probe.
#[allow(clippy::too_many_arguments)]
fn find_valuations_id(
    rule: &Rule,
    plan: &RulePlan<'_>,
    inst: &Instance,
    view: &IdView<'_>,
    ov: &mut Overlay<'_>,
    cfg: &EvalConfig,
    gov: &Governor,
    delta: Option<(&Delta, usize)>,
    outer: Option<(usize, usize)>,
    counters: &mut ScanCounters,
) -> Result<Vec<IdBinding>> {
    let mut source_scan_idx = 0usize;
    // Cooperative poll for deadline/cancellation, strided so the ungoverned
    // hot path pays one predictable branch per iteration. Ticks sit on the
    // loops that can run away: per frontier binding at every op, and per
    // candidate fact/oid on the unbounded extent scans (a divergent program
    // spends whole steps inside a single binding's scan).
    let mut pacer = Pacer::new(gov);

    // ---- Execute the plan over a frontier of id bindings. ----
    let mut frontier: Vec<IdBinding> = vec![IdBinding::new()];
    for (op_idx, op) in plan.ops.iter().enumerate() {
        if frontier.is_empty() {
            return Ok(frontier);
        }
        let slice = match outer {
            Some(range) if op_idx == 0 => Some(range),
            _ => None,
        };
        let mut next: Vec<IdBinding> = Vec::new();
        match op {
            Op::Scan {
                src: set,
                pat: elem,
                probe,
            } => {
                // Is this relation/class scan the differentiated position?
                let restrict = match (set, delta) {
                    (Term::Rel(_) | Term::Class(_), Some((d, at))) => {
                        let hit = source_scan_idx == at;
                        source_scan_idx += 1;
                        if hit {
                            Some(d)
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                match set {
                    Term::Rel(r) => {
                        // Error parity across access paths: an unknown
                        // relation is an error no matter which index (if
                        // any) would serve the scan.
                        let extent = view.relation_ids(*r)?;
                        let probe = *probe;

                        // Fast path: a full-extent scan whose planner-chosen
                        // probe attribute has a built persistent index on
                        // the frozen instance — no materialization, no
                        // per-scan index build, one id hash per binding.
                        // A probe key the base store has never seen gets an
                        // overlay-local id, which correctly misses every
                        // (base-id) index entry. Postings are id-ordered,
                        // matching extent-scan order, so valuation order is
                        // unchanged.
                        let persistent = if slice.is_none() && restrict.is_none() {
                            probe.and_then(|(attr, _)| view.rel_index(*r, attr))
                        } else {
                            None
                        };
                        if let (Some(index), Some((_, pterm))) = (persistent, probe) {
                            for binding in &frontier {
                                if let Some(r) = pacer.tick(gov) {
                                    return Err(r.into());
                                }
                                counters.index_hits += 1;
                                // The probe term is fully bound under every
                                // frontier binding (planner invariant); if
                                // it is undefined, no fact can match.
                                let Some(key) = eval_term_id(pterm, binding, view, ov) else {
                                    continue;
                                };
                                for &fid in index.get(key) {
                                    match_term_all_id(
                                        elem,
                                        fid,
                                        binding,
                                        &rule.var_types,
                                        view,
                                        ov,
                                        &mut next,
                                    );
                                }
                            }
                            frontier = next;
                            continue;
                        }

                        // Materialize the candidate ids once per scan: the
                        // full extent, the delta, or the slice of a
                        // partitioned outermost scan — always in id order,
                        // so chunk concatenation preserves the sequential
                        // valuation order.
                        let facts: Vec<ValueId> = match (slice, restrict) {
                            (Some((skip, take)), _) => {
                                debug_assert!(
                                    restrict.is_none(),
                                    "chunked scans are never delta-driven"
                                );
                                extent.iter().skip(skip).take(take).copied().collect()
                            }
                            (None, Some(d)) => d
                                .rels
                                .get(r)
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default(),
                            (None, None) => extent.iter().copied().collect(),
                        };
                        if let Some((attr, pterm)) = probe {
                            // Planner-chosen probe over a restricted scan
                            // (delta or slice): one scan-local index over
                            // the materialized candidates.
                            let index = build_attr_index_id(&facts, attr, &*ov);
                            for binding in &frontier {
                                if let Some(r) = pacer.tick(gov) {
                                    return Err(r.into());
                                }
                                counters.index_misses += 1;
                                let Some(key) = eval_term_id(pterm, binding, view, ov) else {
                                    continue;
                                };
                                if let Some(cands) = index.get(&key) {
                                    for &fid in cands {
                                        match_term_all_id(
                                            elem,
                                            fid,
                                            binding,
                                            &rule.var_types,
                                            view,
                                            ov,
                                            &mut next,
                                        );
                                    }
                                }
                            }
                            frontier = next;
                            continue;
                        }
                        // Legacy dynamic path (planner off, or no static
                        // probe found): per-scan hash indexes on bound
                        // tuple attributes, built lazily per attribute,
                        // probed per binding. Keys and candidates are ids,
                        // so building hashes u32s instead of o-value trees.
                        let mut indexes: BTreeMap<AttrName, HashMap<ValueId, Vec<ValueId>>> =
                            BTreeMap::new();
                        for binding in &frontier {
                            if let Some(r) = pacer.tick(gov) {
                                return Err(r.into());
                            }
                            let probe = if cfg.use_index {
                                find_probe_id(elem, binding, view, ov)
                            } else {
                                None
                            };
                            match probe {
                                Some((attr, key)) => {
                                    counters.index_misses += 1;
                                    let index = indexes
                                        .entry(attr)
                                        .or_insert_with(|| build_attr_index_id(&facts, attr, &*ov));
                                    if let Some(cands) = index.get(&key) {
                                        for &fid in cands {
                                            match_term_all_id(
                                                elem,
                                                fid,
                                                binding,
                                                &rule.var_types,
                                                view,
                                                ov,
                                                &mut next,
                                            );
                                        }
                                    }
                                }
                                None => {
                                    for &fid in &facts {
                                        if let Some(r) = pacer.tick(gov) {
                                            return Err(r.into());
                                        }
                                        match_term_all_id(
                                            elem,
                                            fid,
                                            binding,
                                            &rule.var_types,
                                            view,
                                            ov,
                                            &mut next,
                                        );
                                    }
                                }
                            }
                        }
                    }
                    Term::Class(p) => {
                        let oids: Vec<Oid> = match (slice, restrict) {
                            (Some((skip, take)), _) => {
                                debug_assert!(
                                    restrict.is_none(),
                                    "chunked scans are never delta-driven"
                                );
                                view.class(*p)?
                                    .iter()
                                    .skip(skip)
                                    .take(take)
                                    .copied()
                                    .collect()
                            }
                            (None, Some(d)) => d
                                .classes
                                .get(p)
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default(),
                            (None, None) => view.class(*p)?.iter().copied().collect(),
                        };
                        for binding in &frontier {
                            for &o in &oids {
                                if let Some(r) = pacer.tick(gov) {
                                    return Err(r.into());
                                }
                                let vid = ov.oid_id(o);
                                match_term_all_id(
                                    elem,
                                    vid,
                                    binding,
                                    &rule.var_types,
                                    view,
                                    ov,
                                    &mut next,
                                );
                            }
                        }
                    }
                    _ => {
                        for binding in &frontier {
                            if let Some(r) = pacer.tick(gov) {
                                return Err(r.into());
                            }
                            let Some(sid) = eval_term_id(set, binding, view, ov) else {
                                continue; // undefined ⇒ unsatisfied
                            };
                            let elems: Arc<[ValueId]> = match ov.node(sid) {
                                Node::Set(e) => Arc::clone(e),
                                _ => continue, // non-set ⇒ unsatisfied (typing!)
                            };
                            for &vid in elems.iter() {
                                match_term_all_id(
                                    elem,
                                    vid,
                                    binding,
                                    &rule.var_types,
                                    view,
                                    ov,
                                    &mut next,
                                );
                            }
                        }
                    }
                }
            }
            Op::BindEq { src, pat } => {
                for binding in &frontier {
                    if let Some(r) = pacer.tick(gov) {
                        return Err(r.into());
                    }
                    let Some(val) = eval_term_id(src, binding, view, ov) else {
                        continue;
                    };
                    match_term_all_id(pat, val, binding, &rule.var_types, view, ov, &mut next);
                }
            }
            Op::Enumerate { item: (var, ty) } => {
                let values = inst.enumerate_type(ty, cfg.enum_budget).map_err(|e| {
                    // Surface the variable whose active-domain enumeration
                    // blew the budget; other model errors pass through.
                    match e {
                        iql_model::ModelError::EnumerationBudget { budget, ty } => {
                            IqlError::EnumBudget {
                                var: var.clone(),
                                ty,
                                budget,
                            }
                        }
                        other => IqlError::Model(other),
                    }
                })?;
                // Intern in enumeration (tree) order — deterministic, and
                // shared substructure across enumerated values is free.
                let ids: Vec<ValueId> = values.iter().map(|v| ov.intern(v)).collect();
                for binding in &frontier {
                    match binding.get(var) {
                        Some(bound) => {
                            if ids.contains(bound) {
                                next.push(binding.clone());
                            }
                        }
                        None => {
                            for &idv in &ids {
                                let mut b = binding.clone();
                                b.insert(var.clone(), idv);
                                next.push(b);
                            }
                        }
                    }
                }
            }
            // Positive guards and negation guards execute identically here
            // (`literal_satisfied_id` honours the literal's own polarity);
            // the IR keeps them distinct because negation placement is the
            // semantically delicate part of planning.
            Op::Filter { guard } | Op::NegGuard { guard } => {
                for binding in &frontier {
                    if let Some(r) = pacer.tick(gov) {
                        return Err(r.into());
                    }
                    if literal_satisfied_id(guard, binding, view, ov) {
                        next.push(binding.clone());
                    }
                }
            }
        }
        frontier = next;
    }
    Ok(frontier)
}

/// Finds an indexable (attribute, key) pair: a tuple-pattern field whose
/// term is fully evaluable under the current binding.
fn find_probe_id<I: ValueInterner>(
    elem: &Term,
    binding: &IdBinding,
    view: &IdView<'_>,
    interner: &mut I,
) -> Option<(AttrName, ValueId)> {
    let Term::Tuple(fields) = elem else {
        return None;
    };
    for (attr, t) in fields {
        let mut vs = BTreeSet::new();
        t.vars(&mut vs);
        if vs.iter().all(|v| binding.contains_key(v)) {
            if let Some(key) = eval_term_id(t, binding, view, interner) {
                return Some((*attr, key));
            }
        }
    }
    None
}

/// Builds a hash index over a relation's tuples keyed by one attribute:
/// key id → fact ids, via a binary search of each tuple node's sorted
/// attribute entries (no tree walks, no cloning).
fn build_attr_index_id<R: ValueReader + ?Sized>(
    facts: &[ValueId],
    attr: AttrName,
    reader: &R,
) -> HashMap<ValueId, Vec<ValueId>> {
    let mut idx: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
    for &fid in facts {
        if let Node::Tuple(entries) = reader.node(fid) {
            if let Ok(i) = entries.binary_search_by_key(&attr, |&(a, _)| a) {
                idx.entry(entries[i].1).or_default().push(fid);
            }
        }
    }
    idx
}

/// `I ⊨ θ lit` for a fully-bound literal. Membership in a relation or
/// class extent is decided against the id sets directly — no set value is
/// materialized for the common `x ∈ R` / `x ∉ R` probes.
fn literal_satisfied_id<I: ValueInterner>(
    lit: &Literal,
    binding: &IdBinding,
    view: &IdView<'_>,
    interner: &mut I,
) -> bool {
    match lit {
        Literal::Member {
            set,
            elem,
            positive,
        } => {
            let Some(ev) = eval_term_id(elem, binding, view, interner) else {
                return false; // valuation must be defined on both terms
            };
            match set {
                Term::Rel(r) => view
                    .relation_ids(*r)
                    .map(|s| s.contains(&ev) == *positive)
                    .unwrap_or(false),
                Term::Class(p) => {
                    let Ok(s) = view.class(*p) else { return false };
                    let member = interner.as_oid(ev).map(|o| s.contains(&o)).unwrap_or(false);
                    member == *positive
                }
                _ => {
                    let Some(sv) = eval_term_id(set, binding, view, interner) else {
                        return false;
                    };
                    match interner.set_contains(sv, ev) {
                        Some(m) => m == *positive,
                        None => false, // non-set ⇒ unsatisfied
                    }
                }
            }
        }
        Literal::Eq {
            left,
            right,
            positive,
        } => {
            let (Some(lv), Some(rv)) = (
                eval_term_id(left, binding, view, interner),
                eval_term_id(right, binding, view, interner),
            ) else {
                return false;
            };
            (lv == rv) == *positive
        }
        Literal::Choose => true,
    }
}

// ---------------------------------------------------------------------
// Head-satisfaction guard (the val-dom "no extension" condition)
// ---------------------------------------------------------------------

/// Is there an extension `θ̄` of `θ` over the invention variables such that
/// `I ⊨ θ̄ head`? (If so, the pair is *not* in the valuation-domain.)
///
/// Fully-bound heads reduce to a single id-set membership probe. With
/// invention variables, candidate facts are pattern-matched by id; an
/// overlay-local id on either side proves the value is absent from the
/// frozen base store, so base-id comparisons stay sound throughout.
fn head_satisfiable_id<I: ValueInterner>(
    rule: &Rule,
    theta: &IdBinding,
    view: &IdView<'_>,
    interner: &mut I,
) -> bool {
    let no_invention = rule.invention_vars().is_empty();
    match &rule.head {
        Head::Rel(r, t) => {
            let Ok(facts) = view.relation_ids(*r) else {
                return false;
            };
            if no_invention {
                // Fully bound head: a set-membership probe suffices.
                return match eval_term_id(t, theta, view, interner) {
                    Some(v) => facts.contains(&v),
                    None => false,
                };
            }
            facts.iter().any(|&fid| {
                let mut b = theta.clone();
                let mut trail = Vec::new();
                match_term_extension_id(t, fid, &mut b, &mut trail, view, interner, rule)
            })
        }
        Head::Class(p, v) => match theta.get(v) {
            Some(&id) => match interner.as_oid(id) {
                Some(o) => view.class(*p).map(|s| s.contains(&o)).unwrap_or(false),
                None => false,
            },
            // Invention variable: satisfied iff some existing oid inhabits P.
            None => view.class(*p).map(|s| !s.is_empty()).unwrap_or(false),
        },
        Head::SetMember(x, t) => {
            let candidates: Vec<Oid> = match theta.get(x) {
                Some(&id) => match interner.as_oid(id) {
                    Some(o) => vec![o],
                    None => return false,
                },
                None => match rule.var_types.get(x) {
                    Some(TypeExpr::Class(p)) => view
                        .class(*p)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default(),
                    _ => return false,
                },
            };
            candidates.iter().any(|o| {
                let Some(sid) = view.value_id(*o) else {
                    return false;
                };
                let elems: Arc<[ValueId]> = match interner.node(sid) {
                    Node::Set(e) => Arc::clone(e),
                    _ => return false,
                };
                if no_invention {
                    return match eval_term_id(t, theta, view, interner) {
                        Some(v) => elems.binary_search(&v).is_ok(),
                        None => false,
                    };
                }
                elems.iter().any(|&member| {
                    let mut b = theta.clone();
                    let mut trail = Vec::new();
                    match_term_extension_id(t, member, &mut b, &mut trail, view, interner, rule)
                })
            })
        }
        Head::Assign(x, t) => {
            let candidates: Vec<Oid> = match theta.get(x) {
                Some(&id) => match interner.as_oid(id) {
                    Some(o) => vec![o],
                    None => return false,
                },
                None => match rule.var_types.get(x) {
                    Some(TypeExpr::Class(p)) => view
                        .class(*p)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default(),
                    _ => return false,
                },
            };
            candidates.iter().any(|o| match view.value_id(*o) {
                Some(vid) => {
                    if no_invention {
                        return eval_term_id(t, theta, view, interner) == Some(vid);
                    }
                    let mut b = theta.clone();
                    let mut trail = Vec::new();
                    match_term_extension_id(t, vid, &mut b, &mut trail, view, interner, rule)
                }
                None => false,
            })
        }
        Head::DeleteRel(..) | Head::DeleteOid(..) | Head::DeleteSetMember(..) => false,
    }
}

/// Like [`match_term_all_id`], but finds *one* extension, mutating the
/// binding with trail-based backtracking; unbound variables may only bind
/// to values of their declared type (extensions assign invention variables
/// *existing* objects of their class).
#[allow(clippy::too_many_arguments)]
fn match_term_extension_id<I: ValueInterner>(
    pattern: &Term,
    value: ValueId,
    binding: &mut IdBinding,
    trail: &mut Vec<VarName>,
    view: &IdView<'_>,
    interner: &mut I,
    rule: &Rule,
) -> bool {
    match pattern {
        Term::Var(v) => match binding.get(v) {
            Some(&bound) => bound == value,
            None => {
                // Extension: value must inhabit the variable's type.
                if let Some(ty) = rule.var_types.get(v) {
                    if !ty.member_id(value, interner, view) {
                        return false;
                    }
                }
                binding.insert(v.clone(), value);
                trail.push(v.clone());
                true
            }
        },
        Term::Tuple(fields) => {
            let Node::Tuple(entries) = interner.node(value) else {
                return false;
            };
            if fields.len() != entries.len()
                || !fields.keys().copied().eq(entries.iter().map(|(a, _)| *a))
            {
                return false;
            }
            let entries = Arc::clone(entries);
            let mark = trail.len();
            for ((_, p), &(_, vid)) in fields.iter().zip(entries.iter()) {
                if !match_term_extension_id(p, vid, binding, trail, view, interner, rule) {
                    undo_id(binding, trail, mark);
                    return false;
                }
            }
            true
        }
        Term::Set(pats) => {
            let Node::Set(vals) = interner.node(value) else {
                return false;
            };
            if pats.len() != vals.len() {
                return false;
            }
            let vals = Arc::clone(vals);
            #[allow(clippy::too_many_arguments)]
            fn go<I: ValueInterner>(
                pats: &[Term],
                vals: &[ValueId],
                used: &mut Vec<bool>,
                binding: &mut IdBinding,
                trail: &mut Vec<VarName>,
                view: &IdView<'_>,
                interner: &mut I,
                rule: &Rule,
            ) -> bool {
                let Some(p) = pats.first() else { return true };
                for (i, &v) in vals.iter().enumerate() {
                    if used[i] {
                        continue;
                    }
                    let mark = trail.len();
                    if match_term_extension_id(p, v, binding, trail, view, interner, rule) {
                        used[i] = true;
                        if go(&pats[1..], vals, used, binding, trail, view, interner, rule) {
                            return true;
                        }
                        used[i] = false;
                    }
                    undo_id(binding, trail, mark);
                }
                false
            }
            let mut used = vec![false; vals.len()];
            go(pats, &vals, &mut used, binding, trail, view, interner, rule)
        }
        other => match eval_term_id(other, binding, view, interner) {
            Some(v) => v == value,
            None => false,
        },
    }
}

/// Does the deletion head's target fact exist under `θ`?
fn deletion_applicable_id<I: ValueInterner>(
    rule: &Rule,
    theta: &IdBinding,
    view: &IdView<'_>,
    interner: &mut I,
) -> bool {
    match &rule.head {
        Head::DeleteRel(r, t) => match eval_term_id(t, theta, view, interner) {
            Some(v) => view
                .relation_ids(*r)
                .map(|s| s.contains(&v))
                .unwrap_or(false),
            None => false,
        },
        Head::DeleteOid(p, x) => match theta.get(x).and_then(|&id| interner.as_oid(id)) {
            Some(o) => view.class(*p).map(|s| s.contains(&o)).unwrap_or(false),
            None => false,
        },
        Head::DeleteSetMember(x, t) => {
            let Some(o) = theta.get(x).and_then(|&id| interner.as_oid(id)) else {
                return false;
            };
            let Some(v) = eval_term_id(t, theta, view, interner) else {
                return false;
            };
            view.value_id(o)
                .map(|sid| interner.set_contains(sid, v) == Some(true))
                .unwrap_or(false)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;
    use iql_model::RelName;

    fn tc_unit() -> crate::parser::Unit {
        parse_unit(
            r#"
            schema {
              relation Edge: [src: D, dst: D];
              relation Tc:  [src: D, dst: D];
            }
            program {
              input Edge;
              output Tc;
              Tc(x, y) :- Edge(x, y);
              Tc(x, z) :- Tc(x, y), Edge(y, z);
            }
            instance {
              Edge("a", "b");
              Edge("b", "c");
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn explain_shows_scans_in_join_order() {
        let unit = tc_unit();
        let prog = unit.program.unwrap();
        let rule = &prog.stages[0].rules[1];
        let plan = explain_rule(rule).unwrap();
        assert!(plan.contains("scan Tc"));
        assert!(plan.contains("scan Edge"));
        // Tc is scanned first (source order at score ties), then Edge joins
        // on the shared variable.
        let tc_pos = plan.find("scan Tc").unwrap();
        let edge_pos = plan.find("scan Edge").unwrap();
        assert!(tc_pos < edge_pos);
    }

    #[test]
    fn explain_marks_enumeration_fallbacks() {
        let prog = crate::programs::powerset_unrestricted_program();
        let rule = &prog.stages[0].rules[0];
        let plan = explain_rule(rule).unwrap();
        assert!(plan.contains("enumerate"), "{plan}");
        assert!(plan.contains("[expensive]"));
    }

    #[test]
    fn indexes_do_not_change_results() {
        // The planner and the scan indexes are pure optimizations: every
        // cell of the on/off matrix must produce the bit-identical output
        // and the identical semantic counters.
        let unit = tc_unit();
        let prog = unit.program.unwrap();
        let input = unit.instance.unwrap();
        let base = run(&prog, &input, &EvalConfig::default()).unwrap();
        for planner in [true, false] {
            for index in [true, false] {
                for cache in [true, false] {
                    let cfg = EvalConfig::builder()
                        .planner(planner)
                        .index(index)
                        .plan_cache(cache)
                        .build();
                    let arm = run(&prog, &input, &cfg).unwrap();
                    assert_eq!(
                        arm.output.ground_facts(),
                        base.output.ground_facts(),
                        "planner={planner} index={index} cache={cache}"
                    );
                    assert_eq!(
                        arm.full.ground_facts(),
                        base.full.ground_facts(),
                        "planner={planner} index={index} cache={cache}"
                    );
                    assert_eq!(
                        arm.report.counters(),
                        base.report.counters(),
                        "planner={planner} index={index} cache={cache}"
                    );
                }
            }
        }
    }

    /// A transitive-closure unit over a chain of `n` edges — enough steps
    /// for the working instance's statistics to cross several power-of-two
    /// extent boundaries mid-run.
    fn chain_unit(n: usize) -> crate::parser::Unit {
        let mut src = String::from(
            r#"
            schema {
              relation Edge: [src: D, dst: D];
              relation Tc:  [src: D, dst: D];
            }
            program {
              input Edge;
              output Tc;
              Tc(x, y) :- Edge(x, y);
              Tc(x, z) :- Tc(x, y), Edge(y, z);
            }
            instance {
            "#,
        );
        for i in 0..n {
            src.push_str(&format!("Edge(\"n{i}\", \"n{}\");\n", i + 1));
        }
        src.push('}');
        parse_unit(&src).unwrap()
    }

    #[test]
    fn plan_cache_hits_and_replans_on_epoch_bump() {
        let unit = chain_unit(12);
        let prog = unit.program.unwrap();
        let input = unit.instance.unwrap();
        let nrules = prog.stages[0].rules.len();

        let cached = run(&prog, &input, &EvalConfig::default()).unwrap();
        // Steady-state steps (no statistics change) reuse the cached plans…
        assert!(cached.report.plans_cached > 0, "{}", cached.report);
        // …and the growing Tc extent bumps the epoch at power-of-two
        // crossings, forcing mid-run re-plans beyond the initial one.
        assert!(cached.report.plans_fresh > nrules, "{}", cached.report);

        // Cache off: every step plans every rule afresh; same fixpoint,
        // same semantic counters.
        let uncached = run(
            &prog,
            &input,
            &EvalConfig::builder().plan_cache(false).build(),
        )
        .unwrap();
        assert_eq!(uncached.report.plans_cached, 0);
        assert_eq!(
            uncached.report.plans_fresh,
            cached.report.plans_fresh + cached.report.plans_cached,
            "cache hit + miss must add up to the replan-every-step total"
        );
        assert_eq!(uncached.output.ground_facts(), cached.output.ground_facts());
        assert_eq!(uncached.full.ground_facts(), cached.full.ground_facts());
        assert_eq!(uncached.report.counters(), cached.report.counters());

        // Planner off: same fixpoint again (plans are pure optimization).
        let unplanned = run(&prog, &input, &EvalConfig::builder().planner(false).build()).unwrap();
        assert_eq!(
            unplanned.output.ground_facts(),
            cached.output.ground_facts()
        );
        assert_eq!(unplanned.full.ground_facts(), cached.full.ground_facts());
    }

    #[test]
    fn epoch_bump_produces_a_different_plan() {
        let unit = chain_unit(12);
        let prog = unit.program.unwrap();
        let input = unit.instance.unwrap();
        let cfg = EvalConfig::default();
        // Tc(x, z) :- Tc(x, y), Edge(y, z);
        let rule = &prog.stages[0].rules[1];

        // Step-0 statistics: Tc is empty, so scanning it first is already
        // optimal and the costed plan keeps the textual order.
        let mut early = Instance::new(Arc::clone(&prog.schema));
        for r in prog.input.relations() {
            for v in input.relation(r).unwrap() {
                early.insert_unchecked(r, v.clone()).unwrap();
            }
        }
        let before = explain_rule_planned(rule, &mut early, &cfg).unwrap();
        assert!(!before.contains("[reordered]"), "{before}");

        // Fixpoint statistics: Tc (78 pairs) outgrew Edge (12), so the
        // cost-based plan scans Edge first — the epoch bumps along the way
        // are what forced the evaluator to pick this up mid-run.
        let out = run(&prog, &input, &cfg).unwrap();
        let mut late = out.full.clone();
        let after = explain_rule_planned(rule, &mut late, &cfg).unwrap();
        assert!(after.contains("[reordered]"), "{after}");
        assert_ne!(before, after, "the epoch bump must change the plan");
    }

    #[test]
    fn fact_budget_is_enforced() {
        let unit = tc_unit();
        let prog = unit.program.unwrap();
        let input = unit.instance.unwrap();
        let cfg = EvalConfig::builder().max_facts(2).build();
        let err = run(&prog, &input, &cfg).unwrap_err();
        assert!(matches!(err, IqlError::FactBudget { limit: 2 }));
    }

    #[test]
    fn enum_budget_is_enforced() {
        let prog = crate::programs::powerset_unrestricted_program();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for i in 0..10 {
            input
                .insert(RelName::new("R"), OValue::tuple([("a", OValue::int(i))]))
                .unwrap();
        }
        let cfg = EvalConfig::builder().enum_budget(16).build(); // 2^10 subsets won't fit
        let err = run(&prog, &input, &cfg).unwrap_err();
        match err {
            IqlError::EnumBudget { var, ty, budget } => {
                assert_eq!(budget, 16);
                assert!(!var.to_string().is_empty());
                assert!(!ty.is_empty());
            }
            other => panic!("expected EnumBudget, got {other:?}"),
        }
    }

    #[test]
    fn empty_body_rules_fire_once() {
        let unit = parse_unit(
            r#"
            schema {
              relation Seed: [s: {D}];
            }
            program {
              output Seed;
              Seed({});
            }
            "#,
        )
        .unwrap();
        let prog = unit.program.unwrap();
        let input = Instance::new(Arc::clone(&prog.input));
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        assert_eq!(out.output.relation(RelName::new("Seed")).unwrap().len(), 1);
        assert_eq!(out.report.steps, 2);
    }

    #[test]
    fn eval_term_undefined_cases() {
        let unit = tc_unit();
        let input = unit.instance.unwrap();
        let binding = Binding::new();
        // Unbound variable → undefined.
        assert_eq!(eval_term(&Term::var("nope"), &binding, &input), None);
        // Relation term evaluates to its current contents as a set.
        let v = eval_term(&Term::Rel(RelName::new("Edge")), &binding, &input).unwrap();
        assert!(matches!(v, OValue::Set(s) if s.len() == 2));
    }

    #[test]
    fn match_all_enumerates_set_assignments() {
        let unit = tc_unit();
        let input = unit.instance.unwrap();
        let pattern = Term::set([Term::var("x"), Term::var("y")]);
        let value = OValue::set([OValue::int(1), OValue::int(2)]);
        let mut out = Vec::new();
        match_term_all(
            &pattern,
            &value,
            &Binding::new(),
            &BTreeMap::new(),
            &input,
            &mut out,
        );
        assert_eq!(out.len(), 2, "both bijections are produced");
        // Size mismatch → no match.
        let mut out2 = Vec::new();
        match_term_all(
            &pattern,
            &OValue::set([OValue::int(1)]),
            &Binding::new(),
            &BTreeMap::new(),
            &input,
            &mut out2,
        );
        assert!(out2.is_empty());
    }
}
