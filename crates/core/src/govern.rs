//! Resource governance for IQL evaluation — the engine-side layer over the
//! shared runtime's governor.
//!
//! The governor itself ([`Governor`], [`Pacer`], [`AbortReason`]) lives in
//! the shared execution runtime (`iql_exec::govern`), because the Datalog
//! baseline runs under the identical supervision; this module re-exports
//! it and adds what is IQL-specific: building a governor from an
//! [`EvalConfig`], converting trips into [`crate::IqlError`]s, and the
//! structured [`RunOutcome`] carrying a last-consistent partial
//! [`EvalOutput`] when a limit trips.
//!
//! See the shared module's documentation for the budget/deadline design;
//! in short, deterministic budgets are checked at step boundaries (so
//! partial results are bit-identical across thread counts) and
//! asynchronous signals are polled mid-search through a strided [`Pacer`].

use crate::eval::{EvalConfig, EvalOutput, EvalReport};
use std::sync::Arc;
use std::time::Duration;

pub use iql_exec::govern::{AbortReason, Governor, Pacer};

/// Resolves an [`EvalConfig`]'s limits into a [`Governor`], starting the
/// deadline clock *now*.
pub fn governor_from_config(cfg: &EvalConfig) -> Governor {
    let mut gov = Governor::unlimited();
    gov.max_steps = cfg.max_steps;
    gov.max_facts = cfg.max_facts;
    gov.max_oids = cfg.max_oids;
    gov.max_store_nodes = cfg.max_store_nodes;
    gov.max_store_bytes = cfg.max_store_bytes;
    if let Some(d) = cfg.deadline {
        gov = gov.with_deadline(d);
    }
    if let Some(token) = &cfg.cancel_token {
        gov = gov.with_cancel_token(Arc::clone(token));
    }
    gov
}

/// A governed evaluation that stopped early, carrying the last consistent
/// inflationary snapshot — everything the run had proved before the trip.
#[derive(Debug, Clone)]
pub struct Aborted {
    /// What tripped.
    pub reason: AbortReason,
    /// Inflationary steps completed (across stages) when the trip fired.
    pub at_step: usize,
    /// Wall-clock time from evaluation start to the trip.
    pub elapsed: Duration,
    /// The last consistent partial result: the working instance after the
    /// final *completed* step, projected to the output schema. Output
    /// validation is skipped — a mid-run snapshot may hold invented oids
    /// whose weak assignment has not fired yet.
    pub partial: EvalOutput,
    /// The run statistics up to the trip (same value as
    /// `partial.report`, hoisted for convenience).
    pub report: EvalReport,
}

/// The outcome of a governed run: the fixpoint, or a structured abort with
/// the partial result.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// Evaluation reached the fixpoint within every limit. (Boxed, like
    /// the abort, to keep the enum itself pointer-sized.)
    Complete(Box<EvalOutput>),
    /// A limit tripped (boxed: the abort carries two instances).
    Aborted(Box<Aborted>),
}

impl RunOutcome {
    /// The evaluation output, complete or partial.
    pub fn output(&self) -> &EvalOutput {
        match self {
            RunOutcome::Complete(out) => out,
            RunOutcome::Aborted(a) => &a.partial,
        }
    }

    /// The abort, if the run tripped.
    pub fn aborted(&self) -> Option<&Aborted> {
        match self {
            RunOutcome::Complete(_) => None,
            RunOutcome::Aborted(a) => Some(a),
        }
    }

    /// Unwraps a complete run, turning an abort back into its hard error —
    /// how the all-or-nothing [`crate::eval::run`] is implemented.
    pub fn into_result(self) -> crate::error::Result<EvalOutput> {
        match self {
            RunOutcome::Complete(out) => Ok(*out),
            RunOutcome::Aborted(a) => Err(a.reason.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IqlError;

    #[test]
    fn config_limits_resolve_into_the_governor() {
        let cfg = EvalConfig::builder()
            .max_steps(7)
            .max_facts(11)
            .max_oids(13)
            .build();
        let gov = governor_from_config(&cfg);
        assert_eq!(gov.max_steps, 7);
        assert_eq!(gov.max_facts, 11);
        assert_eq!(gov.max_oids, Some(13));
        assert!(!gov.reactive(), "budgets alone need no mid-step polling");
        let reactive = governor_from_config(
            &EvalConfig::builder()
                .deadline(Duration::from_secs(1))
                .build(),
        );
        assert!(reactive.reactive());
    }

    #[test]
    fn reasons_convert_to_errors() {
        for (reason, want) in [
            (
                AbortReason::StepLimit { limit: 7 },
                IqlError::StepLimit { limit: 7 },
            ),
            (AbortReason::Deadline, IqlError::Deadline),
            (
                AbortReason::WorkerPanic { rule: 3 },
                IqlError::WorkerPanic { rule: 3 },
            ),
        ] {
            assert_eq!(IqlError::from(reason), want);
            assert!(!IqlError::from(reason).to_string().is_empty());
        }
    }
}
