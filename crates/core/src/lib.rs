//! # iql-core — the Identity Query Language
//!
//! The *operational part* of Abiteboul & Kanellakis's object-based data
//! model (Section 3): **IQL**, inflationary Datalog¬ extended with typed
//! set/tuple terms, dereference (`x̂`), *invention of new oids* (head-only
//! variables of class type), and *weak assignment* (`x̂ = t`). Oids serve
//! three purposes (Section 1): encoding shared/cyclic structures,
//! manipulating sets (grouping via temporary set-valued classes), and
//! achieving computational completeness.
//!
//! The crate provides:
//!
//! * [`ast`] — terms, literals, rules, stages, programs (Section 3.1),
//!   including the IQL⁺ `choose` literal (Section 4.4) and IQL\* deletion
//!   heads (Section 4.5);
//! * [`parser`] — a concrete textual syntax for schemas and programs;
//! * [`typecheck`] — static typing with the paper's partial type inference
//!   and union-coercion rule (Section 3.3);
//! * [`eval`] — the inflationary evaluator (Section 3.2): valuation
//!   domains, valuation maps, parallel invention, condition (†), with an
//!   optional multi-threaded valuation search behind a deterministic merge;
//! * [`engine`] — the [`Engine`] facade bundling a program with an
//!   [`EvalConfig`] behind one `run` entry point;
//! * [`sublang`] — the syntactic analyses of Section 5: range-restriction,
//!   ptime-restriction, invention- and recursion-freedom, and the
//!   IQLrr ⊂ IQLpr ⊂ IQL classification with its PTIME guarantee
//!   (Theorem 5.4);
//! * [`builder`] — a fluent programmatic API producing the same programs as
//!   the parser;
//! * [`programs`] — ready-made paper programs (Examples 1.2, 3.4.1, 3.4.2,
//!   3.4.3) used by examples, tests, and benchmarks.
//!
//! ## Quick start
//!
//! ```
//! use iql_core::parser::parse_unit;
//! use iql_core::eval::{run, EvalConfig};
//! use iql_model::{Instance, OValue, RelName};
//! use std::sync::Arc;
//!
//! let unit = parse_unit(
//!     r#"
//!     schema {
//!       relation Edge: [src: D, dst: D];
//!       relation Tc:   [src: D, dst: D];
//!     }
//!     program {
//!       input Edge;
//!       output Tc;
//!       Tc(x, y) :- Edge(x, y);
//!       Tc(x, z) :- Tc(x, y), Edge(y, z);
//!     }
//!     "#,
//! )
//! .unwrap();
//! let prog = unit.program.unwrap();
//! let mut input = Instance::new(Arc::clone(&prog.input));
//! let edge = RelName::new("Edge");
//! for (s, d) in [("a", "b"), ("b", "c")] {
//!     input
//!         .insert(edge, OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]))
//!         .unwrap();
//! }
//! let out = run(&prog, &input, &EvalConfig::default()).unwrap();
//! assert_eq!(out.output.relation(RelName::new("Tc")).unwrap().len(), 3);
//! ```

pub mod ast;
pub mod builder;
pub mod completeness;
pub mod control;
pub mod encode;
pub mod engine;
pub mod error;
pub mod eval;
pub mod govern;
pub mod parser;
pub(crate) mod planner;
pub mod programs;
pub mod sublang;
pub mod typecheck;

pub use ast::{Head, Literal, Program, Rule, Stage, Term, VarName};
pub use builder::ProgramBuilder;
pub use engine::Engine;
pub use error::{IqlError, Result};
pub use eval::{run, run_governed, EvalConfig, EvalConfigBuilder, EvalOutput, EvalReport};
pub use govern::{AbortReason, Aborted, Governor, Pacer, RunOutcome};
