//! A concrete textual syntax for IQL schemas and programs.
//!
//! The syntax follows the paper's notation as closely as ASCII allows:
//!
//! ```text
//! schema {
//!   relation R:  [A1: D, A2: D];
//!   class P:     [A1: D, A2: {P}];
//!   class Ta isa Student, Instructor: [];       // Section 6 inheritance
//! }
//! program {
//!   input R;
//!   output P;
//!   stage {                                     // ';' composition
//!     R0(x) :- R(x, y);
//!     R0(x) :- R(y, x);
//!   }
//!   stage {
//!     Rp(x, p, pp) :- R0(x);                    // p, pp are invented
//!   }
//!   stage {
//!     pp^(q) :- Rp(x, p, pp), Rp(y, q, qq), R(x, y);
//!   }
//!   stage {
//!     p^ = [A1: x, A2: pp^] :- Rp(x, p, pp);    // weak assignment
//!   }
//! }
//! ```
//!
//! Conventions (the paper's "shorthands", Section 3.4):
//!
//! * `R(t1, …, tk)` is positional shorthand for `R([A1:t1, …, Ak:tk])` using
//!   the *declared* attribute order of `R`'s tuple type;
//! * identifiers that name a schema relation/class denote it; all others are
//!   variables;
//! * `x^` is the dereference `x̂`; `x^(t)` a set-membership atom/fact;
//!   `x^ = t` a weak assignment (in heads) or equality with a dereference
//!   (in bodies);
//! * `not A` negates a membership atom, `!=` an equality;
//! * `choose` (IQL⁺) and `del` heads (IQL\*) extend the core language;
//! * `var x: T;` declares variable types when inference needs help
//!   (e.g. the powerset's non-range-restricted `X = X`).

use crate::ast::{Head, Literal, Program, Rule, Stage, Term, VarName};
use crate::error::{IqlError, Result};
use crate::typecheck::check_program;
use iql_model::{AttrName, ClassName, IsaHierarchy, RelName, Schema, SchemaWithIsa, TypeExpr};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A parsed compilation unit: a schema (possibly with isa), attribute
/// declaration order (for positional shorthand), optionally a program, and
/// optionally an instance.
#[derive(Debug, Clone)]
pub struct Unit {
    /// The declared schema, before any inheritance translation.
    pub schema: Schema,
    /// Isa edges, if any (Section 6).
    pub isa: IsaHierarchy,
    /// The schema programs run over: equal to `schema` when there is no
    /// isa, otherwise the union-type translation (Definition 6.2.2).
    pub program_schema: Schema,
    /// Declared attribute order per relation with a tuple type.
    pub attr_order: BTreeMap<RelName, Vec<AttrName>>,
    /// The program, if a `program { … }` block was present.
    pub program: Option<Program>,
    /// The instance, if an `instance { … }` block was present. Built over
    /// the program's *input* schema when a program is present, otherwise
    /// over the full schema. Identifiers that are not schema names denote
    /// oids, created on first use:
    ///
    /// ```text
    /// instance {
    ///   Gen2(cain);
    ///   cain^ = [name: "Cain", occupations: {"Farmer"}];
    ///   FoundedLineage(cain);
    /// }
    /// ```
    pub instance: Option<iql_model::Instance>,
}

/// Parses a unit (schema and optional program) and type-checks the program.
pub fn parse_unit(src: &str) -> Result<Unit> {
    Parser::new(src)?.unit()
}

/// Parses just a type expression (handy for tests and tools).
pub fn parse_type(src: &str) -> Result<TypeExpr> {
    let mut p = Parser::new(src)?;
    let t = p.ty()?;
    p.expect_eof()?;
    Ok(t)
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LBrace,
    RBrace,
    LBrack,
    RBrack,
    LParen,
    RParen,
    Colon,
    Semi,
    Comma,
    Eq,
    Neq,
    Arrow, // :-
    Caret,
    Pipe,
    Amp,
    Eof,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = src.chars().peekable();
    let err = |line: usize, col: usize, msg: &str| IqlError::Parse {
        line,
        col,
        msg: msg.to_string(),
    };
    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        let advance = |chars: &mut std::iter::Peekable<std::str::Chars>,
                       line: &mut usize,
                       col: &mut usize| {
            let c = chars.next();
            if c == Some('\n') {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            c
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut chars, &mut line, &mut col);
            }
            '/' => {
                advance(&mut chars, &mut line, &mut col);
                if chars.peek() == Some(&'/') {
                    // Line comment.
                    while let Some(&c2) = chars.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        advance(&mut chars, &mut line, &mut col);
                    }
                } else {
                    return Err(err(tl, tc, "unexpected '/'"));
                }
            }
            '{' | '}' | '[' | ']' | '(' | ')' | ';' | ',' | '^' | '|' | '&' => {
                advance(&mut chars, &mut line, &mut col);
                out.push(SpannedTok {
                    tok: match c {
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBrack,
                        ']' => Tok::RBrack,
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        ';' => Tok::Semi,
                        ',' => Tok::Comma,
                        '^' => Tok::Caret,
                        '|' => Tok::Pipe,
                        '&' => Tok::Amp,
                        _ => unreachable!(),
                    },
                    line: tl,
                    col: tc,
                });
            }
            ':' => {
                advance(&mut chars, &mut line, &mut col);
                if chars.peek() == Some(&'-') {
                    advance(&mut chars, &mut line, &mut col);
                    out.push(SpannedTok {
                        tok: Tok::Arrow,
                        line: tl,
                        col: tc,
                    });
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Colon,
                        line: tl,
                        col: tc,
                    });
                }
            }
            '=' => {
                advance(&mut chars, &mut line, &mut col);
                out.push(SpannedTok {
                    tok: Tok::Eq,
                    line: tl,
                    col: tc,
                });
            }
            '!' => {
                advance(&mut chars, &mut line, &mut col);
                if chars.peek() == Some(&'=') {
                    advance(&mut chars, &mut line, &mut col);
                    out.push(SpannedTok {
                        tok: Tok::Neq,
                        line: tl,
                        col: tc,
                    });
                } else {
                    return Err(err(tl, tc, "expected '=' after '!'"));
                }
            }
            '"' => {
                advance(&mut chars, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    match advance(&mut chars, &mut line, &mut col) {
                        Some('"') => break,
                        Some('\\') => match advance(&mut chars, &mut line, &mut col) {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(other) => s.push(other),
                            None => return Err(err(tl, tc, "unterminated string")),
                        },
                        Some(other) => s.push(other),
                        None => return Err(err(tl, tc, "unterminated string")),
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                advance(&mut chars, &mut line, &mut col);
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_digit() {
                        s.push(c2);
                        advance(&mut chars, &mut line, &mut col);
                    } else {
                        break;
                    }
                }
                let n: i64 = s
                    .parse()
                    .map_err(|_| err(tl, tc, &format!("bad integer literal {s}")))?;
                out.push(SpannedTok {
                    tok: Tok::Int(n),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' || c2 == '\'' {
                        s.push(c2);
                        advance(&mut chars, &mut line, &mut col);
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(s),
                    line: tl,
                    col: tc,
                });
            }
            other => return Err(err(tl, tc, &format!("unexpected character {other:?}"))),
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    // Filled while parsing the schema block.
    relations: Vec<(RelName, TypeExpr)>,
    classes: Vec<(ClassName, TypeExpr)>,
    isa: IsaHierarchy,
    attr_order: BTreeMap<RelName, Vec<AttrName>>,
    rel_names: BTreeSet<String>,
    class_names: BTreeSet<String>,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            relations: Vec::new(),
            classes: Vec::new(),
            isa: IsaHierarchy::new(),
            attr_order: BTreeMap::new(),
            rel_names: BTreeSet::new(),
            class_names: BTreeSet::new(),
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn fail<T>(&self, msg: &str) -> Result<T> {
        let (line, col) = self.here();
        Err(IqlError::Parse {
            line,
            col,
            msg: msg.to_string(),
        })
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<()> {
        if *self.peek() == tok {
            self.next();
            Ok(())
        } else {
            self.fail(&format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            self.fail("expected end of input")
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => self.fail(&format!("expected {what}, found {other:?}")),
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn peek_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    // ------------------------------------------------------------------
    // Unit / schema
    // ------------------------------------------------------------------

    fn unit(&mut self) -> Result<Unit> {
        if !self.eat_ident("schema") {
            return self.fail("expected `schema`");
        }
        self.expect(Tok::LBrace, "`{`")?;
        while !matches!(self.peek(), Tok::RBrace) {
            self.schema_decl()?;
        }
        self.expect(Tok::RBrace, "`}`")?;

        let schema = Schema::new(self.relations.clone(), self.classes.clone())?;
        let program_schema = if self.isa.is_empty() {
            schema.clone()
        } else {
            SchemaWithIsa::new(schema.clone(), self.isa.clone())?.translate()?
        };

        let program = if self.eat_ident("program") {
            Some(self.program(&program_schema)?)
        } else {
            None
        };
        let instance = if self.eat_ident("instance") {
            let target = match &program {
                Some(p) => Arc::clone(&p.input),
                None => Arc::new(program_schema.clone()),
            };
            Some(self.instance_block(&target)?)
        } else {
            None
        };
        self.expect_eof()?;
        Ok(Unit {
            schema,
            isa: self.isa.clone(),
            program_schema,
            attr_order: self.attr_order.clone(),
            program,
            instance,
        })
    }

    // ------------------------------------------------------------------
    // Instance blocks
    // ------------------------------------------------------------------

    /// Parses `instance { fact; … }` into an [`iql_model::Instance`] over
    /// `schema`. Facts are ground: terms may be constants, oid names
    /// (identifiers; created in a class by a `P(name)` fact before or after
    /// use), tuples, and sets.
    fn instance_block(&mut self, schema: &Arc<Schema>) -> Result<iql_model::Instance> {
        use iql_model::{Instance, OValue};
        self.expect(Tok::LBrace, "`{`")?;
        // First pass: collect raw facts, tracking oid names.
        enum RawFact {
            Rel(RelName, Term),
            Class(ClassName, String),
            SetMember(String, Term),
            Assign(String, Term),
        }
        let mut facts: Vec<RawFact> = Vec::new();
        while !matches!(self.peek(), Tok::RBrace) {
            let name = self.ident("fact predicate")?;
            if *self.peek() == Tok::Caret {
                self.next();
                if *self.peek() == Tok::LParen {
                    self.next();
                    let t = self.term(schema)?;
                    self.expect(Tok::RParen, "`)`")?;
                    facts.push(RawFact::SetMember(name, t));
                } else {
                    self.expect(Tok::Eq, "`=` or `(` after `^`")?;
                    let t = self.term(schema)?;
                    facts.push(RawFact::Assign(name, t));
                }
            } else if self.rel_names.contains(&name) {
                let r = RelName::new(&name);
                self.expect(Tok::LParen, "`(`")?;
                let t = self.atom_args(schema, Some(r))?;
                self.expect(Tok::RParen, "`)`")?;
                facts.push(RawFact::Rel(r, t));
            } else if self.class_names.contains(&name) {
                let c = ClassName::new(&name);
                self.expect(Tok::LParen, "`(`")?;
                let o = self.ident("oid name")?;
                self.expect(Tok::RParen, "`)`")?;
                facts.push(RawFact::Class(c, o));
            } else {
                return self.fail(&format!("{name} is not a schema name"));
            }
            self.expect(Tok::Semi, "`;` after fact")?;
        }
        self.expect(Tok::RBrace, "`}`")?;

        // Second pass: create oids for class facts, then ground the terms.
        let mut inst = Instance::new(Arc::clone(schema));
        let mut oids: BTreeMap<String, iql_model::Oid> = BTreeMap::new();
        for f in &facts {
            if let RawFact::Class(c, name) = f {
                if oids.contains_key(name) {
                    return self.fail(&format!("oid {name} declared in two classes"));
                }
                let o = inst.create_oid(*c).map_err(IqlError::Model)?;
                oids.insert(name.clone(), o);
            }
        }
        let ground = |t: &Term, oids: &BTreeMap<String, iql_model::Oid>| -> Result<OValue> {
            fn go(
                t: &Term,
                oids: &BTreeMap<String, iql_model::Oid>,
            ) -> std::result::Result<OValue, String> {
                match t {
                    Term::Const(c) => Ok(OValue::Const(c.clone())),
                    Term::Var(v) => oids
                        .get(v.as_str())
                        .map(|o| OValue::Oid(*o))
                        .ok_or_else(|| format!("unknown oid {v} (declare it with a class fact)")),
                    Term::Tuple(fields) => {
                        let mut out = BTreeMap::new();
                        for (a, ft) in fields {
                            out.insert(*a, go(ft, oids)?);
                        }
                        Ok(OValue::Tuple(out))
                    }
                    Term::Set(elems) => {
                        let mut out = std::collections::BTreeSet::new();
                        for e in elems {
                            out.insert(go(e, oids)?);
                        }
                        Ok(OValue::Set(out))
                    }
                    other => Err(format!("non-ground term {other} in instance block")),
                }
            }
            go(t, oids).map_err(IqlError::Invalid)
        };
        for f in &facts {
            match f {
                RawFact::Class(..) => {}
                RawFact::Rel(r, t) => {
                    let v = ground(t, &oids)?;
                    inst.insert(*r, v).map_err(IqlError::Model)?;
                }
                RawFact::SetMember(name, t) => {
                    let o = *oids
                        .get(name)
                        .ok_or_else(|| IqlError::Invalid(format!("unknown oid {name}")))?;
                    let v = ground(t, &oids)?;
                    inst.add_set_member(o, v).map_err(IqlError::Model)?;
                }
                RawFact::Assign(name, t) => {
                    let o = *oids
                        .get(name)
                        .ok_or_else(|| IqlError::Invalid(format!("unknown oid {name}")))?;
                    let v = ground(t, &oids)?;
                    if !inst.define_value(o, v).map_err(IqlError::Model)? {
                        return Err(IqlError::Invalid(format!(
                            "oid {name} assigned a value twice"
                        )));
                    }
                }
            }
        }
        inst.validate().map_err(IqlError::Model)?;
        Ok(inst)
    }

    fn schema_decl(&mut self) -> Result<()> {
        if self.eat_ident("relation") {
            let name = self.ident("relation name")?;
            self.expect(Tok::Colon, "`:`")?;
            let (ty, order) = self.ty_with_order()?;
            self.expect(Tok::Semi, "`;`")?;
            let r = RelName::new(&name);
            if let Some(order) = order {
                self.attr_order.insert(r, order);
            }
            self.rel_names.insert(name);
            self.relations.push((r, ty));
            Ok(())
        } else if self.eat_ident("class") {
            let name = self.ident("class name")?;
            let sub = ClassName::new(&name);
            if self.eat_ident("isa") {
                loop {
                    let sup = self.ident("superclass name")?;
                    self.isa.add(sub, ClassName::new(&sup));
                    if *self.peek() == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::Colon, "`:`")?;
            let ty = self.ty()?;
            self.expect(Tok::Semi, "`;`")?;
            self.class_names.insert(name);
            self.classes.push((sub, ty));
            Ok(())
        } else {
            self.fail("expected `relation` or `class`")
        }
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn ty(&mut self) -> Result<TypeExpr> {
        Ok(self.ty_with_order()?.0)
    }

    /// Parses a type; if it is a top-level tuple, also returns the declared
    /// attribute order (for positional shorthand).
    fn ty_with_order(&mut self) -> Result<(TypeExpr, Option<Vec<AttrName>>)> {
        let (first, order) = self.ty_inter()?;
        let mut acc = first;
        let mut multi = false;
        while *self.peek() == Tok::Pipe {
            self.next();
            let (rhs, _) = self.ty_inter()?;
            acc = TypeExpr::union(acc, rhs);
            multi = true;
        }
        Ok((acc, if multi { None } else { order }))
    }

    fn ty_inter(&mut self) -> Result<(TypeExpr, Option<Vec<AttrName>>)> {
        let (first, order) = self.ty_prim()?;
        let mut acc = first;
        let mut multi = false;
        while *self.peek() == Tok::Amp {
            self.next();
            let (rhs, _) = self.ty_prim()?;
            acc = TypeExpr::inter(acc, rhs);
            multi = true;
        }
        Ok((acc, if multi { None } else { order }))
    }

    fn ty_prim(&mut self) -> Result<(TypeExpr, Option<Vec<AttrName>>)> {
        match self.peek().clone() {
            Tok::Ident(s) if s == "D" => {
                self.next();
                Ok((TypeExpr::Base, None))
            }
            Tok::Ident(s) if s == "empty" => {
                self.next();
                Ok((TypeExpr::Empty, None))
            }
            Tok::Ident(s) => {
                self.next();
                Ok((TypeExpr::Class(ClassName::new(&s)), None))
            }
            Tok::LBrack => {
                self.next();
                let mut fields = Vec::new();
                let mut order = Vec::new();
                while !matches!(self.peek(), Tok::RBrack) {
                    let attr = self.ident("attribute name")?;
                    self.expect(Tok::Colon, "`:`")?;
                    let t = self.ty()?;
                    let a = AttrName::new(&attr);
                    if order.contains(&a) {
                        return self.fail(&format!("duplicate attribute {attr}"));
                    }
                    order.push(a);
                    fields.push((a, t));
                    if *self.peek() == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RBrack, "`]`")?;
                Ok((TypeExpr::tuple(fields), Some(order)))
            }
            Tok::LBrace => {
                self.next();
                let t = self.ty()?;
                self.expect(Tok::RBrace, "`}`")?;
                Ok((TypeExpr::set_of(t), None))
            }
            Tok::LParen => {
                self.next();
                let t = self.ty()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok((t, None))
            }
            other => self.fail(&format!("expected a type, found {other:?}")),
        }
    }

    // ------------------------------------------------------------------
    // Program
    // ------------------------------------------------------------------

    fn program(&mut self, schema: &Schema) -> Result<Program> {
        self.expect(Tok::LBrace, "`{`")?;
        let mut input_rels = BTreeSet::new();
        let mut input_classes = BTreeSet::new();
        let mut output_rels = BTreeSet::new();
        let mut output_classes = BTreeSet::new();
        // input/output declarations.
        loop {
            if self.peek_ident("input") || self.peek_ident("output") {
                let is_input = self.eat_ident("input") || {
                    self.eat_ident("output");
                    false
                };
                loop {
                    let name = self.ident("relation or class name")?;
                    if self.rel_names.contains(&name) {
                        let r = RelName::new(&name);
                        if is_input {
                            input_rels.insert(r);
                        } else {
                            output_rels.insert(r);
                        }
                    } else if self.class_names.contains(&name) {
                        let c = ClassName::new(&name);
                        if is_input {
                            input_classes.insert(c);
                        } else {
                            output_classes.insert(c);
                        }
                    } else {
                        return self.fail(&format!("{name} is not a schema name"));
                    }
                    if *self.peek() == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::Semi, "`;`")?;
            } else {
                break;
            }
        }
        // Classes referenced by kept relation types must be in the
        // projections; close them over mentioned classes.
        let close = |rels: &BTreeSet<RelName>, classes: &mut BTreeSet<ClassName>| {
            let mut frontier: Vec<TypeExpr> = rels
                .iter()
                .filter_map(|r| schema.relation_type(*r).ok().cloned())
                .chain(
                    classes
                        .iter()
                        .filter_map(|c| schema.class_type(*c).ok().cloned()),
                )
                .collect();
            while let Some(t) = frontier.pop() {
                let mut mentioned = BTreeSet::new();
                t.classes_mentioned(&mut mentioned);
                for c in mentioned {
                    if classes.insert(c) {
                        if let Ok(ct) = schema.class_type(c) {
                            frontier.push(ct.clone());
                        }
                    }
                }
            }
        };
        close(&input_rels, &mut input_classes);
        close(&output_rels, &mut output_classes);

        // Stages / rules.
        let mut stages: Vec<Stage> = Vec::new();
        let mut loose: Vec<Rule> = Vec::new();
        let mut loose_vars: BTreeMap<VarName, TypeExpr> = BTreeMap::new();
        while !matches!(self.peek(), Tok::RBrace) {
            if self.peek_ident("stage") {
                if !loose.is_empty() {
                    return self.fail("mix of loose rules and `stage` blocks");
                }
                self.next();
                self.expect(Tok::LBrace, "`{`")?;
                let mut vars: BTreeMap<VarName, TypeExpr> = BTreeMap::new();
                let mut rules = Vec::new();
                while !matches!(self.peek(), Tok::RBrace) {
                    if self.peek_ident("var") {
                        self.var_decl(&mut vars)?;
                    } else {
                        rules.push(self.rule(schema, &vars)?);
                    }
                }
                self.expect(Tok::RBrace, "`}`")?;
                stages.push(Stage::new(rules));
            } else if self.peek_ident("var") {
                self.var_decl(&mut loose_vars)?;
            } else {
                if !stages.is_empty() {
                    return self.fail("mix of `stage` blocks and loose rules");
                }
                loose.push(self.rule(schema, &loose_vars)?);
            }
        }
        self.expect(Tok::RBrace, "`}`")?;
        if !loose.is_empty() {
            stages.push(Stage::new(loose));
        }

        let schema = Arc::new(schema.clone());
        let input = Arc::new(schema.project(&input_rels, &input_classes)?);
        let output = Arc::new(schema.project(&output_rels, &output_classes)?);
        let mut prog = Program {
            schema,
            input,
            output,
            stages,
        };
        check_program(&mut prog)?;
        Ok(prog)
    }

    fn var_decl(&mut self, vars: &mut BTreeMap<VarName, TypeExpr>) -> Result<()> {
        self.eat_ident("var");
        loop {
            let name = self.ident("variable name")?;
            self.expect(Tok::Colon, "`:`")?;
            let t = self.ty()?;
            vars.insert(VarName::new(&name), t);
            if *self.peek() == Tok::Comma {
                self.next();
            } else {
                break;
            }
        }
        self.expect(Tok::Semi, "`;`")
    }

    // ------------------------------------------------------------------
    // Rules
    // ------------------------------------------------------------------

    fn rule(&mut self, schema: &Schema, vars: &BTreeMap<VarName, TypeExpr>) -> Result<Rule> {
        let head = self.head(schema)?;
        let mut body = Vec::new();
        if *self.peek() == Tok::Arrow {
            self.next();
            loop {
                body.push(self.literal(schema)?);
                if *self.peek() == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::Semi, "`;` after rule")?;
        let mut rule = Rule::new(head, body);
        // Seed declared types for variables the rule uses.
        let mut used = rule.body_vars();
        rule.head.vars(&mut used);
        for v in used {
            if let Some(t) = vars.get(&v) {
                rule.var_types.insert(v, t.clone());
            }
        }
        Ok(rule)
    }

    fn head(&mut self, schema: &Schema) -> Result<Head> {
        if self.eat_ident("del") {
            let name = self.ident("deletion target")?;
            if self.rel_names.contains(&name) {
                let r = RelName::new(&name);
                self.expect(Tok::LParen, "`(`")?;
                let t = self.atom_args(schema, Some(r))?;
                self.expect(Tok::RParen, "`)`")?;
                return Ok(Head::DeleteRel(r, t));
            }
            if self.class_names.contains(&name) {
                let c = ClassName::new(&name);
                self.expect(Tok::LParen, "`(`")?;
                let v = self.ident("variable")?;
                self.expect(Tok::RParen, "`)`")?;
                return Ok(Head::DeleteOid(c, VarName::new(&v)));
            }
            // del x^(t)
            self.expect(Tok::Caret, "`^`")?;
            self.expect(Tok::LParen, "`(`")?;
            let t = self.term(schema)?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(Head::DeleteSetMember(VarName::new(&name), t));
        }
        let name = self.ident("head predicate")?;
        if *self.peek() == Tok::Caret {
            self.next();
            if *self.peek() == Tok::LParen {
                self.next();
                let t = self.term(schema)?;
                self.expect(Tok::RParen, "`)`")?;
                return Ok(Head::SetMember(VarName::new(&name), t));
            }
            self.expect(Tok::Eq, "`=` or `(` after `^` in head")?;
            let t = self.term(schema)?;
            return Ok(Head::Assign(VarName::new(&name), t));
        }
        if self.rel_names.contains(&name) {
            let r = RelName::new(&name);
            self.expect(Tok::LParen, "`(`")?;
            let t = self.atom_args(schema, Some(r))?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(Head::Rel(r, t));
        }
        if self.class_names.contains(&name) {
            let c = ClassName::new(&name);
            self.expect(Tok::LParen, "`(`")?;
            let v = self.ident("variable")?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(Head::Class(c, VarName::new(&v)));
        }
        self.fail(&format!("head predicate {name} is not a schema name"))
    }

    fn literal(&mut self, schema: &Schema) -> Result<Literal> {
        if self.eat_ident("not") {
            let (set, elem) = self.atom(schema)?;
            return Ok(Literal::not_member(set, elem));
        }
        if self.peek_ident("choose") {
            self.next();
            return Ok(Literal::Choose);
        }
        // Could be an atom `Name(...)`, `x^(...)`, or a term comparison.
        if let Tok::Ident(name) = self.peek().clone() {
            if *self.peek2() == Tok::LParen
                && (self.rel_names.contains(&name) || self.class_names.contains(&name))
            {
                let (set, elem) = self.atom(schema)?;
                return Ok(Literal::member(set, elem));
            }
        }
        // Parse a term, then decide: comparison or variable-atom.
        let left = self.term(schema)?;
        match self.peek().clone() {
            Tok::Eq => {
                self.next();
                let right = self.term(schema)?;
                Ok(Literal::eq(left, right))
            }
            Tok::Neq => {
                self.next();
                let right = self.term(schema)?;
                Ok(Literal::neq(left, right))
            }
            Tok::LParen => {
                // X(y) or x^(y): `left` must be a var or deref term.
                match left {
                    Term::Var(_) | Term::Deref(_) => {
                        self.next();
                        let elem = self.term(schema)?;
                        self.expect(Tok::RParen, "`)`")?;
                        Ok(Literal::member(left, elem))
                    }
                    other => self.fail(&format!("cannot apply term {other} as a set")),
                }
            }
            other => self.fail(&format!(
                "expected `=`, `!=`, or `(` in literal, found {other:?}"
            )),
        }
    }

    /// Parses an atom `Name(args…)` for a schema relation/class.
    fn atom(&mut self, schema: &Schema) -> Result<(Term, Term)> {
        let name = self.ident("atom predicate")?;
        if self.rel_names.contains(&name) {
            let r = RelName::new(&name);
            self.expect(Tok::LParen, "`(`")?;
            let t = self.atom_args(schema, Some(r))?;
            self.expect(Tok::RParen, "`)`")?;
            Ok((Term::Rel(r), t))
        } else if self.class_names.contains(&name) {
            let c = ClassName::new(&name);
            self.expect(Tok::LParen, "`(`")?;
            let t = self.term(schema)?;
            self.expect(Tok::RParen, "`)`")?;
            Ok((Term::Class(c), t))
        } else {
            self.fail(&format!("{name} is not a schema relation or class"))
        }
    }

    /// Parses atom arguments, applying positional shorthand for relations
    /// with tuple types.
    fn atom_args(&mut self, schema: &Schema, rel: Option<RelName>) -> Result<Term> {
        let mut args = vec![self.term(schema)?];
        while *self.peek() == Tok::Comma {
            self.next();
            args.push(self.term(schema)?);
        }
        if args.len() == 1 {
            // Single argument: positional only for declared 1-tuples, and
            // only when the argument is not already an explicit tuple
            // literal with exactly the declared attribute (otherwise
            // `R([a: x])` would double-wrap on reparse).
            if let Some(r) = rel {
                if let Some(order) = self.attr_order.get(&r) {
                    if order.len() == 1 {
                        let attr = order[0];
                        let explicit = matches!(
                            &args[0],
                            Term::Tuple(fields)
                                if fields.len() == 1 && fields.contains_key(&attr)
                        );
                        if !explicit {
                            return Ok(Term::Tuple(BTreeMap::from([(
                                attr,
                                args.pop().expect("one arg"),
                            )])));
                        }
                    }
                }
            }
            return Ok(args.pop().expect("one arg"));
        }
        let Some(r) = rel else {
            return self.fail("multiple arguments only allowed for relation atoms");
        };
        let Some(order) = self.attr_order.get(&r).cloned() else {
            return self.fail(&format!(
                "relation {r} has no declared tuple attributes; positional shorthand unavailable"
            ));
        };
        if order.len() != args.len() {
            return self.fail(&format!(
                "relation {r} has {} attributes, got {} arguments",
                order.len(),
                args.len()
            ));
        }
        let _ = schema; // schema consulted via attr_order, kept for clarity
        Ok(Term::Tuple(order.into_iter().zip(args).collect()))
    }

    // ------------------------------------------------------------------
    // Terms
    // ------------------------------------------------------------------

    #[allow(clippy::only_used_in_recursion)] // schema kept for future name-directed parsing
    fn term(&mut self, schema: &Schema) -> Result<Term> {
        match self.peek().clone() {
            Tok::Ident(s) if s == "true" => {
                self.next();
                Ok(Term::Const(iql_model::Constant::bool(true)))
            }
            Tok::Ident(s) if s == "false" => {
                self.next();
                Ok(Term::Const(iql_model::Constant::bool(false)))
            }
            Tok::Ident(name) => {
                self.next();
                if *self.peek() == Tok::Caret {
                    self.next();
                    return Ok(Term::deref(name.as_str()));
                }
                if self.rel_names.contains(&name) {
                    Ok(Term::Rel(RelName::new(&name)))
                } else if self.class_names.contains(&name) {
                    Ok(Term::Class(ClassName::new(&name)))
                } else {
                    Ok(Term::var(name.as_str()))
                }
            }
            Tok::Int(n) => {
                self.next();
                Ok(Term::int(n))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Term::str(&s))
            }
            Tok::LBrack => {
                self.next();
                let mut fields = Vec::new();
                while !matches!(self.peek(), Tok::RBrack) {
                    let attr = self.ident("attribute name")?;
                    self.expect(Tok::Colon, "`:`")?;
                    let t = self.term(schema)?;
                    fields.push((AttrName::new(&attr), t));
                    if *self.peek() == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RBrack, "`]`")?;
                Ok(Term::Tuple(fields.into_iter().collect()))
            }
            Tok::LBrace => {
                self.next();
                let mut elems = Vec::new();
                while !matches!(self.peek(), Tok::RBrace) {
                    elems.push(self.term(schema)?);
                    if *self.peek() == Tok::Comma {
                        self.next();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RBrace, "`}`")?;
                Ok(Term::Set(elems))
            }
            other => self.fail(&format!("expected a term, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, EvalConfig};
    use iql_model::{Instance, OValue};

    #[test]
    fn parse_type_expressions() {
        assert_eq!(parse_type("D").unwrap(), TypeExpr::Base);
        assert_eq!(parse_type("{D}").unwrap(), TypeExpr::set_of(TypeExpr::Base));
        let t = parse_type("[a: D, b: {Pp}] | D").unwrap();
        assert!(matches!(t, TypeExpr::Union(_, _)));
        let t2 = parse_type("(D | Pq) & Pq").unwrap();
        assert!(matches!(t2, TypeExpr::Intersect(_, _)));
        assert_eq!(parse_type("empty").unwrap(), TypeExpr::Empty);
    }

    #[test]
    fn parse_schema_only() {
        let unit = parse_unit(
            r#"
            schema {
              relation R: [a: D, b: D]; // a comment
              class P: [name: D, kids: {P}];
            }
            "#,
        )
        .unwrap();
        assert!(unit.program.is_none());
        assert_eq!(unit.schema.relations().count(), 1);
        assert_eq!(
            unit.attr_order[&RelName::new("R")],
            vec![AttrName::new("a"), AttrName::new("b")]
        );
    }

    #[test]
    fn parse_error_has_position() {
        let err = parse_unit("schema { relation R [a: D]; }").unwrap_err();
        match err {
            IqlError::Parse { line, col, .. } => {
                assert_eq!(line, 1);
                assert!(col > 10);
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn transitive_closure_end_to_end() {
        let unit = parse_unit(
            r#"
            schema {
              relation Edge: [src: D, dst: D];
              relation Tc:  [src: D, dst: D];
            }
            program {
              input Edge;
              output Tc;
              Tc(x, y) :- Edge(x, y);
              Tc(x, z) :- Tc(x, y), Edge(y, z);
            }
            "#,
        )
        .unwrap();
        let prog = unit.program.unwrap();
        let mut input = Instance::new(Arc::clone(&prog.input));
        let edge = RelName::new("Edge");
        for (s, d) in [("a", "b"), ("b", "c"), ("c", "d")] {
            input
                .insert(
                    edge,
                    OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
                )
                .unwrap();
        }
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        // a→{b,c,d}, b→{c,d}, c→{d}
        assert_eq!(out.output.relation(RelName::new("Tc")).unwrap().len(), 6);
    }

    #[test]
    fn negation_and_inequality() {
        let unit = parse_unit(
            r#"
            schema {
              relation R: [a: D];
              relation S: [a: D];
              relation Diff: [a: D];
            }
            program {
              input R, S;
              output Diff;
              Diff(x) :- R(x), not S(x);
            }
            "#,
        )
        .unwrap();
        let prog = unit.program.unwrap();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for v in ["a", "b", "c"] {
            input
                .insert(RelName::new("R"), OValue::tuple([("a", OValue::str(v))]))
                .unwrap();
        }
        input
            .insert(RelName::new("S"), OValue::tuple([("a", OValue::str("b"))]))
            .unwrap();
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        assert_eq!(out.output.relation(RelName::new("Diff")).unwrap().len(), 2);
    }

    #[test]
    fn unnest_with_set_variable() {
        // Example 3.4.1 unnest: R2(x, y) :- R1(x, Y), Y(y);
        let unit = parse_unit(
            r#"
            schema {
              relation R1: [a: D, b: {D}];
              relation R2: [a: D, b: D];
            }
            program {
              input R1;
              output R2;
              R2(x, y) :- R1(x, Y), Y(y);
            }
            "#,
        )
        .unwrap();
        let prog = unit.program.unwrap();
        let mut input = Instance::new(Arc::clone(&prog.input));
        input
            .insert(
                RelName::new("R1"),
                OValue::tuple([
                    ("a", OValue::str("k")),
                    (
                        "b",
                        OValue::set([OValue::int(1), OValue::int(2), OValue::int(3)]),
                    ),
                ]),
            )
            .unwrap();
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        assert_eq!(out.output.relation(RelName::new("R2")).unwrap().len(), 3);
    }

    #[test]
    fn isa_schema_translates_for_programs() {
        let unit = parse_unit(
            r#"
            schema {
              class Person: [name: D];
              class Student isa Person: [course: D];
              relation Names: [n: D];
            }
            program {
              input Person, Student;
              output Names;
              Names(x) :- Person(p), p^ = [name: x];
              Names(x) :- Student(p), p^ = [name: x, course: c];
            }
            "#,
        )
        .unwrap();
        assert!(!unit.isa.is_empty());
        let prog = unit.program.unwrap();
        // The translated Student type merges Person's fields.
        let st = prog.schema.class_type(ClassName::new("Student")).unwrap();
        let mut s = String::new();
        use std::fmt::Write;
        write!(s, "{st}").unwrap();
        assert!(s.contains("name"));
    }

    #[test]
    fn del_heads_parse() {
        let unit = parse_unit(
            r#"
            schema {
              relation R: [a: D];
              relation Kill: [a: D];
            }
            program {
              input R, Kill;
              output R;
              del R(x) :- Kill(x);
            }
            "#,
        )
        .unwrap();
        let prog = unit.program.unwrap();
        assert!(prog.uses_deletion());
    }

    #[test]
    fn choose_parses() {
        let unit = parse_unit(
            r#"
            schema {
              class P: [];
              relation Winner: [w: P];
            }
            program {
              input P;
              output Winner;
              Winner(x) :- choose;
            }
            "#,
        )
        .unwrap();
        assert!(unit.program.unwrap().uses_choose());
    }

    #[test]
    fn instance_block_parses_and_runs() {
        let unit = parse_unit(
            r#"
            schema {
              class Gen2: [name: D, occupations: {D}];
              relation FoundedLineage: Gen2;
              relation Names: [n: D];
            }
            program {
              input Gen2, FoundedLineage;
              output Names;
              Names(x) :- FoundedLineage(p), p^ = [name: x, occupations: O];
            }
            instance {
              Gen2(cain);
              Gen2(seth);
              cain^ = [name: "Cain", occupations: {"Farmer", "Nomad"}];
              seth^ = [name: "Seth", occupations: {}];
              FoundedLineage(cain);
              FoundedLineage(seth);
            }
            "#,
        )
        .unwrap();
        let prog = unit.program.unwrap();
        let input = unit.instance.unwrap();
        input.validate().unwrap();
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        assert_eq!(out.output.relation(RelName::new("Names")).unwrap().len(), 2);
    }

    #[test]
    fn instance_block_with_set_valued_class() {
        let unit = parse_unit(
            r#"
            schema {
              class Ps: {D};
              relation Holds: [p: Ps];
            }
            instance {
              Ps(box1);
              box1^("x");
              box1^("y");
              Holds(box1);
            }
            "#,
        )
        .unwrap();
        let inst = unit.instance.unwrap();
        let o = *inst
            .class(ClassName::new("Ps"))
            .unwrap()
            .iter()
            .next()
            .unwrap();
        assert_eq!(
            inst.value(o),
            Some(&OValue::set([OValue::str("x"), OValue::str("y")]))
        );
    }

    #[test]
    fn instance_block_rejects_unknown_oid() {
        let err = parse_unit(
            r#"
            schema {
              class Pz: [];
              relation R: [p: Pz];
            }
            instance {
              R(ghost);
            }
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn instance_block_rejects_ill_typed_fact() {
        let err = parse_unit(
            r#"
            schema {
              relation R: [a: D];
            }
            instance {
              R({});
            }
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, IqlError::Model(_)));
    }

    #[test]
    fn var_declarations_feed_inference() {
        // The powerset seed: R1(X) :- X = X with an explicit declaration.
        let unit = parse_unit(
            r#"
            schema {
              relation R:  [a: D];
              relation R1: [s: {D}];
            }
            program {
              input R;
              output R1;
              var X: {D};
              R1(X) :- X = X;
            }
            "#,
        )
        .unwrap();
        let prog = unit.program.unwrap();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for v in ["p", "q"] {
            input
                .insert(RelName::new("R"), OValue::tuple([("a", OValue::str(v))]))
                .unwrap();
        }
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        // Subsets of the active domain {p, q}: {}, {p}, {q}, {p,q}.
        assert_eq!(out.output.relation(RelName::new("R1")).unwrap().len(), 4);
        assert!(out.report.enum_fallbacks > 0);
    }
}
