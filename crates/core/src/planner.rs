//! Cost-based join planning for rule bodies, lowering to the shared
//! physical-plan IR.
//!
//! The evaluator originally executed body literals in *textual* order (the
//! syntactic plan of [`build_plan`], still the fallback and the ablation
//! baseline). This module adds a greedy cost-based planner on top: literals
//! are reordered by estimated selectivity from the instance's cardinality
//! statistics ([`iql_model::InstanceStats`]), and every relation scan gets a
//! statically chosen probe attribute backed by the instance's persistent
//! secondary indexes ([`iql_model::RelIndexes`]).
//!
//! Plans are programs of [`iql_exec::PhysOp`] operators instantiated at
//! [`IqlLang`] — the execution runtime owns the operator vocabulary and its
//! invariants, this module owns what the operands *mean* in IQL (terms,
//! literals, attribute probes) and how a rule body lowers into them. Probe
//! selection goes through the runtime's one shared policy
//! ([`iql_exec::choose_probe`]) over the instance's [`iql_exec::Storage`]
//! statistics view.
//!
//! The planner is a **pure optimization**: it never changes the set of
//! valuations a body produces (conjunction is order-independent, and every
//! positive relation/class member stays a [`PhysOp::Scan`] so semi-naive
//! delta positions keep covering all supporting facts), and the evaluator's
//! merge phase canonicalizes fire order wherever order is observable (oid
//! invention, deletions) — see DESIGN.md, "Execution runtime". Plans that
//! would need an active-domain enumeration fall back to the syntactic order
//! wholesale, so `enum_fallbacks` counters are identical with the planner
//! on or off.
//!
//! A [`RulePlan`] borrows only the *rule*, never the instance: planning
//! reads (and, for probe candidates, ensures) the instance's indexes
//! transiently, so a built plan stays valid across steps and is cached by
//! the evaluator keyed on the instance's statistics epoch
//! ([`iql_model::Instance::stats_epoch`]).

use crate::ast::{Literal, Rule, Term, VarName};
use crate::error::{IqlError, Result};
use crate::eval::EvalConfig;
use iql_exec::{choose_probe, PhysOp, PlanLang};
use iql_model::{AttrName, ClassName, Instance, RelName, TypeExpr};
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// The IQL instantiation of the shared plan IR: scan sources and match
/// patterns are terms borrowed from the rule, probes pair an indexed
/// attribute with the term producing the key, and guards are body literals.
pub(crate) struct IqlLang<'a>(PhantomData<&'a ()>);

impl<'a> PlanLang for IqlLang<'a> {
    type Src = &'a Term;
    type Pat = &'a Term;
    type Col = (AttrName, &'a Term);
    type Guard = &'a Literal;
    type Enum = (VarName, TypeExpr);
}

/// An execution plan step for one rule body.
pub(crate) type Op<'a> = PhysOp<IqlLang<'a>>;

/// The source a relation/class scan draws from — what a semi-naive delta
/// position restricts, and what the empty-delta early exit inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanSource {
    Rel(RelName),
    Class(ClassName),
}

/// A fully prepared per-rule plan, shared by every search task of the rule.
/// Borrows the rule only (not the instance), so the evaluator may reuse it
/// across steps while the statistics epoch stands still.
pub(crate) struct RulePlan<'a> {
    /// Ordered body ops (cost-based when the planner is on, textual else).
    /// Scan probes are statically chosen: the attribute to look up in the
    /// relation's persistent index and the term producing the key — absent
    /// for scans with no fully-bound tuple field and whenever the planner
    /// or indexing is disabled.
    pub ops: Vec<Op<'a>>,
    /// Did cost-based ordering change anything vs. the syntactic plan?
    pub reordered: bool,
    /// Number of [`PhysOp::Enumerate`] fallbacks in the plan.
    pub enum_fallbacks: usize,
    /// Relation/class scans in op order — the semi-naive delta positions.
    pub sources: Vec<PlanSource>,
}

impl RulePlan<'_> {
    /// Number of relation/class scans — the positions a semi-naive
    /// evaluation differentiates.
    pub fn nscans(&self) -> usize {
        self.sources.len()
    }
}

fn term_bound(t: &Term, bound: &BTreeSet<VarName>) -> bool {
    let mut vs = BTreeSet::new();
    t.vars(&mut vs);
    vs.iter().all(|v| bound.contains(v))
}

fn lit_bound(lit: &Literal, bound: &BTreeSet<VarName>) -> bool {
    let mut vs = BTreeSet::new();
    lit.vars(&mut vs);
    vs.iter().all(|v| bound.contains(v))
}

/// Builds the *syntactic* execution plan for a rule body: orders literals so
/// variables are bound before use, preferring textual order among joins
/// sharing the most bound variables, inserting [`PhysOp::Enumerate`]
/// fallbacks where no positive literal can bind a variable (the paper's
/// active-domain valuation semantics). This is the planner-off baseline and
/// what `explain` renders.
pub(crate) fn build_plan(rule: &Rule) -> Result<Vec<Op<'_>>> {
    let mut remaining: Vec<&Literal> = rule.body.iter().collect();
    let mut bound: BTreeSet<VarName> = BTreeSet::new();
    let mut plan: Vec<Op> = Vec::new();

    while !remaining.is_empty() {
        // 1. Prefer a positive membership whose set side is evaluable;
        //    among those, prefer the one sharing the most already-bound
        //    variables (joins before cross products).
        let mut picked: Option<usize> = None;
        let mut best_score: isize = -1;
        for (i, lit) in remaining.iter().enumerate() {
            if let Literal::Member {
                set,
                elem,
                positive: true,
            } = lit
            {
                let evaluable = match set {
                    Term::Rel(_) | Term::Class(_) => true,
                    _ => term_bound(set, &bound),
                };
                if evaluable {
                    let mut vs = BTreeSet::new();
                    elem.vars(&mut vs);
                    let score = vs.iter().filter(|v| bound.contains(*v)).count() as isize;
                    if score > best_score {
                        best_score = score;
                        picked = Some(i);
                    }
                }
            }
        }
        // 2. Else a positive equality with one side evaluable.
        if picked.is_none() {
            for (i, lit) in remaining.iter().enumerate() {
                if let Literal::Eq {
                    left,
                    right,
                    positive: true,
                } = lit
                {
                    if term_bound(left, &bound) || term_bound(right, &bound) {
                        picked = Some(i);
                        break;
                    }
                }
            }
        }
        // 3. Else a fully-bound filter (negatives, inequalities, choose).
        if picked.is_none() {
            for (i, lit) in remaining.iter().enumerate() {
                if lit_bound(lit, &bound) {
                    picked = Some(i);
                    break;
                }
            }
        }
        match picked {
            Some(i) => {
                let lit = remaining.remove(i);
                push_picked(lit, &mut bound, &mut plan);
            }
            None => {
                // Stuck: enumerate the lexicographically first unbound
                // variable of the remaining literals (paper semantics —
                // variables range over their type's active-domain
                // interpretation).
                let mut vs = BTreeSet::new();
                for lit in &remaining {
                    lit.vars(&mut vs);
                }
                let var = vs
                    .into_iter()
                    .find(|v| !bound.contains(v))
                    .expect("stuck plan must have an unbound variable");
                let ty = rule
                    .var_types
                    .get(&var)
                    .cloned()
                    .ok_or_else(|| IqlError::Invalid(format!("untyped variable {var}")))?;
                bound.insert(var.clone());
                plan.push(Op::Enumerate { item: (var, ty) });
            }
        }
    }
    // (Head-only vars are the invention variables, handled by the caller.)
    Ok(plan)
}

/// Appends a picked literal to the plan as the op its bound-state calls for,
/// extending `bound` with whatever the op binds. Positive members always
/// become [`PhysOp::Scan`]s — never guards — so every supporting fact stays
/// coverable by a semi-naive delta position; negated literals become
/// [`PhysOp::NegGuard`]s, everything else fully bound (`choose`) a
/// [`PhysOp::Filter`].
fn push_picked<'a>(lit: &'a Literal, bound: &mut BTreeSet<VarName>, plan: &mut Vec<Op<'a>>) {
    match lit {
        Literal::Member {
            set,
            elem,
            positive: true,
        } => {
            set.vars(bound);
            elem.vars(bound);
            plan.push(Op::Scan {
                src: set,
                pat: elem,
                probe: None,
            });
        }
        Literal::Eq {
            left,
            right,
            positive: true,
        } => {
            let (src, pat) = if term_bound(left, bound) {
                (left, right)
            } else {
                (right, left)
            };
            pat.vars(bound);
            plan.push(Op::BindEq { src, pat });
        }
        neg @ (Literal::Member {
            positive: false, ..
        }
        | Literal::Eq {
            positive: false, ..
        }) => plan.push(Op::NegGuard { guard: neg }),
        other => plan.push(Op::Filter { guard: other }),
    }
}

/// Can matching bind every unbound variable of `pattern`? The matcher binds
/// variables only at `Var` positions reachable through tuple/set
/// constructors; dereference / relation / class subterms are *evaluated*
/// during the match, so they must already be fully bound. Picking a literal
/// whose pattern violates this would silently produce zero valuations — the
/// costed order must never do that in a position the syntactic order
/// wouldn't.
fn pattern_bindable(pattern: &Term, bound: &BTreeSet<VarName>) -> bool {
    match pattern {
        Term::Var(_) | Term::Const(_) => true,
        Term::Tuple(fields) => fields.iter().all(|(_, t)| pattern_bindable(t, bound)),
        Term::Set(elems) => elems.iter().all(|t| pattern_bindable(t, bound)),
        Term::Deref(_) | Term::Rel(_) | Term::Class(_) => term_bound(pattern, bound),
    }
}

/// Is this a positive equality the costed planner may place now? One side
/// must be evaluable and the side [`push_picked`] will use as the pattern
/// must be able to bind its remaining variables.
fn eq_safe(lit: &Literal, bound: &BTreeSet<VarName>) -> bool {
    let Literal::Eq {
        left,
        right,
        positive: true,
    } = lit
    else {
        return false;
    };
    let pattern = if term_bound(left, bound) {
        right
    } else if term_bound(right, bound) {
        left
    } else {
        return false;
    };
    pattern_bindable(pattern, bound)
}

/// Cost ceiling standing in for "unknown but probably small": scans over an
/// already-bound set value (its cardinality is not in the statistics).
const BOUND_SET_COST: usize = 8;

/// Estimated candidate count of scanning `lit` under `bound`, ensuring
/// persistent indexes for every probe-candidate attribute along the way (a
/// built index *is* the distinct-count statistic). `None` if the literal is
/// not an evaluable positive member.
fn member_cost(
    lit: &Literal,
    bound: &BTreeSet<VarName>,
    work: &mut Instance,
    cfg: &EvalConfig,
) -> Option<usize> {
    let Literal::Member {
        set,
        elem,
        positive: true,
    } = lit
    else {
        return None;
    };
    if !pattern_bindable(elem, bound) {
        return None; // matching could not bind `elem`'s remaining vars yet
    }
    match set {
        Term::Rel(r) => {
            let len = work.relation_ids(*r).ok()?.len();
            let mut est = len;
            if cfg.use_index {
                if let Term::Tuple(fields) = elem {
                    for (attr, t) in fields {
                        if term_bound(t, bound) {
                            work.ensure_rel_index(*r, *attr);
                            if let Some(e) = work.stats().probe_estimate(*r, *attr) {
                                est = est.min(e);
                            }
                        }
                    }
                }
            }
            Some(est)
        }
        Term::Class(p) => work.class(*p).ok().map(|s| s.len()),
        _ if term_bound(set, bound) => Some(BOUND_SET_COST),
        _ => None,
    }
}

/// Builds the cost-based plan: guards as soon as they are fully bound,
/// equalities as soon as one side is evaluable, and otherwise the cheapest
/// evaluable positive member by estimated candidate count (ties broken by
/// textual order, keeping the reordering deterministic and minimal).
/// Returns `None` when the greedy gets stuck — the caller falls back to the
/// syntactic plan, which knows how to enumerate.
fn build_plan_costed<'a>(
    rule: &'a Rule,
    work: &mut Instance,
    cfg: &EvalConfig,
) -> Option<Vec<Op<'a>>> {
    let mut remaining: Vec<&'a Literal> = rule.body.iter().collect();
    let mut bound: BTreeSet<VarName> = BTreeSet::new();
    let mut plan: Vec<Op<'a>> = Vec::new();
    while !remaining.is_empty() {
        // 1. Fully-bound non-member literals are free pruning — place all,
        //    textual order. (Members stay scans; see `push_picked`.)
        if let Some(i) = remaining.iter().position(|lit| {
            !matches!(lit, Literal::Member { positive: true, .. }) && lit_bound(lit, &bound)
        }) {
            push_picked(remaining.remove(i), &mut bound, &mut plan);
            continue;
        }
        // 2. An equality with one side evaluable binds variables for ~free —
        //    but only when its pattern side can actually bind them.
        if let Some(i) = remaining.iter().position(|lit| eq_safe(lit, &bound)) {
            push_picked(remaining.remove(i), &mut bound, &mut plan);
            continue;
        }
        // 3. Cheapest evaluable positive member.
        let mut picked: Option<(usize, usize)> = None; // (cost, index)
        for (i, lit) in remaining.iter().enumerate() {
            if let Some(cost) = member_cost(lit, &bound, work, cfg) {
                if picked.is_none_or(|(best, _)| cost < best) {
                    picked = Some((cost, i));
                }
            }
        }
        let (_, i) = picked?; // stuck ⇒ syntactic fallback
        push_picked(remaining.remove(i), &mut bound, &mut plan);
    }
    Some(plan)
}

/// Do two plans execute the same ops in the same order? Ops reference the
/// rule's own literals, so pointer identity is exact. (Called before probe
/// selection; probes never differ between equal orders.)
fn same_order(a: &[Op], b: &[Op]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| match (x, y) {
            (
                Op::Scan {
                    src: s1, pat: p1, ..
                },
                Op::Scan {
                    src: s2, pat: p2, ..
                },
            ) => std::ptr::eq(*s1, *s2) && std::ptr::eq(*p1, *p2),
            (Op::BindEq { src: s1, pat: p1 }, Op::BindEq { src: s2, pat: p2 }) => {
                std::ptr::eq(*s1, *s2) && std::ptr::eq(*p1, *p2)
            }
            (Op::Filter { guard: g1 }, Op::Filter { guard: g2 })
            | (Op::NegGuard { guard: g1 }, Op::NegGuard { guard: g2 }) => std::ptr::eq(*g1, *g2),
            _ => false,
        })
}

/// Statically chooses a probe attribute per scan: among the tuple fields
/// whose terms are fully bound by the plan prefix, the most selective per
/// the runtime's shared policy ([`iql_exec::choose_probe`]) — candidates
/// are ensured into the persistent indexes first, so a built index backs
/// every statistic the choice reads and the executor can probe instead of
/// rebuilding a map per step.
fn choose_probes(ops: &mut [Op<'_>], work: &mut Instance, cfg: &EvalConfig) {
    if !(cfg.use_planner && cfg.use_index) {
        return;
    }
    let mut bound: BTreeSet<VarName> = BTreeSet::new();
    for op in ops.iter_mut() {
        if let Op::Scan {
            src: Term::Rel(r),
            pat: Term::Tuple(fields),
            probe,
        } = op
        {
            // Candidates in attribute order: the shared policy keeps the
            // earliest on ties, so the choice is deterministic.
            let candidates: Vec<(AttrName, &Term)> = fields
                .iter()
                .filter(|(_, t)| term_bound(t, &bound))
                .map(|(attr, t)| (*attr, t))
                .collect();
            for (attr, _) in &candidates {
                work.ensure_rel_index(*r, *attr);
            }
            let chosen = choose_probe(&work.stats(), *r, candidates.iter().map(|(a, _)| *a));
            *probe = chosen.and_then(|attr| candidates.iter().find(|(a, _)| *a == attr).copied());
        }
        match op {
            Op::Scan { src, pat, .. } => {
                src.vars(&mut bound);
                pat.vars(&mut bound);
            }
            Op::BindEq { pat, .. } => pat.vars(&mut bound),
            Op::Enumerate { item: (var, _) } => {
                bound.insert(var.clone());
            }
            Op::Filter { .. } | Op::NegGuard { .. } => {}
        }
    }
}

/// Builds the plan one rule executes: syntactic order, replaced by the
/// cost-based order when the planner is on and both orders are
/// enumeration-free (so the `enum_fallbacks` counter cannot drift between
/// the ablation arms), plus static probe choices over ensured persistent
/// indexes. The plan borrows the rule only — the instance is consulted (and
/// its indexes ensured) transiently, so the result stays valid until the
/// statistics epoch moves.
pub(crate) fn plan_rule<'a>(
    rule: &'a Rule,
    work: &mut Instance,
    cfg: &EvalConfig,
) -> Result<RulePlan<'a>> {
    let syntactic = build_plan(rule)?;
    let enum_fallbacks = syntactic
        .iter()
        .filter(|op| matches!(op, Op::Enumerate { .. }))
        .count();
    let (mut ops, reordered) = if cfg.use_planner && enum_fallbacks == 0 {
        match build_plan_costed(rule, work, cfg) {
            Some(costed) => {
                let reordered = !same_order(&costed, &syntactic);
                (costed, reordered)
            }
            None => (syntactic, false),
        }
    } else {
        (syntactic, false)
    };
    choose_probes(&mut ops, work, cfg);
    let sources = ops
        .iter()
        .filter_map(|op| match op {
            Op::Scan {
                src: Term::Rel(r), ..
            } => Some(PlanSource::Rel(*r)),
            Op::Scan {
                src: Term::Class(p),
                ..
            } => Some(PlanSource::Class(*p)),
            _ => None,
        })
        .collect();
    Ok(RulePlan {
        ops,
        reordered,
        enum_fallbacks,
        sources,
    })
}
