//! Cost-based join planning for rule bodies.
//!
//! The evaluator originally executed body literals in *textual* order (the
//! syntactic plan of [`build_plan`], still the fallback and the ablation
//! baseline). This module adds a greedy cost-based planner on top: literals
//! are reordered by estimated selectivity from the instance's cardinality
//! statistics ([`iql_model::InstanceStats`]), and every relation scan gets a
//! statically chosen probe attribute backed by the instance's persistent
//! secondary indexes ([`iql_model::RelIndexes`]).
//!
//! The planner is a **pure optimization**: it never changes the set of
//! valuations a body produces (conjunction is order-independent, and every
//! positive relation/class member stays a [`Op::Scan`] so semi-naive delta
//! positions keep covering all supporting facts), and the evaluator's merge
//! phase canonicalizes fire order wherever order is observable (oid
//! invention, deletions) — see DESIGN.md, "Query planning and indexes".
//! Plans that would need an active-domain enumeration fall back to the
//! syntactic order wholesale, so `enum_fallbacks` counters are identical
//! with the planner on or off.

use crate::ast::{Literal, Rule, Term, VarName};
use crate::error::{IqlError, Result};
use crate::eval::EvalConfig;
use iql_model::{AttrName, ClassName, Instance, RelName, TypeExpr};
use std::collections::BTreeSet;

/// An execution plan step for one rule body.
pub(crate) enum Op<'a> {
    /// Iterate the set denoted by `set`, matching `elem` (binds variables).
    Scan { set: &'a Term, elem: &'a Term },
    /// Evaluate `src` and match `pattern` against it (binds variables).
    EqMatch { src: &'a Term, pattern: &'a Term },
    /// Enumerate a variable's type over the active domain.
    Enumerate { var: VarName, ty: TypeExpr },
    /// Filter: all variables bound.
    Filter { lit: &'a Literal },
}

/// The source a relation/class scan draws from — what a semi-naive delta
/// position restricts, and what the empty-delta early exit inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanSource {
    Rel(RelName),
    Class(ClassName),
}

/// A fully prepared per-rule plan, built once per step and shared by every
/// search task of the rule.
pub(crate) struct RulePlan<'a> {
    /// Ordered body ops (cost-based when the planner is on, textual else).
    pub ops: Vec<Op<'a>>,
    /// Per-op statically chosen probe: the attribute to look up in the
    /// relation's persistent index and the term producing the key. `None`
    /// for non-scans, for scans with no fully-bound tuple field, and
    /// whenever the planner or indexing is disabled.
    pub probes: Vec<Option<(AttrName, &'a Term)>>,
    /// Did cost-based ordering change anything vs. the syntactic plan?
    pub reordered: bool,
    /// Number of `Op::Enumerate` fallbacks in the plan.
    pub enum_fallbacks: usize,
    /// Relation/class scans in op order — the semi-naive delta positions.
    pub sources: Vec<PlanSource>,
}

impl RulePlan<'_> {
    /// Number of relation/class scans — the positions a semi-naive
    /// evaluation differentiates.
    pub fn nscans(&self) -> usize {
        self.sources.len()
    }
}

fn term_bound(t: &Term, bound: &BTreeSet<VarName>) -> bool {
    let mut vs = BTreeSet::new();
    t.vars(&mut vs);
    vs.iter().all(|v| bound.contains(v))
}

fn lit_bound(lit: &Literal, bound: &BTreeSet<VarName>) -> bool {
    let mut vs = BTreeSet::new();
    lit.vars(&mut vs);
    vs.iter().all(|v| bound.contains(v))
}

/// Builds the *syntactic* execution plan for a rule body: orders literals so
/// variables are bound before use, preferring textual order among joins
/// sharing the most bound variables, inserting [`Op::Enumerate`] fallbacks
/// where no positive literal can bind a variable (the paper's active-domain
/// valuation semantics). This is the planner-off baseline and what
/// `explain` renders.
pub(crate) fn build_plan(rule: &Rule) -> Result<Vec<Op<'_>>> {
    let mut remaining: Vec<&Literal> = rule.body.iter().collect();
    let mut bound: BTreeSet<VarName> = BTreeSet::new();
    let mut plan: Vec<Op> = Vec::new();

    while !remaining.is_empty() {
        // 1. Prefer a positive membership whose set side is evaluable;
        //    among those, prefer the one sharing the most already-bound
        //    variables (joins before cross products).
        let mut picked: Option<usize> = None;
        let mut best_score: isize = -1;
        for (i, lit) in remaining.iter().enumerate() {
            if let Literal::Member {
                set,
                elem,
                positive: true,
            } = lit
            {
                let evaluable = match set {
                    Term::Rel(_) | Term::Class(_) => true,
                    _ => term_bound(set, &bound),
                };
                if evaluable {
                    let mut vs = BTreeSet::new();
                    elem.vars(&mut vs);
                    let score = vs.iter().filter(|v| bound.contains(*v)).count() as isize;
                    if score > best_score {
                        best_score = score;
                        picked = Some(i);
                    }
                }
            }
        }
        // 2. Else a positive equality with one side evaluable.
        if picked.is_none() {
            for (i, lit) in remaining.iter().enumerate() {
                if let Literal::Eq {
                    left,
                    right,
                    positive: true,
                } = lit
                {
                    if term_bound(left, &bound) || term_bound(right, &bound) {
                        picked = Some(i);
                        break;
                    }
                }
            }
        }
        // 3. Else a fully-bound filter (negatives, inequalities, choose).
        if picked.is_none() {
            for (i, lit) in remaining.iter().enumerate() {
                if lit_bound(lit, &bound) {
                    picked = Some(i);
                    break;
                }
            }
        }
        match picked {
            Some(i) => {
                let lit = remaining.remove(i);
                push_picked(lit, &mut bound, &mut plan);
            }
            None => {
                // Stuck: enumerate the lexicographically first unbound
                // variable of the remaining literals (paper semantics —
                // variables range over their type's active-domain
                // interpretation).
                let mut vs = BTreeSet::new();
                for lit in &remaining {
                    lit.vars(&mut vs);
                }
                let var = vs
                    .into_iter()
                    .find(|v| !bound.contains(v))
                    .expect("stuck plan must have an unbound variable");
                let ty = rule
                    .var_types
                    .get(&var)
                    .cloned()
                    .ok_or_else(|| IqlError::Invalid(format!("untyped variable {var}")))?;
                bound.insert(var.clone());
                plan.push(Op::Enumerate { var, ty });
            }
        }
    }
    // (Head-only vars are the invention variables, handled by the caller.)
    Ok(plan)
}

/// Appends a picked literal to the plan as the op its bound-state calls for,
/// extending `bound` with whatever the op binds. Positive members always
/// become [`Op::Scan`]s — never filters — so every supporting fact stays
/// coverable by a semi-naive delta position.
fn push_picked<'a>(lit: &'a Literal, bound: &mut BTreeSet<VarName>, plan: &mut Vec<Op<'a>>) {
    match lit {
        Literal::Member {
            set,
            elem,
            positive: true,
        } => {
            set.vars(bound);
            elem.vars(bound);
            plan.push(Op::Scan { set, elem });
        }
        Literal::Eq {
            left,
            right,
            positive: true,
        } => {
            let (src, pattern) = if term_bound(left, bound) {
                (left, right)
            } else {
                (right, left)
            };
            pattern.vars(bound);
            plan.push(Op::EqMatch { src, pattern });
        }
        other => plan.push(Op::Filter { lit: other }),
    }
}

/// Can matching bind every unbound variable of `pattern`? The matcher binds
/// variables only at `Var` positions reachable through tuple/set
/// constructors; dereference / relation / class subterms are *evaluated*
/// during the match, so they must already be fully bound. Picking a literal
/// whose pattern violates this would silently produce zero valuations — the
/// costed order must never do that in a position the syntactic order
/// wouldn't.
fn pattern_bindable(pattern: &Term, bound: &BTreeSet<VarName>) -> bool {
    match pattern {
        Term::Var(_) | Term::Const(_) => true,
        Term::Tuple(fields) => fields.iter().all(|(_, t)| pattern_bindable(t, bound)),
        Term::Set(elems) => elems.iter().all(|t| pattern_bindable(t, bound)),
        Term::Deref(_) | Term::Rel(_) | Term::Class(_) => term_bound(pattern, bound),
    }
}

/// Is this a positive equality the costed planner may place now? One side
/// must be evaluable and the side [`push_picked`] will use as the pattern
/// must be able to bind its remaining variables.
fn eq_safe(lit: &Literal, bound: &BTreeSet<VarName>) -> bool {
    let Literal::Eq {
        left,
        right,
        positive: true,
    } = lit
    else {
        return false;
    };
    let pattern = if term_bound(left, bound) {
        right
    } else if term_bound(right, bound) {
        left
    } else {
        return false;
    };
    pattern_bindable(pattern, bound)
}

/// Cost ceiling standing in for "unknown but probably small": scans over an
/// already-bound set value (its cardinality is not in the statistics).
const BOUND_SET_COST: usize = 8;

/// Estimated candidate count of scanning `lit` under `bound`, ensuring
/// persistent indexes for every probe-candidate attribute along the way (a
/// built index *is* the distinct-count statistic). `None` if the literal is
/// not an evaluable positive member.
fn member_cost(
    lit: &Literal,
    bound: &BTreeSet<VarName>,
    work: &mut Instance,
    cfg: &EvalConfig,
) -> Option<usize> {
    let Literal::Member {
        set,
        elem,
        positive: true,
    } = lit
    else {
        return None;
    };
    if !pattern_bindable(elem, bound) {
        return None; // matching could not bind `elem`'s remaining vars yet
    }
    match set {
        Term::Rel(r) => {
            let len = work.relation_ids(*r).ok()?.len();
            let mut est = len;
            if cfg.use_index {
                if let Term::Tuple(fields) = elem {
                    for (attr, t) in fields {
                        if term_bound(t, bound) {
                            work.ensure_rel_index(*r, *attr);
                            if let Some(e) = work.stats().probe_estimate(*r, *attr) {
                                est = est.min(e);
                            }
                        }
                    }
                }
            }
            Some(est)
        }
        Term::Class(p) => work.class(*p).ok().map(|s| s.len()),
        _ if term_bound(set, bound) => Some(BOUND_SET_COST),
        _ => None,
    }
}

/// Builds the cost-based plan: filters as soon as they are fully bound,
/// equalities as soon as one side is evaluable, and otherwise the cheapest
/// evaluable positive member by estimated candidate count (ties broken by
/// textual order, keeping the reordering deterministic and minimal).
/// Returns `None` when the greedy gets stuck — the caller falls back to the
/// syntactic plan, which knows how to enumerate.
fn build_plan_costed<'a>(
    rule: &'a Rule,
    work: &mut Instance,
    cfg: &EvalConfig,
) -> Option<Vec<Op<'a>>> {
    let mut remaining: Vec<&'a Literal> = rule.body.iter().collect();
    let mut bound: BTreeSet<VarName> = BTreeSet::new();
    let mut plan: Vec<Op<'a>> = Vec::new();
    while !remaining.is_empty() {
        // 1. Fully-bound non-member literals are free pruning — place all,
        //    textual order. (Members stay scans; see `push_picked`.)
        if let Some(i) = remaining.iter().position(|lit| {
            !matches!(lit, Literal::Member { positive: true, .. }) && lit_bound(lit, &bound)
        }) {
            push_picked(remaining.remove(i), &mut bound, &mut plan);
            continue;
        }
        // 2. An equality with one side evaluable binds variables for ~free —
        //    but only when its pattern side can actually bind them.
        if let Some(i) = remaining.iter().position(|lit| eq_safe(lit, &bound)) {
            push_picked(remaining.remove(i), &mut bound, &mut plan);
            continue;
        }
        // 3. Cheapest evaluable positive member.
        let mut picked: Option<(usize, usize)> = None; // (cost, index)
        for (i, lit) in remaining.iter().enumerate() {
            if let Some(cost) = member_cost(lit, &bound, work, cfg) {
                if picked.is_none_or(|(best, _)| cost < best) {
                    picked = Some((cost, i));
                }
            }
        }
        let (_, i) = picked?; // stuck ⇒ syntactic fallback
        push_picked(remaining.remove(i), &mut bound, &mut plan);
    }
    Some(plan)
}

/// Do two plans execute the same ops in the same order? Ops reference the
/// rule's own literals, so pointer identity is exact.
fn same_order(a: &[Op], b: &[Op]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| match (x, y) {
            (Op::Scan { set: s1, elem: e1 }, Op::Scan { set: s2, elem: e2 }) => {
                std::ptr::eq(*s1, *s2) && std::ptr::eq(*e1, *e2)
            }
            (
                Op::EqMatch {
                    src: s1,
                    pattern: p1,
                },
                Op::EqMatch {
                    src: s2,
                    pattern: p2,
                },
            ) => std::ptr::eq(*s1, *s2) && std::ptr::eq(*p1, *p2),
            (Op::Filter { lit: l1 }, Op::Filter { lit: l2 }) => std::ptr::eq(*l1, *l2),
            _ => false,
        })
}

/// Statically chooses a probe attribute per scan: among the tuple fields
/// whose terms are fully bound by the plan prefix, the one with the most
/// distinct values (ensured into the persistent indexes, so the executor
/// can probe instead of rebuilding a map per step).
fn choose_probes<'a>(
    ops: &[Op<'a>],
    work: &mut Instance,
    cfg: &EvalConfig,
) -> Vec<Option<(AttrName, &'a Term)>> {
    if !(cfg.use_planner && cfg.use_index) {
        return ops.iter().map(|_| None).collect();
    }
    let mut bound: BTreeSet<VarName> = BTreeSet::new();
    let mut probes = Vec::with_capacity(ops.len());
    for op in ops {
        let probe = match op {
            Op::Scan {
                set: Term::Rel(r),
                elem: Term::Tuple(fields),
            } => {
                let mut best: Option<(usize, AttrName, &'a Term)> = None;
                for (attr, t) in fields.iter() {
                    if term_bound(t, &bound) {
                        work.ensure_rel_index(*r, *attr);
                        let distinct = work.stats().attr_distinct(*r, *attr).unwrap_or(0);
                        // Strict > keeps the first (attr-ordered) winner.
                        if best.is_none_or(|(d, _, _)| distinct > d) {
                            best = Some((distinct, *attr, t));
                        }
                    }
                }
                best.map(|(_, a, t)| (a, t))
            }
            _ => None,
        };
        probes.push(probe);
        match op {
            Op::Scan { set, elem } => {
                set.vars(&mut bound);
                elem.vars(&mut bound);
            }
            Op::EqMatch { pattern, .. } => pattern.vars(&mut bound),
            Op::Enumerate { var, .. } => {
                bound.insert(var.clone());
            }
            Op::Filter { .. } => {}
        }
    }
    probes
}

/// Builds the plan one rule executes this step: syntactic order, replaced by
/// the cost-based order when the planner is on and both orders are
/// enumeration-free (so the `enum_fallbacks` counter cannot drift between
/// the ablation arms), plus static probe choices over ensured persistent
/// indexes.
pub(crate) fn plan_rule<'a>(
    rule: &'a Rule,
    work: &mut Instance,
    cfg: &EvalConfig,
) -> Result<RulePlan<'a>> {
    let syntactic = build_plan(rule)?;
    let enum_fallbacks = syntactic
        .iter()
        .filter(|op| matches!(op, Op::Enumerate { .. }))
        .count();
    let (ops, reordered) = if cfg.use_planner && enum_fallbacks == 0 {
        match build_plan_costed(rule, work, cfg) {
            Some(costed) => {
                let reordered = !same_order(&costed, &syntactic);
                (costed, reordered)
            }
            None => (syntactic, false),
        }
    } else {
        (syntactic, false)
    };
    let probes = choose_probes(&ops, work, cfg);
    let sources = ops
        .iter()
        .filter_map(|op| match op {
            Op::Scan {
                set: Term::Rel(r), ..
            } => Some(PlanSource::Rel(*r)),
            Op::Scan {
                set: Term::Class(p),
                ..
            } => Some(PlanSource::Class(*p)),
            _ => None,
        })
        .collect();
    Ok(RulePlan {
        ops,
        probes,
        reordered,
        enum_fallbacks,
        sources,
    })
}
