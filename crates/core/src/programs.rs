//! Ready-made IQL programs from the paper, used by examples, integration
//! tests, and the benchmark harness. Each is produced through the textual
//! [`crate::parser`], so these double as end-to-end parser fixtures.

use crate::ast::Program;
use crate::parser::parse_unit;

/// Example 1.2: transform a directed graph stored as a binary relation
/// `R : [src:D, dst:D]` into the cyclic class representation
/// `P : [name:D, succs:{P}]` — one oid per node, successors nested as a set
/// of oids. Demonstrates all four IQL stages: Datalog projection, parallel
/// oid invention, set grouping through a temporary set-valued class, and
/// weak assignment.
pub fn graph_to_class_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation R:  [src: D, dst: D];
          relation R0: [node: D];
          relation Rp: [node: D, p: P, pp: Pp];
          class P:  [name: D, succs: {P}];
          class Pp: {P};
        }
        program {
          input R;
          output P;
          stage {
            R0(x) :- R(x, y);
            R0(x) :- R(y, x);
          }
          stage {
            Rp(x, p, pp) :- R0(x);
          }
          stage {
            pp^(q) :- Rp(x, p, pp), Rp(y, q, qq), R(x, y);
          }
          stage {
            p^ = [name: x, succs: pp^] :- Rp(x, p, pp);
          }
        }
        "#,
    )
    .expect("graph_to_class_program parses")
    .program
    .expect("program block present")
}

/// The inverse of [`graph_to_class_program`]: flatten the class
/// representation back into a binary edge relation (the "vice-versa"
/// direction promised in Section 1). Purely invention-free.
pub fn class_to_graph_program() -> Program {
    parse_unit(
        r#"
        schema {
          class P:  [name: D, succs: {P}];
          relation Out: [src: D, dst: D];
        }
        program {
          input P;
          output Out;
          Out(x, y) :- P(p), P(q), p^ = [name: x, succs: S], S(q), q^ = [name: y, succs: T];
        }
        "#,
    )
    .expect("class_to_graph_program parses")
    .program
    .expect("program block present")
}

/// Example 3.4.1: unnest `R1 : [a:D, b:{D}]` into `R2 : [a:D, b:D]`.
pub fn unnest_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation R1: [a: D, b: {D}];
          relation R2: [a: D, b: D];
        }
        program {
          input R1;
          output R2;
          R2(x, y) :- R1(x, Y), Y(y);
        }
        "#,
    )
    .expect("unnest_program parses")
    .program
    .expect("program block present")
}

/// Example 3.4.1: nest `R2 : [a:D, b:D]` into `R3 : [a:D, b:{D}]` using an
/// auxiliary set-valued class `P` as the grouping temporary (`G1; G2`).
pub fn nest_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation R2: [a: D, b: D];
          relation R3: [a: D, b: {D}];
          relation R4: [a: D];
          relation R5: [a: D, z: P];
          class P: {D};
        }
        program {
          input R2;
          output R3;
          stage {
            R4(x) :- R2(x, y);
          }
          stage {
            R5(x, z) :- R4(x);
          }
          stage {
            z^(y) :- R2(x, y), R5(x, z);
          }
          stage {
            R3(x, z^) :- R5(x, z);
          }
        }
        "#,
    )
    .expect("nest_program parses")
    .program
    .expect("program block present")
}

/// Example 3.4.2, second version: the *range-restricted* powerset, built
/// constructively with invented set-valued oids — `R1` accumulates all
/// subsets of the input unary relation `R`. Exponential by nature; the
/// paper's showcase of invention-in-a-loop escaping PTIME.
pub fn powerset_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation R:  [a: D];
          relation R1: [s: {D}];
          relation R2: [x: {D}, y: {D}, z: P];
          class P: {D};
        }
        program {
          input R;
          output R1;
          R1({});
          R1({x}) :- R(x);
          R2(X, Y, z) :- R1(X), R1(Y);
          z^(x) :- R2(X, Y, z), X(x);
          z^(y) :- R2(X, Y, z), Y(y);
          R1(z^) :- P(z);
        }
        "#,
    )
    .expect("powerset_program parses")
    .program
    .expect("program block present")
}

/// Example 3.4.2, first version: the *non-range-restricted* powerset
/// `R1(X) ← X = X`, whose variable ranges over the full active-domain
/// interpretation of `{D}` (evaluated by enumeration fallback).
pub fn powerset_unrestricted_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation R:  [a: D];
          relation R1: [s: {D}];
        }
        program {
          input R;
          output R1;
          var X: {D};
          R1(X) :- X = X;
        }
        "#,
    )
    .expect("powerset_unrestricted_program parses")
    .program
    .expect("program block present")
}

/// Example 3.4.3, forward direction: losslessly encode instances of the
/// union-typed schema `P : P ∨ [A1:P, A2:P]` into the union-free schema
/// `Pp : [B1:{Pp}, B2:{[A1:Pp, A2:Pp]}]`.
pub fn union_encode_program() -> Program {
    parse_unit(
        r#"
        schema {
          class P: P | [A1: P, A2: P];
          class Pp: [B1: {Pp}, B2: {[A1: Pp, A2: Pp]}];
          relation R: [C1: P, C2: Pp];
        }
        program {
          input P;
          output Pp;
          stage {
            R(x, xp) :- P(x);
          }
          stage {
            xp^ = [B1: {yp}, B2: {}] :- R(x, xp), R(y, yp), y = x^;
            xp^ = [B1: {}, B2: {[A1: yp, A2: zp]}] :- R(x, xp), R(y, yp), R(z, zp), [A1: y, A2: z] = x^;
          }
        }
        "#,
    )
    .expect("union_encode_program parses")
    .program
    .expect("program block present")
}

/// Example 3.4.3, inverse direction: decode the union-free representation
/// back; composing with [`union_encode_program`] yields an instance
/// O-isomorphic to the original — "no information is lost". Note the
/// coercion variable `w : P ∨ [A1:P, A2:P]` used to keep heads typed.
pub fn union_decode_program() -> Program {
    parse_unit(
        r#"
        schema {
          class P: P | [A1: P, A2: P];
          class Pp: [B1: {Pp}, B2: {[A1: Pp, A2: Pp]}];
          relation R: [C1: P, C2: Pp];
        }
        program {
          input Pp;
          output P;
          stage {
            R(x, xp) :- Pp(xp);
          }
          stage {
            var w: P | [A1: P, A2: P];
            x^ = w :- R(x, xp), R(y, yp), y = w, xp^ = [B1: {yp}, B2: {}];
            x^ = w :- R(x, xp), R(y, yp), R(z, zp), [A1: y, A2: z] = w, xp^ = [B1: {}, B2: {[A1: yp, A2: zp]}];
          }
        }
        "#,
    )
    .expect("union_decode_program parses")
    .program
    .expect("program block present")
}

/// Plain Datalog transitive closure viewed as an IQL program (Section 3.4:
/// "each Datalog program can be viewed as a valid IQL program … and its
/// Datalog and IQL semantics are identical"). Baseline for experiment E11.
pub fn transitive_closure_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation Edge: [src: D, dst: D];
          relation Tc:  [src: D, dst: D];
        }
        program {
          input Edge;
          output Tc;
          Tc(x, y) :- Edge(x, y);
          Tc(x, z) :- Tc(x, y), Edge(y, z);
        }
        "#,
    )
    .expect("transitive_closure_program parses")
    .program
    .expect("program block present")
}

/// A parallelism stress workload: one wide inflationary stage of
/// independent multi-way joins over `Edge` (2-hop, 3-hop, reversal,
/// triangles) plus per-edge oid invention, followed by a weak-assignment
/// stage naming the invented objects. The first stage offers both
/// rule-level parallelism (five independent bodies) and scan-level
/// parallelism (every body opens with a full `Edge` scan), which is what
/// the `eval_parallel` bench ablates over worker counts.
pub fn parallel_join_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation Edge: [src: D, dst: D];
          relation Hop2: [src: D, dst: D];
          relation Hop3: [src: D, dst: D];
          relation Back: [src: D, dst: D];
          relation Tri:  [a: D, b: D, c: D];
          class P: [name: D];
          relation Rep: [node: D, obj: P];
        }
        program {
          input Edge;
          output Hop2, Hop3, Back, Tri, Rep, P;
          stage {
            Hop2(x, z) :- Edge(x, y), Edge(y, z);
            Hop3(x, w) :- Edge(x, y), Edge(y, z), Edge(z, w);
            Back(y, x) :- Edge(x, y);
            Tri(x, y, z) :- Edge(x, y), Edge(y, z), Edge(z, x);
            Rep(x, p) :- Edge(x, y);
          }
          stage {
            p^ = [name: x] :- Rep(x, p);
          }
        }
        "#,
    )
    .expect("parallel_join_program parses")
    .program
    .expect("program block present")
}

/// A planner stress workload: a three-way chain join whose last link goes
/// through an explicit equality, `w = w2`. `Big` is orders of magnitude
/// larger than `Tiny`, and the syntactic plan — which always schedules
/// membership literals before equalities — scans `Big`, joins `Mid`, then
/// crosses the result with all of `Tiny` and only afterwards applies
/// `w = w2` as a filter. The cost-based planner instead starts from
/// `Tiny`, binds `w` through the equality immediately, and probes `Mid`
/// and `Big` through their persistent attribute indexes — the
/// `eval_planner` bench ablates exactly this reordering.
pub fn skewed_join_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation Big:  [k: D, v: D];
          relation Mid:  [k: D, w: D];
          relation Tiny: [w: D, t: D];
          relation Out:  [k: D, t: D];
        }
        program {
          input Big, Mid, Tiny;
          output Out;
          stage {
            Out(x, t) :- Big(x, y), Mid(x, w), Tiny(w2, t), w = w2;
          }
        }
        "#,
    )
    .expect("skewed_join_program parses")
    .program
    .expect("program block present")
}

/// Stratified-negation example: nodes unreachable from a source set,
/// expressed with composition (`;` makes stratified negation a shorthand,
/// Section 3.4).
pub fn unreachable_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation Edge: [src: D, dst: D];
          relation Source: [node: D];
          relation Reach: [node: D];
          relation Node: [node: D];
          relation Unreach: [node: D];
        }
        program {
          input Edge, Source;
          output Unreach;
          stage {
            Node(x) :- Edge(x, y);
            Node(y) :- Edge(x, y);
            Reach(x) :- Source(x);
            Reach(y) :- Reach(x), Edge(x, y);
          }
          stage {
            Unreach(x) :- Node(x), not Reach(x);
          }
        }
        "#,
    )
    .expect("unreachable_program parses")
    .program
    .expect("program block present")
}

/// The Figure-1 transformation computed *up to copy* in plain IQL, then
/// resolved with IQL⁺'s `choose` (Theorem 4.4.1). The input is a unary
/// relation with two constants {a, b}; the output is the directed
/// quadrangle of four new objects with `a` wired to one diagonal and `b` to
/// the other. Plain IQL cannot pick *which* vertex of a diagonal is which
/// (Theorem 4.3.1) — it can only build the whole quadrangle at once, which
/// is exactly what this program does: every vertex is invented in one
/// parallel step, and `choose` then selects a marked copy generically.
pub fn quadrangle_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation R: [a: D];
          class Q: [];
          relation Corner: [x: D, o1: Q, o2: Q, o3: Q, o4: Q];
          relation Rp: [b: Q, c: D | Q];
          relation Pair: [x: D, y: D];
        }
        program {
          input R;
          output Rp, Q;
          stage {
            Pair(x, y) :- R(x), R(y), x != y;
          }
          stage {
            Corner(x, o1, o2, o3, o4) :- Pair(x, y);
          }
          stage {
            Rp(o1, x) :- Corner(x, o1, o2, o3, o4);
            Rp(o3, x) :- Corner(x, o1, o2, o3, o4);
            Rp(o2, y) :- Corner(x, o1, o2, o3, o4), Pair(x, y);
            Rp(o4, y) :- Corner(x, o1, o2, o3, o4), Pair(x, y);
            Rp(o4, o1) :- Corner(x, o1, o2, o3, o4);
            Rp(o3, o4) :- Corner(x, o1, o2, o3, o4);
            Rp(o2, o3) :- Corner(x, o1, o2, o3, o4);
            Rp(o1, o2) :- Corner(x, o1, o2, o3, o4);
          }
        }
        "#,
    )
    .expect("quadrangle_program parses")
    .program
    .expect("program block present")
}

/// The Figure-1 query on an **ordered database** (Section 4.4, solution 2:
/// "copy elimination is possible if an ordering of the constants of the
/// input is explicitly provided"). With `Lt` marking the smaller constant,
/// plain IQL — no `choose` — deterministically selects the copy generated
/// by the smaller element: the order breaks the symmetry that made the
/// choice non-generic, and genericity is preserved *relative to the ordered
/// input*.
pub fn quadrangle_ordered_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation R: [a: D];
          relation Lt: [lo: D, hi: D];
          class Q: [];
          class Qout: [];
          relation Pair: [x: D, y: D];
          relation Corner: [x: D, o1: Q, o2: Q, o3: Q, o4: Q];
          relation Rp: [b: Q, c: D | Q];
          relation Keep: [o: Q];
          relation Map: [u: Q, w: Qout];
          relation OutRp: [b: Qout, c: D | Qout];
        }
        program {
          input R, Lt;
          output OutRp, Qout;
          stage {
            Pair(x, y) :- R(x), R(y), x != y;
          }
          stage {
            Corner(x, o1, o2, o3, o4) :- Pair(x, y);
          }
          stage {
            Rp(o1, x) :- Corner(x, o1, o2, o3, o4);
            Rp(o3, x) :- Corner(x, o1, o2, o3, o4);
            Rp(o2, y) :- Corner(x, o1, o2, o3, o4), Pair(x, y);
            Rp(o4, y) :- Corner(x, o1, o2, o3, o4), Pair(x, y);
            Rp(o4, o1) :- Corner(x, o1, o2, o3, o4);
            Rp(o3, o4) :- Corner(x, o1, o2, o3, o4);
            Rp(o2, o3) :- Corner(x, o1, o2, o3, o4);
            Rp(o1, o2) :- Corner(x, o1, o2, o3, o4);
            // Keep only the copy generated by the order-minimal constant —
            // a deterministic, order-based selection.
            Keep(o1) :- Corner(x, o1, o2, o3, o4), Lt(x, y);
            Keep(o2) :- Corner(x, o1, o2, o3, o4), Lt(x, y);
            Keep(o3) :- Corner(x, o1, o2, o3, o4), Lt(x, y);
            Keep(o4) :- Corner(x, o1, o2, o3, o4), Lt(x, y);
          }
          stage {
            Map(u, w) :- Keep(u);
          }
          stage {
            OutRp(w, x) :- Map(u, w), R(x), Rp(u, x);
            OutRp(w1, w2) :- Map(u1, w1), Map(u2, w2), Rp(u1, u2);
          }
        }
        "#,
    )
    .expect("quadrangle_ordered_program parses")
    .program
    .expect("program block present")
}

/// The full Theorem-4.4.1 pipeline for the Figure-1 query: build *all*
/// copies of the quadrangle in plain IQL (Theorem 4.2.4), mark each copy
/// with an object of a fresh class, `choose` one mark generically (the
/// copies are automorphic, so the choice is legal), and extract the chosen
/// copy into fresh output objects. The output `(Qout, OutRp)` is the
/// Figure-1 instance that plain IQL *cannot* produce (Theorem 4.3.1).
pub fn quadrangle_choose_program() -> Program {
    parse_unit(
        r#"
        schema {
          relation R: [a: D];
          class Q: [];
          class Qout: [];
          class Mark: [];
          relation Pair: [x: D, y: D];
          relation CopyMark: [x: D, m: Mark];
          relation Corner: [x: D, o1: Q, o2: Q, o3: Q, o4: Q];
          relation Rp: [b: Q, c: D | Q];
          relation Tag: [m: Mark, o: Q];
          relation Picked: [m: Mark];
          relation Map: [u: Q, w: Qout];
          relation OutRp: [b: Qout, c: D | Qout];
        }
        program {
          input R;
          output OutRp, Qout;
          stage {
            Pair(x, y) :- R(x), R(y), x != y;
          }
          stage {
            Corner(x, o1, o2, o3, o4) :- Pair(x, y);
            CopyMark(x, m) :- Pair(x, y);
          }
          stage {
            Rp(o1, x) :- Corner(x, o1, o2, o3, o4);
            Rp(o3, x) :- Corner(x, o1, o2, o3, o4);
            Rp(o2, y) :- Corner(x, o1, o2, o3, o4), Pair(x, y);
            Rp(o4, y) :- Corner(x, o1, o2, o3, o4), Pair(x, y);
            Rp(o4, o1) :- Corner(x, o1, o2, o3, o4);
            Rp(o3, o4) :- Corner(x, o1, o2, o3, o4);
            Rp(o2, o3) :- Corner(x, o1, o2, o3, o4);
            Rp(o1, o2) :- Corner(x, o1, o2, o3, o4);
            Tag(m, o1) :- CopyMark(x, m), Corner(x, o1, o2, o3, o4);
            Tag(m, o2) :- CopyMark(x, m), Corner(x, o1, o2, o3, o4);
            Tag(m, o3) :- CopyMark(x, m), Corner(x, o1, o2, o3, o4);
            Tag(m, o4) :- CopyMark(x, m), Corner(x, o1, o2, o3, o4);
          }
          stage {
            // IQL* deletions: drop the construction scaffolding that pins
            // copies to constants, so the copies become automorphic and the
            // upcoming choice is demonstrably generic.
            del Corner(x, o1, o2, o3, o4) :- Corner(x, o1, o2, o3, o4);
            del CopyMark(x, m) :- CopyMark(x, m);
            del Pair(x, y) :- Pair(x, y);
          }
          stage {
            Picked(m) :- choose;
          }
          stage {
            Map(u, w) :- Picked(m), Tag(m, u);
          }
          stage {
            OutRp(w, x) :- Map(u, w), R(x), Rp(u, x);
            OutRp(w1, w2) :- Map(u1, w1), Map(u2, w2), Rp(u1, u2);
          }
        }
        "#,
    )
    .expect("quadrangle_choose_program parses")
    .program
    .expect("program block present")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, EvalConfig};
    use iql_model::{ClassName, Instance, OValue, RelName};
    use std::sync::Arc;

    fn unary_input(prog: &Program, rel: &str, attr: &str, vals: &[&str]) -> Instance {
        let mut input = Instance::new(Arc::clone(&prog.input));
        for v in vals {
            input
                .insert(RelName::new(rel), OValue::tuple([(attr, OValue::str(v))]))
                .unwrap();
        }
        input
    }

    #[test]
    fn programs_roundtrip_through_source() {
        // to_source() is parseable and reproduces the same program.
        for prog in [
            graph_to_class_program(),
            class_to_graph_program(),
            unnest_program(),
            nest_program(),
            powerset_program(),
            powerset_unrestricted_program(),
            transitive_closure_program(),
            parallel_join_program(),
            skewed_join_program(),
            unreachable_program(),
            quadrangle_program(),
            quadrangle_choose_program(),
            quadrangle_ordered_program(),
        ] {
            let src = prog.to_source();
            let unit = crate::parser::parse_unit(&src)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n{src}"));
            let back = unit.program.expect("program block present");
            assert_eq!(*back.schema, *prog.schema, "schema roundtrip");
            assert_eq!(*back.input, *prog.input, "input roundtrip");
            assert_eq!(*back.output, *prog.output, "output roundtrip");
            assert_eq!(back.stages, prog.stages, "stages roundtrip\n{src}");
        }
    }

    #[test]
    fn all_programs_parse_and_typecheck() {
        graph_to_class_program();
        class_to_graph_program();
        unnest_program();
        nest_program();
        powerset_program();
        powerset_unrestricted_program();
        union_encode_program();
        union_decode_program();
        transitive_closure_program();
        parallel_join_program();
        skewed_join_program();
        unreachable_program();
        quadrangle_program();
        quadrangle_choose_program();
        quadrangle_ordered_program();
    }

    #[test]
    fn parallel_join_program_runs() {
        // Chain a→b→c→d plus the closing edge d→a: Hop2/Hop3 wrap around,
        // Tri is empty (no 3-cycle in a 4-cycle), one object per edge.
        let cfg = EvalConfig::default();
        let prog = parallel_join_program();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for (s, d) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")] {
            input
                .insert(
                    RelName::new("Edge"),
                    OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
                )
                .unwrap();
        }
        let out = run(&prog, &input, &cfg).unwrap();
        assert_eq!(out.output.relation(RelName::new("Hop2")).unwrap().len(), 4);
        assert_eq!(out.output.relation(RelName::new("Hop3")).unwrap().len(), 4);
        assert_eq!(out.output.relation(RelName::new("Back")).unwrap().len(), 4);
        assert_eq!(out.output.relation(RelName::new("Tri")).unwrap().len(), 0);
        assert_eq!(out.output.relation(RelName::new("Rep")).unwrap().len(), 4);
        assert_eq!(out.output.class(ClassName::new("P")).unwrap().len(), 4);
        assert_eq!(out.report.invented, 4);
    }

    #[test]
    fn skewed_join_program_reorders_without_changing_results() {
        let prog = skewed_join_program();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for k in 0..6 {
            for v in 0..2 {
                input
                    .insert(
                        RelName::new("Big"),
                        OValue::tuple([
                            ("k", OValue::str(&format!("k{k}"))),
                            ("v", OValue::str(&format!("v{v}"))),
                        ]),
                    )
                    .unwrap();
            }
            input
                .insert(
                    RelName::new("Mid"),
                    OValue::tuple([
                        ("k", OValue::str(&format!("k{k}"))),
                        ("w", OValue::str(&format!("w{k}"))),
                    ]),
                )
                .unwrap();
        }
        for k in 0..2 {
            input
                .insert(
                    RelName::new("Tiny"),
                    OValue::tuple([
                        ("w", OValue::str(&format!("w{k}"))),
                        ("t", OValue::str("t")),
                    ]),
                )
                .unwrap();
        }
        let on = run(&prog, &input, &EvalConfig::default()).unwrap();
        let off = run(&prog, &input, &EvalConfig::builder().planner(false).build()).unwrap();
        // Pure optimization: identical output, identical semantic counters.
        assert_eq!(on.output.ground_facts(), off.output.ground_facts());
        assert_eq!(on.report.counters(), off.report.counters());
        // Two Tiny keys survive the join; y is projected away.
        assert_eq!(on.output.relation(RelName::new("Out")).unwrap().len(), 2);
        // The planner did reorder the pathological rule and probed the
        // persistent indexes; the baseline did neither.
        assert!(on.report.plans_reordered > 0);
        assert!(on.report.index_hits > 0);
        assert_eq!(off.report.plans_reordered, 0);
        assert_eq!(off.report.index_hits, 0);
    }

    #[test]
    fn quadrangle_ordered_selects_without_choose() {
        // Section 4.4 solution 2: an explicit order on the constants makes
        // copy elimination expressible in plain IQL.
        let cfg = EvalConfig::default();
        let prog = quadrangle_ordered_program();
        assert!(!prog.uses_choose());
        let mut input = Instance::new(Arc::clone(&prog.input));
        for v in ["a", "b"] {
            input
                .insert(RelName::new("R"), OValue::tuple([("a", OValue::str(v))]))
                .unwrap();
        }
        input
            .insert(
                RelName::new("Lt"),
                OValue::tuple([("lo", OValue::str("a")), ("hi", OValue::str("b"))]),
            )
            .unwrap();
        let out = run(&prog, &input, &cfg).unwrap();
        assert_eq!(out.output.class(ClassName::new("Qout")).unwrap().len(), 4);
        assert_eq!(out.output.relation(RelName::new("OutRp")).unwrap().len(), 8);
        // Same Figure-1 structure the choose version produces.
        let full = quadrangle_choose_program();
        let mut input2 = Instance::new(Arc::clone(&full.input));
        for v in ["a", "b"] {
            input2
                .insert(RelName::new("R"), OValue::tuple([("a", OValue::str(v))]))
                .unwrap();
        }
        let out2 = run(&full, &input2, &cfg).unwrap();
        // Compare the arc structures after aligning schemas: both outputs
        // are 4 fresh objects in a quadrangle; check counts and validate.
        out.output.validate().unwrap();
        out2.output.validate().unwrap();
        assert_eq!(
            out.output.relation(RelName::new("OutRp")).unwrap().len(),
            out2.output.relation(RelName::new("OutRp")).unwrap().len()
        );
    }

    #[test]
    fn quadrangle_choose_selects_one_generic_copy() {
        // Theorem 4.4.1 end-to-end: copies → IQL* cleanup → generic choose
        // → extraction. The output is exactly the Figure-1 instance.
        let cfg = EvalConfig::default();
        let prog = quadrangle_choose_program();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for v in ["a", "b"] {
            input
                .insert(RelName::new("R"), OValue::tuple([("a", OValue::str(v))]))
                .unwrap();
        }
        let out = run(&prog, &input, &cfg).unwrap();
        assert_eq!(out.output.class(ClassName::new("Qout")).unwrap().len(), 4);
        let rp = out.output.relation(RelName::new("OutRp")).unwrap();
        assert_eq!(rp.len(), 8);

        // Build the expected Figure-1 instance and compare up to O-iso.
        let mut expected = Instance::new(Arc::clone(&prog.output));
        let q = ClassName::new("Qout");
        let o1 = expected.create_oid(q).unwrap();
        let o2 = expected.create_oid(q).unwrap();
        let o3 = expected.create_oid(q).unwrap();
        let o4 = expected.create_oid(q).unwrap();
        let outrp = RelName::new("OutRp");
        let arcs: Vec<(iql_model::Oid, OValue)> = vec![
            (o1, OValue::str("a")),
            (o3, OValue::str("a")),
            (o2, OValue::str("b")),
            (o4, OValue::str("b")),
            (o4, OValue::oid(o1)),
            (o3, OValue::oid(o4)),
            (o2, OValue::oid(o3)),
            (o1, OValue::oid(o2)),
        ];
        for (src, dst) in arcs {
            expected
                .insert(outrp, OValue::tuple([("b", OValue::oid(src)), ("c", dst)]))
                .unwrap();
        }
        assert!(
            iql_model::iso::are_o_isomorphic(&out.output, &expected),
            "IQL⁺ computes the Figure-1 query that plain IQL cannot (Thm 4.3.1/4.4.1)"
        );
    }

    #[test]
    fn powerset_constructive_matches_unrestricted() {
        let cfg = EvalConfig::default();
        let p1 = powerset_program();
        let p2 = powerset_unrestricted_program();
        for n in 0..5usize {
            let vals: Vec<String> = (0..n).map(|i| format!("d{i}")).collect();
            let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
            let i1 = unary_input(&p1, "R", "a", &refs);
            let i2 = unary_input(&p2, "R", "a", &refs);
            let o1 = run(&p1, &i1, &cfg).unwrap();
            let o2 = run(&p2, &i2, &cfg).unwrap();
            let r1 = o1.output.relation(RelName::new("R1")).unwrap();
            let r2 = o2.output.relation(RelName::new("R1")).unwrap();
            assert_eq!(r1.len(), 1 << n, "2^{n} subsets");
            assert_eq!(r1, r2, "both powerset programs agree at n={n}");
        }
    }

    #[test]
    fn nest_unnest_roundtrip() {
        let cfg = EvalConfig::default();
        // Start from flat pairs, nest, then unnest back.
        let nest = nest_program();
        let mut input = Instance::new(Arc::clone(&nest.input));
        let r2 = RelName::new("R2");
        for (a, b) in [("k1", "v1"), ("k1", "v2"), ("k2", "v3")] {
            input
                .insert(
                    r2,
                    OValue::tuple([("a", OValue::str(a)), ("b", OValue::str(b))]),
                )
                .unwrap();
        }
        let nested = run(&nest, &input, &cfg).unwrap();
        let r3 = nested.output.relation(RelName::new("R3")).unwrap();
        assert_eq!(r3.len(), 2, "one group per key");
        assert!(r3.contains(&OValue::tuple([
            ("a", OValue::str("k1")),
            ("b", OValue::set([OValue::str("v1"), OValue::str("v2")])),
        ])));

        // Unnest the nested output (schema renaming: R3 plays R1).
        let unnest = unnest_program();
        let mut back_in = Instance::new(Arc::clone(&unnest.input));
        for v in r3 {
            back_in.insert(RelName::new("R1"), v.clone()).unwrap();
        }
        let flat = run(&unnest, &back_in, &cfg).unwrap();
        let out = flat.output.relation(RelName::new("R2")).unwrap();
        assert_eq!(out, input.relation(r2).unwrap());
    }

    #[test]
    fn graph_roundtrip_via_classes() {
        let cfg = EvalConfig::default();
        let enc = graph_to_class_program();
        let mut input = Instance::new(Arc::clone(&enc.input));
        let r = RelName::new("R");
        let edges = [("a", "b"), ("b", "c"), ("c", "a"), ("b", "a")];
        for (s, d) in edges {
            input
                .insert(
                    r,
                    OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
                )
                .unwrap();
        }
        let cyclic = run(&enc, &input, &cfg).unwrap();
        cyclic.output.validate().unwrap();
        assert_eq!(cyclic.output.class(ClassName::new("P")).unwrap().len(), 3);

        let dec = class_to_graph_program();
        let back_in = cyclic.output.clone();
        // The decoder's input schema is exactly {P}; reproject.
        let back_in = back_in.project(&dec.input).unwrap();
        let flat = run(&dec, &back_in, &cfg).unwrap();
        let out = flat.output.relation(RelName::new("Out")).unwrap();
        let expect: std::collections::BTreeSet<OValue> = edges
            .iter()
            .map(|(s, d)| OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]))
            .collect();
        assert_eq!(*out, expect);
    }

    #[test]
    fn union_encode_decode_roundtrip() {
        use iql_model::iso::are_o_isomorphic;
        let cfg = EvalConfig::default();
        let enc = union_encode_program();
        // Build a P-instance: o0 ↦ o1 (union branch 1), o1 ↦ [o0, o1]
        // (branch 2) — cyclic, exercising both union branches.
        let mut input = Instance::new(Arc::clone(&enc.input));
        let p = ClassName::new("P");
        let o0 = input.create_oid(p).unwrap();
        let o1 = input.create_oid(p).unwrap();
        input.define_value(o0, OValue::oid(o1)).unwrap();
        input
            .define_value(
                o1,
                OValue::tuple([("A1", OValue::oid(o0)), ("A2", OValue::oid(o1))]),
            )
            .unwrap();
        input.validate().unwrap();

        let encoded = run(&enc, &input, &cfg).unwrap();
        encoded.output.validate().unwrap();
        assert_eq!(encoded.output.class(ClassName::new("Pp")).unwrap().len(), 2);

        let dec = union_decode_program();
        let back_in = encoded.output.project(&dec.input).unwrap();
        let decoded = run(&dec, &back_in, &cfg).unwrap();
        decoded.output.validate().unwrap();
        assert!(
            are_o_isomorphic(&decoded.output, &input),
            "decode(encode(I)) ≅ I — no information lost (Example 3.4.3)"
        );
    }

    #[test]
    fn unreachable_uses_stratified_negation() {
        let cfg = EvalConfig::default();
        let prog = unreachable_program();
        let mut input = Instance::new(Arc::clone(&prog.input));
        let e = RelName::new("Edge");
        for (s, d) in [("a", "b"), ("b", "c"), ("x", "y")] {
            input
                .insert(
                    e,
                    OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
                )
                .unwrap();
        }
        input
            .insert(
                RelName::new("Source"),
                OValue::tuple([("node", OValue::str("a"))]),
            )
            .unwrap();
        let out = run(&prog, &input, &cfg).unwrap();
        let un = out.output.relation(RelName::new("Unreach")).unwrap();
        assert_eq!(un.len(), 2); // x and y
    }

    #[test]
    fn quadrangle_produces_copies_then_choose_would_select() {
        let cfg = EvalConfig::default();
        let prog = quadrangle_program();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for v in ["a", "b"] {
            input
                .insert(RelName::new("R"), OValue::tuple([("a", OValue::str(v))]))
                .unwrap();
        }
        let out = run(&prog, &input, &cfg).unwrap();
        // Pair has (a,b) and (b,a): two copies of the quadrangle are built —
        // the copy phenomenon of Theorem 4.2.4.
        assert_eq!(out.output.class(ClassName::new("Q")).unwrap().len(), 8);
        assert_eq!(out.output.relation(RelName::new("Rp")).unwrap().len(), 16);
    }
}
