//! Syntactic sublanguages of IQL with PTIME data complexity (Section 5).
//!
//! Two per-rule restrictions control the *search space* of valuations:
//!
//! * **ptime-restriction** (Definition 5.1): seeds with variables whose type
//!   contains no set constructor, and propagates through positive literals —
//!   set-free type interpretations over the active domain are polynomial;
//! * **range-restriction** (Definition 5.2): seeds with class-typed
//!   variables — a practical strengthening where every variable's range is
//!   reachable from stored data.
//!
//! Two per-stage restrictions control *invention*:
//!
//! * **invention-freedom**: no head-only variables;
//! * **recursion-freedom**: the dependency graph `G(G)` — arcs from names
//!   read by a rule to names written by it (including the classes of
//!   invented oids and of dereferenced variables) — is acyclic, so invention
//!   cannot feed itself (contrast the diverging `R3(y,z) ← R3(x,y)` of
//!   Example 3.4.2).
//!
//! A program is **IQLrr** (resp. **IQLpr**) when it is a composition
//! `G1; …; Gk` of stages, each range-restricted (resp. ptime-restricted) and
//! either recursion-free or invention-free (Definition 5.3). Theorem 5.4:
//! every IQLpr query evaluates in time polynomial in the instance size; the
//! `ptime_shape` benchmark validates the shape empirically.

use crate::ast::{Head, Literal, Program, Rule, Stage, Term, VarName};
use iql_model::{ClassName, RelName, Schema, TypeExpr};
use std::collections::{BTreeMap, BTreeSet};

/// The classification lattice IQLrr ⊂ IQLpr ⊂ IQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SubLanguage {
    /// Range-restricted composition (Definition 5.3) — the practical,
    /// PTIME-evaluable fragment.
    Iqlrr,
    /// Ptime-restricted composition — PTIME data complexity (Theorem 5.4).
    Iqlpr,
    /// Full IQL — all computable db-transformations up to copy.
    FullIql,
}

impl std::fmt::Display for SubLanguage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubLanguage::Iqlrr => write!(f, "IQLrr"),
            SubLanguage::Iqlpr => write!(f, "IQLpr"),
            SubLanguage::FullIql => write!(f, "IQL"),
        }
    }
}

/// Does the type contain a set constructor anywhere?
fn has_set_constructor(t: &TypeExpr) -> bool {
    match t {
        TypeExpr::Empty | TypeExpr::Base | TypeExpr::Class(_) => false,
        TypeExpr::Set(_) => true,
        TypeExpr::Tuple(fields) => fields.values().any(has_set_constructor),
        TypeExpr::Union(a, b) | TypeExpr::Intersect(a, b) => {
            has_set_constructor(a) || has_set_constructor(b)
        }
    }
}

/// Which variables a restriction seeds as restricted.
fn seed_vars(rule: &Rule, range_restricted: bool) -> BTreeSet<VarName> {
    rule.var_types
        .iter()
        .filter(|(_, t)| {
            if range_restricted {
                matches!(t, TypeExpr::Class(_))
            } else {
                !has_set_constructor(t)
            }
        })
        .map(|(v, _)| v.clone())
        .collect()
}

/// The shared propagation of Definitions 5.1 and 5.2: through a positive
/// literal `t1(t2)`, `t1 = t2`, or `t2 = t1`, restrictedness of all of
/// `t1`'s variables extends to all of `t2`'s.
fn propagate(rule: &Rule, mut restricted: BTreeSet<VarName>) -> BTreeSet<VarName> {
    let term_vars = |t: &Term| {
        let mut vs = BTreeSet::new();
        t.vars(&mut vs);
        vs
    };
    loop {
        let before = restricted.len();
        for lit in &rule.body {
            let pairs: Vec<(&Term, &Term)> = match lit {
                Literal::Member {
                    set,
                    elem,
                    positive: true,
                } => {
                    vec![(set, elem)]
                }
                Literal::Eq {
                    left,
                    right,
                    positive: true,
                } => {
                    vec![(left, right), (right, left)]
                }
                _ => Vec::new(),
            };
            for (t1, t2) in pairs {
                if term_vars(t1).iter().all(|v| restricted.contains(v)) {
                    restricted.extend(term_vars(t2));
                }
            }
        }
        if restricted.len() == before {
            return restricted;
        }
    }
}

/// Is the rule range-restricted (Definition 5.2)?
pub fn rule_range_restricted(rule: &Rule) -> bool {
    let restricted = propagate(rule, seed_vars(rule, true));
    rule.body_vars().iter().all(|v| restricted.contains(v))
}

/// Is the rule ptime-restricted (Definition 5.1)?
pub fn rule_ptime_restricted(rule: &Rule) -> bool {
    let restricted = propagate(rule, seed_vars(rule, false));
    rule.body_vars().iter().all(|v| restricted.contains(v))
}

/// Is the stage invention-free (no head-only variables in any rule)?
pub fn stage_invention_free(stage: &Stage) -> bool {
    stage.rules.iter().all(|r| r.invention_vars().is_empty())
}

/// A node of the dependency graph `G(G)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Node {
    Rel(RelName),
    Class(ClassName),
}

/// Names *read* by a rule: relation/class names in body literals, plus the
/// class names appearing in the types of body variables (condition 1).
fn read_set(rule: &Rule) -> BTreeSet<Node> {
    let mut out = BTreeSet::new();
    fn term_names(t: &Term, out: &mut BTreeSet<Node>) {
        match t {
            Term::Rel(r) => {
                out.insert(Node::Rel(*r));
            }
            Term::Class(p) => {
                out.insert(Node::Class(*p));
            }
            Term::Set(elems) => elems.iter().for_each(|t| term_names(t, out)),
            Term::Tuple(fields) => fields.values().for_each(|t| term_names(t, out)),
            Term::Var(_) | Term::Const(_) | Term::Deref(_) => {}
        }
    }
    for lit in &rule.body {
        match lit {
            Literal::Member { set, elem, .. } => {
                term_names(set, &mut out);
                term_names(elem, &mut out);
            }
            Literal::Eq { left, right, .. } => {
                term_names(left, &mut out);
                term_names(right, &mut out);
            }
            Literal::Choose => {}
        }
    }
    let body_vars = rule.body_vars();
    for v in &body_vars {
        if let Some(t) = rule.var_types.get(v) {
            let mut classes = BTreeSet::new();
            t.classes_mentioned(&mut classes);
            for c in classes {
                out.insert(Node::Class(c));
            }
        }
    }
    out
}

/// Names *written* by a rule: the head's relation or class (condition 2-a,
/// generalized to dereference heads), plus the classes of invention
/// variables (condition 2-b).
fn write_set(rule: &Rule) -> BTreeSet<Node> {
    let mut out = BTreeSet::new();
    match &rule.head {
        Head::Rel(r, _) | Head::DeleteRel(r, _) => {
            out.insert(Node::Rel(*r));
        }
        Head::Class(p, _) | Head::DeleteOid(p, _) => {
            out.insert(Node::Class(*p));
        }
        Head::SetMember(v, _) | Head::Assign(v, _) | Head::DeleteSetMember(v, _) => {
            if let Some(TypeExpr::Class(p)) = rule.var_types.get(v) {
                out.insert(Node::Class(*p));
            }
        }
    }
    for v in rule.invention_vars() {
        if let Some(TypeExpr::Class(p)) = rule.var_types.get(&v) {
            out.insert(Node::Class(*p));
        }
    }
    out
}

/// Is the stage recursion-free: is the read→write dependency graph acyclic?
pub fn stage_recursion_free(stage: &Stage, _schema: &Schema) -> bool {
    // Build adjacency.
    let mut edges: BTreeMap<Node, BTreeSet<Node>> = BTreeMap::new();
    for rule in &stage.rules {
        let reads = read_set(rule);
        let writes = write_set(rule);
        for r in &reads {
            edges.entry(*r).or_default().extend(writes.iter().copied());
        }
        for w in &writes {
            edges.entry(*w).or_default();
        }
    }
    // DFS cycle check.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<Node, Mark> = BTreeMap::new();
    fn visit(
        n: Node,
        edges: &BTreeMap<Node, BTreeSet<Node>>,
        marks: &mut BTreeMap<Node, Mark>,
    ) -> bool {
        match marks.get(&n).copied().unwrap_or(Mark::White) {
            Mark::Grey => return false,
            Mark::Black => return true,
            Mark::White => {}
        }
        marks.insert(n, Mark::Grey);
        if let Some(next) = edges.get(&n) {
            for &m in next {
                if !visit(m, edges, marks) {
                    return false;
                }
            }
        }
        marks.insert(n, Mark::Black);
        true
    }
    let nodes: Vec<Node> = edges.keys().copied().collect();
    nodes.into_iter().all(|n| visit(n, &edges, &mut marks))
}

/// Per-stage analysis summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAnalysis {
    /// Every rule range-restricted?
    pub range_restricted: bool,
    /// Every rule ptime-restricted?
    pub ptime_restricted: bool,
    /// No invention anywhere?
    pub invention_free: bool,
    /// Dependency graph acyclic?
    pub recursion_free: bool,
}

/// Analyzes one stage.
pub fn analyze_stage(stage: &Stage, schema: &Schema) -> StageAnalysis {
    StageAnalysis {
        range_restricted: stage.rules.iter().all(rule_range_restricted),
        ptime_restricted: stage.rules.iter().all(rule_ptime_restricted),
        invention_free: stage_invention_free(stage),
        recursion_free: stage_recursion_free(stage, schema),
    }
}

/// Classifies a program into the IQLrr ⊂ IQLpr ⊂ IQL lattice
/// (Definition 5.3). Programs using `choose` or deletions are conservatively
/// full IQL (they are IQL⁺/IQL\* extensions).
pub fn classify(prog: &Program) -> SubLanguage {
    if prog.uses_choose() || prog.uses_deletion() {
        return SubLanguage::FullIql;
    }
    let mut rr = true;
    let mut pr = true;
    for stage in &prog.stages {
        let a = analyze_stage(stage, &prog.schema);
        let controlled = a.invention_free || a.recursion_free;
        if !(a.range_restricted && controlled) {
            rr = false;
        }
        if !(a.ptime_restricted && controlled) {
            pr = false;
        }
    }
    if rr {
        SubLanguage::Iqlrr
    } else if pr {
        SubLanguage::Iqlpr
    } else {
        SubLanguage::FullIql
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    #[test]
    fn datalog_is_iqlrr() {
        let unit = parse_unit(
            r#"
            schema {
              relation Edge: [a: D, b: D];
              relation Tc:  [a: D, b: D];
            }
            program {
              input Edge;
              output Tc;
              Tc(x, y) :- Edge(x, y);
              Tc(x, z) :- Tc(x, y), Edge(y, z);
            }
            "#,
        )
        .unwrap();
        assert_eq!(classify(&unit.program.unwrap()), SubLanguage::Iqlrr);
    }

    #[test]
    fn powerset_xx_is_full_iql() {
        let unit = parse_unit(
            r#"
            schema {
              relation R:  [a: D];
              relation R1: [s: {D}];
            }
            program {
              input R;
              output R1;
              var X: {D};
              R1(X) :- X = X;
            }
            "#,
        )
        .unwrap();
        // X has a set type and is seeded by nothing: not ptime-restricted.
        assert_eq!(classify(&unit.program.unwrap()), SubLanguage::FullIql);
    }

    #[test]
    fn powerset_with_oids_is_recursive_invention() {
        // The range-restricted powerset (Example 3.4.2) is range-restricted
        // but *not* recursion-free (invention feeds R1 feeds invention), so
        // it stays full IQL — exactly the paper's point that such recursion
        // escapes PTIME.
        let prog = crate::programs::powerset_program();
        for stage in &prog.stages {
            let a = analyze_stage(stage, &prog.schema);
            assert!(a.range_restricted || a.ptime_restricted || !a.recursion_free);
        }
        assert_eq!(classify(&prog), SubLanguage::FullIql);
    }

    #[test]
    fn graph_transform_is_iqlrr() {
        // Example 1.2 decomposes into stages each either invention-free or
        // recursion-free, all range-restricted: the flagship IQLrr program.
        let prog = crate::programs::graph_to_class_program();
        assert_eq!(classify(&prog), SubLanguage::Iqlrr);
    }

    #[test]
    fn diverging_rule_is_not_recursion_free() {
        let unit = parse_unit(
            r#"
            schema {
              relation R3: [a: P, b: P];
              class P: [];
            }
            program {
              input R3, P;
              output R3;
              R3(y, z) :- R3(x, y);
            }
            "#,
        )
        .unwrap();
        let prog = unit.program.unwrap();
        let a = analyze_stage(&prog.stages[0], &prog.schema);
        assert!(!a.recursion_free);
        assert!(!a.invention_free);
        assert_eq!(classify(&prog), SubLanguage::FullIql);
    }

    #[test]
    fn set_typed_var_bound_by_relation_is_ptime() {
        // Unnest: R2(x,y) :- R1(x,Y), Y(y). Y is set-typed but bound from a
        // stored relation, so the rule is range- and ptime-restricted.
        let unit = parse_unit(
            r#"
            schema {
              relation R1: [a: D, b: {D}];
              relation R2: [a: D, b: D];
            }
            program {
              input R1;
              output R2;
              R2(x, y) :- R1(x, Y), Y(y);
            }
            "#,
        )
        .unwrap();
        assert_eq!(classify(&unit.program.unwrap()), SubLanguage::Iqlrr);
    }

    #[test]
    fn choose_and_delete_are_extensions() {
        let unit = parse_unit(
            r#"
            schema {
              relation R: [a: D];
              relation Kill: [a: D];
            }
            program {
              input R, Kill;
              output R;
              del R(x) :- Kill(x);
            }
            "#,
        )
        .unwrap();
        assert_eq!(classify(&unit.program.unwrap()), SubLanguage::FullIql);
    }
}
