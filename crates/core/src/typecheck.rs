//! Type checking and partial type inference (Section 3.3).
//!
//! All IQL terms are typed, but "having to declare the type information for
//! each term would make the programs tedious to write" — the paper calls for
//! *automatic partial type inference based on a number of shorthand
//! conventions*. We implement exactly that:
//!
//! 1. **Inference**: variable types are seeded from explicit `var x: T`
//!    declarations and propagated to a fixpoint from positions in positive
//!    literals (`R(t)` gives `t : T(R)`, `P(x)` gives `x : P`, `X(y)` with
//!    `X : {t}` gives `y : t`, `x̂(y)` with `x : P`, `T(P) = {t}` gives
//!    `y : t`, and equalities propagate synthesizable types), and from head
//!    positions (so the invention variables of Example 1.2 need no
//!    annotations).
//! 2. **Checking**: heads must be *typed facts*; body literals must be typed,
//!    except that positive equalities admit union coercion — `t1 = t2` with
//!    `t1 : t` and `t2 : t ∨ t'` is legal (rule condition 2, used in the
//!    union encode/decode programs of Example 3.4.3).
//! 3. **Invention discipline**: variables in the head but not the body must
//!    have a class type (rule condition 3).
//!
//! Checking is bidirectional: terms that cannot synthesize a type (`{}`, or
//! heterogeneous set literals) are checked against the expected type, which
//! handles the empty set's polymorphism soundly.

use crate::ast::{Head, Literal, Program, Rule, Term, VarName};
use crate::error::{IqlError, Result};
use iql_model::{Schema, TypeExpr};
use std::collections::BTreeMap;

/// Type-checks (and completes the typing of) every rule in the program.
/// On success, each rule's [`Rule::var_types`] covers all its variables.
pub fn check_program(prog: &mut Program) -> Result<()> {
    let schema = prog.schema.clone();
    for stage in &mut prog.stages {
        for rule in &mut stage.rules {
            infer_rule(rule, &schema)?;
            check_rule(rule, &schema)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Inference
// ---------------------------------------------------------------------

/// Infers types for all variables of `rule`, honoring explicit declarations.
pub fn infer_rule(rule: &mut Rule, schema: &Schema) -> Result<()> {
    let mut types = rule.var_types.clone();
    // Fixpoint propagation.
    loop {
        let before = types.len();
        for lit in &rule.body {
            propagate_literal(lit, schema, &mut types);
        }
        propagate_head(&rule.head, schema, &mut types);
        if types.len() == before {
            break;
        }
    }
    // Every occurring variable must now be typed.
    let mut all_vars = rule.body_vars();
    rule.head.vars(&mut all_vars);
    for v in &all_vars {
        if !types.contains_key(v) {
            return Err(IqlError::CannotInfer {
                var: v.clone(),
                rule: rule.to_string(),
            });
        }
    }
    // Invention variables must be class-typed (rule condition 3).
    for v in rule.invention_vars() {
        if !matches!(types.get(&v), Some(TypeExpr::Class(_))) {
            return Err(IqlError::InventionNotClassTyped {
                var: v,
                rule: rule.to_string(),
            });
        }
    }
    rule.var_types = types;
    Ok(())
}

fn propagate_literal(lit: &Literal, schema: &Schema, types: &mut BTreeMap<VarName, TypeExpr>) {
    match lit {
        Literal::Member {
            set,
            elem,
            positive: _,
        } => {
            if let Ok(TypeExpr::Set(elem_ty)) = synth(set, schema, types) {
                assign_pattern(elem, &elem_ty, types);
            }
        }
        Literal::Eq {
            left,
            right,
            positive: true,
        } => {
            if let Ok(t) = synth(left, schema, types) {
                assign_pattern(right, &t, types);
            } else if let Ok(t) = synth(right, schema, types) {
                assign_pattern(left, &t, types);
            }
        }
        Literal::Eq {
            positive: false, ..
        }
        | Literal::Choose => {}
    }
}

fn propagate_head(head: &Head, schema: &Schema, types: &mut BTreeMap<VarName, TypeExpr>) {
    match head {
        Head::Rel(r, t) | Head::DeleteRel(r, t) => {
            if let Ok(ty) = schema.relation_type(*r) {
                assign_pattern(t, &ty.clone(), types);
            }
        }
        Head::Class(p, v) | Head::DeleteOid(p, v) => {
            types.entry(v.clone()).or_insert(TypeExpr::Class(*p));
        }
        Head::SetMember(v, t) | Head::DeleteSetMember(v, t) => {
            if let Some(TypeExpr::Class(p)) = types.get(v).cloned() {
                if let Ok(TypeExpr::Set(elem_ty)) = schema.class_type(p) {
                    assign_pattern(t, &elem_ty.clone(), types);
                }
            }
        }
        Head::Assign(v, t) => {
            if let Some(TypeExpr::Class(p)) = types.get(v).cloned() {
                if let Ok(ty) = schema.class_type(p) {
                    assign_pattern(t, &ty.clone(), types);
                }
            }
        }
    }
}

/// Pushes an expected type down a term pattern, assigning types to
/// as-yet-untyped variables. Never overwrites an existing assignment.
fn assign_pattern(term: &Term, ty: &TypeExpr, types: &mut BTreeMap<VarName, TypeExpr>) {
    match (term, ty) {
        (Term::Var(v), _) => {
            types.entry(v.clone()).or_insert_with(|| ty.clone());
        }
        (Term::Tuple(fields), TypeExpr::Tuple(ftys)) => {
            for (a, t) in fields {
                if let Some(fty) = ftys.get(a) {
                    assign_pattern(t, fty, types);
                }
            }
        }
        (Term::Set(elems), TypeExpr::Set(ety)) => {
            for e in elems {
                assign_pattern(e, ety, types);
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Synthesis
// ---------------------------------------------------------------------

/// Synthesizes the type of a term from variable types, or fails for terms
/// that need an expected type (e.g. the polymorphic `{}`).
pub fn synth(
    term: &Term,
    schema: &Schema,
    types: &BTreeMap<VarName, TypeExpr>,
) -> Result<TypeExpr> {
    match term {
        Term::Var(v) => types
            .get(v)
            .cloned()
            .ok_or_else(|| IqlError::Invalid(format!("untyped variable {v}"))),
        Term::Const(_) => Ok(TypeExpr::Base),
        Term::Rel(r) => Ok(TypeExpr::set_of(schema.relation_type(*r)?.clone())),
        Term::Class(p) => {
            // `P` as a term has type {P}.
            schema.class_type(*p)?; // existence check
            Ok(TypeExpr::set_of(TypeExpr::Class(*p)))
        }
        Term::Deref(v) => match types.get(v) {
            Some(TypeExpr::Class(p)) => Ok(schema.class_type(*p)?.clone()),
            Some(other) => Err(IqlError::Invalid(format!(
                "{v}^ requires {v} to have a class type, found {other}"
            ))),
            None => Err(IqlError::Invalid(format!("untyped variable {v}"))),
        },
        Term::Set(elems) => {
            if elems.is_empty() {
                return Err(IqlError::Invalid("cannot synthesize a type for {}".into()));
            }
            let mut tys: Vec<TypeExpr> = Vec::new();
            for e in elems {
                let t = synth(e, schema, types)?;
                if !tys.contains(&t) {
                    tys.push(t);
                }
            }
            Ok(TypeExpr::set_of(TypeExpr::union_all(tys)))
        }
        Term::Tuple(fields) => {
            let mut out = BTreeMap::new();
            for (a, t) in fields {
                out.insert(*a, synth(t, schema, types)?);
            }
            Ok(TypeExpr::Tuple(out))
        }
    }
}

// ---------------------------------------------------------------------
// Subtyping (syntactic, over disjoint assignments)
// ---------------------------------------------------------------------

/// Sound syntactic subtyping over disjoint oid assignments: `a ≤ b` implies
/// `⟦a⟧π ⊆ ⟦b⟧π` for every disjoint `π`. Decided on canonical normal forms;
/// in particular `t ≤ t ∨ t'` (the coercion of rule condition 2).
pub fn subtype(a: &TypeExpr, b: &TypeExpr) -> bool {
    use iql_model::types::TypeAtom;
    fn atom_le(x: &TypeAtom, y: &TypeAtom) -> bool {
        match (x, y) {
            (TypeAtom::Base, TypeAtom::Base) => true,
            (TypeAtom::Class(p), TypeAtom::Class(q)) => p == q,
            (TypeAtom::Tuple(fx), TypeAtom::Tuple(fy)) => {
                fx.len() == fy.len()
                    && fx.keys().eq(fy.keys())
                    && fx.iter().all(|(a, tx)| atom_le(tx, &fy[a]))
            }
            (TypeAtom::Set(nx), TypeAtom::Set(ny)) => {
                // Sets are covariant in the union of their element atoms.
                nx.iter().all(|ax| ny.iter().any(|ay| atom_le(ax, ay)))
            }
            _ => false,
        }
    }
    let na = a.normalize_disjoint();
    let nb = b.normalize_disjoint();
    na.iter().all(|x| nb.iter().any(|y| atom_le(x, y)))
}

/// `a` and `b` are *coercible* when one is a subtype of the other — the
/// liberal typing allowed in positive equality literals.
pub fn coercible(a: &TypeExpr, b: &TypeExpr) -> bool {
    subtype(a, b) || subtype(b, a)
}

// ---------------------------------------------------------------------
// Checking
// ---------------------------------------------------------------------

/// Checks a term against an expected type (bidirectional).
pub fn check_term(
    term: &Term,
    expected: &TypeExpr,
    schema: &Schema,
    types: &BTreeMap<VarName, TypeExpr>,
) -> Result<()> {
    // Fast path: synthesizable terms just need a subtype check.
    if let Ok(t) = synth(term, schema, types) {
        if subtype(&t, expected) {
            return Ok(());
        }
        return Err(IqlError::Invalid(format!(
            "term {term} has type {t}, expected {expected}"
        )));
    }
    // Structure-directed checking for non-synthesizable terms ({} inside).
    match term {
        Term::Set(elems) => {
            // Find a set component of the expected type and check elements
            // against its element type.
            let candidates = set_components(expected);
            if candidates.is_empty() {
                return Err(IqlError::Invalid(format!(
                    "set term {term} checked against non-set type {expected}"
                )));
            }
            'cands: for ety in &candidates {
                for e in elems {
                    if check_term(e, ety, schema, types).is_err() {
                        continue 'cands;
                    }
                }
                return Ok(());
            }
            Err(IqlError::Invalid(format!(
                "set term {term} does not fit any set component of {expected}"
            )))
        }
        Term::Tuple(fields) => {
            let candidates = tuple_components(expected);
            'cands: for ftys in &candidates {
                if ftys.len() != fields.len() || !ftys.keys().eq(fields.keys()) {
                    continue;
                }
                for (a, t) in fields {
                    if check_term(t, &ftys[a], schema, types).is_err() {
                        continue 'cands;
                    }
                }
                return Ok(());
            }
            Err(IqlError::Invalid(format!(
                "tuple term {term} does not fit any tuple component of {expected}"
            )))
        }
        _ => Err(IqlError::Invalid(format!(
            "cannot type term {term} against {expected}"
        ))),
    }
}

/// The element types of the set components of a (possibly union) type.
fn set_components(t: &TypeExpr) -> Vec<TypeExpr> {
    match t {
        TypeExpr::Set(e) => vec![(**e).clone()],
        TypeExpr::Union(a, b) => {
            let mut out = set_components(a);
            out.extend(set_components(b));
            out
        }
        _ => Vec::new(),
    }
}

/// The field maps of the tuple components of a (possibly union) type.
fn tuple_components(t: &TypeExpr) -> Vec<BTreeMap<iql_model::AttrName, TypeExpr>> {
    match t {
        TypeExpr::Tuple(f) => vec![f.clone()],
        TypeExpr::Union(a, b) => {
            let mut out = tuple_components(a);
            out.extend(tuple_components(b));
            out
        }
        _ => Vec::new(),
    }
}

/// Checks one fully-inferred rule.
pub fn check_rule(rule: &Rule, schema: &Schema) -> Result<()> {
    let types = &rule.var_types;
    let err = |msg: String| IqlError::TypeError {
        msg,
        rule: rule.to_string(),
    };

    // Body literals.
    for lit in &rule.body {
        match lit {
            Literal::Member { set, elem, .. } => {
                let set_ty = synth(set, schema, types).map_err(|e| err(e.to_string()))?;
                match set_ty {
                    TypeExpr::Set(ety) => {
                        check_term(elem, &ety, schema, types).map_err(|e| err(e.to_string()))?;
                    }
                    other => {
                        return Err(err(format!(
                            "membership over non-set term {set} of type {other}"
                        )))
                    }
                }
            }
            Literal::Eq {
                left,
                right,
                positive,
            } => {
                let lt = synth(left, schema, types);
                let rt = synth(right, schema, types);
                match (lt, rt) {
                    (Ok(a), Ok(b)) => {
                        if *positive {
                            // Coercion across unions allowed (condition 2).
                            if !coercible(&a, &b) {
                                return Err(err(format!(
                                    "equality between incompatible types {a} and {b}"
                                )));
                            }
                        } else if !coercible(&a, &b) {
                            return Err(err(format!(
                                "inequality between incompatible types {a} and {b}"
                            )));
                        }
                    }
                    (Ok(a), Err(_)) => {
                        check_term(right, &a, schema, types).map_err(|e| err(e.to_string()))?;
                    }
                    (Err(_), Ok(b)) => {
                        check_term(left, &b, schema, types).map_err(|e| err(e.to_string()))?;
                    }
                    (Err(e1), Err(_)) => {
                        return Err(err(format!("neither side of {lit} can be typed: {e1}")))
                    }
                }
            }
            Literal::Choose => {}
        }
    }

    // Head.
    match &rule.head {
        Head::Rel(r, t) | Head::DeleteRel(r, t) => {
            let ty = schema.relation_type(*r)?.clone();
            check_term(t, &ty, schema, types).map_err(|e| err(e.to_string()))?;
        }
        Head::Class(p, v) | Head::DeleteOid(p, v) => {
            match types.get(v) {
                Some(TypeExpr::Class(q)) if q == p => {}
                Some(other) => {
                    return Err(err(format!(
                        "class fact {p}({v}) needs {v}: {p}, found {other}"
                    )))
                }
                None => return Err(err(format!("untyped variable {v}"))),
            }
            schema.class_type(*p)?;
        }
        Head::SetMember(v, t) | Head::DeleteSetMember(v, t) => {
            let p = match types.get(v) {
                Some(TypeExpr::Class(p)) => *p,
                other => {
                    return Err(err(format!(
                        "{v}^ needs {v} to have a class type, found {other:?}"
                    )))
                }
            };
            match schema.class_type(p)? {
                TypeExpr::Set(ety) => {
                    let ety = ety.clone();
                    check_term(t, &ety, schema, types).map_err(|e| err(e.to_string()))?;
                }
                other => {
                    return Err(err(format!(
                        "{v}^(t) head requires set-valued class, but T({p}) = {other}"
                    )))
                }
            }
        }
        Head::Assign(v, t) => {
            let p = match types.get(v) {
                Some(TypeExpr::Class(p)) => *p,
                other => {
                    return Err(err(format!(
                        "{v}^ needs {v} to have a class type, found {other:?}"
                    )))
                }
            };
            let ty = schema.class_type(p)?.clone();
            if matches!(ty, TypeExpr::Set(_)) {
                return Err(err(format!(
                    "{v}^ = t head requires non-set-valued class, but T({p}) is a set type"
                )));
            }
            check_term(t, &ty, schema, types).map_err(|e| err(e.to_string()))?;
        }
    }

    // Deletion heads may not invent.
    if rule.head.is_deletion() && !rule.invention_vars().is_empty() {
        return Err(err(
            "deletion heads cannot contain invention variables".into()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Head, Literal, Rule, Term};
    use iql_model::{ClassName, RelName, SchemaBuilder};

    fn schema_graph() -> Schema {
        use TypeExpr as T;
        SchemaBuilder::new()
            .relation("R", T::tuple([("A1", T::base()), ("A2", T::base())]))
            .relation("R0", T::tuple([("A1", T::base())]))
            .relation(
                "Rp",
                T::tuple([
                    ("A1", T::base()),
                    ("A2", T::class("P")),
                    ("A3", T::class("Pp")),
                ]),
            )
            .class(
                "P",
                T::tuple([("A1", T::base()), ("A2", T::set_of(T::class("P")))]),
            )
            .class("Pp", T::set_of(T::class("P")))
            .build()
            .unwrap()
    }

    fn tup2(a: Term, b: Term) -> Term {
        Term::tuple([("A1", a), ("A2", b)])
    }

    #[test]
    fn infers_from_body_relation() {
        let schema = schema_graph();
        let mut rule = Rule::new(
            Head::Rel(RelName::new("R0"), Term::tuple([("A1", Term::var("x"))])),
            vec![Literal::member(
                Term::Rel(RelName::new("R")),
                tup2(Term::var("x"), Term::var("y")),
            )],
        );
        infer_rule(&mut rule, &schema).unwrap();
        assert_eq!(rule.var_types[&"x".into()], TypeExpr::Base);
        assert_eq!(rule.var_types[&"y".into()], TypeExpr::Base);
        check_rule(&rule, &schema).unwrap();
    }

    #[test]
    fn infers_invention_vars_from_head() {
        // Example 1.2 stage 2: R'(x, p, p') :- R0(x). p, p' inferred from
        // the head type of Rp.
        let schema = schema_graph();
        let mut rule = Rule::new(
            Head::Rel(
                RelName::new("Rp"),
                Term::tuple([
                    ("A1", Term::var("x")),
                    ("A2", Term::var("p")),
                    ("A3", Term::var("pp")),
                ]),
            ),
            vec![Literal::member(
                Term::Rel(RelName::new("R0")),
                Term::tuple([("A1", Term::var("x"))]),
            )],
        );
        infer_rule(&mut rule, &schema).unwrap();
        assert_eq!(rule.var_types[&"p".into()], TypeExpr::class("P"));
        assert_eq!(rule.var_types[&"pp".into()], TypeExpr::class("Pp"));
        assert_eq!(rule.invention_vars().len(), 2);
        check_rule(&rule, &schema).unwrap();
    }

    #[test]
    fn invention_must_be_class_typed() {
        let schema = schema_graph();
        // R0(x) :- with x head-only of base type: rejected.
        let mut rule = Rule::new(
            Head::Rel(RelName::new("R0"), Term::tuple([("A1", Term::var("x"))])),
            vec![],
        );
        let err = infer_rule(&mut rule, &schema).unwrap_err();
        assert!(matches!(err, IqlError::InventionNotClassTyped { .. }));
    }

    #[test]
    fn deref_set_member_head_types() {
        // p'^(q) :- Rp(x,p,p'), Rp(y,q,q'), R(x,y).   (Example 1.2 stage 3)
        let schema = schema_graph();
        let rp = RelName::new("Rp");
        let mut rule = Rule::new(
            Head::SetMember("pp".into(), Term::var("q")),
            vec![
                Literal::member(
                    Term::Rel(rp),
                    Term::tuple([
                        ("A1", Term::var("x")),
                        ("A2", Term::var("p")),
                        ("A3", Term::var("pp")),
                    ]),
                ),
                Literal::member(
                    Term::Rel(rp),
                    Term::tuple([
                        ("A1", Term::var("y")),
                        ("A2", Term::var("q")),
                        ("A3", Term::var("qq")),
                    ]),
                ),
                Literal::member(
                    Term::Rel(RelName::new("R")),
                    tup2(Term::var("x"), Term::var("y")),
                ),
            ],
        );
        infer_rule(&mut rule, &schema).unwrap();
        check_rule(&rule, &schema).unwrap();
        assert_eq!(rule.var_types[&"pp".into()], TypeExpr::class("Pp"));
    }

    #[test]
    fn assign_head_with_deref_term() {
        // p^ = [x, p'^] :- Rp(x, p, p').   (Example 1.2 stage 4)
        let schema = schema_graph();
        let mut rule = Rule::new(
            Head::Assign(
                "p".into(),
                Term::tuple([("A1", Term::var("x")), ("A2", Term::deref("pp"))]),
            ),
            vec![Literal::member(
                Term::Rel(RelName::new("Rp")),
                Term::tuple([
                    ("A1", Term::var("x")),
                    ("A2", Term::var("p")),
                    ("A3", Term::var("pp")),
                ]),
            )],
        );
        infer_rule(&mut rule, &schema).unwrap();
        check_rule(&rule, &schema).unwrap();
    }

    #[test]
    fn empty_set_checks_against_set_type() {
        let schema = SchemaBuilder::new()
            .relation("S", TypeExpr::set_of(TypeExpr::base()))
            .build()
            .unwrap();
        // S({}) :- .  — {} is checkable though not synthesizable.
        let mut rule = Rule::new(Head::Rel(RelName::new("S"), Term::set([])), vec![]);
        infer_rule(&mut rule, &schema).unwrap();
        check_rule(&rule, &schema).unwrap();
    }

    #[test]
    fn union_coercion_in_equality() {
        use TypeExpr as T;
        let schema = SchemaBuilder::new()
            .class(
                "PU",
                T::union(
                    T::class("PU"),
                    T::tuple([("A1", T::class("PU")), ("A2", T::class("PU"))]),
                ),
            )
            .relation("RU", T::tuple([("C1", T::class("PU"))]))
            .build()
            .unwrap();
        // y = x^ with y: PU and x^: PU ∨ [A1:PU,A2:PU] — legal by coercion.
        let mut rule = Rule::new(
            Head::Rel(RelName::new("RU"), Term::tuple([("C1", Term::var("y"))])),
            vec![
                Literal::member(Term::Class(ClassName::new("PU")), Term::var("x")),
                Literal::member(Term::Class(ClassName::new("PU")), Term::var("y")),
                Literal::eq(Term::var("y"), Term::deref("x")),
            ],
        );
        infer_rule(&mut rule, &schema).unwrap();
        check_rule(&rule, &schema).unwrap();
    }

    #[test]
    fn ill_typed_head_rejected() {
        let schema = schema_graph();
        // R0(x) :- P(x).  — x: P but T(R0) wants [A1: D].
        let mut rule = Rule::new(
            Head::Rel(RelName::new("R0"), Term::tuple([("A1", Term::var("x"))])),
            vec![Literal::member(
                Term::Class(ClassName::new("P")),
                Term::var("x"),
            )],
        );
        infer_rule(&mut rule, &schema).unwrap();
        assert!(check_rule(&rule, &schema).is_err());
    }

    #[test]
    fn cannot_infer_is_reported() {
        let schema = schema_graph();
        // R0(x) :- R0(x), y = y.  — nothing pins down y (x is inferred from
        // both head and body positions).
        let mut rule = Rule::new(
            Head::Rel(RelName::new("R0"), Term::tuple([("A1", Term::var("x"))])),
            vec![
                Literal::member(
                    Term::Rel(RelName::new("R0")),
                    Term::tuple([("A1", Term::var("x"))]),
                ),
                Literal::eq(Term::var("y"), Term::var("y")),
            ],
        );
        let err = infer_rule(&mut rule, &schema).unwrap_err();
        assert!(matches!(err, IqlError::CannotInfer { .. }));
    }

    #[test]
    fn explicit_declaration_enables_checking() {
        let schema = schema_graph();
        // Same rule, with var declarations: the powerset-style X = X idiom.
        let mut rule = Rule::new(
            Head::Rel(RelName::new("R0"), Term::tuple([("A1", Term::var("x"))])),
            vec![Literal::eq(Term::var("x"), Term::var("x"))],
        )
        .with_var("x", TypeExpr::Base);
        infer_rule(&mut rule, &schema).unwrap();
        check_rule(&rule, &schema).unwrap();
    }

    #[test]
    fn subtype_union_components() {
        use TypeExpr as T;
        assert!(subtype(&T::base(), &T::union(T::base(), T::class("SubP"))));
        assert!(!subtype(&T::union(T::base(), T::class("SubP")), &T::base()));
        assert!(subtype(
            &T::set_of(T::base()),
            &T::set_of(T::union(T::base(), T::class("SubP")))
        ));
        assert!(subtype(&T::empty(), &T::base()));
    }

    #[test]
    fn deletion_head_cannot_invent() {
        let schema = schema_graph();
        let mut rule = Rule::new(
            Head::DeleteRel(
                RelName::new("Rp"),
                Term::tuple([
                    ("A1", Term::var("x")),
                    ("A2", Term::var("p")),
                    ("A3", Term::var("pp")),
                ]),
            ),
            vec![Literal::member(
                Term::Rel(RelName::new("R0")),
                Term::tuple([("A1", Term::var("x"))]),
            )],
        );
        infer_rule(&mut rule, &schema).unwrap();
        assert!(check_rule(&rule, &schema).is_err());
    }
}
