//! Flat Datalog: tuples of constants, atoms, rules, databases — with a
//! small text parser.
//!
//! Conventions of the textual syntax:
//!
//! * relation names start with an uppercase letter (`Edge`, `Tc`);
//! * variables start with a lowercase letter (`x`, `y2`);
//! * constants are quoted strings or integers;
//! * rules end with `.`; negation is `!Atom(...)`.
//!
//! ```text
//! Tc(x, y) :- Edge(x, y).
//! Tc(x, z) :- Tc(x, y), Edge(y, z).
//! ```

use crate::{DlError, Result};
use iql_model::Constant;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// A Datalog tuple.
pub type Tuple = Vec<Constant>;

/// A named, duplicate-free set of tuples of fixed arity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    /// Arity; 0 until the first insert fixes it.
    arity: Option<usize>,
    tuples: HashSet<Tuple>,
}

impl Relation {
    /// An empty relation (arity fixed on first insert).
    pub fn new() -> Relation {
        Relation::default()
    }

    /// Inserts a tuple; returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        match self.arity {
            None => self.arity = Some(t.len()),
            Some(a) if a != t.len() => {
                return Err(DlError::Arity {
                    rel: String::new(),
                    expected: a,
                    found: t.len(),
                })
            }
            _ => {}
        }
        Ok(self.tuples.insert(t))
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterates the tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Builds a hash index on column `col`.
    pub fn index(&self, col: usize) -> HashMap<&Constant, Vec<&Tuple>> {
        let mut idx: HashMap<&Constant, Vec<&Tuple>> = HashMap::new();
        for t in &self.tuples {
            if let Some(c) = t.get(col) {
                idx.entry(c).or_default().push(t);
            }
        }
        idx
    }
}

/// A database: named relations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The relation named `r` (empty if absent).
    pub fn relation(&self, r: &str) -> Option<&Relation> {
        self.relations.get(r)
    }

    /// Mutable access, creating the relation if needed.
    pub fn relation_mut(&mut self, r: &str) -> &mut Relation {
        self.relations.entry(r.to_string()).or_default()
    }

    /// Inserts a tuple into relation `r`.
    pub fn insert(&mut self, r: &str, t: Tuple) -> Result<bool> {
        self.relation_mut(r).insert(t).map_err(|e| match e {
            DlError::Arity {
                expected, found, ..
            } => DlError::Arity {
                rel: r.to_string(),
                expected,
                found,
            },
            other => other,
        })
    }

    /// All relation names present.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Total tuple count.
    pub fn size(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

/// A term: variable or constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DlTerm {
    /// A variable.
    Var(String),
    /// A constant.
    Const(Constant),
}

impl fmt::Display for DlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlTerm::Var(v) => write!(f, "{v}"),
            DlTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An atom `R(t1, …, tk)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation name.
    pub rel: String,
    /// The argument terms.
    pub args: Vec<DlTerm>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(rel: &str, args: Vec<DlTerm>) -> Atom {
        Atom {
            rel: rel.to_string(),
            args,
        }
    }

    /// The variables of the atom.
    pub fn vars(&self) -> BTreeSet<&str> {
        self.args
            .iter()
            .filter_map(|t| match t {
                DlTerm::Var(v) => Some(v.as_str()),
                DlTerm::Const(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: an atom, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lit {
    /// The atom.
    pub atom: Atom,
    /// `false` for `!R(…)`.
    pub positive: bool,
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "!")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// A rule `H :- L1, …, Lk.`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals.
    pub body: Vec<Lit>,
}

impl Rule {
    /// Safety: every head variable and every negated-atom variable must
    /// occur in a positive body atom.
    pub fn check_safe(&self) -> Result<()> {
        let positive: BTreeSet<&str> = self
            .body
            .iter()
            .filter(|l| l.positive)
            .flat_map(|l| l.atom.vars())
            .collect();
        for v in self.head.vars() {
            if !positive.contains(v) {
                return Err(DlError::Unsafe {
                    var: v.to_string(),
                    rule: self.to_string(),
                });
            }
        }
        for l in &self.body {
            if !l.positive {
                for v in l.atom.vars() {
                    if !positive.contains(v) {
                        return Err(DlError::Unsafe {
                            var: v.to_string(),
                            rule: self.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A Datalog program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Builds a program, checking rule safety and arity consistency.
    pub fn new(rules: Vec<Rule>) -> Result<Program> {
        let mut arities: BTreeMap<&str, usize> = BTreeMap::new();
        for r in &rules {
            r.check_safe()?;
            for atom in std::iter::once(&r.head).chain(r.body.iter().map(|l| &l.atom)) {
                match arities.get(atom.rel.as_str()) {
                    Some(&a) if a != atom.args.len() => {
                        return Err(DlError::Arity {
                            rel: atom.rel.clone(),
                            expected: a,
                            found: atom.args.len(),
                        })
                    }
                    _ => {
                        arities.insert(&atom.rel, atom.args.len());
                    }
                }
            }
        }
        Ok(Program { rules })
    }

    /// Relation names written by some rule (the IDB).
    pub fn idb(&self) -> BTreeSet<&str> {
        self.rules.iter().map(|r| r.head.rel.as_str()).collect()
    }

    /// Relation names only read (the EDB).
    pub fn edb(&self) -> BTreeSet<&str> {
        let idb = self.idb();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter())
            .map(|l| l.atom.rel.as_str())
            .filter(|r| !idb.contains(r))
            .collect()
    }

    /// Does any rule use negation?
    pub fn has_negation(&self) -> bool {
        self.rules
            .iter()
            .any(|r| r.body.iter().any(|l| !l.positive))
    }

    /// Arity of each relation mentioned.
    pub fn arities(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for r in &self.rules {
            for atom in std::iter::once(&r.head).chain(r.body.iter().map(|l| &l.atom)) {
                out.insert(atom.rel.clone(), atom.args.len());
            }
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parses a textual Datalog program (see module docs for the conventions).
pub fn parse_program(src: &str) -> Result<Program> {
    let mut rules = Vec::new();
    let mut rest = src.trim_start();
    // Strip comments line-wise first.
    let cleaned: String = rest
        .lines()
        .map(|l| match l.find("//") {
            Some(i) => &l[..i],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n");
    rest = cleaned.trim_start();
    while !rest.is_empty() {
        let Some(dot) = find_rule_end(rest) else {
            return Err(DlError::Parse(format!(
                "missing `.` after `{}`",
                truncate(rest)
            )));
        };
        let (rule_src, tail) = rest.split_at(dot);
        rules.push(parse_rule(rule_src.trim())?);
        rest = tail[1..].trim_start();
    }
    Program::new(rules)
}

fn find_rule_end(s: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '.' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn truncate(s: &str) -> String {
    s.chars().take(30).collect()
}

fn parse_rule(src: &str) -> Result<Rule> {
    let (head_src, body_src) = match src.find(":-") {
        Some(i) => (&src[..i], Some(&src[i + 2..])),
        None => (src, None),
    };
    let head = parse_atom(head_src.trim())?;
    let mut body = Vec::new();
    if let Some(b) = body_src {
        for part in split_atoms(b) {
            let part = part.trim();
            let (positive, atom_src) = match part.strip_prefix('!') {
                Some(rest) => (false, rest.trim()),
                None => (true, part),
            };
            body.push(Lit {
                atom: parse_atom(atom_src)?,
                positive,
            });
        }
    }
    Ok(Rule { head, body })
}

/// Splits body atoms at top-level commas (not inside parens/strings).
fn split_atoms(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut in_str = false;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '(' if !in_str => depth += 1,
            ')' if !in_str => depth -= 1,
            ',' if !in_str && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn parse_atom(src: &str) -> Result<Atom> {
    let Some(open) = src.find('(') else {
        return Err(DlError::Parse(format!(
            "expected `(` in atom `{}`",
            truncate(src)
        )));
    };
    if !src.ends_with(')') {
        return Err(DlError::Parse(format!(
            "expected `)` at end of atom `{}`",
            truncate(src)
        )));
    }
    let rel = src[..open].trim();
    if rel.is_empty() || !rel.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        return Err(DlError::Parse(format!(
            "relation names start uppercase; got `{}`",
            truncate(rel)
        )));
    }
    let args_src = &src[open + 1..src.len() - 1];
    let mut args = Vec::new();
    if !args_src.trim().is_empty() {
        for part in split_atoms(args_src) {
            args.push(parse_term(part.trim())?);
        }
    }
    Ok(Atom::new(rel, args))
}

fn parse_term(src: &str) -> Result<DlTerm> {
    if src.starts_with('"') && src.ends_with('"') && src.len() >= 2 {
        return Ok(DlTerm::Const(Constant::str(&src[1..src.len() - 1])));
    }
    if let Ok(n) = src.parse::<i64>() {
        return Ok(DlTerm::Const(Constant::int(n)));
    }
    if src
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && src.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Ok(DlTerm::Var(src.to_string()));
    }
    Err(DlError::Parse(format!("bad term `{}`", truncate(src))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_tc() {
        let p = parse_program(
            r#"
            Tc(x, y) :- Edge(x, y).
            Tc(x, z) :- Tc(x, y), Edge(y, z).
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.idb(), BTreeSet::from(["Tc"]));
        assert_eq!(p.edb(), BTreeSet::from(["Edge"]));
        assert!(!p.has_negation());
    }

    #[test]
    fn parse_negation_and_constants() {
        let p = parse_program(r#"Out(x) :- Node(x), !Bad(x), Tag(x, "keep", 42)."#).unwrap();
        assert!(p.has_negation());
        let r = &p.rules[0];
        assert_eq!(r.body.len(), 3);
        assert!(!r.body[1].positive);
        assert_eq!(r.body[2].atom.args[1], DlTerm::Const(Constant::str("keep")));
        assert_eq!(r.body[2].atom.args[2], DlTerm::Const(Constant::int(42)));
    }

    #[test]
    fn unsafe_rules_rejected() {
        let err = parse_program("Out(x, y) :- Node(x).").unwrap_err();
        assert!(matches!(err, DlError::Unsafe { .. }));
        let err2 = parse_program("Out(x) :- Node(x), !Bad(y).").unwrap_err();
        assert!(matches!(err2, DlError::Unsafe { .. }));
    }

    #[test]
    fn arity_conflicts_rejected() {
        let err = parse_program("Out(x) :- Edge(x, y). Out(x, y) :- Edge(x, y).").unwrap_err();
        assert!(matches!(err, DlError::Arity { .. }));
    }

    #[test]
    fn facts_parse() {
        let p = parse_program(r#"Start("a")."#).unwrap();
        assert_eq!(p.rules[0].body.len(), 0);
    }

    #[test]
    fn relation_and_database_basics() {
        let mut db = Database::new();
        db.insert("R", vec![Constant::int(1), Constant::int(2)])
            .unwrap();
        assert!(!db
            .insert("R", vec![Constant::int(1), Constant::int(2)])
            .unwrap());
        let err = db.insert("R", vec![Constant::int(1)]).unwrap_err();
        assert!(matches!(err, DlError::Arity { .. }));
        assert_eq!(db.size(), 1);
        let idx = db.relation("R").unwrap().index(0);
        assert_eq!(idx[&Constant::int(1)].len(), 1);
    }

    #[test]
    fn idb_edb_and_arities() {
        let p = parse_program("Tc(x, y) :- Edge(x, y). Out(x) :- Tc(x, y), !Block(x).").unwrap();
        assert_eq!(p.idb(), BTreeSet::from(["Out", "Tc"]));
        assert_eq!(p.edb(), BTreeSet::from(["Block", "Edge"]));
        let ar = p.arities();
        assert_eq!(ar["Tc"], 2);
        assert_eq!(ar["Out"], 1);
        assert_eq!(ar["Block"], 1);
    }

    #[test]
    fn display_roundtrip() {
        let p = parse_program("Tc(x, z) :- Tc(x, y), Edge(y, z).").unwrap();
        let txt = p.to_string();
        let p2 = parse_program(&txt).unwrap();
        assert_eq!(p, p2);
    }
}
