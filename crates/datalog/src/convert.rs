//! Datalog ⇄ IQL conversion (Section 3.4).
//!
//! "It is now clear that each Datalog program can be viewed as a valid IQL
//! program on a relational schema, and that its Datalog and IQL semantics
//! are identical. The same applies to Datalog with negation and
//! inflationary semantics." — this module realizes that embedding by
//! generating IQL source text (schema + program) and running it through the
//! IQL parser/type checker, plus the database/instance conversions needed
//! to compare results (experiment E11).

use crate::ast::{Database, Program, Tuple};
use crate::{DlError, Result};
use iql_model::{Instance, OValue, RelName, Schema};
use std::collections::BTreeMap;
use std::fmt::Write;
use std::sync::Arc;

/// The attribute names used for relation columns in the generated schema.
fn col_attr(i: usize) -> String {
    format!("c{i}")
}

/// Renders a Datalog program as IQL source (schema + program block).
/// `inputs` become the IQL input projection; `outputs` the output.
pub fn to_iql_source(prog: &Program, inputs: &[&str], outputs: &[&str]) -> String {
    let arities = prog.arities();
    let mut src = String::from("schema {\n");
    for (rel, arity) in &arities {
        let cols: Vec<String> = (0..*arity).map(|i| format!("{}: D", col_attr(i))).collect();
        let _ = writeln!(src, "  relation {rel}: [{}];", cols.join(", "));
    }
    src.push_str("}\nprogram {\n");
    if !inputs.is_empty() {
        let _ = writeln!(src, "  input {};", inputs.join(", "));
    }
    let _ = writeln!(src, "  output {};", outputs.join(", "));
    for rule in &prog.rules {
        let mut line = format!("  {}", rule.head);
        if !rule.body.is_empty() {
            line.push_str(" :- ");
            let lits: Vec<String> = rule
                .body
                .iter()
                .map(|l| {
                    if l.positive {
                        l.atom.to_string()
                    } else {
                        format!("not {}", l.atom)
                    }
                })
                .collect();
            line.push_str(&lits.join(", "));
        }
        line.push(';');
        let _ = writeln!(src, "{line}");
    }
    src.push_str("}\n");
    src
}

/// Converts a Datalog program into a type-checked IQL program with the
/// given input/output relations (inflationary semantics on both sides).
pub fn to_iql(prog: &Program, inputs: &[&str], outputs: &[&str]) -> Result<iql_core::Program> {
    let src = to_iql_source(prog, inputs, outputs);
    let unit = iql_core::parser::parse_unit(&src)
        .map_err(|e| DlError::Parse(format!("generated IQL failed to parse: {e}\n{src}")))?;
    unit.program
        .ok_or_else(|| DlError::Parse("generated IQL had no program".into()))
}

/// Converts a Datalog database (restricted to `rels`) into an IQL instance
/// over `schema` (which must declare those relations with `c0…ck` tuple
/// columns, as produced by [`to_iql`]).
pub fn database_to_instance(
    db: &Database,
    rels: &[&str],
    schema: &Arc<Schema>,
) -> Result<Instance> {
    let mut inst = Instance::new(Arc::clone(schema));
    for rel in rels {
        let Some(r) = db.relation(rel) else { continue };
        for tuple in r.iter() {
            inst.insert_unchecked(RelName::new(rel), tuple_to_ovalue(tuple))
                .map_err(|e| DlError::Parse(e.to_string()))?;
        }
    }
    Ok(inst)
}

/// Converts one Datalog tuple into the IQL tuple o-value convention.
pub fn tuple_to_ovalue(tuple: &Tuple) -> OValue {
    OValue::tuple(
        tuple
            .iter()
            .enumerate()
            .map(|(i, c)| (col_attr(i).as_str().into(), OValue::Const(c.clone())))
            .collect::<Vec<(iql_model::AttrName, OValue)>>(),
    )
}

/// Reads an IQL instance's relations back into a Datalog database
/// (inverting [`database_to_instance`]'s convention).
pub fn instance_to_database(inst: &Instance) -> Result<Database> {
    let mut db = Database::new();
    for rel in inst.schema().relations() {
        db.relation_mut(rel.as_str());
        for v in inst
            .relation(rel)
            .map_err(|e| DlError::Parse(e.to_string()))?
        {
            let OValue::Tuple(fields) = v else {
                return Err(DlError::Parse(format!(
                    "relation {rel} holds non-tuple value {v}"
                )));
            };
            // Columns in c0..ck order.
            let mut cols: BTreeMap<usize, iql_model::Constant> = BTreeMap::new();
            for (a, fv) in fields {
                let name = a.as_str();
                let idx: usize = name
                    .strip_prefix('c')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| DlError::Parse(format!("unexpected attribute {name}")))?;
                let OValue::Const(c) = fv else {
                    return Err(DlError::Parse(format!("non-constant column in {rel}")));
                };
                cols.insert(idx, c.clone());
            }
            let tuple: Tuple = cols.into_values().collect();
            db.insert(rel.as_str(), tuple)?;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_program;
    use crate::engine::{eval, Strategy};
    use iql_core::eval::{run, EvalConfig};
    use iql_model::Constant;

    #[test]
    fn datalog_and_iql_semantics_agree_on_tc() {
        let dl =
            parse_program("Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).").unwrap();
        let mut db = Database::new();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (3, 1)] {
            db.insert("Edge", vec![Constant::int(s), Constant::int(d)])
                .unwrap();
        }
        let (dl_out, _) = eval(&dl, &db, Strategy::SemiNaive).unwrap();

        let iql = to_iql(&dl, &["Edge"], &["Tc"]).unwrap();
        let input = database_to_instance(&db, &["Edge"], &iql.input).unwrap();
        let out = run(&iql, &input, &EvalConfig::default()).unwrap();
        let back = instance_to_database(&out.output).unwrap();

        assert_eq!(
            back.relation("Tc").unwrap().len(),
            dl_out.relation("Tc").unwrap().len()
        );
        for t in dl_out.relation("Tc").unwrap().iter() {
            assert!(back.relation("Tc").unwrap().contains(t));
        }
    }

    #[test]
    fn inflationary_negation_agrees() {
        let dl = parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap();
        let mut db = Database::new();
        for i in 0..4 {
            db.insert("Move", vec![Constant::int(i), Constant::int(i + 1)])
                .unwrap();
        }
        let (dl_out, _) = eval(&dl, &db, Strategy::Inflationary).unwrap();
        let iql = to_iql(&dl, &["Move"], &["Win"]).unwrap();
        let input = database_to_instance(&db, &["Move"], &iql.input).unwrap();
        let out = run(&iql, &input, &EvalConfig::default()).unwrap();
        let back = instance_to_database(&out.output).unwrap();
        assert_eq!(
            back.relation("Win").unwrap().len(),
            dl_out.relation("Win").unwrap().len()
        );
    }

    #[test]
    fn generated_source_is_readable() {
        let dl = parse_program("Tc(x, y) :- Edge(x, y).").unwrap();
        let src = to_iql_source(&dl, &["Edge"], &["Tc"]);
        assert!(src.contains("relation Edge: [c0: D, c1: D];"));
        assert!(src.contains("input Edge;"));
        assert!(src.contains("Tc(x, y) :- Edge(x, y);"));
    }

    #[test]
    fn roundtrip_database_instance() {
        let dl = parse_program("Tc(x, y) :- Edge(x, y).").unwrap();
        let iql = to_iql(&dl, &["Edge"], &["Tc"]).unwrap();
        let mut db = Database::new();
        db.insert("Edge", vec![Constant::str("a"), Constant::str("b")])
            .unwrap();
        let inst = database_to_instance(&db, &["Edge"], &iql.input).unwrap();
        let back = instance_to_database(&inst).unwrap();
        assert_eq!(back.relation("Edge").unwrap().len(), 1);
        assert!(back
            .relation("Edge")
            .unwrap()
            .contains(&vec![Constant::str("a"), Constant::str("b")]));
    }
}
