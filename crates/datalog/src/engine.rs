//! Bottom-up evaluation: naive, semi-naive, inflationary ¬, stratified ¬.
//!
//! The join is a left-to-right nested-loop with hash indexes on the first
//! bound column of each atom — the standard workhorse plan for bottom-up
//! Datalog. Semi-naive evaluation differentiates rules: each round
//! evaluates, for every occurrence of a derived atom, the body with that
//! occurrence restricted to the previous round's delta (Balbin–Ramamohanarao
//! style), which is where the asymptotic win over naive evaluation — and
//! over IQL's naive inflationary evaluator — comes from (experiment E11).

use crate::ast::{Atom, Database, DlTerm, Program, Rule, Tuple};
use crate::stratify::stratify;
use crate::{DlError, Result};
use iql_model::Constant;
use std::collections::{BTreeSet, HashMap};

type Subst = HashMap<String, Constant>;

/// Statistics from one evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds.
    pub rounds: usize,
    /// Facts derived (including duplicates rejected by set semantics).
    pub derivations: usize,
}

fn term_value<'a>(t: &'a DlTerm, subst: &'a Subst) -> Option<&'a Constant> {
    match t {
        DlTerm::Const(c) => Some(c),
        DlTerm::Var(v) => subst.get(v),
    }
}

/// Extends `subst` by matching `atom`'s args against `tuple`.
fn match_tuple(atom: &Atom, tuple: &Tuple, subst: &Subst) -> Option<Subst> {
    let mut out = subst.clone();
    for (t, c) in atom.args.iter().zip(tuple.iter()) {
        match t {
            DlTerm::Const(k) => {
                if k != c {
                    return None;
                }
            }
            DlTerm::Var(v) => match out.get(v) {
                Some(bound) => {
                    if bound != c {
                        return None;
                    }
                }
                None => {
                    out.insert(v.clone(), c.clone());
                }
            },
        }
    }
    Some(out)
}

/// Joins the positive body atoms left to right over `read`, with atom
/// `delta_at` (if any) reading from `delta` instead. Negative literals are
/// checked against `neg_view` once all variables are bound (safety
/// guarantees boundness). Calls `emit` per satisfying substitution.
#[allow(clippy::too_many_arguments)]
fn join_rule(
    rule: &Rule,
    read: &Database,
    delta: Option<(&Database, usize)>,
    neg_view: &Database,
    emit: &mut dyn FnMut(Tuple),
) {
    let positives: Vec<(usize, &Atom)> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.positive)
        .map(|(i, l)| (i, &l.atom))
        .collect();

    // Per-atom access plans, computed ONCE per rule evaluation: the probe
    // column of atom k is the first argument that is a constant or a
    // variable bound by atoms 0..k — a static property of the atom order —
    // and its hash index is built here instead of being rebuilt for every
    // partial substitution inside the join.
    struct AtomPlan<'a> {
        rel: &'a crate::ast::Relation,
        probe: Option<(usize, HashMap<&'a Constant, Vec<&'a Tuple>>)>,
    }
    let mut bound: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut plans: Vec<Option<AtomPlan>> = Vec::with_capacity(positives.len());
    for (body_idx, atom) in &positives {
        let source = match delta {
            Some((d, at)) if at == *body_idx => d,
            _ => read,
        };
        let plan = source.relation(&atom.rel).map(|rel| {
            let probe_col = atom.args.iter().position(|t| match t {
                DlTerm::Const(_) => true,
                DlTerm::Var(v) => bound.contains(v.as_str()),
            });
            AtomPlan {
                rel,
                probe: probe_col.map(|col| (col, rel.index(col))),
            }
        });
        for t in &atom.args {
            if let DlTerm::Var(v) = t {
                bound.insert(v);
            }
        }
        plans.push(plan);
    }

    fn recurse(
        positives: &[(usize, &Atom)],
        plans: &[Option<AtomPlan>],
        k: usize,
        subst: Subst,
        rule: &Rule,
        neg_view: &Database,
        emit: &mut dyn FnMut(Tuple),
    ) {
        if k == positives.len() {
            // Negative literals.
            for lit in rule.body.iter().filter(|l| !l.positive) {
                let tuple: Option<Tuple> = lit
                    .atom
                    .args
                    .iter()
                    .map(|t| term_value(t, &subst).cloned())
                    .collect();
                let Some(tuple) = tuple else { return };
                if neg_view
                    .relation(&lit.atom.rel)
                    .is_some_and(|r| r.contains(&tuple))
                {
                    return;
                }
            }
            // Head.
            let head: Tuple = rule
                .head
                .args
                .iter()
                .map(|t| {
                    term_value(t, &subst)
                        .expect("safety: head vars bound")
                        .clone()
                })
                .collect();
            emit(head);
            return;
        }
        let (_, atom) = positives[k];
        let Some(plan) = &plans[k] else { return };
        match &plan.probe {
            Some((col, idx)) => {
                let Some(key) = term_value(&atom.args[*col], &subst) else {
                    return;
                };
                if let Some(candidates) = idx.get(key) {
                    for tuple in candidates {
                        if let Some(next) = match_tuple(atom, tuple, &subst) {
                            recurse(positives, plans, k + 1, next, rule, neg_view, emit);
                        }
                    }
                }
            }
            None => {
                for tuple in plan.rel.iter() {
                    if let Some(next) = match_tuple(atom, tuple, &subst) {
                        recurse(positives, plans, k + 1, next, rule, neg_view, emit);
                    }
                }
            }
        }
    }
    recurse(&positives, &plans, 0, Subst::new(), rule, neg_view, emit);
}

/// Answers a single-atom query against a database: all substitutions of
/// the atom's variables matched by stored tuples, as result tuples in
/// variable-occurrence order.
pub fn query(db: &Database, atom: &Atom) -> Vec<Tuple> {
    let Some(rel) = db.relation(&atom.rel) else {
        return Vec::new();
    };
    let mut vars: Vec<&str> = Vec::new();
    for t in &atom.args {
        if let DlTerm::Var(v) = t {
            if !vars.contains(&v.as_str()) {
                vars.push(v);
            }
        }
    }
    let mut out = Vec::new();
    for tuple in rel.iter() {
        if let Some(subst) = match_tuple(atom, tuple, &Subst::new()) {
            out.push(vars.iter().map(|v| subst[*v].clone()).collect());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Naive evaluation of a positive program: every round re-derives
/// everything from the full database. Quadratic overhead relative to
/// semi-naive; kept as the baseline ablation.
pub fn eval_naive(prog: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    if prog.has_negation() {
        return Err(DlError::NegationUnsupported(
            prog.rules
                .iter()
                .find(|r| r.body.iter().any(|l| !l.positive))
                .map(|r| r.to_string())
                .unwrap_or_default(),
        ));
    }
    let mut db = edb.clone();
    let mut stats = EvalStats::default();
    loop {
        stats.rounds += 1;
        let mut new: Vec<(String, Tuple)> = Vec::new();
        for rule in &prog.rules {
            let mut emit = |t: Tuple| {
                new.push((rule.head.rel.clone(), t));
            };
            join_rule(rule, &db, None, &db, &mut emit);
        }
        let mut changed = false;
        for (rel, t) in new {
            stats.derivations += 1;
            if db.insert(&rel, t)? {
                changed = true;
            }
        }
        if !changed {
            return Ok((db, stats));
        }
    }
}

/// Semi-naive evaluation of a positive program.
///
/// ```
/// use iql_datalog::{eval_seminaive, parse_program, Database};
/// use iql_model::Constant;
/// let prog = parse_program(
///     "Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).",
/// ).unwrap();
/// let mut db = Database::new();
/// db.insert("Edge", vec![Constant::int(1), Constant::int(2)]).unwrap();
/// db.insert("Edge", vec![Constant::int(2), Constant::int(3)]).unwrap();
/// let (out, stats) = eval_seminaive(&prog, &db).unwrap();
/// assert_eq!(out.relation("Tc").unwrap().len(), 3);
/// assert!(stats.rounds >= 2);
/// ```
pub fn eval_seminaive(prog: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    if prog.has_negation() {
        return Err(DlError::NegationUnsupported(
            prog.rules
                .iter()
                .find(|r| r.body.iter().any(|l| !l.positive))
                .map(|r| r.to_string())
                .unwrap_or_default(),
        ));
    }
    eval_seminaive_stratum(prog, edb.clone(), &Database::new())
}

/// Semi-naive core, with `neg_view` holding the (frozen, lower-stratum)
/// relations negative literals read.
fn eval_seminaive_stratum(
    prog: &Program,
    mut db: Database,
    neg_view: &Database,
) -> Result<(Database, EvalStats)> {
    let idb: BTreeSet<&str> = prog.idb();
    let mut stats = EvalStats::default();

    // Round 0: evaluate every rule on the current database.
    let mut delta = Database::new();
    stats.rounds += 1;
    {
        let mut new: Vec<(String, Tuple)> = Vec::new();
        for rule in &prog.rules {
            let mut emit = |t: Tuple| new.push((rule.head.rel.clone(), t));
            join_rule(rule, &db, None, neg_view, &mut emit);
        }
        for (rel, t) in new {
            stats.derivations += 1;
            if db.insert(&rel, t.clone())? {
                delta.insert(&rel, t)?;
            }
        }
    }

    // Differential rounds.
    while delta.size() > 0 {
        stats.rounds += 1;
        let mut new: Vec<(String, Tuple)> = Vec::new();
        for rule in &prog.rules {
            // One differentiated evaluation per derived positive atom.
            for (i, lit) in rule.body.iter().enumerate() {
                if !lit.positive || !idb.contains(lit.atom.rel.as_str()) {
                    continue;
                }
                if delta.relation(&lit.atom.rel).is_none_or(|r| r.is_empty()) {
                    continue;
                }
                let mut emit = |t: Tuple| new.push((rule.head.rel.clone(), t));
                join_rule(rule, &db, Some((&delta, i)), neg_view, &mut emit);
            }
        }
        let mut next_delta = Database::new();
        for (rel, t) in new {
            stats.derivations += 1;
            if db.insert(&rel, t.clone())? {
                next_delta.insert(&rel, t)?;
            }
        }
        delta = next_delta;
    }
    Ok((db, stats))
}

/// Inflationary Datalog¬ (Abiteboul–Vianu / Kolaitis–Papadimitriou): each
/// round evaluates all rules — negation included — against the *current*
/// database and adds everything derived; facts are never retracted. This is
/// exactly the semantics IQL generalizes (Section 3.2).
pub fn eval_inflationary(prog: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    let mut db = edb.clone();
    let mut stats = EvalStats::default();
    loop {
        stats.rounds += 1;
        let mut new: Vec<(String, Tuple)> = Vec::new();
        for rule in &prog.rules {
            let mut emit = |t: Tuple| new.push((rule.head.rel.clone(), t));
            // Negation reads the current (frozen for this round) database.
            join_rule(rule, &db, None, &db, &mut emit);
        }
        let mut changed = false;
        for (rel, t) in new {
            stats.derivations += 1;
            if db.insert(&rel, t)? {
                changed = true;
            }
        }
        if !changed {
            return Ok((db, stats));
        }
    }
}

/// Stratified Datalog¬: stratify, then evaluate each stratum semi-naively
/// with negation reading the completed lower strata.
pub fn eval_stratified(prog: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    let strata = stratify(prog)?;
    let mut db = edb.clone();
    let mut total = EvalStats::default();
    for stratum in &strata {
        // Negation inside a stratum only mentions lower-stratum relations,
        // which are final in `db` — freeze them as the negation view.
        let neg_view = db.clone();
        let (next, stats) = eval_seminaive_stratum(stratum, db, &neg_view)?;
        db = next;
        total.rounds += stats.rounds;
        total.derivations += stats.derivations;
    }
    Ok((db, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_program;

    fn chain_db(n: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert(
                "Edge",
                vec![Constant::int(i as i64), Constant::int(i as i64 + 1)],
            )
            .unwrap();
        }
        db
    }

    const TC: &str = "Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).";

    #[test]
    fn naive_and_seminaive_agree_on_tc() {
        let prog = parse_program(TC).unwrap();
        let db = chain_db(12);
        let (naive, s1) = eval_naive(&prog, &db).unwrap();
        let (semi, s2) = eval_seminaive(&prog, &db).unwrap();
        assert_eq!(naive, semi);
        // Chain of 13 nodes: 12·13/2 = 78 closure pairs.
        assert_eq!(naive.relation("Tc").unwrap().len(), 78);
        // Semi-naive derives strictly less.
        assert!(
            s2.derivations < s1.derivations,
            "{} < {}",
            s2.derivations,
            s1.derivations
        );
    }

    #[test]
    fn cyclic_graph_closure() {
        let prog = parse_program(TC).unwrap();
        let mut db = chain_db(3);
        db.insert("Edge", vec![Constant::int(3), Constant::int(0)])
            .unwrap();
        let (out, _) = eval_seminaive(&prog, &db).unwrap();
        // 4-cycle: complete closure 4×4 = 16.
        assert_eq!(out.relation("Tc").unwrap().len(), 16);
    }

    #[test]
    fn constants_in_rules() {
        let prog = parse_program(r#"Hit(x) :- Edge(0, x)."#).unwrap();
        let db = chain_db(3);
        let (out, _) = eval_seminaive(&prog, &db).unwrap();
        assert_eq!(out.relation("Hit").unwrap().len(), 1);
    }

    #[test]
    fn stratified_negation_complement() {
        let prog = parse_program(
            r#"
            Node(x) :- Edge(x, y).
            Node(y) :- Edge(x, y).
            Reach(0, 0).
            Reach(0, y) :- Reach(0, x), Edge(x, y).
            Un(x) :- Node(x), !ReachAny(x).
            ReachAny(y) :- Reach(0, y).
            "#,
        )
        .unwrap();
        let mut db = chain_db(2); // 0→1→2
        db.insert("Edge", vec![Constant::int(7), Constant::int(8)])
            .unwrap();
        let (out, _) = eval_stratified(&prog, &db).unwrap();
        let un = out.relation("Un").unwrap();
        assert_eq!(un.len(), 2); // 7, 8
    }

    #[test]
    fn inflationary_negation_round_semantics() {
        // Win(x) :- Move(x,y), !Win(y). — inflationary semantics on a chain.
        let prog = parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap();
        let mut db = Database::new();
        for i in 0..3 {
            db.insert("Move", vec![Constant::int(i), Constant::int(i + 1)])
                .unwrap();
        }
        let (out, _) = eval_inflationary(&prog, &db).unwrap();
        // Round 1: every mover "wins" (Win empty at round start): 0,1,2.
        // Round 2 adds nothing new. Inflationary ≠ stratified here; this
        // pins the semantics.
        assert_eq!(out.relation("Win").unwrap().len(), 3);
    }

    #[test]
    fn facts_in_program() {
        let prog = parse_program(r#"Start(0). Next(x) :- Start(x)."#).unwrap();
        let (out, _) = eval_seminaive(&prog, &Database::new()).unwrap();
        assert!(out
            .relation("Next")
            .unwrap()
            .contains(&vec![Constant::int(0)]));
    }

    #[test]
    fn query_matches_patterns() {
        let db = chain_db(3);
        use crate::ast::DlTerm;
        // All successors of 0.
        let atom = Atom::new(
            "Edge",
            vec![DlTerm::Const(Constant::int(0)), DlTerm::Var("x".into())],
        );
        assert_eq!(query(&db, &atom), vec![vec![Constant::int(1)]]);
        // Repeated variable: self loops only (none).
        let atom = Atom::new(
            "Edge",
            vec![DlTerm::Var("x".into()), DlTerm::Var("x".into())],
        );
        assert!(query(&db, &atom).is_empty());
        // Unknown relation: empty.
        let atom = Atom::new("Nope", vec![DlTerm::Var("x".into())]);
        assert!(query(&db, &atom).is_empty());
    }

    #[test]
    fn naive_rejects_negation() {
        let prog = parse_program("Out(x) :- Node(x), !Bad(x).").unwrap();
        assert!(matches!(
            eval_naive(&prog, &Database::new()),
            Err(DlError::NegationUnsupported(_))
        ));
    }
}
