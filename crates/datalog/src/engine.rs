//! Bottom-up evaluation: naive, semi-naive, inflationary ¬, stratified ¬.
//!
//! The join is a left-to-right nested-loop with hash-index probes: for
//! each atom, the planner picks among its bound columns the one whose
//! incremental index has the most distinct values (the narrowest expected
//! postings) — the standard workhorse plan for bottom-up Datalog, with a
//! cost-based probe choice on top. Semi-naive evaluation differentiates
//! rules: each round
//! evaluates, for every occurrence of a derived atom, the body with that
//! occurrence restricted to the previous round's delta (Balbin–Ramamohanarao
//! style), which is where the asymptotic win over naive evaluation — and
//! over IQL's naive inflationary evaluator — comes from (experiment E11).
//!
//! Internally the engine runs on the interned representation of
//! [`crate::interned`]: each `eval` call interns the EDB and the program's
//! constants into a [`ConstPool`] and compiles every rule once — variables
//! to dense substitution slots, constants to [`CId`]s — so the join
//! matches, probes, and hashes `u32` ids instead of [`Constant`]s, and
//! probes hit the relations' incremental per-column indexes (ensured ahead
//! of each round, maintained by every insert) with no per-round rebuild.
//! The public API speaks [`Database`] throughout;
//! conversion happens once at entry and once at exit.

use crate::ast::{Atom, Database, DlTerm, Program, Rule, Tuple};
use crate::interned::{CId, ConstPool, DbStats, IdDatabase, IdRelation, IdTuple};
use crate::stratify::stratify;
use crate::{DlError, Result};
use iql_core::govern::{AbortReason, Governor, Pacer};
use iql_exec::{
    choose_probe, effective_threads, rule_delta_supported, run_tasks, PhysOp, PlanLang,
};
use iql_model::Constant;
use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default cap on fixpoint rounds for the ungoverned [`eval`]/[`eval_with`]
/// entry points. Datalog's Herbrand base is finite, so every program
/// terminates *in principle* — but a large EDB can make "in principle" take
/// hours, and a cap this generous is only ever hit by such runaways. The
/// tripped run returns the partial database with
/// [`EvalStats::trip`]` = Some(StepLimit)`.
pub const DEFAULT_MAX_ROUNDS: usize = 1_000_000;

/// Test-only fault injection: set to a rule index to make that rule's next
/// join task panic, exercising the `catch_unwind` containment path.
/// `usize::MAX` (the default) injects nothing.
#[doc(hidden)]
pub static TEST_PANIC_RULE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Statistics from one evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds.
    pub rounds: usize,
    /// Facts derived (including duplicates rejected by set semantics).
    pub derivations: usize,
    /// Worker-pool size the evaluation ran with (1 = sequential).
    pub threads: usize,
    /// `Some(reason)` when a resource limit stopped the fixpoint early; the
    /// returned database is then the last consistent snapshot (completed
    /// rounds only — a tripped round's tuples are discarded wholesale).
    pub trip: Option<AbortReason>,
}

/// Which engine evaluates the program — the single knob of the unified
/// [`eval`] entry point, replacing the former `eval_naive` /
/// `eval_seminaive` / `eval_inflationary` / `eval_stratified` free
/// functions (retained as deprecated wrappers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Re-derive everything from the full database every round. Positive
    /// programs only; the quadratic-overhead baseline ablation.
    Naive,
    /// Differentiate rules against the previous round's delta
    /// (Balbin–Ramamohanarao). Positive programs only.
    SemiNaive,
    /// Inflationary Datalog¬ (Kolaitis–Papadimitriou): negation reads the
    /// current database, frozen per round; facts are never retracted.
    Inflationary,
    /// Stratified Datalog¬: SCC stratification, then semi-naive per
    /// stratum with negation reading completed lower strata.
    Stratified,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Naive => write!(f, "naive"),
            Strategy::SemiNaive => write!(f, "semi-naive"),
            Strategy::Inflationary => write!(f, "inflationary"),
            Strategy::Stratified => write!(f, "stratified"),
        }
    }
}

// ---------------------------------------------------------------------
// Rule compilation
// ---------------------------------------------------------------------

/// A compiled atom argument: an interned constant or a substitution slot.
#[derive(Debug, Clone, Copy)]
enum ArgSpec {
    Const(CId),
    Var(u32),
}

/// A compiled atom: relation name plus argument specs.
struct CAtom<'r> {
    rel: &'r str,
    args: Vec<ArgSpec>,
}

/// The Datalog instantiation of the shared physical-plan IR
/// ([`iql_exec::PlanLang`]): scan sources and match patterns are indices
/// into the rule's positive-atom list, guards are indices into its
/// negative-atom list, probe descriptors are tuple columns. The static
/// plan leaves every probe unresolved (`None`): relation statistics change
/// each round as tuples accrete, so the executor resolves each scan's
/// probe column against live statistics through
/// [`iql_exec::choose_probe`] — unlike IQL, whose plans are epoch-cached
/// with probes resolved at plan time.
struct DlLang;

impl PlanLang for DlLang {
    type Src = usize;
    type Pat = usize;
    type Col = usize;
    type Guard = usize;
    type Enum = std::convert::Infallible;
}

/// A Datalog physical operator.
type DlOp = PhysOp<DlLang>;

/// A rule compiled against a [`ConstPool`]: variables renamed to dense
/// slots (the substitution is a flat `Vec<Option<CId>>`, not a string-keyed
/// map), constants interned, positives/negatives pre-split, and the body
/// lowered once onto the shared physical-plan IR.
struct CompiledRule<'r> {
    head_rel: &'r str,
    head: Vec<ArgSpec>,
    /// `(body index, atom)` of each positive literal, in body order. The
    /// body index is what a semi-naive delta position refers to.
    positives: Vec<(usize, CAtom<'r>)>,
    negatives: Vec<CAtom<'r>>,
    nslots: usize,
    /// The lowered plan the executor walks: one [`PhysOp::Scan`] per
    /// positive atom in body order (each keeps its semi-naive delta
    /// position), then one [`PhysOp::NegGuard`] per negative atom (safety
    /// bounds their variables only once every positive has matched).
    ops: Vec<DlOp>,
    /// Probe-candidate columns of each positive atom: the argument
    /// positions holding a constant or a variable bound by an earlier
    /// atom, in ascending column order. A static property of the atom
    /// order, computed once here; the executor ranks them against live
    /// statistics per round.
    probe_cands: Vec<Vec<usize>>,
}

fn compile_atom<'r>(
    atom: &'r Atom,
    pool: &mut ConstPool,
    slots: &mut HashMap<&'r str, u32>,
) -> CAtom<'r> {
    let args = atom
        .args
        .iter()
        .map(|t| match t {
            DlTerm::Const(c) => ArgSpec::Const(pool.intern(c)),
            DlTerm::Var(v) => {
                let next = u32::try_from(slots.len()).expect("slot overflow");
                ArgSpec::Var(*slots.entry(v.as_str()).or_insert(next))
            }
        })
        .collect();
    CAtom {
        rel: &atom.rel,
        args,
    }
}

fn compile_rule<'r>(rule: &'r Rule, pool: &mut ConstPool) -> CompiledRule<'r> {
    let mut slots: HashMap<&str, u32> = HashMap::new();
    let positives: Vec<(usize, CAtom<'r>)> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.positive)
        .map(|(i, l)| (i, compile_atom(&l.atom, pool, &mut slots)))
        .collect();
    let negatives: Vec<CAtom<'r>> = rule
        .body
        .iter()
        .filter(|l| !l.positive)
        .map(|l| compile_atom(&l.atom, pool, &mut slots))
        .collect();
    let head = compile_atom(&rule.head, pool, &mut slots);
    let nslots = slots.len();
    let (ops, probe_cands) = lower_body(&positives, &negatives, nslots);
    CompiledRule {
        head_rel: head.rel,
        head: head.args,
        positives,
        negatives,
        nslots,
        ops,
        probe_cands,
    }
}

/// Lowers a compiled body onto the shared IR: scans in body order, then
/// negation guards. Alongside the plan, precomputes each scan's probe
/// candidates — the columns whose argument is a constant or a variable
/// bound by an earlier atom, exactly what [`ensure_probe_indexes`] builds
/// indexes for and [`iql_exec::choose_probe`] ranks at execution time.
fn lower_body(
    positives: &[(usize, CAtom<'_>)],
    negatives: &[CAtom<'_>],
    nslots: usize,
) -> (Vec<DlOp>, Vec<Vec<usize>>) {
    let mut bound = vec![false; nslots];
    let mut probe_cands = Vec::with_capacity(positives.len());
    for (_, atom) in positives {
        let cands: Vec<usize> = atom
            .args
            .iter()
            .enumerate()
            .filter(|(_, a)| match a {
                ArgSpec::Const(_) => true,
                ArgSpec::Var(s) => bound[*s as usize],
            })
            .map(|(col, _)| col)
            .collect();
        for a in &atom.args {
            if let ArgSpec::Var(s) = a {
                bound[*s as usize] = true;
            }
        }
        probe_cands.push(cands);
    }
    let ops = (0..positives.len())
        .map(|i| DlOp::Scan {
            src: i,
            pat: i,
            probe: None,
        })
        .chain((0..negatives.len()).map(|j| DlOp::NegGuard { guard: j }))
        .collect();
    (ops, probe_cands)
}

fn arg_value(a: &ArgSpec, subst: &[Option<CId>]) -> Option<CId> {
    match a {
        ArgSpec::Const(k) => Some(*k),
        ArgSpec::Var(s) => subst[*s as usize],
    }
}

/// Extends `subst` in place by matching `atom`'s args against `tuple`,
/// recording newly bound slots on `touched`. On mismatch the caller
/// unwinds to its trail mark — no substitution maps are cloned anywhere
/// in the join.
fn match_tuple(
    atom: &CAtom<'_>,
    tuple: &[CId],
    subst: &mut [Option<CId>],
    touched: &mut Vec<u32>,
) -> bool {
    for (a, &c) in atom.args.iter().zip(tuple.iter()) {
        match a {
            ArgSpec::Const(k) => {
                if *k != c {
                    return false;
                }
            }
            ArgSpec::Var(s) => match subst[*s as usize] {
                Some(bound) => {
                    if bound != c {
                        return false;
                    }
                }
                None => {
                    subst[*s as usize] = Some(c);
                    touched.push(*s);
                }
            },
        }
    }
    true
}

fn unwind(subst: &mut [Option<CId>], touched: &mut Vec<u32>, mark: usize) {
    while touched.len() > mark {
        let s = touched.pop().expect("trail non-empty");
        subst[s as usize] = None;
    }
}

/// Joins the positive body atoms left to right over `read`, with atom
/// `delta_at` (if any) reading from `delta` instead. Negative literals are
/// checked against `neg_view` once all variables are bound (safety
/// guarantees boundness). Calls `emit` per satisfying substitution.
///
/// The governor's asynchronous signals (deadline, cancellation) are polled
/// once per [`Pacer::STRIDE`] candidate tuples, so a join that would run
/// for minutes stops mid-nested-loop; `Err(reason)` abandons the task's
/// output wholesale.
fn join_rule(
    rule: &CompiledRule<'_>,
    read: &IdDatabase,
    delta: Option<(&IdDatabase, usize)>,
    neg_view: &IdDatabase,
    gov: &Governor,
    emit: &mut dyn FnMut(IdTuple),
) -> std::result::Result<(), AbortReason> {
    /// A probe index: the relation's incremental column-0 index, borrowed,
    /// or an ad-hoc one built for a rarer probe column.
    enum Probe<'d> {
        Borrowed(&'d HashMap<CId, Vec<u32>>),
        Built(HashMap<CId, Vec<u32>>),
    }
    impl Probe<'_> {
        fn get(&self, key: CId) -> Option<&[u32]> {
            let map = match self {
                Probe::Borrowed(m) => *m,
                Probe::Built(m) => m,
            };
            map.get(&key).map(Vec::as_slice)
        }
    }
    // Per-scan access plans, resolved ONCE per rule evaluation against the
    // round's live statistics. The probe candidates of each scan are
    // static (precomputed by [`lower_body`]); among them the shared policy
    // picks the column with the most distinct values (narrowest expected
    // postings), known for free from the relations' built incremental
    // indexes. A candidate whose index was never ensured counts as zero
    // distinct and is only used when no candidate has a built index; its
    // index is then hashed here once (u32 keys) instead of per partial
    // substitution.
    struct AtomPlan<'d> {
        rel: &'d IdRelation,
        probe: Option<(usize, Probe<'d>)>,
    }
    let mut plans: Vec<Option<AtomPlan>> = Vec::with_capacity(rule.positives.len());
    for ((body_idx, atom), cands) in rule.positives.iter().zip(&rule.probe_cands) {
        let source = match delta {
            Some((d, at)) if at == *body_idx => d,
            _ => read,
        };
        let plan = source.relation(atom.rel).map(|rel| {
            let probe_col = choose_probe(&DbStats(source), atom.rel, cands.iter().copied());
            let probe = probe_col.map(|col| {
                let idx = match rel.index(col) {
                    Some(m) => Probe::Borrowed(m),
                    None => Probe::Built(rel.build_index(col)),
                };
                (col, idx)
            });
            AtomPlan { rel, probe }
        });
        plans.push(plan);
    }

    // The executor proper: walk the lowered plan left to right, one
    // operator per recursion level, over a single mutable substitution
    // with trail-based unwinding.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        rule: &CompiledRule<'_>,
        plans: &[Option<AtomPlan>],
        k: usize,
        subst: &mut [Option<CId>],
        touched: &mut Vec<u32>,
        neg_view: &IdDatabase,
        gov: &Governor,
        pacer: &mut Pacer,
        emit: &mut dyn FnMut(IdTuple),
    ) -> std::result::Result<(), AbortReason> {
        let Some(op) = rule.ops.get(k) else {
            // Every operator satisfied: emit the head.
            let head: IdTuple = rule
                .head
                .iter()
                .map(|a| arg_value(a, subst).expect("safety: head vars bound"))
                .collect();
            emit(head);
            return Ok(());
        };
        match op {
            DlOp::Scan { src, .. } => {
                let atom = &rule.positives[*src].1;
                let Some(plan) = &plans[*src] else {
                    return Ok(());
                };
                match &plan.probe {
                    Some((col, idx)) => {
                        let Some(key) = arg_value(&atom.args[*col], subst) else {
                            return Ok(());
                        };
                        if let Some(positions) = idx.get(key) {
                            for &pos in positions {
                                if let Some(reason) = pacer.tick(gov) {
                                    return Err(reason);
                                }
                                let mark = touched.len();
                                if match_tuple(atom, plan.rel.tuple_at(pos), subst, touched) {
                                    recurse(
                                        rule,
                                        plans,
                                        k + 1,
                                        subst,
                                        touched,
                                        neg_view,
                                        gov,
                                        pacer,
                                        emit,
                                    )?;
                                }
                                unwind(subst, touched, mark);
                            }
                        }
                    }
                    None => {
                        for tuple in plan.rel.iter() {
                            if let Some(reason) = pacer.tick(gov) {
                                return Err(reason);
                            }
                            let mark = touched.len();
                            if match_tuple(atom, tuple, subst, touched) {
                                recurse(
                                    rule,
                                    plans,
                                    k + 1,
                                    subst,
                                    touched,
                                    neg_view,
                                    gov,
                                    pacer,
                                    emit,
                                )?;
                            }
                            unwind(subst, touched, mark);
                        }
                    }
                }
                Ok(())
            }
            DlOp::NegGuard { guard } => {
                let neg = &rule.negatives[*guard];
                let tuple: Option<IdTuple> = neg.args.iter().map(|a| arg_value(a, subst)).collect();
                let Some(tuple) = tuple else { return Ok(()) };
                if neg_view
                    .relation(neg.rel)
                    .is_some_and(|r| r.contains(&tuple))
                {
                    return Ok(());
                }
                recurse(
                    rule,
                    plans,
                    k + 1,
                    subst,
                    touched,
                    neg_view,
                    gov,
                    pacer,
                    emit,
                )
            }
            // Range-restricted rules over stored relations never lower to
            // the remaining operator kinds.
            DlOp::Enumerate { item } => match *item {},
            DlOp::BindEq { .. } | DlOp::Filter { .. } => {
                unreachable!("datalog lowering emits only scans and negation guards")
            }
        }
    }
    let mut subst = vec![None; rule.nslots];
    let mut touched = Vec::new();
    let mut pacer = Pacer::new(gov);
    recurse(
        rule,
        &plans,
        0,
        &mut subst,
        &mut touched,
        neg_view,
        gov,
        &mut pacer,
        emit,
    )
}

/// Answers a single-atom query against a database: all substitutions of
/// the atom's variables matched by stored tuples, as result tuples in
/// variable-occurrence order. A one-shot scan, so it stays on the tree
/// representation — no interning pass is worth it for a single atom.
pub fn query(db: &Database, atom: &Atom) -> Vec<Tuple> {
    let Some(rel) = db.relation(&atom.rel) else {
        return Vec::new();
    };
    let mut vars: Vec<&str> = Vec::new();
    for t in &atom.args {
        if let DlTerm::Var(v) = t {
            if !vars.contains(&v.as_str()) {
                vars.push(v);
            }
        }
    }
    let mut out = Vec::new();
    for tuple in rel.iter() {
        let mut subst: HashMap<&str, &Constant> = HashMap::new();
        let ok = atom.args.iter().zip(tuple.iter()).all(|(t, c)| match t {
            DlTerm::Const(k) => k == c,
            DlTerm::Var(v) => match subst.get(v.as_str()) {
                Some(bound) => *bound == c,
                None => {
                    subst.insert(v, c);
                    true
                }
            },
        });
        if ok {
            out.push(vars.iter().map(|v| subst[*v].clone()).collect());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// One rule evaluation (optionally differentiated) — the unit of parallel
/// work within a fixpoint round. Tasks only *read* the round's frozen
/// databases and produce pending head tuples.
struct JoinTask<'r, 'd> {
    /// Index of the rule in the stratum's rule list — panic attribution.
    ri: usize,
    rule: &'d CompiledRule<'r>,
    read: &'d IdDatabase,
    delta: Option<(&'d IdDatabase, usize)>,
    neg_view: &'d IdDatabase,
}

/// What one join task resolves to: its derived tuples, or the reason its
/// evaluation was cut short (async governor trip, or a contained panic).
type TaskOut = std::result::Result<Vec<IdTuple>, AbortReason>;

impl JoinTask<'_, '_> {
    fn run(&self, gov: &Governor) -> TaskOut {
        if TEST_PANIC_RULE.load(Ordering::Relaxed) == self.ri {
            panic!("injected panic for rule {} (test hook)", self.ri);
        }
        let mut out = Vec::new();
        join_rule(
            self.rule,
            self.read,
            self.delta,
            self.neg_view,
            gov,
            &mut |t| out.push(t),
        )?;
        Ok(out)
    }

    /// [`JoinTask::run`] behind a panic barrier: a panic is contained on
    /// the worker's own stack and surfaced as
    /// [`AbortReason::WorkerPanic`], so it never poisons the scoped pool
    /// and sibling tasks' results survive.
    fn run_caught(&self, gov: &Governor) -> TaskOut {
        catch_unwind(AssertUnwindSafe(|| self.run(gov)))
            .unwrap_or(Err(AbortReason::WorkerPanic { rule: self.ri }))
    }
}

/// Ensures every statically probe-able column of every rule has a built
/// incremental index in `db` — exactly the probe candidates [`lower_body`]
/// precomputed and [`join_rule`] ranks by distinct count. Cheap after the
/// first round (a map lookup per column); new relations created by later
/// rounds get their indexes built here and maintained by inserts from then
/// on.
fn ensure_probe_indexes(rules: &[CompiledRule<'_>], db: &mut IdDatabase) {
    for rule in rules {
        for ((_, atom), cands) in rule.positives.iter().zip(&rule.probe_cands) {
            for &col in cands {
                db.ensure_index(atom.rel, col);
            }
        }
    }
}

/// Does every positive source of the (optionally differentiated) rule hold
/// at least one tuple? The join is a nested product over its positive
/// atoms, so a single empty or missing source makes the whole task a no-op
/// — the fixpoint loops skip such tasks before spawning them. De Morgan
/// over the shared runtime's any-source quantifier
/// ([`iql_exec::rule_delta_supported`]): "every source non-empty" is "no
/// source empty". (A rule with no positive atoms vacuously qualifies and
/// still fires once.)
fn rule_supported(
    rule: &CompiledRule<'_>,
    read: &IdDatabase,
    delta: Option<(&IdDatabase, usize)>,
) -> bool {
    !rule_delta_supported(
        rule.positives.iter().map(|(i, atom)| (*i, atom)),
        |&(i, atom)| {
            let source = match delta {
                Some((d, at)) if at == i => d,
                _ => read,
            };
            source.relation(atom.rel).is_none_or(IdRelation::is_empty)
        },
    )
}

/// Evaluates `prog` on `edb` under the chosen [`Strategy`] — the unified
/// entry point in front of the four evaluation modes.
///
/// ```
/// use iql_datalog::{eval, parse_program, Database, Strategy};
/// use iql_model::Constant;
/// let prog = parse_program(
///     "Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).",
/// ).unwrap();
/// let mut db = Database::new();
/// db.insert("Edge", vec![Constant::int(1), Constant::int(2)]).unwrap();
/// db.insert("Edge", vec![Constant::int(2), Constant::int(3)]).unwrap();
/// let (out, stats) = eval(&prog, &db, Strategy::SemiNaive).unwrap();
/// assert_eq!(out.relation("Tc").unwrap().len(), 3);
/// assert!(stats.rounds >= 2);
/// ```
pub fn eval(prog: &Program, edb: &Database, strategy: Strategy) -> Result<(Database, EvalStats)> {
    eval_with(prog, edb, strategy, 1)
}

/// Like [`eval`], with a worker-pool size: within each round, rules (and,
/// under semi-naive, rule × delta-position pairs) evaluate concurrently;
/// derived tuples merge in fixed task order, so the output database and
/// statistics are identical for every `threads` value. `0` means one
/// worker per available core.
///
/// Runs under a default governor capping the fixpoint at
/// [`DEFAULT_MAX_ROUNDS`] rounds: a tripped run returns the partial
/// database with [`EvalStats::trip`] set rather than spinning forever. A
/// contained worker panic, by contrast, is a fault and surfaces as
/// [`DlError::WorkerPanic`].
pub fn eval_with(
    prog: &Program,
    edb: &Database,
    strategy: Strategy,
    threads: usize,
) -> Result<(Database, EvalStats)> {
    let gov = Governor::unlimited().with_max_steps(DEFAULT_MAX_ROUNDS);
    let (db, stats) = eval_governed(prog, edb, strategy, threads, &gov)?;
    if let Some(AbortReason::WorkerPanic { rule }) = stats.trip {
        return Err(DlError::WorkerPanic { rule });
    }
    Ok((db, stats))
}

/// Like [`eval_with`], under an explicit [`Governor`] — the same guard
/// surface the IQL evaluator runs behind (round limit via
/// `Governor::max_steps`, tuple budget via `max_facts`, wall-clock
/// deadline, external cancellation token).
///
/// Degrades gracefully: a trip stops the fixpoint and returns `Ok` with
/// the last consistent database and [`EvalStats::trip`]` = Some(reason)`.
/// Round-boundary budgets are deterministic (the same partial database at
/// any thread count); a mid-round deadline/cancellation discards the
/// interrupted round's tuples wholesale, and a contained worker panic
/// keeps the surviving tasks' tuples for its final round before stopping.
pub fn eval_governed(
    prog: &Program,
    edb: &Database,
    strategy: Strategy,
    threads: usize,
    gov: &Governor,
) -> Result<(Database, EvalStats)> {
    let threads = effective_threads(threads);
    // The interning boundary: constants cross into the id world here and
    // back out at the end. Derivation only recombines constants already
    // present in the EDB or the program, so the pool never grows after
    // compilation.
    let mut pool = ConstPool::default();
    let db = IdDatabase::intern_from(edb, &mut pool)?;
    let (out, stats) = match strategy {
        Strategy::Naive => {
            require_positive(prog)?;
            let rules: Vec<CompiledRule> = prog
                .rules
                .iter()
                .map(|r| compile_rule(r, &mut pool))
                .collect();
            full_rounds(&rules, db, threads, gov)?
        }
        Strategy::SemiNaive => {
            require_positive(prog)?;
            let rules: Vec<CompiledRule> = prog
                .rules
                .iter()
                .map(|r| compile_rule(r, &mut pool))
                .collect();
            let mut stats = EvalStats {
                threads,
                ..EvalStats::default()
            };
            let db = seminaive_stratum(&rules, db, &IdDatabase::new(), threads, gov, &mut stats)?;
            (db, stats)
        }
        Strategy::Inflationary => {
            let rules: Vec<CompiledRule> = prog
                .rules
                .iter()
                .map(|r| compile_rule(r, &mut pool))
                .collect();
            full_rounds(&rules, db, threads, gov)?
        }
        Strategy::Stratified => {
            let strata = stratify(prog)?;
            let mut db = db;
            let mut stats = EvalStats {
                threads,
                ..EvalStats::default()
            };
            for stratum in &strata {
                let rules: Vec<CompiledRule> = stratum
                    .rules
                    .iter()
                    .map(|r| compile_rule(r, &mut pool))
                    .collect();
                // Negation inside a stratum only mentions lower-stratum
                // relations, which are final in `db` — freeze exactly the
                // relations this stratum negates as a membership-only view
                // (the view is only ever `contains`-tested, so cloning the
                // indexes, or any un-negated relation, would be pure
                // waste; a negation-free stratum freezes nothing at all).
                let neg_rels: BTreeSet<&str> = rules
                    .iter()
                    .flat_map(|r| r.negatives.iter().map(|n| n.rel))
                    .collect();
                let neg_view = db.freeze_view(neg_rels.iter().copied());
                db = seminaive_stratum(&rules, db, &neg_view, threads, gov, &mut stats)?;
                if stats.trip.is_some() {
                    // A trip invalidates the "lower strata are complete"
                    // premise of every later stratum — stop here.
                    break;
                }
            }
            (db, stats)
        }
    };
    Ok((out.resolve(&pool)?, stats))
}

/// Semi-naive (and the positive half of naive) reject negation up front.
fn require_positive(prog: &Program) -> Result<()> {
    if prog.has_negation() {
        return Err(DlError::NegationUnsupported(
            prog.rules
                .iter()
                .find(|r| r.body.iter().any(|l| !l.positive))
                .map(|r| r.to_string())
                .unwrap_or_default(),
        ));
    }
    Ok(())
}

/// Full-database rounds: every round evaluates all rules against the
/// current database (frozen per round — negation included, which makes
/// this inflationary Datalog¬ when negation is present, Abiteboul–Vianu /
/// Kolaitis–Papadimitriou style; on positive programs it is the naive
/// baseline). Exactly the semantics IQL generalizes (Section 3.2).
fn full_rounds(
    rules: &[CompiledRule<'_>],
    mut db: IdDatabase,
    threads: usize,
    gov: &Governor,
) -> Result<(IdDatabase, EvalStats)> {
    let mut stats = EvalStats {
        threads,
        ..EvalStats::default()
    };
    loop {
        if let Some(reason) = round_boundary_trip(&db, &stats, gov) {
            stats.trip = Some(reason);
            return Ok((db, stats));
        }
        stats.rounds += 1;
        ensure_probe_indexes(rules, &mut db);
        let (heads, outs) = {
            let tasks: Vec<JoinTask> = rules
                .iter()
                .enumerate()
                .filter(|(_, rule)| rule_supported(rule, &db, None))
                .map(|(ri, rule)| JoinTask {
                    ri,
                    rule,
                    read: &db,
                    delta: None,
                    neg_view: &db,
                })
                .collect();
            let heads: Vec<&str> = tasks.iter().map(|t| t.rule.head_rel).collect();
            (heads, run_tasks(&tasks, threads, |t| t.run_caught(gov)))
        };
        // Deadline/cancellation mid-round: discard the whole round's
        // tuples — checked before ANY insertion so the returned snapshot
        // is the pre-round database at every thread count.
        if let Some(reason) = round_abandoned(&outs) {
            stats.trip = Some(reason);
            return Ok((db, stats));
        }
        let mut round_trip = None;
        let mut changed = false;
        for (head_rel, out) in heads.into_iter().zip(outs) {
            for t in route_task_out(out, &mut round_trip) {
                stats.derivations += 1;
                if db.insert(head_rel, t)? {
                    changed = true;
                }
            }
        }
        if round_trip.is_some() {
            // A contained panic: the surviving tasks' tuples were kept
            // (other rules' results are preserved), then the run stops.
            stats.trip = round_trip;
            return Ok((db, stats));
        }
        if !changed {
            return Ok((db, stats));
        }
    }
}

/// The deterministic round-boundary checks shared by both fixpoint drivers:
/// asynchronous signals first, then the round and tuple budgets. Checked
/// *before* a round runs, so a clean fixpoint reached within budget never
/// trips.
fn round_boundary_trip(db: &IdDatabase, stats: &EvalStats, gov: &Governor) -> Option<AbortReason> {
    if let Some(reason) = gov.trip_async() {
        return Some(reason);
    }
    if stats.rounds >= gov.max_steps {
        return Some(AbortReason::StepLimit {
            limit: gov.max_steps,
        });
    }
    if gov.max_facts != usize::MAX && db.size() > gov.max_facts {
        return Some(AbortReason::FactBudget {
            limit: gov.max_facts,
        });
    }
    None
}

/// Did any task hit a deadline or cancellation? Such a round is abandoned
/// wholesale (before any insertion), so the partial database stays the
/// last *completed* round regardless of which worker noticed first.
fn round_abandoned(outs: &[TaskOut]) -> Option<AbortReason> {
    outs.iter().find_map(|out| match out {
        Err(reason @ (AbortReason::Deadline | AbortReason::Cancelled)) => Some(*reason),
        _ => None,
    })
}

/// Merge routing for one task outcome (deadline/cancellation already
/// handled by [`round_abandoned`]): a contained worker panic records the
/// trip in `round_trip` and yields no tuples, but lets the merge continue
/// so sibling tasks' derivations survive.
fn route_task_out(out: TaskOut, round_trip: &mut Option<AbortReason>) -> Vec<IdTuple> {
    match out {
        Ok(tuples) => tuples,
        Err(reason) => {
            if round_trip.is_none() {
                *round_trip = Some(reason);
            }
            Vec::new()
        }
    }
}

/// Semi-naive core, with `neg_view` holding the (frozen, lower-stratum)
/// relations negative literals read. A governor trip stops the fixpoint
/// with `stats.trip` set and the last consistent database returned.
fn seminaive_stratum(
    rules: &[CompiledRule<'_>],
    mut db: IdDatabase,
    neg_view: &IdDatabase,
    threads: usize,
    gov: &Governor,
    stats: &mut EvalStats,
) -> Result<IdDatabase> {
    let idb: BTreeSet<&str> = rules.iter().map(|r| r.head_rel).collect();

    // Round 0: evaluate every rule on the current database.
    let mut delta = IdDatabase::new();
    if let Some(reason) = round_boundary_trip(&db, stats, gov) {
        stats.trip = Some(reason);
        return Ok(db);
    }
    stats.rounds += 1;
    ensure_probe_indexes(rules, &mut db);
    {
        let (heads, outs) = {
            let tasks: Vec<JoinTask> = rules
                .iter()
                .enumerate()
                .filter(|(_, rule)| rule_supported(rule, &db, None))
                .map(|(ri, rule)| JoinTask {
                    ri,
                    rule,
                    read: &db,
                    delta: None,
                    neg_view,
                })
                .collect();
            let heads: Vec<&str> = tasks.iter().map(|t| t.rule.head_rel).collect();
            (heads, run_tasks(&tasks, threads, |t| t.run_caught(gov)))
        };
        if let Some(reason) = round_abandoned(&outs) {
            stats.trip = Some(reason);
            return Ok(db);
        }
        let mut round_trip = None;
        for (head_rel, out) in heads.into_iter().zip(outs) {
            for t in route_task_out(out, &mut round_trip) {
                stats.derivations += 1;
                if db.insert(head_rel, t.clone())? {
                    delta.insert(head_rel, t)?;
                }
            }
        }
        if round_trip.is_some() {
            stats.trip = round_trip;
            return Ok(db);
        }
    }

    // Differential rounds: one task per derived positive atom occurrence.
    while delta.size() > 0 {
        if let Some(reason) = round_boundary_trip(&db, stats, gov) {
            stats.trip = Some(reason);
            return Ok(db);
        }
        stats.rounds += 1;
        ensure_probe_indexes(rules, &mut db);
        ensure_probe_indexes(rules, &mut delta);
        let (heads, outs) = {
            let mut tasks: Vec<JoinTask> = Vec::new();
            for (ri, rule) in rules.iter().enumerate() {
                for (i, atom) in &rule.positives {
                    if !idb.contains(atom.rel) {
                        continue;
                    }
                    if delta.relation(atom.rel).is_none_or(|r| r.is_empty()) {
                        continue;
                    }
                    if !rule_supported(rule, &db, Some((&delta, *i))) {
                        continue;
                    }
                    tasks.push(JoinTask {
                        ri,
                        rule,
                        read: &db,
                        delta: Some((&delta, *i)),
                        neg_view,
                    });
                }
            }
            let heads: Vec<&str> = tasks.iter().map(|t| t.rule.head_rel).collect();
            (heads, run_tasks(&tasks, threads, |t| t.run_caught(gov)))
        };
        if let Some(reason) = round_abandoned(&outs) {
            stats.trip = Some(reason);
            return Ok(db);
        }
        let mut next_delta = IdDatabase::new();
        let mut round_trip = None;
        for (head_rel, out) in heads.into_iter().zip(outs) {
            for t in route_task_out(out, &mut round_trip) {
                stats.derivations += 1;
                if db.insert(head_rel, t.clone())? {
                    next_delta.insert(head_rel, t)?;
                }
            }
        }
        if round_trip.is_some() {
            stats.trip = round_trip;
            return Ok(db);
        }
        delta = next_delta;
    }
    Ok(db)
}

/// Naive evaluation of a positive program.
#[deprecated(since = "0.1.0", note = "use `eval(prog, edb, Strategy::Naive)`")]
pub fn eval_naive(prog: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    eval(prog, edb, Strategy::Naive)
}

/// Semi-naive evaluation of a positive program.
#[deprecated(since = "0.1.0", note = "use `eval(prog, edb, Strategy::SemiNaive)`")]
pub fn eval_seminaive(prog: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    eval(prog, edb, Strategy::SemiNaive)
}

/// Inflationary Datalog¬.
#[deprecated(
    since = "0.1.0",
    note = "use `eval(prog, edb, Strategy::Inflationary)`"
)]
pub fn eval_inflationary(prog: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    eval(prog, edb, Strategy::Inflationary)
}

/// Stratified Datalog¬.
#[deprecated(since = "0.1.0", note = "use `eval(prog, edb, Strategy::Stratified)`")]
pub fn eval_stratified(prog: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    eval(prog, edb, Strategy::Stratified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_program;

    fn chain_db(n: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert(
                "Edge",
                vec![Constant::int(i as i64), Constant::int(i as i64 + 1)],
            )
            .unwrap();
        }
        db
    }

    const TC: &str = "Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).";

    #[test]
    fn naive_and_seminaive_agree_on_tc() {
        let prog = parse_program(TC).unwrap();
        let db = chain_db(12);
        let (naive, s1) = eval(&prog, &db, Strategy::Naive).unwrap();
        let (semi, s2) = eval(&prog, &db, Strategy::SemiNaive).unwrap();
        assert_eq!(naive, semi);
        // Chain of 13 nodes: 12·13/2 = 78 closure pairs.
        assert_eq!(naive.relation("Tc").unwrap().len(), 78);
        // Semi-naive derives strictly less.
        assert!(
            s2.derivations < s1.derivations,
            "{} < {}",
            s2.derivations,
            s1.derivations
        );
    }

    #[test]
    fn cyclic_graph_closure() {
        let prog = parse_program(TC).unwrap();
        let mut db = chain_db(3);
        db.insert("Edge", vec![Constant::int(3), Constant::int(0)])
            .unwrap();
        let (out, _) = eval(&prog, &db, Strategy::SemiNaive).unwrap();
        // 4-cycle: complete closure 4×4 = 16.
        assert_eq!(out.relation("Tc").unwrap().len(), 16);
    }

    #[test]
    fn constants_in_rules() {
        let prog = parse_program(r#"Hit(x) :- Edge(0, x)."#).unwrap();
        let db = chain_db(3);
        let (out, _) = eval(&prog, &db, Strategy::SemiNaive).unwrap();
        assert_eq!(out.relation("Hit").unwrap().len(), 1);
    }

    #[test]
    fn stratified_negation_complement() {
        let prog = parse_program(
            r#"
            Node(x) :- Edge(x, y).
            Node(y) :- Edge(x, y).
            Reach(0, 0).
            Reach(0, y) :- Reach(0, x), Edge(x, y).
            Un(x) :- Node(x), !ReachAny(x).
            ReachAny(y) :- Reach(0, y).
            "#,
        )
        .unwrap();
        let mut db = chain_db(2); // 0→1→2
        db.insert("Edge", vec![Constant::int(7), Constant::int(8)])
            .unwrap();
        let (out, _) = eval(&prog, &db, Strategy::Stratified).unwrap();
        let un = out.relation("Un").unwrap();
        assert_eq!(un.len(), 2); // 7, 8
    }

    #[test]
    fn inflationary_negation_round_semantics() {
        // Win(x) :- Move(x,y), !Win(y). — inflationary semantics on a chain.
        let prog = parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap();
        let mut db = Database::new();
        for i in 0..3 {
            db.insert("Move", vec![Constant::int(i), Constant::int(i + 1)])
                .unwrap();
        }
        let (out, _) = eval(&prog, &db, Strategy::Inflationary).unwrap();
        // Round 1: every mover "wins" (Win empty at round start): 0,1,2.
        // Round 2 adds nothing new. Inflationary ≠ stratified here; this
        // pins the semantics.
        assert_eq!(out.relation("Win").unwrap().len(), 3);
    }

    #[test]
    fn facts_in_program() {
        let prog = parse_program(r#"Start(0). Next(x) :- Start(x)."#).unwrap();
        let (out, _) = eval(&prog, &Database::new(), Strategy::SemiNaive).unwrap();
        assert!(out
            .relation("Next")
            .unwrap()
            .contains(&vec![Constant::int(0)]));
    }

    #[test]
    fn query_matches_patterns() {
        let db = chain_db(3);
        use crate::ast::DlTerm;
        // All successors of 0.
        let atom = Atom::new(
            "Edge",
            vec![DlTerm::Const(Constant::int(0)), DlTerm::Var("x".into())],
        );
        assert_eq!(query(&db, &atom), vec![vec![Constant::int(1)]]);
        // Repeated variable: self loops only (none).
        let atom = Atom::new(
            "Edge",
            vec![DlTerm::Var("x".into()), DlTerm::Var("x".into())],
        );
        assert!(query(&db, &atom).is_empty());
        // Unknown relation: empty.
        let atom = Atom::new("Nope", vec![DlTerm::Var("x".into())]);
        assert!(query(&db, &atom).is_empty());
    }

    #[test]
    fn parallel_rounds_match_sequential() {
        let prog = parse_program(TC).unwrap();
        let mut db = chain_db(6);
        db.insert("Edge", vec![Constant::int(6), Constant::int(0)])
            .unwrap();
        for strategy in [
            Strategy::Naive,
            Strategy::SemiNaive,
            Strategy::Inflationary,
            Strategy::Stratified,
        ] {
            let (seq, s1) = eval_with(&prog, &db, strategy, 1).unwrap();
            for threads in [2, 4, 8] {
                let (par, s2) = eval_with(&prog, &db, strategy, threads).unwrap();
                assert_eq!(seq, par, "{strategy} differs at {threads} threads");
                assert_eq!(s1.rounds, s2.rounds);
                assert_eq!(s1.derivations, s2.derivations);
                assert_eq!(s2.threads, threads);
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate() {
        let prog = parse_program(TC).unwrap();
        let db = chain_db(4);
        let (a, _) = eval_naive(&prog, &db).unwrap();
        let (b, _) = eval(&prog, &db, Strategy::Naive).unwrap();
        assert_eq!(a, b);
        let (c, _) = eval_seminaive(&prog, &db).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn naive_rejects_negation() {
        let prog = parse_program("Out(x) :- Node(x), !Bad(x).").unwrap();
        assert!(matches!(
            eval(&prog, &Database::new(), Strategy::Naive),
            Err(DlError::NegationUnsupported(_))
        ));
    }
}
