//! The engine's interned runtime representation.
//!
//! Evaluation never joins on [`Constant`]s directly: a per-evaluation
//! [`ConstPool`] interns every constant of the EDB and the program once,
//! and from then on tuples are dense arrays of [`CId`]s — `Copy` handles
//! with O(1) equality and trivially cheap hashing. Relations keep their
//! tuples in insertion order (making fixpoint iteration deterministic,
//! unlike a `HashSet` walk) next to a membership set and *incremental*
//! per-column indexes: column 0 from the first insert, further columns on
//! demand when the join planner picks them, all maintained by every later
//! insert — so no probe needs a per-round index rebuild once its column
//! has been ensured. The [`crate::Database`] ↔ [`IdDatabase`]
//! conversion happens exactly once per `eval` call, at the boundary; no
//! interned type leaks into the public API.

use crate::ast::Database;
use crate::{DlError, Result};
use iql_model::Constant;
use std::collections::{BTreeMap, HashMap, HashSet};

/// An interned constant: an index into the evaluation's [`ConstPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct CId(u32);

/// A tuple of interned constants.
pub(crate) type IdTuple = Box<[CId]>;

/// Interner mapping [`Constant`]s to dense [`CId`]s, scoped to one
/// evaluation. Derivation can only recombine existing constants (head
/// arguments are rule constants or variables bound to stored tuples), so
/// the pool is complete once the EDB and the program are interned.
#[derive(Debug, Default)]
pub(crate) struct ConstPool {
    consts: Vec<Constant>,
    map: HashMap<Constant, CId>,
}

impl ConstPool {
    /// Interns `c`, returning its stable id.
    pub(crate) fn intern(&mut self, c: &Constant) -> CId {
        if let Some(&id) = self.map.get(c) {
            return id;
        }
        let id = CId(u32::try_from(self.consts.len()).expect("constant pool overflow"));
        self.consts.push(c.clone());
        self.map.insert(c.clone(), id);
        id
    }

    /// The constant behind an id.
    pub(crate) fn resolve(&self, id: CId) -> &Constant {
        &self.consts[id.0 as usize]
    }
}

/// A relation over interned tuples: append-only insertion-ordered storage,
/// a membership set, and incremental per-column indexes.
#[derive(Debug, Clone, Default)]
pub(crate) struct IdRelation {
    /// Arity; fixed by the first insert.
    arity: Option<usize>,
    /// Tuples in insertion order — the deterministic scan order.
    tuples: Vec<IdTuple>,
    /// Membership.
    seen: HashSet<IdTuple>,
    /// Built column indexes: column → value → ascending positions in
    /// `tuples`. Column 0 (the probe column of the overwhelmingly common
    /// join shape — `Tc(x, y), Edge(y, z)` probes `Edge` on its first
    /// column) is built by the first insert; other columns are built on
    /// demand by [`Self::ensure_index`] when the join planner picks them.
    /// Every built index is then maintained *incrementally* by subsequent
    /// inserts, so semi-naive rounds never rebuild — and a built index's
    /// key count doubles as the column's distinct-value statistic.
    indexes: BTreeMap<usize, HashMap<CId, Vec<u32>>>,
}

impl IdRelation {
    /// Inserts a tuple; returns whether it was new.
    pub(crate) fn insert(&mut self, t: IdTuple) -> Result<bool> {
        match self.arity {
            None => self.arity = Some(t.len()),
            Some(a) if a != t.len() => {
                return Err(DlError::Arity {
                    rel: String::new(),
                    expected: a,
                    found: t.len(),
                })
            }
            _ => {}
        }
        if self.seen.contains(&t) {
            return Ok(false);
        }
        let pos = u32::try_from(self.tuples.len()).expect("relation overflow");
        if !t.is_empty() {
            self.indexes.entry(0).or_default();
        }
        for (&col, idx) in self.indexes.iter_mut() {
            if let Some(&c) = t.get(col) {
                idx.entry(c).or_default().push(pos);
            }
        }
        self.tuples.push(t.clone());
        self.seen.insert(t);
        Ok(true)
    }

    /// Membership test.
    pub(crate) fn contains(&self, t: &[CId]) -> bool {
        self.seen.contains(t)
    }

    /// The tuples, in insertion order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &IdTuple> {
        self.tuples.iter()
    }

    /// The tuple at `pos` (a position from an index).
    pub(crate) fn tuple_at(&self, pos: u32) -> &IdTuple {
        &self.tuples[pos as usize]
    }

    /// Number of tuples.
    pub(crate) fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub(crate) fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The incremental index on `col`, if built.
    pub(crate) fn index(&self, col: usize) -> Option<&HashMap<CId, Vec<u32>>> {
        self.indexes.get(&col)
    }

    /// Number of distinct values in `col`, known iff its index is built —
    /// the cardinality statistic the join planner ranks probe columns by.
    pub(crate) fn distinct(&self, col: usize) -> Option<usize> {
        self.indexes.get(&col).map(HashMap::len)
    }

    /// Builds the index on `col` if absent; later inserts maintain it.
    pub(crate) fn ensure_index(&mut self, col: usize) {
        if !self.indexes.contains_key(&col) {
            let idx = self.build_index(col);
            self.indexes.insert(col, idx);
        }
    }

    /// Builds a positions index on an arbitrary column without storing it —
    /// the fallback for probe columns no [`Self::ensure_index`] pass saw.
    pub(crate) fn build_index(&self, col: usize) -> HashMap<CId, Vec<u32>> {
        let mut idx: HashMap<CId, Vec<u32>> = HashMap::new();
        for (pos, t) in self.tuples.iter().enumerate() {
            if let Some(&c) = t.get(col) {
                idx.entry(c).or_default().push(pos as u32);
            }
        }
        idx
    }

    /// A membership-only copy: tuples and the seen-set without the built
    /// indexes — the cheap freeze for views that are scanned or
    /// `contains`-tested but never probed.
    pub(crate) fn membership_clone(&self) -> IdRelation {
        IdRelation {
            arity: self.arity,
            tuples: self.tuples.clone(),
            seen: self.seen.clone(),
            indexes: BTreeMap::new(),
        }
    }
}

/// A database over interned relations.
#[derive(Debug, Clone, Default)]
pub(crate) struct IdDatabase {
    relations: BTreeMap<String, IdRelation>,
}

impl IdDatabase {
    /// An empty database.
    pub(crate) fn new() -> IdDatabase {
        IdDatabase::default()
    }

    /// The relation named `r`, if present.
    pub(crate) fn relation(&self, r: &str) -> Option<&IdRelation> {
        self.relations.get(r)
    }

    /// Ensures the incremental index on `col` of relation `r` is built.
    /// A no-op for relations that don't exist (yet).
    pub(crate) fn ensure_index(&mut self, r: &str, col: usize) {
        if let Some(rel) = self.relations.get_mut(r) {
            rel.ensure_index(col);
        }
    }

    /// Inserts a tuple into relation `r` (created if needed).
    pub(crate) fn insert(&mut self, r: &str, t: IdTuple) -> Result<bool> {
        self.relations
            .entry(r.to_string())
            .or_default()
            .insert(t)
            .map_err(|e| match e {
                DlError::Arity {
                    expected, found, ..
                } => DlError::Arity {
                    rel: r.to_string(),
                    expected,
                    found,
                },
                other => other,
            })
    }

    /// Total tuple count.
    pub(crate) fn size(&self) -> usize {
        self.relations.values().map(IdRelation::len).sum()
    }

    /// Interns every tuple of `db`.
    pub(crate) fn intern_from(db: &Database, pool: &mut ConstPool) -> Result<IdDatabase> {
        let mut out = IdDatabase::new();
        for name in db.names() {
            // Materialize the relation entry even when empty, so the
            // round-trip preserves the exact relation-name set.
            out.relations.entry(name.to_string()).or_default();
            if let Some(rel) = db.relation(name) {
                for t in rel.iter() {
                    let it: IdTuple = t.iter().map(|c| pool.intern(c)).collect();
                    out.insert(name, it)?;
                }
            }
        }
        Ok(out)
    }

    /// Freezes the named relations into a membership-only view (see
    /// [`IdRelation::membership_clone`]): no indexes are copied, and names
    /// without a stored relation are simply absent, which reads as empty.
    /// An empty name set yields an empty database at zero cost — how the
    /// stratified evaluator skips the freeze entirely for negation-free
    /// strata.
    pub(crate) fn freeze_view<'n>(&self, names: impl IntoIterator<Item = &'n str>) -> IdDatabase {
        let mut out = IdDatabase::new();
        for name in names {
            if let Some(rel) = self.relation(name) {
                out.relations
                    .insert(name.to_string(), rel.membership_clone());
            }
        }
        out
    }

    /// Resolves every tuple back to constants.
    pub(crate) fn resolve(&self, pool: &ConstPool) -> Result<Database> {
        let mut out = Database::new();
        for (name, rel) in &self.relations {
            out.relation_mut(name);
            for t in rel.iter() {
                out.insert(name, t.iter().map(|&id| pool.resolve(id).clone()).collect())?;
            }
        }
        Ok(out)
    }
}

/// The interned store's cardinality statistics behind the shared
/// runtime's [`iql_exec::Storage`] interface — relations addressed by
/// name, probe columns by tuple position, distinct counts read off the
/// incremental indexes for free. This is what routes the engine's
/// probe-column choice through the one shared policy
/// ([`iql_exec::choose_probe`]) instead of a hand-rolled ranking.
#[derive(Clone, Copy)]
pub(crate) struct DbStats<'a>(pub(crate) &'a IdDatabase);

impl<'a> iql_exec::Storage for DbStats<'a> {
    type Rel = &'a str;
    type Col = usize;

    fn extent(&self, rel: &'a str) -> usize {
        self.0.relation(rel).map_or(0, IdRelation::len)
    }

    fn distinct(&self, rel: &'a str, col: usize) -> Option<usize> {
        self.0.relation(rel).and_then(|r| r.distinct(col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(pool: &mut ConstPool, n: i64) -> CId {
        pool.intern(&Constant::int(n))
    }

    #[test]
    fn pool_interns_and_resolves() {
        let mut pool = ConstPool::default();
        let a = cid(&mut pool, 1);
        let b = cid(&mut pool, 2);
        assert_ne!(a, b);
        assert_eq!(cid(&mut pool, 1), a, "re-interning is stable");
        assert_eq!(pool.resolve(a), &Constant::int(1));
        assert_eq!(pool.resolve(b), &Constant::int(2));
    }

    #[test]
    fn relation_dedups_and_indexes_first_column() {
        let mut pool = ConstPool::default();
        let (a, b, c) = (cid(&mut pool, 1), cid(&mut pool, 2), cid(&mut pool, 3));
        let mut rel = IdRelation::default();
        assert!(rel.insert(vec![a, b].into()).unwrap());
        assert!(!rel.insert(vec![a, b].into()).unwrap(), "duplicate");
        assert!(rel.insert(vec![a, c].into()).unwrap());
        assert!(rel.insert(vec![b, c].into()).unwrap());
        assert_eq!(rel.len(), 3);
        assert!(rel.contains(&[a, c]));
        let idx0 = rel.index(0).expect("column 0 is always built");
        assert_eq!(idx0[&a].len(), 2);
        assert_eq!(idx0[&b], vec![2]);
        // Arbitrary-column index agrees with a scan.
        let idx1 = rel.build_index(1);
        assert_eq!(idx1[&c].len(), 2);
        // Ensured indexes are maintained by later inserts and expose the
        // column's distinct count.
        assert!(rel.index(1).is_none());
        rel.ensure_index(1);
        assert_eq!(rel.distinct(1), Some(2)); // {b, c}
        assert!(rel.insert(vec![c, a].into()).unwrap());
        assert_eq!(rel.index(1).unwrap()[&a], vec![3]);
        assert_eq!(rel.distinct(1), Some(3));
        assert_eq!(rel.index(0).unwrap()[&c], vec![3]);
        // Insertion order is preserved.
        let scan: Vec<&IdTuple> = rel.iter().collect();
        assert_eq!(scan[0].as_ref(), &[a, b]);
        assert_eq!(scan[2].as_ref(), &[b, c]);
    }

    #[test]
    fn relation_arity_enforced() {
        let mut pool = ConstPool::default();
        let a = cid(&mut pool, 1);
        let mut rel = IdRelation::default();
        rel.insert(vec![a, a].into()).unwrap();
        assert!(matches!(
            rel.insert(vec![a].into()),
            Err(DlError::Arity { .. })
        ));
    }

    #[test]
    fn freeze_view_is_membership_only() {
        let mut pool = ConstPool::default();
        let (a, b) = (cid(&mut pool, 1), cid(&mut pool, 2));
        let mut db = IdDatabase::new();
        db.insert("Neg", vec![a, b].into()).unwrap();
        db.insert("Other", vec![b].into()).unwrap();
        db.ensure_index("Neg", 1);
        let view = db.freeze_view(["Neg", "Missing"]);
        let neg = view.relation("Neg").expect("frozen relation present");
        assert!(neg.contains(&[a, b]));
        assert_eq!(neg.len(), 1);
        // Indexes are not carried over: the view is contains-only.
        assert!(neg.index(0).is_none());
        assert!(neg.index(1).is_none());
        // Un-negated and missing relations are simply absent.
        assert!(view.relation("Other").is_none());
        assert!(view.relation("Missing").is_none());
        // The empty name set freezes nothing.
        assert_eq!(db.freeze_view([]).size(), 0);
    }

    #[test]
    fn stats_implement_the_shared_storage_interface() {
        use iql_exec::Storage;
        let mut pool = ConstPool::default();
        let (a, b, c) = (cid(&mut pool, 1), cid(&mut pool, 2), cid(&mut pool, 3));
        let mut db = IdDatabase::new();
        db.insert("Edge", vec![a, b].into()).unwrap();
        db.insert("Edge", vec![a, c].into()).unwrap();
        let stats = DbStats(&db);
        assert_eq!(stats.extent("Edge"), 2);
        assert_eq!(stats.extent("Nope"), 0);
        // Column 0 is indexed on first insert; column 1 only on demand.
        assert_eq!(stats.distinct("Edge", 0), Some(1));
        assert_eq!(stats.distinct("Edge", 1), None);
        db.ensure_index("Edge", 1);
        assert_eq!(DbStats(&db).distinct("Edge", 1), Some(2));
        // The shared probe policy picks the more selective column.
        assert_eq!(
            iql_exec::choose_probe(&DbStats(&db), "Edge", [0, 1]),
            Some(1)
        );
    }

    #[test]
    fn database_roundtrip_preserves_contents_and_names() {
        let mut db = Database::new();
        db.insert("Edge", vec![Constant::int(1), Constant::int(2)])
            .unwrap();
        db.insert("Edge", vec![Constant::int(2), Constant::str("x")])
            .unwrap();
        db.relation_mut("Empty"); // empty relation survives the round-trip
        let mut pool = ConstPool::default();
        let idb = IdDatabase::intern_from(&db, &mut pool).unwrap();
        assert_eq!(idb.size(), 2);
        let back = idb.resolve(&pool).unwrap();
        assert_eq!(back, db);
    }
}
