//! # iql-datalog — the relational rule-language baseline
//!
//! The paper grounds IQL in "popular rule-based formalisms" (Sections 3.4
//! and 5): on relational schemas, IQL restricted to flat tuples *is*
//! Datalog, and Datalog with inflationary or stratified negation embeds
//! verbatim. This crate is a standalone relational Datalog engine used as
//! the baseline for experiment E11 (IQL-as-Datalog vs. a dedicated engine):
//!
//! * [`ast`] — flat rules over constant tuples, with a small text parser;
//! * [`engine`] — one [`eval`]`(prog, edb, `[`Strategy`]`)` entry point
//!   over **naive** and **semi-naive** bottom-up evaluation with
//!   hash-indexed joins, plus **inflationary** Datalog¬ (the fixpoint
//!   semantics IQL generalizes, Kolaitis–Papadimitriou style) and
//!   **stratified** Datalog¬; [`eval_with`] adds a worker-pool knob with
//!   order-deterministic merging, so parallel output is identical to
//!   sequential;
//! * [`stratify`](fn@stratify) — SCC-based stratification;
//! * [`convert`] — translation of a Datalog program into an equivalent IQL
//!   [`iql_core::Program`], realizing the paper's claim that "each Datalog
//!   program can be viewed as a valid IQL program … and its Datalog and IQL
//!   semantics are identical".

pub mod ast;
pub mod convert;
pub mod engine;
mod interned;
pub mod stratify;

pub use ast::{parse_program, Atom, Database, DlTerm, Lit, Program, Relation, Rule};
pub use engine::{eval, eval_governed, eval_with, EvalStats, Strategy, DEFAULT_MAX_ROUNDS};
#[allow(deprecated)]
pub use engine::{eval_inflationary, eval_naive, eval_seminaive, eval_stratified};
pub use iql_core::govern::{AbortReason, Governor};
pub use stratify::stratify;

/// Errors from the Datalog layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DlError {
    /// Parse error with position.
    Parse(String),
    /// A relation was used with inconsistent arities.
    Arity {
        /// The relation.
        rel: String,
        /// First arity seen.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A head variable does not occur positively in the body
    /// (range-restriction, required for safety).
    Unsafe {
        /// The offending variable.
        var: String,
        /// The rule, rendered.
        rule: String,
    },
    /// Negation through a recursive cycle — not stratifiable.
    NotStratifiable(String),
    /// Semi-naive evaluation requires a positive program (use
    /// [`Strategy::Stratified`] or [`Strategy::Inflationary`] for
    /// negation).
    NegationUnsupported(String),
    /// A worker thread panicked while evaluating a rule; the panic was
    /// contained by the engine and did not poison the worker pool.
    WorkerPanic {
        /// Index of the rule whose join task panicked.
        rule: usize,
    },
}

impl std::fmt::Display for DlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DlError::Parse(m) => write!(f, "datalog parse error: {m}"),
            DlError::Arity {
                rel,
                expected,
                found,
            } => {
                let name = if rel.is_empty() { "<relation>" } else { rel };
                write!(
                    f,
                    "relation {name} used with arity {found}, expected {expected}"
                )
            }
            DlError::Unsafe { var, rule } => {
                write!(
                    f,
                    "unsafe rule `{rule}`: head variable {var} not bound positively"
                )
            }
            DlError::NotStratifiable(r) => {
                write!(
                    f,
                    "negation through recursion on {r}; program not stratifiable"
                )
            }
            DlError::NegationUnsupported(r) => {
                write!(
                    f,
                    "semi-naive engine is positive-only; rule `{r}` uses negation"
                )
            }
            DlError::WorkerPanic { rule } => {
                write!(f, "worker evaluating rule {rule} panicked (contained)")
            }
        }
    }
}

impl std::error::Error for DlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DlError>;
