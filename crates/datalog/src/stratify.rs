//! Stratification of Datalog¬ programs.
//!
//! A program is stratifiable iff no relation depends negatively on itself
//! through recursion. We compute strata with the classic iterative
//! level-assignment algorithm: `level(h) ≥ level(b)` for positive body
//! atoms, `level(h) ≥ level(b) + 1` for negative ones; divergence beyond
//! the relation count proves a negative cycle.

use crate::ast::Program;
use crate::{DlError, Result};
use std::collections::BTreeMap;

/// Splits `prog` into strata, each a sub-program whose rules may be
/// evaluated together (negation only references lower strata).
pub fn stratify(prog: &Program) -> Result<Vec<Program>> {
    let mut level: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &prog.rules {
        level.entry(r.head.rel.as_str()).or_insert(0);
        for l in &r.body {
            level.entry(l.atom.rel.as_str()).or_insert(0);
        }
    }
    let nrels = level.len();
    loop {
        let mut changed = false;
        for r in &prog.rules {
            let head = r.head.rel.as_str();
            for l in &r.body {
                let need = level[l.atom.rel.as_str()] + usize::from(!l.positive);
                if level[head] < need {
                    if need > nrels {
                        return Err(DlError::NotStratifiable(head.to_string()));
                    }
                    level.insert(head, need);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let max = level.values().copied().max().unwrap_or(0);
    let mut strata: Vec<Program> = vec![Program::default(); max + 1];
    for r in &prog.rules {
        let lvl = level[r.head.rel.as_str()];
        strata[lvl].rules.push(r.clone());
    }
    Ok(strata.into_iter().filter(|s| !s.rules.is_empty()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_program;

    #[test]
    fn positive_program_is_one_stratum() {
        let p = parse_program("Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).").unwrap();
        assert_eq!(stratify(&p).unwrap().len(), 1);
    }

    #[test]
    fn negation_splits_strata() {
        let p = parse_program(
            r#"
            Reach(y) :- Start(y).
            Reach(y) :- Reach(x), Edge(x, y).
            Un(x) :- Node(x), !Reach(x).
            "#,
        )
        .unwrap();
        let strata = stratify(&p).unwrap();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[1].rules.len(), 1);
        assert_eq!(strata[1].rules[0].head.rel, "Un");
    }

    #[test]
    fn negative_cycle_rejected() {
        let p = parse_program(
            r#"
            A(x) :- Node(x), !B(x).
            B(x) :- Node(x), !A(x).
            "#,
        )
        .unwrap();
        assert!(matches!(stratify(&p), Err(DlError::NotStratifiable(_))));
    }

    #[test]
    fn self_negation_rejected() {
        let p = parse_program("W(x) :- M(x, y), !W(y).").unwrap();
        assert!(matches!(stratify(&p), Err(DlError::NotStratifiable(_))));
    }
}
