//! The semi-naive delta-intersection early exit.
//!
//! Under semi-naive evaluation a rule can only produce *new* derivations
//! in a step if at least one of its body sources gained tuples in the
//! previous step — otherwise every valuation it could find was already
//! found. Both engines used to carry their own copy of this check
//! (`delta_has_source` over IQL plan sources, `rule_supported` over
//! Datalog body atoms); the quantifier now lives here and each engine
//! supplies only the per-source "did it gain anything" predicate.

/// Does the step's delta support running this rule at all? `sources`
/// enumerates the rule's body sources (plan scan sources, positive body
/// atoms, …); `gained` answers whether that source gained tuples in the
/// previous step. Empty-bodied rules have no sources and are *not*
/// delta-supported — they fire from the seed step only, which both
/// engines handle before this check.
pub fn rule_delta_supported<I, S>(sources: I, gained: impl Fn(&S) -> bool) -> bool
where
    I: IntoIterator<Item = S>,
{
    sources.into_iter().any(|s| gained(&s))
}

#[cfg(test)]
mod tests {
    use super::rule_delta_supported;

    #[test]
    fn supported_iff_some_source_gained() {
        let sources = ["a", "b", "c"];
        assert!(rule_delta_supported(sources, |s| *s == "b"));
        assert!(!rule_delta_supported(sources, |_| false));
        assert!(!rule_delta_supported::<_, &str>([], |_| true));
    }
}
