//! The deterministic worker-pool driver.
//!
//! Both engines evaluate a step (IQL) or a round (Datalog) by building a
//! *fixed list of tasks* — one per rule, or one per `(rule, outer-scan
//! chunk)` — and then need the results back **in task order**, so that the
//! merge phase is bit-identical no matter how many threads ran the tasks
//! or how they interleaved. This module is that driver, extracted from the
//! two formerly hand-rolled copies in `iql-core::eval` and
//! `iql-datalog::engine`:
//!
//! * tasks are claimed off a shared atomic cursor (work stealing without
//!   queues — the task list is fixed up front);
//! * each result lands in a slot indexed by its task, so collection order
//!   is task order, not completion order;
//! * with one thread (or one task) the pool is skipped entirely and the
//!   tasks run inline — the sequential path *is* the parallel path with
//!   the interleaving removed, which is what makes determinism testable.
//!
//! Panic containment is the caller's business: wrap the task body in
//! `catch_unwind` and make the output type carry the failure (both engines
//! do), so one poisoned rule doesn't tear down its siblings.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Resolves a requested thread count: `0` means one worker per available
/// core, anything else is taken literally.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Splits an outer scan of `len` items into at most `workers` contiguous
/// `(skip, take)` ranges of at least `min_chunk` items each (except that a
/// scan shorter than `2 * min_chunk` stays whole — splitting it buys no
/// parallelism worth the per-task overhead). Ranges cover `0..len` exactly
/// and in order, so per-chunk results concatenate back into scan order.
pub fn chunk_ranges(len: usize, workers: usize, min_chunk: usize) -> Vec<(usize, usize)> {
    if workers <= 1 || min_chunk == 0 || len < 2 * min_chunk {
        return vec![(0, len)];
    }
    let chunks = workers.min(len / min_chunk).max(1);
    let per = len.div_ceil(chunks);
    let mut out = Vec::new();
    let mut skip = 0;
    while skip < len {
        let take = per.min(len - skip);
        out.push((skip, take));
        skip += take;
    }
    out
}

/// Runs every task and returns the outputs **in task order**.
///
/// With `threads <= 1` or fewer than two tasks the tasks run inline on the
/// caller's thread. Otherwise `min(threads, tasks.len())` scoped workers
/// claim tasks off an atomic cursor and deposit each output in its task's
/// slot; the function returns once all workers have exited, i.e. all
/// slots are filled.
pub fn run_tasks<T, O, F>(tasks: &[T], threads: usize, run: F) -> Vec<O>
where
    T: Sync,
    O: Send + Sync,
    F: Fn(&T) -> O + Sync,
{
    if threads <= 1 || tasks.len() <= 1 {
        return tasks.iter().map(run).collect();
    }
    let slots: Vec<OnceLock<O>> = tasks.iter().map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(tasks.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                let out = run(&tasks[i]);
                let _ = slots[i].set(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_come_back_in_task_order() {
        let tasks: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 4, 8] {
            let out = run_tasks(&tasks, threads, |&i| i * 3);
            assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_task_lists() {
        let none: Vec<usize> = vec![];
        assert!(run_tasks(&none, 4, |&i| i).is_empty());
        assert_eq!(run_tasks(&[7usize], 4, |&i| i + 1), vec![8]);
    }

    #[test]
    fn chunk_ranges_cover_exactly_in_order() {
        for (len, workers, min) in [
            (0, 4, 32),
            (10, 4, 32),
            (64, 4, 32),
            (1000, 3, 32),
            (65, 8, 32),
        ] {
            let ranges = chunk_ranges(len, workers, min);
            let mut pos = 0;
            for (skip, take) in &ranges {
                assert_eq!(*skip, pos, "ranges are contiguous");
                pos += take;
            }
            assert_eq!(pos, len, "ranges cover the scan");
            assert!(ranges.len() <= workers.max(1));
        }
    }

    #[test]
    fn short_scans_stay_whole() {
        assert_eq!(chunk_ranges(63, 8, 32), vec![(0, 63)]);
        assert_eq!(chunk_ranges(64, 8, 32), vec![(0, 32), (32, 32)]);
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
