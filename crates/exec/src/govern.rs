//! Resource governance: fuel budgets, deadlines, cancellation, and
//! graceful degradation.
//!
//! IQL is computationally complete (Theorem 4.2.4), so non-termination and
//! unbounded oid invention are the language working as specified — the
//! paper's own `R3(y,z) ← R3(x,y)` example (Section 3.4) invents a fresh
//! oid per derivation forever. A production evaluator therefore needs a
//! *governor*: a bundle of resource limits checked cooperatively during
//! evaluation, cheap enough to leave on and structured so a blown budget
//! degrades gracefully instead of discarding all work.
//!
//! The design splits limits into two classes:
//!
//! * **Deterministic budgets** (steps, facts, invented oids, interned
//!   store nodes/bytes) are checked at *step boundaries*. Inflationary
//!   semantics makes every completed step a valid partial answer, so a
//!   budget trip returns the last consistent snapshot — and because the
//!   trip point depends only on the program and input, the partial result
//!   is bit-identical across thread counts.
//! * **Asynchronous signals** (wall-clock deadline, external cancellation)
//!   are additionally polled *inside* the per-step valuation search by
//!   every worker (strided, via [`Pacer`], so the hot path stays cheap).
//!   A mid-step trip discards the interrupted step's pending derivations
//!   wholesale: the partial result is again the last *completed* step.
//!
//! Worker panics are a third failure mode: each search task runs under
//! `catch_unwind`, so a panicking rule surfaces as
//! [`AbortReason::WorkerPanic`] with its rule index while the other rules'
//! derivations — and the scoped worker pool — survive.
//!
//! This module lives in the shared runtime because both engines run under
//! the same governor type; the engines layer their own outcome types
//! (`iql_core::govern::RunOutcome`, Datalog's `EvalStats::trip`) and error
//! conversions on top.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a governed evaluation stopped early.
///
/// `Copy + Eq` so it can ride inside statistics structs and be matched in
/// tests; [`AbortReason::exit_code`] gives each reason a distinct process
/// exit code for scripting around the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The per-stage inflationary step (or Datalog round) limit.
    StepLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The total ground-fact budget.
    FactBudget {
        /// The configured limit.
        limit: usize,
    },
    /// The invented-oid budget.
    OidBudget {
        /// The configured limit.
        limit: usize,
    },
    /// The interned-value-store node high-water mark.
    StoreBudget {
        /// The configured limit (nodes).
        limit: usize,
    },
    /// The interned-value-store byte high-water mark.
    MemoryBudget {
        /// The configured limit (approximate heap bytes).
        limit: usize,
    },
    /// The wall-clock deadline passed.
    Deadline,
    /// The external cancellation token was flipped (e.g. Ctrl-C).
    Cancelled,
    /// A worker panicked while evaluating a rule.
    WorkerPanic {
        /// Index of the rule whose task panicked.
        rule: usize,
    },
}

impl AbortReason {
    /// A distinct process exit code per reason, for scripting around the
    /// CLI: `124` for deadline (the `timeout(1)` convention), `130` for
    /// cancellation (`128 + SIGINT`), `101` for a contained panic (the
    /// code an *uncontained* Rust panic would have produced), and
    /// `102..=106` for the deterministic budgets.
    pub fn exit_code(&self) -> u8 {
        match self {
            AbortReason::WorkerPanic { .. } => 101,
            AbortReason::StepLimit { .. } => 102,
            AbortReason::FactBudget { .. } => 103,
            AbortReason::OidBudget { .. } => 104,
            AbortReason::StoreBudget { .. } => 105,
            AbortReason::MemoryBudget { .. } => 106,
            AbortReason::Deadline => 124,
            AbortReason::Cancelled => 130,
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::StepLimit { limit } => write!(f, "step limit of {limit} exceeded"),
            AbortReason::FactBudget { limit } => write!(f, "fact budget of {limit} exceeded"),
            AbortReason::OidBudget { limit } => {
                write!(f, "invented-oid budget of {limit} exceeded")
            }
            AbortReason::StoreBudget { limit } => {
                write!(f, "value-store budget of {limit} nodes exceeded")
            }
            AbortReason::MemoryBudget { limit } => {
                write!(f, "memory budget of {limit} bytes exceeded")
            }
            AbortReason::Deadline => write!(f, "wall-clock deadline exceeded"),
            AbortReason::Cancelled => write!(f, "evaluation cancelled"),
            AbortReason::WorkerPanic { rule } => {
                write!(f, "worker evaluating rule {rule} panicked")
            }
        }
    }
}

/// The shared resource governor: every limit an evaluation runs under,
/// resolved to absolute terms (the deadline is an [`Instant`], not a
/// duration) at construction — i.e. at evaluation start.
///
/// Both engines consult the same governor type: the IQL evaluator builds
/// one from its `EvalConfig`, the Datalog engine takes one directly
/// (`iql_datalog::eval_governed`).
#[derive(Debug, Clone)]
pub struct Governor {
    /// Inflationary steps per stage / Datalog rounds per fixpoint.
    pub max_steps: usize,
    /// Total ground facts (or Datalog tuples) in the working instance.
    pub max_facts: usize,
    /// Invented oids over the whole run (IQL only).
    pub max_oids: Option<usize>,
    /// Interned nodes in the working instance's `ValueStore`.
    pub max_store_nodes: Option<usize>,
    /// Approximate heap bytes retained by the `ValueStore`.
    pub max_store_bytes: Option<usize>,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    started: Instant,
    /// Pre-computed: does any *asynchronous* signal (deadline/cancel) need
    /// polling inside the search? One bool load keeps the ungoverned hot
    /// path at effectively zero cost.
    reactive: bool,
}

impl Governor {
    /// A governor with no deadline, no cancellation, and effectively
    /// unlimited budgets.
    pub fn unlimited() -> Governor {
        Governor {
            max_steps: usize::MAX,
            max_facts: usize::MAX,
            max_oids: None,
            max_store_nodes: None,
            max_store_bytes: None,
            deadline: None,
            cancel: None,
            started: Instant::now(),
            reactive: false,
        }
    }

    /// Sets a wall-clock deadline `d` from now (builder style).
    pub fn with_deadline(mut self, d: Duration) -> Governor {
        self.deadline = Some(self.started + d);
        self.reactive = true;
        self
    }

    /// Attaches an external cancellation token (builder style). Flipping
    /// the token to `true` stops evaluation at the next poll point.
    pub fn with_cancel_token(mut self, token: Arc<AtomicBool>) -> Governor {
        self.cancel = Some(token);
        self.reactive = true;
        self
    }

    /// Caps the step/round count (builder style).
    pub fn with_max_steps(mut self, n: usize) -> Governor {
        self.max_steps = n;
        self
    }

    /// Caps the total fact count (builder style).
    pub fn with_max_facts(mut self, n: usize) -> Governor {
        self.max_facts = n;
        self
    }

    /// Does this governor carry any limit at all — a budget, a deadline,
    /// or a cancellation token? An unlimited governor lets drivers skip
    /// work that exists only to serve a potential trip (e.g. keeping a
    /// partial-result snapshot).
    pub fn limited(&self) -> bool {
        self.reactive
            || self.max_steps != usize::MAX
            || self.max_facts != usize::MAX
            || self.max_oids.is_some()
            || self.max_store_nodes.is_some()
            || self.max_store_bytes.is_some()
    }

    /// Does this governor carry an asynchronous signal (deadline or
    /// cancellation) that workers must poll mid-step?
    #[inline]
    pub fn reactive(&self) -> bool {
        self.reactive
    }

    /// Time since the governor (hence the evaluation) started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Polls the asynchronous signals only: cancellation first (an
    /// explicit user action outranks a timer), then the deadline. The
    /// deterministic budgets are *not* checked here — they are enforced at
    /// step boundaries by the evaluation drivers.
    #[inline]
    pub fn trip_async(&self) -> Option<AbortReason> {
        if !self.reactive {
            return None;
        }
        if let Some(token) = &self.cancel {
            if token.load(Ordering::Relaxed) {
                return Some(AbortReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(AbortReason::Deadline);
            }
        }
        None
    }
}

impl Default for Governor {
    fn default() -> Governor {
        Governor::unlimited()
    }
}

/// A strided poll counter for [`Governor::trip_async`]: calling
/// [`Pacer::tick`] on every unit of inner-loop work polls the clock (a
/// syscall on some platforms) only once per [`Pacer::STRIDE`] ticks, which
/// keeps governed search within noise of ungoverned search.
///
/// The pacer snapshots [`Governor::reactive`] at construction, so the
/// ungoverned hot path is a branch on a pacer-local bool — the optimizer
/// keeps it in a register instead of re-loading through the governor
/// reference on every inner-loop iteration. Reactivity is fixed for a
/// governor's lifetime (set by `with_deadline`/`with_cancel_token` before
/// evaluation starts), so the snapshot cannot go stale.
#[derive(Debug)]
pub struct Pacer {
    countdown: u32,
    reactive: bool,
}

impl Pacer {
    /// Ticks between actual polls.
    pub const STRIDE: u32 = 1024;

    /// A fresh pacer for `gov` (polls on its `STRIDE`-th tick).
    pub fn new(gov: &Governor) -> Pacer {
        Pacer {
            countdown: Self::STRIDE,
            reactive: gov.reactive(),
        }
    }

    /// Counts one unit of work; on every `STRIDE`-th call, polls the
    /// governor's asynchronous signals. For non-reactive governors this is
    /// a single branch on a local bool.
    #[inline]
    pub fn tick(&mut self, gov: &Governor) -> Option<AbortReason> {
        if !self.reactive {
            return None;
        }
        self.countdown -= 1;
        if self.countdown != 0 {
            return None;
        }
        self.countdown = Self::STRIDE;
        gov.trip_async()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_is_not_reactive_and_never_trips() {
        let gov = Governor::unlimited();
        assert!(!gov.reactive());
        assert!(!gov.limited());
        assert_eq!(gov.trip_async(), None);
        let mut pacer = Pacer::new(&gov);
        for _ in 0..10_000 {
            assert_eq!(pacer.tick(&gov), None);
        }
    }

    #[test]
    fn cancel_token_trips_before_deadline() {
        let token = Arc::new(AtomicBool::new(false));
        let gov = Governor::unlimited()
            .with_deadline(Duration::ZERO)
            .with_cancel_token(Arc::clone(&token));
        token.store(true, Ordering::Relaxed);
        // Both signals are hot; cancellation outranks the timer.
        assert_eq!(gov.trip_async(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn deadline_trips_once_passed() {
        let gov = Governor::unlimited().with_deadline(Duration::ZERO);
        assert!(gov.reactive());
        assert!(gov.limited());
        assert_eq!(gov.trip_async(), Some(AbortReason::Deadline));
    }

    #[test]
    fn budgets_make_a_governor_limited_but_not_reactive() {
        let gov = Governor::unlimited().with_max_facts(10);
        assert!(gov.limited());
        assert!(!gov.reactive());
    }

    #[test]
    fn pacer_polls_on_stride_boundaries() {
        let gov = Governor::unlimited().with_deadline(Duration::ZERO);
        let mut pacer = Pacer::new(&gov);
        let mut polls = 0;
        for _ in 0..(Pacer::STRIDE * 3) {
            if pacer.tick(&gov).is_some() {
                polls += 1;
            }
        }
        assert_eq!(polls, 3, "one poll per stride");
    }

    #[test]
    fn exit_codes_are_distinct() {
        let reasons = [
            AbortReason::StepLimit { limit: 1 },
            AbortReason::FactBudget { limit: 1 },
            AbortReason::OidBudget { limit: 1 },
            AbortReason::StoreBudget { limit: 1 },
            AbortReason::MemoryBudget { limit: 1 },
            AbortReason::Deadline,
            AbortReason::Cancelled,
            AbortReason::WorkerPanic { rule: 0 },
        ];
        let codes: std::collections::BTreeSet<u8> =
            reasons.iter().map(AbortReason::exit_code).collect();
        assert_eq!(codes.len(), reasons.len());
    }

    #[test]
    fn reasons_render() {
        for r in [
            AbortReason::StepLimit { limit: 7 },
            AbortReason::Deadline,
            AbortReason::WorkerPanic { rule: 3 },
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
