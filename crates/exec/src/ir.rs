//! The physical-plan IR shared by both engines.
//!
//! A rule body lowers to a short, ordered program of *physical operators*:
//! scans (optionally index-probed), bind-equalities, active-domain
//! enumerations, filters, and negation guards. The operator vocabulary and
//! its invariants are engine-independent — what differs is only the
//! operand types: IQL scans denote set-valued *terms* and probe
//! `(attribute, key-term)` pairs against persistent secondary indexes,
//! while Datalog scans denote body-atom indices and probe tuple columns
//! against per-relation hash indexes. [`PlanLang`] captures that operand
//! vocabulary, so [`PhysOp`] is written once and each engine's planner
//! lowers into `PhysOp<ItsLang>`; each engine keeps its own executor (how
//! a pattern matches is the language, not the runtime).
//!
//! Plan invariants both engines maintain (and both executors rely on):
//!
//! * every positive membership stays a [`PhysOp::Scan`] — never a filter —
//!   so each supporting source keeps a semi-naive delta position;
//! * operators appear in binding order: an operand is evaluable when every
//!   variable it mentions is bound by the operators before it;
//! * reordering never changes the valuation set (conjunction is
//!   order-independent), so a plan is a pure optimization and outputs stay
//!   bit-identical across plan choices.
//!
//! Cardinality questions go through the abstract [`Storage`] interface;
//! [`choose_probe`] is the one probe-selection policy both planners use.

/// The operand vocabulary of one engine's plans: what a scan source, a
/// match pattern, a probe column, a guard, and an enumeration item *are*
/// in that engine.
pub trait PlanLang {
    /// A scan/bind source: the thing evaluated to produce candidates
    /// (IQL: a set-denoting term; Datalog: a body-atom index).
    type Src;
    /// A match pattern: binds variables against each candidate.
    type Pat;
    /// A probe descriptor: how an index lookup replaces a full scan
    /// (IQL: the statically chosen `(attribute, key-term)`; Datalog: the
    /// candidate columns, resolved against live statistics each round).
    type Col;
    /// A guard operand: a literal/atom evaluated under full bindings.
    type Guard;
    /// An active-domain enumeration item (uninhabited for engines whose
    /// rules are range-restricted by construction).
    type Enum;
}

/// One physical operator. A plan is a `Vec<PhysOp<L>>` executed
/// left-to-right over a growing set of variable bindings.
pub enum PhysOp<L: PlanLang> {
    /// Iterate the candidates of `src`, matching `pat` against each
    /// (binds variables). `probe` narrows the iteration through an index
    /// lookup instead of a full scan when the planner found a usable
    /// bound column.
    Scan {
        /// What to iterate.
        src: L::Src,
        /// What each candidate must match.
        pat: L::Pat,
        /// Index probe replacing the full scan, if one was chosen.
        probe: Option<L::Col>,
    },
    /// Evaluate `src` (fully bound) and match `pat` against the single
    /// resulting value (binds variables) — an equality used as a binder.
    BindEq {
        /// The evaluable side.
        src: L::Src,
        /// The binding side.
        pat: L::Pat,
    },
    /// Enumerate a variable's type over the active domain (the paper's
    /// valuation semantics; a budgeted last resort).
    Enumerate {
        /// The engine's enumeration descriptor.
        item: L::Enum,
    },
    /// A positive guard over fully-bound operands: keep the binding iff
    /// the guard holds.
    Filter {
        /// The guard operand.
        guard: L::Guard,
    },
    /// A negation guard over fully-bound operands: keep the binding iff
    /// the negated source does *not* contain the match. Kept distinct from
    /// [`PhysOp::Filter`] because negation is what makes plan placement
    /// semantically delicate (it must run under full bindings and never
    /// earns a delta position).
    NegGuard {
        /// The guard operand.
        guard: L::Guard,
    },
}

/// Cardinality statistics of one engine's storage, as the shared planner
/// code consumes them. Implemented by `iql_model::InstanceStats` (o-value
/// relations probed by attribute) and by the Datalog engine's interned
/// tuple store (relations probed by column).
pub trait Storage {
    /// A relation handle.
    type Rel: Copy;
    /// A probeable column handle.
    type Col: Copy + Ord;

    /// Number of tuples in the relation (0 if unknown).
    fn extent(&self, rel: Self::Rel) -> usize;

    /// Number of distinct keys in the relation's `col` index, if that
    /// index exists/is built. `None` means "no statistic available".
    fn distinct(&self, rel: Self::Rel, col: Self::Col) -> Option<usize>;

    /// Estimated candidates per probe of `col`: extent over distinct
    /// keys, pessimistically the whole extent when no statistic exists.
    fn probe_estimate(&self, rel: Self::Rel, col: Self::Col) -> usize {
        let len = self.extent(rel);
        match self.distinct(rel, col) {
            Some(d) if d > 0 => len.div_ceil(d),
            _ => len,
        }
    }
}

/// The shared probe-selection policy: among `candidates` (in priority
/// order), pick the column with the most distinct keys — the most
/// selective probe. Ties keep the *earliest* candidate, so with
/// candidates supplied in column order the choice is deterministic and
/// favours the lower column; candidates without statistics count as zero
/// distinct keys, so an all-unknown candidate list yields the first
/// candidate rather than none.
pub fn choose_probe<S: Storage>(
    storage: &S,
    rel: S::Rel,
    candidates: impl IntoIterator<Item = S::Col>,
) -> Option<S::Col> {
    let mut best: Option<(usize, S::Col)> = None;
    for col in candidates {
        let d = storage.distinct(rel, col).unwrap_or(0);
        if best.is_none_or(|(bd, _)| d > bd) {
            best = Some((d, col));
        }
    }
    best.map(|(_, col)| col)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ToyStorage;

    impl Storage for ToyStorage {
        type Rel = &'static str;
        type Col = usize;
        fn extent(&self, rel: &'static str) -> usize {
            match rel {
                "big" => 100,
                _ => 0,
            }
        }
        fn distinct(&self, rel: &'static str, col: usize) -> Option<usize> {
            match (rel, col) {
                ("big", 0) => Some(4),
                ("big", 1) => Some(25),
                ("big", 2) => Some(25),
                _ => None,
            }
        }
    }

    #[test]
    fn probe_choice_prefers_most_distinct_then_earliest() {
        let s = ToyStorage;
        assert_eq!(choose_probe(&s, "big", [0, 1, 2]), Some(1));
        assert_eq!(choose_probe(&s, "big", [2, 1, 0]), Some(2));
        assert_eq!(choose_probe(&s, "big", []), None);
        // All-unknown candidates fall back to the first.
        assert_eq!(choose_probe(&s, "empty", [3, 4]), Some(3));
    }

    #[test]
    fn probe_estimate_defaults_pessimistically() {
        let s = ToyStorage;
        assert_eq!(s.probe_estimate("big", 1), 4); // 100 / 25
        assert_eq!(s.probe_estimate("big", 9), 100); // no statistic
        assert_eq!(s.probe_estimate("empty", 0), 0);
    }

    // A minimal language exercising the generic op shape.
    struct Toy;
    impl PlanLang for Toy {
        type Src = u8;
        type Pat = u8;
        type Col = u8;
        type Guard = u8;
        type Enum = std::convert::Infallible;
    }

    #[test]
    fn ops_instantiate_for_a_toy_language() {
        let plan: Vec<PhysOp<Toy>> = vec![
            PhysOp::Scan {
                src: 0,
                pat: 1,
                probe: Some(2),
            },
            PhysOp::BindEq { src: 1, pat: 2 },
            PhysOp::Filter { guard: 3 },
            PhysOp::NegGuard { guard: 4 },
        ];
        let scans = plan
            .iter()
            .filter(|op| matches!(op, PhysOp::Scan { .. }))
            .count();
        assert_eq!(scans, 1);
    }
}
