//! # iql-exec — the shared execution runtime
//!
//! Both engines in this workspace — the IQL evaluator (`iql-core`) and the
//! relational Datalog baseline (`iql-datalog`) — bottom out in the same
//! execution shape: rules are lowered to a short program of physical
//! operators (scan, index probe, bind-equality, filter, negation guard),
//! the per-step/per-round work is fanned out over a deterministic worker
//! pool, and the whole run is supervised by a resource governor. This
//! crate is that shared substrate, extracted so each engine contributes
//! only its *language*: how patterns match and what a tuple is.
//!
//! * [`ir`] — the physical-plan IR: [`ir::PhysOp`], generic over a
//!   [`ir::PlanLang`] (the engine-specific operand types), plus the
//!   abstract [`ir::Storage`] cardinality interface and the shared
//!   probe-column choice both planners use;
//! * [`driver`] — the worker-pool driver: a fixed task list executed by a
//!   scoped pool with slot-per-task collection, so results merge in task
//!   order regardless of thread count ([`driver::run_tasks`]);
//! * [`delta`] — the semi-naive delta-intersection early exit shared by
//!   both engines ([`delta::rule_delta_supported`]);
//! * [`govern`] — the resource governor: budgets, deadline, cancellation,
//!   and the strided [`govern::Pacer`] workers poll mid-task.
//!
//! The crate depends on nothing (not even the data model): operand types,
//! tuple representations, and error types are all supplied by the engines.

pub mod delta;
pub mod driver;
pub mod govern;
pub mod ir;

pub use delta::rule_delta_supported;
pub use driver::{chunk_ranges, effective_threads, run_tasks};
pub use govern::{AbortReason, Governor, Pacer};
pub use ir::{choose_probe, PhysOp, PlanLang, Storage};
