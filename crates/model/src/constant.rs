//! Constants — the base domain `D` of atomic, uninterpreted elements.
//!
//! The paper postulates one countably infinite set of constants
//! `D = {d1, d2, …}` (Section 2.1). Constants are *uninterpreted*: a generic
//! query may test them only for equality. For engineering convenience we
//! admit three spellings of constants — strings, integers, and booleans — but
//! they all inhabit the single base type [`crate::TypeExpr::Base`]; no
//! operation in the model or in IQL interprets them beyond equality, so
//! genericity (Section 4.1) is preserved.

use std::fmt;
use std::sync::Arc;

/// An element of the base domain `D`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Constant {
    /// A boolean spelling of a constant.
    Bool(bool),
    /// An integer spelling of a constant.
    Int(i64),
    /// A string spelling of a constant. `Arc<str>` keeps clones cheap — an
    /// o-value tree may repeat the same constant many times.
    Str(Arc<str>),
}

impl Constant {
    /// Builds a string constant.
    pub fn str(s: &str) -> Self {
        Constant::Str(Arc::from(s))
    }

    /// Builds an integer constant.
    pub fn int(i: i64) -> Self {
        Constant::Int(i)
    }

    /// Builds a boolean constant.
    pub fn bool(b: bool) -> Self {
        Constant::Bool(b)
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<&str> for Constant {
    fn from(s: &str) -> Self {
        Constant::str(s)
    }
}

impl From<i64> for Constant {
    fn from(i: i64) -> Self {
        Constant::Int(i)
    }
}

impl From<bool> for Constant {
    fn from(b: bool) -> Self {
        Constant::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Constant::str("Adam"), Constant::str("Adam"));
        assert_ne!(Constant::str("Adam"), Constant::str("adam"));
        assert_ne!(Constant::int(1), Constant::str("1"));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![
            Constant::str("b"),
            Constant::int(3),
            Constant::bool(true),
            Constant::str("a"),
            Constant::int(-1),
        ];
        v.sort();
        let w = v.clone();
        v.sort();
        assert_eq!(v, w);
        // Booleans < ints < strings by variant order; strings lexicographic.
        assert_eq!(v[0], Constant::bool(true));
        assert_eq!(v.last().unwrap(), &Constant::str("b"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Constant::str("x").to_string(), "\"x\"");
        assert_eq!(Constant::int(42).to_string(), "42");
        assert_eq!(Constant::bool(false).to_string(), "false");
    }
}
