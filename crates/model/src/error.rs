//! Error types for the model crate.

use crate::names::{ClassName, RelName};
use std::fmt;

/// Errors raised by schema construction, instance validation, and the type
/// algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A schema mentions a class name it does not declare.
    UndeclaredClass(ClassName),
    /// A relation/class name is declared twice in one schema.
    DuplicateName(String),
    /// A relation's contents violate its declared type (Def 2.3.2 cond 1).
    IllTypedRelation {
        /// Offending relation.
        rel: RelName,
        /// Rendering of the offending o-value.
        value: String,
    },
    /// An oid's value violates its class's type (Def 2.3.2 cond 2).
    IllTypedOid {
        /// The class of the offending oid.
        class: ClassName,
        /// The offending oid (its numeric id).
        oid: u64,
        /// Rendering of the offending value.
        value: String,
    },
    /// An oid appears in two distinct classes — the oid assignment must be
    /// disjoint (Definition 2.1.2).
    NonDisjointClasses {
        /// First class containing the oid.
        first: ClassName,
        /// Second class containing the oid.
        second: ClassName,
        /// The shared oid's numeric id.
        oid: u64,
    },
    /// A set-valued oid has an undefined value (violates Def 2.3.2 cond 3 —
    /// `ν` must be total on classes of set type).
    UndefinedSetValuedOid {
        /// The class of the offending oid.
        class: ClassName,
        /// The offending oid's numeric id.
        oid: u64,
    },
    /// An oid occurs in the instance but belongs to no class.
    StrayOid(u64),
    /// An operation referenced a relation name absent from the schema.
    UnknownRelation(RelName),
    /// An operation referenced a class name absent from the schema.
    UnknownClass(ClassName),
    /// The `isa` declaration does not form a partial order (cycle).
    IsaCycle(ClassName),
    /// Type enumeration exceeded its configured budget.
    EnumerationBudget {
        /// The configured budget that was exceeded.
        budget: usize,
        /// The type expression whose enumeration blew the budget, rendered
        /// at the level that tripped (a sub-expression of the requested
        /// type when the blow-up happens in a nested powerset/product).
        ty: String,
    },
    /// A projection asked for names not in the base schema.
    NotASubschema(String),
    /// Catch-all for invariant violations with context.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UndeclaredClass(c) => {
                write!(f, "type mentions undeclared class {c}")
            }
            ModelError::DuplicateName(n) => write!(f, "duplicate schema name {n}"),
            ModelError::IllTypedRelation { rel, value } => {
                write!(f, "relation {rel} contains ill-typed o-value {value}")
            }
            ModelError::IllTypedOid { class, oid, value } => {
                write!(f, "oid o{oid} of class {class} has ill-typed value {value}")
            }
            ModelError::NonDisjointClasses { first, second, oid } => write!(
                f,
                "oid o{oid} belongs to both {first} and {second}; oid assignments must be disjoint"
            ),
            ModelError::UndefinedSetValuedOid { class, oid } => write!(
                f,
                "set-valued oid o{oid} of class {class} has undefined value; ν must be total on set-typed classes"
            ),
            ModelError::StrayOid(o) => {
                write!(f, "oid o{o} occurs in the instance but belongs to no class")
            }
            ModelError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            ModelError::UnknownClass(c) => write!(f, "unknown class {c}"),
            ModelError::IsaCycle(c) => write!(f, "isa hierarchy has a cycle through {c}"),
            ModelError::EnumerationBudget { budget, ty } => {
                write!(
                    f,
                    "enumerating type {ty} exceeded budget of {budget} values"
                )
            }
            ModelError::NotASubschema(what) => {
                write!(f, "projection target is not a subschema: {what}")
            }
            ModelError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::NonDisjointClasses {
            first: ClassName::new("P1"),
            second: ClassName::new("P2"),
            oid: 7,
        };
        let s = e.to_string();
        assert!(s.contains("o7") && s.contains("P1") && s.contains("P2"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::StrayOid(3));
        assert!(e.to_string().contains("o3"));
    }
}
