//! Object identities and their generation.
//!
//! The paper postulates a countably infinite set of oids `O = {o1, o2, …}`
//! (Section 2.1). An [`Oid`] here is an opaque `u64`; "invention" of new oids
//! (the central IQL primitive, Section 3.2) draws fresh ids from an
//! [`OidGen`] owned by the instance, guaranteeing `h(r,θ)x ∈ O − objects(I)`.

use std::fmt;

/// An object identity — a typed pointer into an instance's `ν` map.
///
/// Oids are atomic: a generic program may compare them for equality and
/// dereference them through an [`crate::Instance`], nothing else. Their
/// numeric value is an artifact of invention order; semantics is always *up
/// to O-isomorphism* (renaming of oids, Section 4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub(crate) u64);

impl Oid {
    /// The raw id. Exposed for display, hashing into external maps, and the
    /// isomorphism machinery; never interpret it semantically.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Builds an oid from a raw id. Intended for tests and deserialization;
    /// instances only consider oids they have allocated as legal.
    pub fn from_raw(raw: u64) -> Self {
        Oid(raw)
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A monotone source of fresh oids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OidGen {
    next: u64,
}

impl OidGen {
    /// A generator starting at 0.
    pub fn new() -> Self {
        OidGen::default()
    }

    /// A generator that will never emit ids below `floor`.
    pub fn starting_at(floor: u64) -> Self {
        OidGen { next: floor }
    }

    /// Draws a fresh oid, never returned before by this generator.
    pub fn fresh(&mut self) -> Oid {
        let oid = Oid(self.next);
        self.next = self
            .next
            .checked_add(1)
            .expect("oid space exhausted (2^64 inventions)");
        oid
    }

    /// Ensures future ids are strictly above `oid` — used when merging
    /// instances so invention stays outside `objects(I)`.
    pub fn reserve_above(&mut self, oid: Oid) {
        if oid.0 >= self.next {
            self.next = oid.0 + 1;
        }
    }

    /// The next id that would be emitted.
    pub fn peek(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_is_monotone_and_distinct() {
        let mut g = OidGen::new();
        let a = g.fresh();
        let b = g.fresh();
        let c = g.fresh();
        assert!(a < b && b < c);
        assert_ne!(a, b);
    }

    #[test]
    fn reserve_above_guards_merges() {
        let mut g = OidGen::new();
        g.reserve_above(Oid::from_raw(41));
        assert_eq!(g.fresh().raw(), 42);
        // Reserving below the watermark is a no-op.
        g.reserve_above(Oid::from_raw(3));
        assert_eq!(g.fresh().raw(), 43);
    }

    #[test]
    fn display() {
        assert_eq!(Oid::from_raw(7).to_string(), "o7");
    }
}
