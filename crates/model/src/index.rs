//! Persistent secondary indexes over an instance's interned relation mirror.
//!
//! Each index maps one tuple attribute of one relation to the facts carrying
//! each value: `ValueId → Vec<ValueId>`. Indexes are built lazily (the first
//! time the planner asks for one) and then maintained **incrementally** by
//! the instance's mutators, so the evaluator stops rebuilding hash maps from
//! scratch inside every step of every stage. Evaluation is inflationary
//! between deletion points, which makes maintenance append-only; the IQL\*
//! deletion primitives invalidate only the touched relations' indexes (see
//! DESIGN.md, "Query planning and indexes").

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::names::{AttrName, RelName};
use crate::store::{Node, ValueId, ValueReader, ValueStore};

/// The value id behind tuple field `attr` of fact `fid`, if `fid` is a
/// tuple with that field. O(log arity) — tuple entries are attr-sorted.
fn field_of(store: &ValueStore, fid: ValueId, attr: AttrName) -> Option<ValueId> {
    match store.node(fid) {
        Node::Tuple(fields) => fields
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| fields[i].1),
        _ => None,
    }
}

/// A single-attribute hash index over one relation.
///
/// Posting lists stay sorted by fact id, so a probe yields candidates in
/// exactly the relative order a full scan of the `BTreeSet<ValueId>` extent
/// would — index on/off cannot change the order valuations are discovered
/// in, only how fast they are found.
#[derive(Clone, Debug, Default)]
pub struct AttrIndex {
    map: HashMap<ValueId, Vec<ValueId>>,
}

impl AttrIndex {
    fn build(attr: AttrName, facts: impl Iterator<Item = ValueId>, store: &ValueStore) -> Self {
        let mut map: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
        for fid in facts {
            if let Some(key) = field_of(store, fid, attr) {
                map.entry(key).or_default().push(fid);
            }
        }
        AttrIndex { map }
    }

    /// Fact ids whose indexed field equals `key`, ascending by id.
    pub fn get(&self, key: ValueId) -> &[ValueId] {
        self.map.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys — the planner's selectivity statistic.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Folds one newly inserted fact into the index; returns whether the
    /// key is new to the index (a distinct-count change). Fact ids mostly
    /// grow over an inflationary run, so this is an append in the common
    /// case; a fact interned early but inserted late takes the
    /// binary-search path.
    fn note(&mut self, key: ValueId, fid: ValueId) -> bool {
        let before = self.map.len();
        let posting = self.map.entry(key).or_default();
        match posting.last() {
            Some(&last) if last < fid => posting.push(fid),
            Some(&last) if last == fid => {}
            _ => {
                if let Err(pos) = posting.binary_search(&fid) {
                    posting.insert(pos, fid);
                }
            }
        }
        self.map.len() > before
    }
}

/// Every built `(relation, attribute)` index of an instance.
///
/// Owned by [`crate::Instance`], which calls [`RelIndexes::note_insert`]
/// from its fact-inserting mutators and [`RelIndexes::invalidate`] from its
/// deleting ones. Indexes cover only ρ: ν mutations (`overwrite_value`,
/// `add_set_member`, …) never touch them, because relation facts reference
/// oids by identity, not by value.
#[derive(Clone, Debug, Default)]
pub struct RelIndexes {
    built: BTreeMap<RelName, BTreeMap<AttrName, AttrIndex>>,
}

impl RelIndexes {
    /// Builds the `(r, attr)` index from `facts` if absent; O(1) once
    /// built. Returns whether this call actually built it — a statistics
    /// change the instance folds into its stats epoch.
    pub fn ensure(
        &mut self,
        r: RelName,
        attr: AttrName,
        facts: &BTreeSet<ValueId>,
        store: &ValueStore,
    ) -> bool {
        let per_attr = self.built.entry(r).or_default();
        if per_attr.contains_key(&attr) {
            return false;
        }
        per_attr.insert(attr, AttrIndex::build(attr, facts.iter().copied(), store));
        true
    }

    /// The `(r, attr)` index, if built.
    pub fn get(&self, r: RelName, attr: AttrName) -> Option<&AttrIndex> {
        self.built.get(&r)?.get(&attr)
    }

    /// Distinct key count of the `(r, attr)` index, if built.
    pub fn attr_distinct(&self, r: RelName, attr: AttrName) -> Option<usize> {
        self.get(r, attr).map(AttrIndex::distinct_keys)
    }

    /// Folds one newly inserted fact into every built index of `r`.
    /// Returns whether any index's distinct-key count crossed a
    /// power-of-two threshold — the planner's cue that its cached
    /// selectivity estimates are stale enough to re-plan.
    pub fn note_insert(&mut self, r: RelName, fid: ValueId, store: &ValueStore) -> bool {
        let mut crossed = false;
        if let Some(per_attr) = self.built.get_mut(&r) {
            for (attr, idx) in per_attr.iter_mut() {
                if let Some(key) = field_of(store, fid, *attr) {
                    if idx.note(key, fid) && idx.distinct_keys().is_power_of_two() {
                        crossed = true;
                    }
                }
            }
        }
        crossed
    }

    /// Drops every index of `r` — called when a fact is removed from `r`.
    pub fn invalidate(&mut self, r: RelName) {
        self.built.remove(&r);
    }

    /// Total number of built indexes, across all relations.
    pub fn built_count(&self) -> usize {
        self.built.values().map(BTreeMap::len).sum()
    }
}
