//! Type inheritance (Section 6).
//!
//! A schema with inheritance is `(R, P, T, ≤)` where `≤` is a partial order
//! on class names (the *isa hierarchy*, Definition 6.2). Oids are created in
//! a single class and automatically belong to its ancestors — the
//! **inherited oid assignment** `π̄(P) = ∪{π(P') | P' ≤ P}`
//! (Definition 6.1.1).
//!
//! Structure sharing between classes is forced through the
//! `*`-interpretation of tuple types (Section 6.2 / Cardelli): the effective
//! type of a class is the intersection of its own and all its ancestors'
//! types, where tuple-type intersection *merges* fields. The paper's key
//! observation, reproduced by [`SchemaWithIsa::translate`], is that
//! inheritance is a **shorthand for union types**: replacing every class
//! reference `P` by the union of its `≤`-smaller classes yields a plain
//! schema on which IQL runs unchanged (Definition 6.2.2 and the discussion
//! following it).

use crate::error::ModelError;
use crate::instance::Instance;
use crate::names::ClassName;
use crate::schema::Schema;
use crate::store::ValueReader;
use crate::types::{OidClasses, TypeExpr};
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};

/// A partial order on class names: `sub isa sup` edges, transitively closed
/// on demand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IsaHierarchy {
    /// Direct supertypes per class.
    supers: BTreeMap<ClassName, BTreeSet<ClassName>>,
}

impl IsaHierarchy {
    /// An empty hierarchy (no isa edges — the disjoint-class case).
    pub fn new() -> Self {
        IsaHierarchy::default()
    }

    /// Declares `sub isa sup`.
    pub fn add(&mut self, sub: ClassName, sup: ClassName) {
        self.supers.entry(sub).or_default().insert(sup);
    }

    /// Checks antisymmetry/acyclicity — `≤` must be a partial order.
    pub fn validate(&self) -> Result<()> {
        // DFS cycle detection over the direct-super graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: BTreeMap<ClassName, Mark> = BTreeMap::new();
        fn visit(
            h: &IsaHierarchy,
            c: ClassName,
            marks: &mut BTreeMap<ClassName, Mark>,
        ) -> Result<()> {
            match marks.get(&c).copied().unwrap_or(Mark::White) {
                Mark::Grey => return Err(ModelError::IsaCycle(c)),
                Mark::Black => return Ok(()),
                Mark::White => {}
            }
            marks.insert(c, Mark::Grey);
            if let Some(sups) = h.supers.get(&c) {
                for &s in sups {
                    if s != c {
                        visit(h, s, marks)?;
                    } else {
                        // Reflexive self-edges are harmless.
                    }
                }
            }
            marks.insert(c, Mark::Black);
            Ok(())
        }
        for &c in self.supers.keys() {
            visit(self, c, &mut marks)?;
        }
        Ok(())
    }

    /// All supertypes of `c`, including `c` itself (reflexive-transitive
    /// closure of the isa edges).
    pub fn ancestors(&self, c: ClassName) -> BTreeSet<ClassName> {
        let mut out = BTreeSet::from([c]);
        let mut stack = vec![c];
        while let Some(x) = stack.pop() {
            if let Some(sups) = self.supers.get(&x) {
                for &s in sups {
                    if out.insert(s) {
                        stack.push(s);
                    }
                }
            }
        }
        out
    }

    /// All subtypes of `c` within `universe`, including `c` itself — the
    /// classes whose oids `π̄` pours into `π̄(c)`.
    pub fn descendants<I>(&self, c: ClassName, universe: I) -> BTreeSet<ClassName>
    where
        I: IntoIterator<Item = ClassName>,
    {
        universe.into_iter().filter(|&p| self.leq(p, c)).collect()
    }

    /// Is `sub ≤ sup` (every `sub` isa `sup`)?
    pub fn leq(&self, sub: ClassName, sup: ClassName) -> bool {
        self.ancestors(sub).contains(&sup)
    }

    /// Is the hierarchy empty (no edges)?
    pub fn is_empty(&self) -> bool {
        self.supers.values().all(BTreeSet::is_empty)
    }
}

/// A schema paired with an isa hierarchy — the quadruple `(R, P, T, ≤)` of
/// Definition 6.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaWithIsa {
    /// The underlying `(R, P, T)`.
    pub schema: Schema,
    /// The isa partial order on `P`.
    pub isa: IsaHierarchy,
}

impl SchemaWithIsa {
    /// Builds and validates (isa must be acyclic and mention only declared
    /// classes).
    pub fn new(schema: Schema, isa: IsaHierarchy) -> Result<SchemaWithIsa> {
        isa.validate()?;
        for (sub, sups) in &isa.supers {
            if !schema.has_class(*sub) {
                return Err(ModelError::UnknownClass(*sub));
            }
            for s in sups {
                if !schema.has_class(*s) {
                    return Err(ModelError::UnknownClass(*s));
                }
            }
        }
        Ok(SchemaWithIsa { schema, isa })
    }

    /// The *merged* type `tP` of class `p`: the `*`-intersection of `T(P')`
    /// over all ancestors `P' ≥ p` (Section 6.2) — record fields accumulate
    /// down the hierarchy, same-name fields intersect.
    pub fn merged_type(&self, p: ClassName) -> Result<TypeExpr> {
        let mut ancestors: Vec<ClassName> = self.isa.ancestors(p).into_iter().collect();
        ancestors.sort();
        let mut acc: Option<TypeExpr> = None;
        for a in ancestors {
            let t = self.schema.class_type(a)?.clone();
            acc = Some(match acc {
                None => t,
                Some(prev) => star_intersect(&prev, &t),
            });
        }
        Ok(acc.expect("ancestors always include p"))
    }

    /// The paper's reduction (Definition 6.2.2 and following): a plain
    /// schema `S' = (R, P, T*)` *without* isa, where `T*` uses the merged
    /// type of each class and replaces each class reference `Q` by the union
    /// of its `≤`-smaller classes. Instances of `(S, ≤)` are exactly
    /// instances of `S'`, so IQL runs on inheritance schemas unchanged.
    pub fn translate(&self) -> Result<Schema> {
        let all: Vec<ClassName> = self.schema.classes().collect();
        // All class references are replaced *simultaneously*: each Q maps to
        // the union of its ≤-smaller classes (which are original names).
        let map: BTreeMap<ClassName, TypeExpr> = all
            .iter()
            .map(|&q| {
                let subs = self.isa.descendants(q, all.iter().copied());
                (
                    q,
                    TypeExpr::union_all(subs.into_iter().map(TypeExpr::Class)),
                )
            })
            .collect();
        let expand = |t: &TypeExpr| substitute_all(t, &map);
        Schema::new(
            self.schema
                .relations()
                .map(|r| Ok((r, expand(self.schema.relation_type(r)?))))
                .collect::<Result<Vec<_>>>()?,
            all.iter()
                .map(|&p| Ok((p, expand(&self.merged_type(p)?))))
                .collect::<Result<Vec<_>>>()?,
        )
    }

    /// Validates an instance against the inheritance semantics of
    /// Definition 6.2.2: relations against `⟦T(R)⟧π̄` and class values
    /// against `⟦tP⟧π̄`, with `π̄` the inherited assignment. The instance's
    /// own `π` stays disjoint (design choice (1) of Remark 6.2.3).
    pub fn validate_instance(&self, inst: &Instance) -> Result<()> {
        let view = InheritedView {
            inst,
            isa: &self.isa,
        };
        // Membership checks run on interned ids: shared substructure is
        // visited via the store, and a failing value is resolved to a tree
        // only to render the error.
        let store = inst.store();
        for r in self.schema.relations() {
            let ty = self.schema.relation_type(r)?;
            for &fid in inst.relation_ids(r)? {
                if !ty.member_id(fid, store, &view) {
                    return Err(ModelError::IllTypedRelation {
                        rel: r,
                        value: store.resolve(fid).to_string(),
                    });
                }
            }
        }
        for p in self.schema.classes() {
            let tp = self.merged_type(p)?;
            let set_valued = matches!(tp, TypeExpr::Set(_));
            for o in inst.class(p)? {
                match inst.value_id(*o) {
                    Some(vid) => {
                        if !tp.member_id(vid, store, &view) {
                            return Err(ModelError::IllTypedOid {
                                class: p,
                                oid: o.raw(),
                                value: store.resolve(vid).to_string(),
                            });
                        }
                    }
                    None => {
                        if set_valued {
                            return Err(ModelError::UndefinedSetValuedOid {
                                class: p,
                                oid: o.raw(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// `π̄`-backed [`OidClasses`] view: an oid is "in" class `P` when its actual
/// class is `≤ P`.
pub struct InheritedView<'a> {
    /// The instance providing the base disjoint assignment `π`.
    pub inst: &'a Instance,
    /// The hierarchy inducing `π̄`.
    pub isa: &'a IsaHierarchy,
}

impl OidClasses for InheritedView<'_> {
    fn oid_in_class(&self, oid: crate::idgen::Oid, class: ClassName) -> bool {
        match self.inst.class_of(oid) {
            Some(actual) => self.isa.leq(actual, class),
            None => false,
        }
    }
}

/// The `*`-intersection of two types: like plain intersection but tuple
/// types *merge* their fields (Section 6.2's `⟦·⟧*` equivalence
/// `[A1:D,A2:D] ∧ [A2:D,A3:D] ≡* [A1:D,A2:D,A3:D]`).
pub fn star_intersect(a: &TypeExpr, b: &TypeExpr) -> TypeExpr {
    use TypeExpr as T;
    match (a, b) {
        (T::Empty, _) | (_, T::Empty) => T::Empty,
        (T::Union(x, y), other) => T::union(star_intersect(x, other), star_intersect(y, other)),
        (other, T::Union(x, y)) => T::union(star_intersect(other, x), star_intersect(other, y)),
        (T::Base, T::Base) => T::Base,
        (T::Class(p), T::Class(q)) => {
            if p == q {
                T::Class(*p)
            } else {
                // Not reducible without the hierarchy; keep the intersection
                // (its π̄-interpretation is the common subclasses' oids).
                T::inter(T::Class(*p), T::Class(*q))
            }
        }
        (T::Set(x), T::Set(y)) => T::set_of(star_intersect(x, y)),
        (T::Tuple(fa), T::Tuple(fb)) => {
            let mut out = fa.clone();
            for (attr, tb) in fb {
                match out.get(attr) {
                    Some(ta) => {
                        let merged = star_intersect(ta, tb);
                        out.insert(*attr, merged);
                    }
                    None => {
                        out.insert(*attr, tb.clone());
                    }
                }
            }
            if out.values().any(|t| matches!(t, T::Empty)) {
                T::Empty
            } else {
                T::Tuple(out)
            }
        }
        _ => T::Empty,
    }
}

/// Replaces every class reference according to `map` in a single pass
/// (simultaneous substitution — never re-expands names the map introduced).
fn substitute_all(t: &TypeExpr, map: &BTreeMap<ClassName, TypeExpr>) -> TypeExpr {
    match t {
        TypeExpr::Empty | TypeExpr::Base => t.clone(),
        TypeExpr::Class(c) => map.get(c).cloned().unwrap_or_else(|| t.clone()),
        TypeExpr::Tuple(fields) => TypeExpr::Tuple(
            fields
                .iter()
                .map(|(a, x)| (*a, substitute_all(x, map)))
                .collect(),
        ),
        TypeExpr::Set(x) => TypeExpr::set_of(substitute_all(x, map)),
        TypeExpr::Union(a, b) => TypeExpr::union(substitute_all(a, map), substitute_all(b, map)),
        TypeExpr::Intersect(a, b) => {
            TypeExpr::inter(substitute_all(a, map), substitute_all(b, map))
        }
    }
}

/// Builds the university schema-with-isa of Examples 6.1.2/6.2.1:
/// `ta ≤ student ≤ person`, `ta ≤ instructor ≤ person`, with the succinct
/// per-class types of Example 6.2.1 (fields accumulate via merging).
pub fn university_schema() -> SchemaWithIsa {
    use crate::schema::SchemaBuilder;
    use TypeExpr as T;
    let schema = SchemaBuilder::new()
        .class("Person", T::tuple([("name", T::base())]))
        .class("Student", T::tuple([("course_taken", T::base())]))
        .class("Instructor", T::tuple([("course_taught", T::base())]))
        .class("Ta", T::unit())
        .relation(
            "Assists",
            T::tuple([("who", T::class("Ta")), ("prof", T::class("Instructor"))]),
        )
        .build()
        .expect("university schema well-formed");
    let mut isa = IsaHierarchy::new();
    let (person, student, instructor, ta) = (
        ClassName::new("Person"),
        ClassName::new("Student"),
        ClassName::new("Instructor"),
        ClassName::new("Ta"),
    );
    isa.add(student, person);
    isa.add(instructor, person);
    isa.add(ta, student);
    isa.add(ta, instructor);
    SchemaWithIsa::new(schema, isa).expect("university isa acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idgen::Oid;
    use crate::names::RelName;
    use crate::ovalue::OValue;
    use std::sync::Arc;

    fn c(n: &str) -> ClassName {
        ClassName::new(n)
    }

    #[test]
    fn ancestors_and_leq() {
        let u = university_schema();
        assert!(u.isa.leq(c("Ta"), c("Person")));
        assert!(u.isa.leq(c("Ta"), c("Ta")));
        assert!(!u.isa.leq(c("Person"), c("Ta")));
        assert_eq!(u.isa.ancestors(c("Ta")).len(), 4);
    }

    #[test]
    fn descendants_inverts_ancestors() {
        let u = university_schema();
        let all: Vec<ClassName> = u.schema.classes().collect();
        let subs = u.isa.descendants(c("Person"), all.iter().copied());
        assert_eq!(subs.len(), 4, "everyone is a person");
        let subs_i = u.isa.descendants(c("Instructor"), all.iter().copied());
        assert_eq!(subs_i, BTreeSet::from([c("Instructor"), c("Ta")]));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut isa = IsaHierarchy::new();
        isa.add(c("A1"), c("B1"));
        isa.add(c("B1"), c("A1"));
        assert!(matches!(isa.validate(), Err(ModelError::IsaCycle(_))));
    }

    #[test]
    fn merged_type_accumulates_fields() {
        // Example 6.2.1: ta's merged type has name, course_taken,
        // course_taught — exactly Example 6.1.2's explicit type.
        let u = university_schema();
        let t = u.merged_type(c("Ta")).unwrap();
        let expected = TypeExpr::tuple([
            ("name", TypeExpr::base()),
            ("course_taken", TypeExpr::base()),
            ("course_taught", TypeExpr::base()),
        ]);
        assert_eq!(t, expected);
        let ts = u.merged_type(c("Student")).unwrap();
        assert_eq!(
            ts,
            TypeExpr::tuple([
                ("name", TypeExpr::base()),
                ("course_taken", TypeExpr::base())
            ])
        );
    }

    #[test]
    fn star_intersect_paper_example() {
        // [A1:D,A2:D] ∧* [A2:D,A3:D] = [A1:D,A2:D,A3:D]
        let a = TypeExpr::tuple([("A1", TypeExpr::base()), ("A2", TypeExpr::base())]);
        let b = TypeExpr::tuple([("A2", TypeExpr::base()), ("A3", TypeExpr::base())]);
        let m = star_intersect(&a, &b);
        assert_eq!(
            m,
            TypeExpr::tuple([
                ("A1", TypeExpr::base()),
                ("A2", TypeExpr::base()),
                ("A3", TypeExpr::base())
            ])
        );
    }

    fn university_instance() -> (SchemaWithIsa, Instance, Oid, Oid) {
        let u = university_schema();
        let mut i = Instance::new(Arc::new(u.schema.clone()));
        let ta = i.create_oid(c("Ta")).unwrap();
        let prof = i.create_oid(c("Instructor")).unwrap();
        i.define_value(
            ta,
            OValue::tuple([
                ("name", OValue::str("Kim")),
                ("course_taken", OValue::str("DB2")),
                ("course_taught", OValue::str("DB1")),
            ]),
        )
        .unwrap();
        i.define_value(
            prof,
            OValue::tuple([
                ("name", OValue::str("Codd")),
                ("course_taught", OValue::str("Rel")),
            ]),
        )
        .unwrap();
        i.insert_unchecked(
            RelName::new("Assists"),
            OValue::tuple([("who", OValue::oid(ta)), ("prof", OValue::oid(prof))]),
        )
        .unwrap();
        (u, i, ta, prof)
    }

    #[test]
    fn inherited_validation_accepts_subclass_use() {
        let (u, i, _, _) = university_instance();
        // Plain validation fails (ta's value is not of shape [], and Assists
        // expects who: Ta which holds, but prof's merged fields don't match
        // the raw Instructor type [course_taught: D]).
        assert!(i.validate().is_err());
        // Inheritance-aware validation succeeds.
        u.validate_instance(&i).unwrap();
    }

    #[test]
    fn inherited_view_membership() {
        let (u, i, ta, prof) = university_instance();
        let view = InheritedView {
            inst: &i,
            isa: &u.isa,
        };
        let person = TypeExpr::class("Person");
        assert!(person.member(&OValue::oid(ta), &view));
        assert!(person.member(&OValue::oid(prof), &view));
        let student = TypeExpr::class("Student");
        assert!(student.member(&OValue::oid(ta), &view));
        assert!(!student.member(&OValue::oid(prof), &view));
    }

    #[test]
    fn translation_to_union_types() {
        let (u, i, _, _) = university_instance();
        let plain = u.translate().unwrap();
        // In the translated schema, Person references become unions over
        // {Person, Student, Instructor, Ta}.
        let assists = plain.relation_type(RelName::new("Assists")).unwrap();
        let mut classes = BTreeSet::new();
        assists.classes_mentioned(&mut classes);
        assert!(classes.contains(&c("Ta")));
        // The same instance (same π, same ν) validates as a *plain* instance
        // of the translated schema — inheritance reduced to union types.
        let mut j = Instance::new(Arc::new(plain));
        for p in u.schema.classes() {
            for o in i.class(p).unwrap() {
                j.adopt_oid(p, *o).unwrap();
                if let Some(v) = i.value(*o) {
                    j.overwrite_value(*o, v.clone()).unwrap();
                }
            }
        }
        for r in u.schema.relations() {
            for v in i.relation(r).unwrap() {
                j.insert_unchecked(r, v.clone()).unwrap();
            }
        }
        j.validate().unwrap();
    }

    #[test]
    fn ill_typed_under_inheritance_rejected() {
        let u = university_schema();
        let mut i = Instance::new(Arc::new(u.schema.clone()));
        let ta = i.create_oid(c("Ta")).unwrap();
        // Missing the course_taught field required by the merged type.
        i.define_value(
            ta,
            OValue::tuple([
                ("name", OValue::str("Kim")),
                ("course_taken", OValue::str("DB2")),
            ]),
        )
        .unwrap();
        assert!(matches!(
            u.validate_instance(&i),
            Err(ModelError::IllTypedOid { .. })
        ));
    }

    #[test]
    fn substitute_all_is_simultaneous() {
        // A ↦ B and B ↦ A must swap, not chain.
        let map = BTreeMap::from([
            (c("SwA"), TypeExpr::class("SwB")),
            (c("SwB"), TypeExpr::class("SwA")),
        ]);
        let t = TypeExpr::tuple([("x", TypeExpr::class("SwA")), ("y", TypeExpr::class("SwB"))]);
        let s = substitute_all(&t, &map);
        assert_eq!(
            s,
            TypeExpr::tuple([("x", TypeExpr::class("SwB")), ("y", TypeExpr::class("SwA"))])
        );
    }
}
