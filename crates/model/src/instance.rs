//! Instances (Definition 2.3.2) and their ground-fact representation.
//!
//! An instance of schema `(R, P, T)` is a triple `(ρ, π, ν)`:
//!
//! * `ρ` assigns each relation name a finite set of o-values of type `T(R)`;
//! * `π` assigns each class name a finite, pairwise-disjoint set of oids;
//! * `ν` partially maps the oids of the instance to o-values of their
//!   class's type, and is **total** on set-valued classes (condition 3) —
//!   "knowing nothing about a set" is represented as the empty set
//!   (Remark 2.3.3).
//!
//! Oids with undefined `ν` model incomplete information (like `other` in the
//! Genesis example) and, crucially, the intermediate stages of IQL
//! evaluation, where objects are built incrementally.
//!
//! Cyclicity lives entirely in `ν`: o-values are finite trees, and following
//! `ν` through oids may loop (e.g. `adam ↦ [spouse: eve, …]`,
//! `eve ↦ [spouse: adam, …]`).

use crate::constant::Constant;
use crate::error::ModelError;
use crate::idgen::{Oid, OidGen};
use crate::index::{AttrIndex, RelIndexes};
use crate::names::{AttrName, ClassName, RelName};
use crate::ovalue::OValue;
use crate::schema::Schema;
use crate::stats::InstanceStats;
use crate::store::{ValueId, ValueInterner, ValueReader, ValueStore};
use crate::types::{ClassMap, EnumUniverse, OidClasses};
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// One ground fact of the logic-programming representation of an instance
/// (Section 2.3):
///
/// ```text
/// R(v)      for v ∈ ρ(R)
/// P(o)      for o ∈ π(P)
/// ô(v)      for v ∈ ν(o), o set-valued
/// ô = v     for v = ν(o), o non-set-valued
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GroundFact {
    /// `R(v)` — membership of an o-value in a relation.
    Rel(RelName, OValue),
    /// `P(o)` — membership of an oid in a class.
    Class(ClassName, Oid),
    /// `ô(v)` — membership in the value of a set-valued oid.
    SetMember(Oid, OValue),
    /// `ô = v` — the value of a non-set-valued oid.
    Value(Oid, OValue),
}

impl fmt::Display for GroundFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundFact::Rel(r, v) => write!(f, "{r}({v})"),
            GroundFact::Class(p, o) => write!(f, "{p}({o})"),
            GroundFact::SetMember(o, v) => write!(f, "{o}^({v})"),
            GroundFact::Value(o, v) => write!(f, "{o}^ = {v}"),
        }
    }
}

/// An instance `(ρ, π, ν)` of a schema.
///
/// The instance keeps **two representations of the same data** in lockstep:
/// the `OValue` trees (`relations`, `nu`) that back the public API, display,
/// and equality, and an interned mirror (`rel_ids`, `nu_ids`) over a
/// hash-consing [`ValueStore`] that gives the evaluators `Copy` handles with
/// O(1) equality and cached oid metadata. Every mutator maintains both; the
/// mirrors are an implementation detail and never diverge observably.
pub struct Instance {
    schema: Arc<Schema>,
    relations: BTreeMap<RelName, BTreeSet<OValue>>,
    classes: BTreeMap<ClassName, BTreeSet<Oid>>,
    nu: BTreeMap<Oid, OValue>,
    /// Inverse of `π` — enforces disjointness and gives O(log n) class-of.
    oid_class: BTreeMap<Oid, ClassName>,
    gen: OidGen,
    /// Hash-consing arena for the interned mirror of `ρ` and `ν`.
    store: ValueStore,
    /// `ρ` as interned ids — mirrors `relations` exactly.
    rel_ids: BTreeMap<RelName, BTreeSet<ValueId>>,
    /// `ν` as interned ids — mirrors `nu` exactly.
    nu_ids: BTreeMap<Oid, ValueId>,
    /// Persistent secondary indexes over `rel_ids`, maintained incrementally
    /// by the fact mutators; never observable (not part of equality).
    indexes: RelIndexes,
    /// Monotone statistics epoch: bumped whenever the cardinality picture a
    /// planner might have cached goes stale — a relation or class extent
    /// crosses a power-of-two threshold, a built index's distinct-key count
    /// does, a new index is built, or facts are deleted. Cached plans keyed
    /// by this epoch stay valid exactly while it holds still.
    stats_epoch: u64,
}

/// Cloning an instance clones the *data* — ρ, π, ν, both value
/// representations, and the statistics epoch — but not the persistent
/// secondary indexes, which rebuild lazily on demand. Indexes are pure
/// acceleration state (never observable, not part of equality), and the
/// dominant clone in practice is the governed partial-result snapshot,
/// which is read, not evaluated against — deep-copying every posting list
/// into it was pure waste.
impl Clone for Instance {
    fn clone(&self) -> Instance {
        Instance {
            schema: Arc::clone(&self.schema),
            relations: self.relations.clone(),
            classes: self.classes.clone(),
            nu: self.nu.clone(),
            oid_class: self.oid_class.clone(),
            gen: self.gen.clone(),
            store: self.store.clone(),
            rel_ids: self.rel_ids.clone(),
            nu_ids: self.nu_ids.clone(),
            indexes: RelIndexes::default(),
            stats_epoch: self.stats_epoch,
        }
    }
}

impl Instance {
    /// An empty instance of `schema`: all relations and classes empty.
    pub fn new(schema: Arc<Schema>) -> Instance {
        let relations: BTreeMap<RelName, BTreeSet<OValue>> =
            schema.relations().map(|r| (r, BTreeSet::new())).collect();
        let rel_ids = relations.keys().map(|r| (*r, BTreeSet::new())).collect();
        let classes = schema.classes().map(|c| (c, BTreeSet::new())).collect();
        Instance {
            schema,
            relations,
            classes,
            nu: BTreeMap::new(),
            oid_class: BTreeMap::new(),
            gen: OidGen::new(),
            store: ValueStore::new(),
            rel_ids,
            nu_ids: BTreeMap::new(),
            indexes: RelIndexes::default(),
            stats_epoch: 0,
        }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    // ------------------------------------------------------------------
    // ρ — relations
    // ------------------------------------------------------------------

    /// `ρ(R)` — the contents of relation `r`.
    pub fn relation(&self, r: RelName) -> Result<&BTreeSet<OValue>> {
        self.relations.get(&r).ok_or(ModelError::UnknownRelation(r))
    }

    /// Inserts `v` into `ρ(R)` after type-checking it against `T(R)`.
    /// Returns `true` if the fact was new (relations are duplicate-free).
    pub fn insert(&mut self, r: RelName, v: OValue) -> Result<bool> {
        let ty = self.schema.relation_type(r)?.clone();
        if !ty.member(&v, self) {
            return Err(ModelError::IllTypedRelation {
                rel: r,
                value: v.to_string(),
            });
        }
        self.insert_unchecked(r, v)
    }

    /// Inserts without type-checking — the IQL evaluator uses this on facts
    /// whose well-typedness is guaranteed statically by rule-head typing
    /// (Section 3.3).
    pub fn insert_unchecked(&mut self, r: RelName, v: OValue) -> Result<bool> {
        if !self.relations.contains_key(&r) {
            return Err(ModelError::UnknownRelation(r));
        }
        let id = self.intern_noting_oids(&v);
        let ids = self.rel_ids.get_mut(&r).expect("mirrors relations");
        if !ids.insert(id) {
            return Ok(false);
        }
        let crossed = ids.len().is_power_of_two();
        if self.indexes.note_insert(r, id, &self.store) || crossed {
            self.stats_epoch += 1;
        }
        self.relations
            .get_mut(&r)
            .expect("mirrors rel_ids")
            .insert(v);
        Ok(true)
    }

    /// Id-native variant of [`Instance::insert_unchecked`]: `id` must come
    /// from this instance's [`ValueStore`]. The tree mirror is materialized
    /// only when the fact is genuinely new.
    pub fn insert_id(&mut self, r: RelName, id: ValueId) -> Result<bool> {
        let ids = self
            .rel_ids
            .get_mut(&r)
            .ok_or(ModelError::UnknownRelation(r))?;
        if !ids.insert(id) {
            return Ok(false);
        }
        let crossed = ids.len().is_power_of_two();
        if self.indexes.note_insert(r, id, &self.store) || crossed {
            self.stats_epoch += 1;
        }
        for &o in self.store.oids(id) {
            self.gen.reserve_above(o);
        }
        let v = self.store.resolve(id);
        self.relations
            .get_mut(&r)
            .expect("mirrors rel_ids")
            .insert(v);
        Ok(true)
    }

    /// Removes `v` from `ρ(R)`; returns whether it was present.
    pub fn remove(&mut self, r: RelName, v: &OValue) -> Result<bool> {
        let set = self
            .relations
            .get_mut(&r)
            .ok_or(ModelError::UnknownRelation(r))?;
        if !set.remove(v) {
            return Ok(false);
        }
        let id = self.store.intern(v);
        self.rel_ids
            .get_mut(&r)
            .expect("mirrors relations")
            .remove(&id);
        // Deletion breaks the append-only maintenance invariant; drop the
        // touched relation's indexes and let them rebuild lazily.
        self.indexes.invalidate(r);
        self.stats_epoch += 1;
        Ok(true)
    }

    // ------------------------------------------------------------------
    // π — classes and oid invention
    // ------------------------------------------------------------------

    /// `π(P)` — the extent of class `p`.
    pub fn class(&self, p: ClassName) -> Result<&BTreeSet<Oid>> {
        self.classes.get(&p).ok_or(ModelError::UnknownClass(p))
    }

    /// Invents a fresh oid in class `p` (the IQL invention primitive). The
    /// new oid receives the paper's default value: the empty set for
    /// set-valued classes, undefined otherwise.
    pub fn create_oid(&mut self, p: ClassName) -> Result<Oid> {
        if !self.schema.has_class(p) {
            return Err(ModelError::UnknownClass(p));
        }
        let oid = self.gen.fresh();
        self.register_oid(p, oid)?;
        Ok(oid)
    }

    /// Adopts a caller-chosen oid into class `p` — used by tests and by the
    /// φ translation from the value-based model. Fails if the oid already
    /// belongs to a class (disjointness, Definition 2.1.2).
    pub fn adopt_oid(&mut self, p: ClassName, oid: Oid) -> Result<()> {
        if !self.schema.has_class(p) {
            return Err(ModelError::UnknownClass(p));
        }
        self.gen.reserve_above(oid);
        self.register_oid(p, oid)
    }

    fn register_oid(&mut self, p: ClassName, oid: Oid) -> Result<()> {
        if let Some(existing) = self.oid_class.get(&oid) {
            if *existing == p {
                return Ok(()); // idempotent
            }
            return Err(ModelError::NonDisjointClasses {
                first: *existing,
                second: p,
                oid: oid.raw(),
            });
        }
        self.oid_class.insert(oid, p);
        let extent = self
            .classes
            .get_mut(&p)
            .expect("class present by construction");
        extent.insert(oid);
        if extent.len().is_power_of_two() {
            self.stats_epoch += 1;
        }
        if self.schema.is_set_valued_class(p)? {
            self.nu.insert(oid, OValue::empty_set());
            let empty = self.store.set_id(Vec::new());
            self.nu_ids.insert(oid, empty);
        }
        Ok(())
    }

    /// The class an oid belongs to, if any.
    pub fn class_of(&self, oid: Oid) -> Option<ClassName> {
        self.oid_class.get(&oid).copied()
    }

    /// Is `oid` set-valued (its class's type is `{t}`)?
    pub fn is_set_valued(&self, oid: Oid) -> bool {
        self.class_of(oid)
            .and_then(|p| self.schema.is_set_valued_class(p).ok())
            .unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // ν — values
    // ------------------------------------------------------------------

    /// `ν(o)` — the value of `oid` if defined. Set-valued oids always have a
    /// value (possibly `{}`).
    pub fn value(&self, oid: Oid) -> Option<&OValue> {
        self.nu.get(&oid)
    }

    /// The *weak assignment* `ô = v` (Section 3.2, condition (†)): succeeds
    /// only if `ν(oid)` is currently undefined. Use on non-set-valued oids;
    /// the caller (the evaluator) handles per-step conflict resolution.
    pub fn define_value(&mut self, oid: Oid, v: OValue) -> Result<bool> {
        let class = self.class_of(oid).ok_or(ModelError::StrayOid(oid.raw()))?;
        if self.schema.is_set_valued_class(class)? {
            return Err(ModelError::Invalid(format!(
                "oid {oid} of class {class} is set-valued; use add_set_member"
            )));
        }
        if self.nu.contains_key(&oid) {
            return Ok(false);
        }
        let id = self.intern_noting_oids(&v);
        self.nu_ids.insert(oid, id);
        self.nu.insert(oid, v);
        Ok(true)
    }

    /// Id-native variant of [`Instance::define_value`]: `id` must come from
    /// this instance's [`ValueStore`].
    pub fn define_value_id(&mut self, oid: Oid, id: ValueId) -> Result<bool> {
        let class = self.class_of(oid).ok_or(ModelError::StrayOid(oid.raw()))?;
        if self.schema.is_set_valued_class(class)? {
            return Err(ModelError::Invalid(format!(
                "oid {oid} of class {class} is set-valued; use add_set_member"
            )));
        }
        if self.nu_ids.contains_key(&oid) {
            return Ok(false);
        }
        for &o in self.store.oids(id) {
            self.gen.reserve_above(o);
        }
        let v = self.store.resolve(id);
        self.nu_ids.insert(oid, id);
        self.nu.insert(oid, v);
        Ok(true)
    }

    /// Adds `v` to the set value of a set-valued oid (`ô(v)` facts are
    /// inflationary: the set only grows). Returns whether it was new.
    pub fn add_set_member(&mut self, oid: Oid, v: OValue) -> Result<bool> {
        let class = self.class_of(oid).ok_or(ModelError::StrayOid(oid.raw()))?;
        if !self.schema.is_set_valued_class(class)? {
            return Err(ModelError::Invalid(format!(
                "oid {oid} of class {class} is not set-valued; use define_value"
            )));
        }
        let id = self.intern_noting_oids(&v);
        self.add_set_member_mirrored(oid, id, v)
    }

    /// Id-native variant of [`Instance::add_set_member`]: `id` must come from
    /// this instance's [`ValueStore`].
    pub fn add_set_member_id(&mut self, oid: Oid, id: ValueId) -> Result<bool> {
        let class = self.class_of(oid).ok_or(ModelError::StrayOid(oid.raw()))?;
        if !self.schema.is_set_valued_class(class)? {
            return Err(ModelError::Invalid(format!(
                "oid {oid} of class {class} is not set-valued; use define_value"
            )));
        }
        for &o in self.store.oids(id) {
            self.gen.reserve_above(o);
        }
        let v = self.store.resolve(id);
        self.add_set_member_mirrored(oid, id, v)
    }

    /// Shared tail of the two `add_set_member` flavours: updates both the
    /// interned and the tree representation of `ν(oid)`.
    fn add_set_member_mirrored(&mut self, oid: Oid, id: ValueId, v: OValue) -> Result<bool> {
        let old = *self
            .nu_ids
            .get(&oid)
            .expect("set-valued oids always carry a set value");
        if self.store.set_contains(old, id) == Some(true) {
            return Ok(false);
        }
        let mut elems = self
            .store
            .as_set(old)
            .expect("set-valued value is a set")
            .to_vec();
        elems.push(id);
        let new_id = self.store.set_id(elems);
        self.nu_ids.insert(oid, new_id);
        match self.nu.get_mut(&oid) {
            Some(OValue::Set(s)) => {
                s.insert(v);
                Ok(true)
            }
            _ => unreachable!("set-valued oids always carry a set value"),
        }
    }

    /// Overwrites `ν(oid)` unconditionally. Not part of IQL's semantics
    /// (which is inflationary); provided for instance construction and for
    /// IQL\* deletion cascades.
    pub fn overwrite_value(&mut self, oid: Oid, v: OValue) -> Result<()> {
        if self.class_of(oid).is_none() {
            return Err(ModelError::StrayOid(oid.raw()));
        }
        let id = self.intern_noting_oids(&v);
        self.nu_ids.insert(oid, id);
        self.nu.insert(oid, v);
        Ok(())
    }

    /// Makes `ν(oid)` undefined (only legal for non-set-valued oids; used by
    /// deletion cascades).
    pub fn undefine_value(&mut self, oid: Oid) -> Result<()> {
        if self.is_set_valued(oid) {
            self.nu.insert(oid, OValue::empty_set());
            let empty = self.store.set_id(Vec::new());
            self.nu_ids.insert(oid, empty);
        } else {
            self.nu.remove(&oid);
            self.nu_ids.remove(&oid);
        }
        Ok(())
    }

    /// Deletes an oid entirely: removes it from its class, drops `ν(oid)`,
    /// and cascades through the instance (IQL\*, Section 4.5): relation
    /// tuples mentioning it outside set positions are removed; set members
    /// mentioning it are removed; non-set values mentioning it become
    /// undefined.
    pub fn delete_oid(&mut self, oid: Oid) -> Result<()> {
        let Some(class) = self.class_of(oid) else {
            return Ok(());
        };
        self.classes
            .get_mut(&class)
            .expect("class exists")
            .remove(&oid);
        self.oid_class.remove(&oid);
        self.nu.remove(&oid);
        // Deletions invalidate only the touched relations' indexes: a
        // relation whose facts never mention the dead oid keeps its extent
        // — and, because re-interning an unchanged tree yields the same id,
        // its indexes — intact through the mirror rebuild below.
        for (r, ids) in &self.rel_ids {
            if ids.iter().any(|&id| self.store.mentions_oid(id, oid)) {
                self.indexes.invalidate(*r);
            }
        }
        self.stats_epoch += 1;
        // Cascade through relations.
        for set in self.relations.values_mut() {
            let retained: BTreeSet<OValue> =
                set.iter().filter_map(|v| v.without_oid(oid)).collect();
            *set = retained;
        }
        // Cascade through ν.
        let oids: Vec<Oid> = self.nu.keys().copied().collect();
        for o in oids {
            let v = self.nu[&o].clone();
            if !v.mentions_oid(oid) {
                continue;
            }
            match v.without_oid(oid) {
                Some(clean) => {
                    self.nu.insert(o, clean);
                }
                None => {
                    // Value irreparably mentions the dead oid.
                    if self.is_set_valued(o) {
                        self.nu.insert(o, OValue::empty_set());
                    } else {
                        self.nu.remove(&o);
                    }
                }
            }
        }
        // Deletion is the one cold, non-inflationary path: rather than
        // patching the interned mirror edit-by-edit, rebuild it from the
        // surviving trees (re-interning is cheap — shared nodes dedup).
        self.rebuild_id_mirrors();
        Ok(())
    }

    /// Interns `v` and keeps the oid generator above any oid it mentions, so
    /// invention can never collide with adopted oids. Uses the store's
    /// cached oid metadata instead of re-walking the tree.
    fn intern_noting_oids(&mut self, v: &OValue) -> ValueId {
        let id = self.store.intern(v);
        for &o in self.store.oids(id) {
            self.gen.reserve_above(o);
        }
        id
    }

    /// Recomputes `rel_ids`/`nu_ids` from the tree representation. Only the
    /// deletion cascade needs this; every inflationary mutator maintains the
    /// mirrors incrementally.
    fn rebuild_id_mirrors(&mut self) {
        let store = &mut self.store;
        self.rel_ids = self
            .relations
            .iter()
            .map(|(r, set)| (*r, set.iter().map(|v| store.intern(v)).collect()))
            .collect();
        self.nu_ids = self.nu.iter().map(|(o, v)| (*o, store.intern(v))).collect();
    }

    // ------------------------------------------------------------------
    // Interned view — the ValueId mirror of ρ and ν
    // ------------------------------------------------------------------

    /// The hash-consing arena backing the interned mirror. Ids obtained
    /// from accessors on this instance resolve through this store.
    pub fn store(&self) -> &ValueStore {
        &self.store
    }

    /// Mutable access to the arena — for interning query-side values and
    /// absorbing worker overlays. The store is append-only, so this cannot
    /// invalidate any id already handed out.
    pub fn store_mut(&mut self) -> &mut ValueStore {
        &mut self.store
    }

    /// Interns an o-value into this instance's store without inserting it
    /// anywhere. Equal values get equal ids.
    pub fn intern_value(&mut self, v: &OValue) -> ValueId {
        self.store.intern(v)
    }

    /// `ρ(R)` as interned ids — mirrors [`Instance::relation`] exactly.
    pub fn relation_ids(&self, r: RelName) -> Result<&BTreeSet<ValueId>> {
        self.rel_ids.get(&r).ok_or(ModelError::UnknownRelation(r))
    }

    /// `ν(oid)` as an interned id — mirrors [`Instance::value`] exactly.
    pub fn value_id(&self, oid: Oid) -> Option<ValueId> {
        self.nu_ids.get(&oid).copied()
    }

    /// The whole of `ν` as interned ids.
    pub fn value_id_map(&self) -> &BTreeMap<Oid, ValueId> {
        &self.nu_ids
    }

    // ------------------------------------------------------------------
    // Secondary indexes and statistics
    // ------------------------------------------------------------------

    /// The instance's persistent secondary indexes (read-only).
    pub fn rel_indexes(&self) -> &RelIndexes {
        &self.indexes
    }

    /// Builds the `(r, attr)` secondary index if absent; cheap once built.
    /// Unknown relations are ignored (there is nothing to index). A fresh
    /// build changes the statistics picture (a new distinct-count census
    /// exists), so it bumps the stats epoch.
    pub fn ensure_rel_index(&mut self, r: RelName, attr: AttrName) {
        if let Some(facts) = self.rel_ids.get(&r) {
            if self.indexes.ensure(r, attr, facts, &self.store) {
                self.stats_epoch += 1;
            }
        }
    }

    /// The `(r, attr)` secondary index, if built.
    pub fn rel_index(&self, r: RelName, attr: AttrName) -> Option<&AttrIndex> {
        self.indexes.get(r, attr)
    }

    /// Cardinality statistics for cost-based planning.
    pub fn stats(&self) -> InstanceStats<'_> {
        InstanceStats::new(self)
    }

    /// The monotone statistics epoch: advances whenever cached cardinality
    /// estimates (extents, distinct counts, which indexes exist) may have
    /// gone stale enough to re-plan. A plan computed at epoch `e` stays
    /// valid while `stats_epoch()` still returns `e`.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// A read-only view of the interned mirror (ρ, π, ν as ids) that does
    /// **not** borrow the store — so callers can hold it alongside a
    /// worker-local [`crate::Overlay`] over [`Instance::store`].
    pub fn id_view(&self) -> IdView<'_> {
        IdView {
            schema: &self.schema,
            rel_ids: &self.rel_ids,
            classes: &self.classes,
            nu_ids: &self.nu_ids,
            oid_class: &self.oid_class,
            indexes: &self.indexes,
        }
    }

    /// Splits a mutable instance borrow into the mutable store and the
    /// read-only id view — how the evaluator's apply phase interns derived
    /// values while reading the current mirrors.
    pub fn store_and_view(&mut self) -> (&mut ValueStore, IdView<'_>) {
        (
            &mut self.store,
            IdView {
                schema: &self.schema,
                rel_ids: &self.rel_ids,
                classes: &self.classes,
                nu_ids: &self.nu_ids,
                oid_class: &self.oid_class,
                indexes: &self.indexes,
            },
        )
    }

    // ------------------------------------------------------------------
    // Derived views
    // ------------------------------------------------------------------

    /// `objects(I)` — every oid occurring in the instance. Uses the store's
    /// cached per-node oid sets instead of re-walking value trees.
    pub fn objects(&self) -> BTreeSet<Oid> {
        let mut out: BTreeSet<Oid> = self.oid_class.keys().copied().collect();
        for ids in self.rel_ids.values() {
            for &id in ids {
                out.extend(self.store.oids(id).iter().copied());
            }
        }
        for &id in self.nu_ids.values() {
            out.extend(self.store.oids(id).iter().copied());
        }
        out
    }

    /// `constants(I)` — every constant occurring in the instance.
    pub fn constants(&self) -> BTreeSet<Constant> {
        let mut out = BTreeSet::new();
        for set in self.relations.values() {
            for v in set {
                v.collect_constants(&mut out);
            }
        }
        for v in self.nu.values() {
            v.collect_constants(&mut out);
        }
        out
    }

    /// `ground-facts(I)` — the logic-programming representation
    /// (Section 2.3). Per the paper's convention, set-valued oids with empty
    /// value and non-set oids with undefined value produce no `ô` facts.
    pub fn ground_facts(&self) -> Vec<GroundFact> {
        let mut out = Vec::new();
        for (r, set) in &self.relations {
            for v in set {
                out.push(GroundFact::Rel(*r, v.clone()));
            }
        }
        for (p, oids) in &self.classes {
            for o in oids {
                out.push(GroundFact::Class(*p, *o));
            }
        }
        for (o, v) in &self.nu {
            if self.is_set_valued(*o) {
                if let OValue::Set(elems) = v {
                    for e in elems {
                        out.push(GroundFact::SetMember(*o, e.clone()));
                    }
                }
            } else {
                out.push(GroundFact::Value(*o, v.clone()));
            }
        }
        out
    }

    /// Total number of ground facts — the instance "size" used for
    /// data-complexity statements (Section 5).
    pub fn fact_count(&self) -> usize {
        let rel: usize = self.rel_ids.values().map(BTreeSet::len).sum();
        let cls: usize = self.classes.values().map(BTreeSet::len).sum();
        let vals: usize = self
            .nu_ids
            .iter()
            .map(|(o, &id)| {
                if self.is_set_valued(*o) {
                    self.store.as_set(id).map_or(0, <[ValueId]>::len)
                } else {
                    1
                }
            })
            .sum();
        rel + cls + vals
    }

    /// The maximum branching factor over `o-values(I)` (Lemma 5.7).
    pub fn branching_factor(&self) -> usize {
        let rel = self
            .relations
            .values()
            .flatten()
            .map(OValue::branching_factor)
            .max()
            .unwrap_or(0);
        let vals = self
            .nu
            .values()
            .map(OValue::branching_factor)
            .max()
            .unwrap_or(0);
        rel.max(vals)
    }

    /// A [`ClassMap`] view of `π`, for type enumeration.
    pub fn class_map(&self) -> ClassMap {
        ClassMap {
            classes: self.classes.clone(),
        }
    }

    /// Builds an [`EnumUniverse`] over this instance's active domain.
    /// The returned pair borrows nothing from `self`; pass references into
    /// [`crate::TypeExpr::enumerate`].
    pub fn enum_universe(&self) -> (Vec<Constant>, ClassMap) {
        (self.constants().into_iter().collect(), self.class_map())
    }

    /// Convenience wrapper around [`crate::TypeExpr::enumerate`] over this
    /// instance's active domain.
    pub fn enumerate_type(
        &self,
        ty: &crate::types::TypeExpr,
        budget: usize,
    ) -> Result<Vec<OValue>> {
        let (consts, cm) = self.enum_universe();
        ty.enumerate(&EnumUniverse {
            constants: &consts,
            classes: &cm,
            budget,
        })
    }

    /// Ground-fact difference against another instance of the same schema:
    /// `(added, removed)` — the facts in `self` but not `other`, and vice
    /// versa. A debugging/testing aid (e.g. comparing evaluator modes).
    pub fn diff(&self, other: &Instance) -> (Vec<GroundFact>, Vec<GroundFact>) {
        let mine: BTreeSet<GroundFact> = self.ground_facts().into_iter().collect();
        let theirs: BTreeSet<GroundFact> = other.ground_facts().into_iter().collect();
        (
            mine.difference(&theirs).cloned().collect(),
            theirs.difference(&mine).cloned().collect(),
        )
    }

    // ------------------------------------------------------------------
    // Validation (Definition 2.3.2)
    // ------------------------------------------------------------------

    /// Checks all conditions of Definition 2.3.2 plus the closure condition
    /// that every occurring oid belongs to some class.
    pub fn validate(&self) -> Result<()> {
        // Condition 1: ρ(R) ⊆ ⟦T(R)⟧π.
        for (r, set) in &self.relations {
            let ty = self.schema.relation_type(*r)?;
            for v in set {
                if !ty.member(v, self) {
                    return Err(ModelError::IllTypedRelation {
                        rel: *r,
                        value: v.to_string(),
                    });
                }
            }
        }
        // Condition 2: ν(o) ∈ ⟦T(P)⟧π for o ∈ π(P);
        // Condition 3: ν total on set-valued classes.
        for (p, oids) in &self.classes {
            let ty = self.schema.class_type(*p)?;
            let set_valued = self.schema.is_set_valued_class(*p)?;
            for o in oids {
                match self.nu.get(o) {
                    Some(v) => {
                        if !ty.member(v, self) {
                            return Err(ModelError::IllTypedOid {
                                class: *p,
                                oid: o.raw(),
                                value: v.to_string(),
                            });
                        }
                    }
                    None => {
                        if set_valued {
                            return Err(ModelError::UndefinedSetValuedOid {
                                class: *p,
                                oid: o.raw(),
                            });
                        }
                    }
                }
            }
        }
        // Closure: every occurring oid is in some class.
        for o in self.objects() {
            if self.class_of(o).is_none() {
                return Err(ModelError::StrayOid(o.raw()));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Projection and renaming
    // ------------------------------------------------------------------

    /// `I[S']` — the projection of the instance onto a projection `sub` of
    /// its schema (Section 3).
    pub fn project(&self, sub: &Arc<Schema>) -> Result<Instance> {
        if !self.schema.is_projection_of(sub) {
            return Err(ModelError::NotASubschema(format!("{sub}")));
        }
        let mut out = Instance::new(Arc::clone(sub));
        for r in sub.relations() {
            for v in self.relation(r)? {
                out.insert_unchecked(r, v.clone())?;
            }
        }
        for p in sub.classes() {
            for o in self.class(p)? {
                out.adopt_oid(p, *o)?;
                if let Some(v) = self.value(*o) {
                    out.overwrite_value(*o, v.clone())?;
                }
            }
        }
        Ok(out)
    }

    /// Applies a constant renaming to the whole instance; `map` must be
    /// injective on `constants(I)` (checked). Composing with
    /// [`Instance::rename_oids`] realizes an arbitrary DO-isomorphism
    /// (Section 4.1) — the transformation group under which
    /// db-transformations are generic (Definition 4.1.1, condition 3).
    pub fn rename_constants(&self, map: &BTreeMap<Constant, Constant>) -> Result<Instance> {
        let consts = self.constants();
        let mut seen = BTreeSet::new();
        for c in &consts {
            let target = map.get(c).cloned().unwrap_or_else(|| c.clone());
            if !seen.insert(target) {
                return Err(ModelError::Invalid(
                    "constant renaming is not injective".into(),
                ));
            }
        }
        let mut out = Instance::new(Arc::clone(&self.schema));
        for r in self.schema.relations() {
            for v in self.relation(r)? {
                out.insert_unchecked(r, v.rename_constants(map))?;
            }
        }
        for p in self.schema.classes() {
            for o in self.class(p)? {
                out.adopt_oid(p, *o)?;
                if let Some(v) = self.value(*o) {
                    out.overwrite_value(*o, v.rename_constants(map))?;
                }
            }
        }
        Ok(out)
    }

    /// Rebuilds an instance from ground facts over `schema` — the inverse
    /// of [`Instance::ground_facts`] (the paper's alternative
    /// representation, Section 2.3).
    pub fn from_ground_facts<I>(schema: Arc<Schema>, facts: I) -> Result<Instance>
    where
        I: IntoIterator<Item = GroundFact>,
    {
        let mut out = Instance::new(schema);
        let mut deferred: Vec<GroundFact> = Vec::new();
        // First pass: class facts (so oids exist for value facts).
        for fact in facts {
            match fact {
                GroundFact::Class(p, o) => out.adopt_oid(p, o)?,
                other => deferred.push(other),
            }
        }
        for fact in deferred {
            match fact {
                GroundFact::Rel(r, v) => {
                    out.insert_unchecked(r, v)?;
                }
                GroundFact::SetMember(o, v) => {
                    out.add_set_member(o, v)?;
                }
                GroundFact::Value(o, v) => {
                    if !out.define_value(o, v)? {
                        return Err(ModelError::Invalid(format!(
                            "conflicting value facts for {o}"
                        )));
                    }
                }
                GroundFact::Class(..) => unreachable!("handled in first pass"),
            }
        }
        Ok(out)
    }

    /// Applies an oid renaming to the whole instance; `map` must be
    /// injective on `objects(I)` (checked). The result is O-isomorphic to
    /// `self` when `map` is a bijection (Section 4.1).
    pub fn rename_oids(&self, map: &BTreeMap<Oid, Oid>) -> Result<Instance> {
        let objects = self.objects();
        let mut seen = BTreeSet::new();
        for o in &objects {
            let target = map.get(o).copied().unwrap_or(*o);
            if !seen.insert(target) {
                return Err(ModelError::Invalid(format!(
                    "oid renaming is not injective at {target}"
                )));
            }
        }
        let mut out = Instance::new(Arc::clone(&self.schema));
        for r in self.schema.relations() {
            for v in self.relation(r)? {
                out.insert_unchecked(r, v.rename_oids(map))?;
            }
        }
        for p in self.schema.classes() {
            for o in self.class(p)? {
                let o2 = map.get(o).copied().unwrap_or(*o);
                out.adopt_oid(p, o2)?;
                if let Some(v) = self.value(*o) {
                    out.overwrite_value(o2, v.rename_oids(map))?;
                }
            }
        }
        Ok(out)
    }
}

impl OidClasses for Instance {
    fn oid_in_class(&self, oid: Oid, class: ClassName) -> bool {
        self.class_of(oid) == Some(class)
    }
}

/// A borrow of an instance's interned mirror that leaves the backing
/// [`ValueStore`] free — see [`Instance::id_view`] and
/// [`Instance::store_and_view`].
#[derive(Clone, Copy)]
pub struct IdView<'a> {
    schema: &'a Arc<Schema>,
    rel_ids: &'a BTreeMap<RelName, BTreeSet<ValueId>>,
    classes: &'a BTreeMap<ClassName, BTreeSet<Oid>>,
    nu_ids: &'a BTreeMap<Oid, ValueId>,
    oid_class: &'a BTreeMap<Oid, ClassName>,
    indexes: &'a RelIndexes,
}

impl<'a> IdView<'a> {
    /// The instance's schema.
    pub fn schema(&self) -> &'a Arc<Schema> {
        self.schema
    }

    /// `ρ(R)` as interned ids.
    pub fn relation_ids(&self, r: RelName) -> Result<&'a BTreeSet<ValueId>> {
        self.rel_ids.get(&r).ok_or(ModelError::UnknownRelation(r))
    }

    /// `π(P)` — the extent of class `p`.
    pub fn class(&self, p: ClassName) -> Result<&'a BTreeSet<Oid>> {
        self.classes.get(&p).ok_or(ModelError::UnknownClass(p))
    }

    /// `ν(oid)` as an interned id.
    pub fn value_id(&self, oid: Oid) -> Option<ValueId> {
        self.nu_ids.get(&oid).copied()
    }

    /// The class an oid belongs to, if any.
    pub fn class_of(&self, oid: Oid) -> Option<ClassName> {
        self.oid_class.get(&oid).copied()
    }

    /// Is `oid` set-valued (its class's type is `{t}`)?
    pub fn is_set_valued(&self, oid: Oid) -> bool {
        self.class_of(oid)
            .and_then(|p| self.schema.is_set_valued_class(p).ok())
            .unwrap_or(false)
    }

    /// The persistent `(r, attr)` secondary index, if built. Snapshot of the
    /// instance at view creation — safe to probe from parallel workers.
    pub fn rel_index(&self, r: RelName, attr: AttrName) -> Option<&'a AttrIndex> {
        self.indexes.get(r, attr)
    }
}

impl OidClasses for IdView<'_> {
    fn oid_in_class(&self, oid: Oid, class: ClassName) -> bool {
        self.class_of(oid) == Some(class)
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        // Equality of data, not of generators: two instances are equal iff
        // they have the same schema contents, ρ, π, and ν.
        *self.schema == *other.schema
            && self.relations == other.relations
            && self.classes == other.classes
            && self.nu == other.nu
    }
}

impl Eq for Instance {}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instance {{")?;
        for fact in self.ground_facts() {
            writeln!(f, "  {fact}")?;
        }
        write!(f, "}}")
    }
}

/// Builds the Genesis instance of Example 1.1 over [`genesis_schema`].
/// Returns the instance together with the oids
/// `(adam, eve, cain, abel, seth, other)`.
///
/// [`genesis_schema`]: crate::schema::genesis_schema
pub fn genesis_instance() -> (Instance, [Oid; 6]) {
    use crate::schema::genesis_schema;
    let schema = genesis_schema().into_shared();
    let mut i = Instance::new(Arc::clone(&schema));
    let gen1 = ClassName::new("Gen1");
    let gen2 = ClassName::new("Gen2");
    let adam = i.create_oid(gen1).unwrap();
    let eve = i.create_oid(gen1).unwrap();
    let cain = i.create_oid(gen2).unwrap();
    let abel = i.create_oid(gen2).unwrap();
    let seth = i.create_oid(gen2).unwrap();
    let other = i.create_oid(gen2).unwrap();

    let children = OValue::set([
        OValue::oid(cain),
        OValue::oid(abel),
        OValue::oid(seth),
        OValue::oid(other),
    ]);
    i.define_value(
        adam,
        OValue::tuple([
            ("name", OValue::str("Adam")),
            ("spouse", OValue::oid(eve)),
            ("children", children.clone()),
        ]),
    )
    .unwrap();
    i.define_value(
        eve,
        OValue::tuple([
            ("name", OValue::str("Eve")),
            ("spouse", OValue::oid(adam)),
            ("children", children),
        ]),
    )
    .unwrap();
    i.define_value(
        cain,
        OValue::tuple([
            ("name", OValue::str("Cain")),
            (
                "occupations",
                OValue::set([
                    OValue::str("Farmer"),
                    OValue::str("Nomad"),
                    OValue::str("Artisan"),
                ]),
            ),
        ]),
    )
    .unwrap();
    i.define_value(
        abel,
        OValue::tuple([
            ("name", OValue::str("Abel")),
            ("occupations", OValue::set([OValue::str("Shepherd")])),
        ]),
    )
    .unwrap();
    i.define_value(
        seth,
        OValue::tuple([
            ("name", OValue::str("Seth")),
            ("occupations", OValue::empty_set()),
        ]),
    )
    .unwrap();
    // ν(other) stays undefined — Genesis is vague on this point.

    let founded = RelName::new("FoundedLineage");
    i.insert(founded, OValue::oid(cain)).unwrap();
    i.insert(founded, OValue::oid(seth)).unwrap();
    i.insert(founded, OValue::oid(other)).unwrap();

    let anc = RelName::new("AncestorOfCelebrity");
    i.insert(
        anc,
        OValue::tuple([("anc", OValue::oid(seth)), ("desc", OValue::str("Noah"))]),
    )
    .unwrap();
    i.insert(
        anc,
        OValue::tuple([
            ("anc", OValue::oid(cain)),
            ("desc", OValue::tuple([("spouse", OValue::str("Ada"))])),
        ]),
    )
    .unwrap();

    (i, [adam, eve, cain, abel, seth, other])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::types::TypeExpr;

    #[test]
    fn genesis_instance_validates() {
        let (i, oids) = genesis_instance();
        i.validate().unwrap();
        let [adam, _, cain, _, _, other] = oids;
        assert_eq!(i.class_of(adam), Some(ClassName::new("Gen1")));
        assert_eq!(i.class_of(cain), Some(ClassName::new("Gen2")));
        assert!(i.value(other).is_none(), "ν(other) is undefined");
        assert!(i.constants().contains(&Constant::str("Noah")));
        // Cyclicity: adam's value mentions eve and vice versa.
        let adam_val = i.value(adam).unwrap();
        assert!(adam_val.mentions_oid(oids[1]));
    }

    #[test]
    fn ground_facts_roundtrip_shape() {
        let (i, _) = genesis_instance();
        let facts = i.ground_facts();
        // 2 gen1 + 4 gen2 class facts, 3 + 2 relation facts, 5 value facts.
        let classes = facts
            .iter()
            .filter(|f| matches!(f, GroundFact::Class(..)))
            .count();
        let rels = facts
            .iter()
            .filter(|f| matches!(f, GroundFact::Rel(..)))
            .count();
        let vals = facts
            .iter()
            .filter(|f| matches!(f, GroundFact::Value(..)))
            .count();
        assert_eq!(classes, 6);
        assert_eq!(rels, 5);
        assert_eq!(vals, 5);
        assert_eq!(i.fact_count(), facts.len());
    }

    #[test]
    fn disjointness_is_enforced() {
        let schema = SchemaBuilder::new()
            .class("P1", TypeExpr::set_of(TypeExpr::base()))
            .class("P2", TypeExpr::set_of(TypeExpr::base()))
            .build()
            .unwrap()
            .into_shared();
        let mut i = Instance::new(schema);
        let o = i.create_oid(ClassName::new("P1")).unwrap();
        let err = i.adopt_oid(ClassName::new("P2"), o).unwrap_err();
        assert!(matches!(err, ModelError::NonDisjointClasses { .. }));
    }

    #[test]
    fn set_valued_default_is_empty_set() {
        let schema = SchemaBuilder::new()
            .class("PS", TypeExpr::set_of(TypeExpr::base()))
            .build()
            .unwrap()
            .into_shared();
        let mut i = Instance::new(schema);
        let o = i.create_oid(ClassName::new("PS")).unwrap();
        assert_eq!(i.value(o), Some(&OValue::empty_set()));
        i.validate().unwrap();
        assert!(i.add_set_member(o, OValue::int(1)).unwrap());
        assert!(!i.add_set_member(o, OValue::int(1)).unwrap());
    }

    #[test]
    fn weak_assignment_only_once() {
        let schema = SchemaBuilder::new()
            .class("PT", TypeExpr::tuple([("a", TypeExpr::base())]))
            .build()
            .unwrap()
            .into_shared();
        let mut i = Instance::new(schema);
        let o = i.create_oid(ClassName::new("PT")).unwrap();
        assert!(i
            .define_value(o, OValue::tuple([("a", OValue::int(1))]))
            .unwrap());
        // Second definition is refused (weak assignment).
        assert!(!i
            .define_value(o, OValue::tuple([("a", OValue::int(2))]))
            .unwrap());
        assert_eq!(i.value(o), Some(&OValue::tuple([("a", OValue::int(1))])));
    }

    #[test]
    fn stats_epoch_tracks_statistics_changes() {
        let schema = SchemaBuilder::new()
            .relation("R", TypeExpr::base())
            .class("P", TypeExpr::set_of(TypeExpr::base()))
            .build()
            .unwrap()
            .into_shared();
        let r = RelName::new("R");
        let mut i = Instance::new(schema);
        assert_eq!(i.stats_epoch(), 0);
        // The first insert crosses the power-of-two extent boundary at 1.
        i.insert(r, OValue::int(0)).unwrap();
        let e1 = i.stats_epoch();
        assert!(e1 > 0);
        // A duplicate changes no statistic.
        assert!(!i.insert(r, OValue::int(0)).unwrap());
        assert_eq!(i.stats_epoch(), e1);
        // Extent 2 crosses; extent 3 does not; extent 4 crosses again.
        i.insert(r, OValue::int(1)).unwrap();
        let e2 = i.stats_epoch();
        assert!(e2 > e1);
        i.insert(r, OValue::int(2)).unwrap();
        assert_eq!(i.stats_epoch(), e2, "extent 3 is not a crossing");
        i.insert(r, OValue::int(3)).unwrap();
        let e3 = i.stats_epoch();
        assert!(e3 > e2, "extent 4 is a crossing");
        // A fresh index build is a new distinct-count census; re-ensuring
        // the same index is not.
        i.ensure_rel_index(r, AttrName::new("a"));
        let e4 = i.stats_epoch();
        assert!(e4 > e3);
        i.ensure_rel_index(r, AttrName::new("a"));
        assert_eq!(i.stats_epoch(), e4);
        // Removal invalidates indexes and shrinks the extent: always a bump.
        i.remove(r, &OValue::int(0)).unwrap();
        let e5 = i.stats_epoch();
        assert!(e5 > e4);
        // Class extents participate in planning too: the first oid crosses.
        i.create_oid(ClassName::new("P")).unwrap();
        assert!(i.stats_epoch() > e5);
    }

    #[test]
    fn ill_typed_insert_rejected() {
        let schema = SchemaBuilder::new()
            .relation("R", TypeExpr::base())
            .build()
            .unwrap()
            .into_shared();
        let mut i = Instance::new(schema);
        assert!(matches!(
            i.insert(RelName::new("R"), OValue::empty_set()),
            Err(ModelError::IllTypedRelation { .. })
        ));
    }

    #[test]
    fn stray_oid_detected_by_validate() {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                TypeExpr::union(TypeExpr::base(), TypeExpr::class("PX")),
            )
            .class("PX", TypeExpr::unit())
            .build()
            .unwrap()
            .into_shared();
        let mut i = Instance::new(schema);
        // Insert an oid that belongs to no class, bypassing checks. Since
        // class membership is part of typing, this is caught as an ill-typed
        // relation fact (the StrayOid check is a belt-and-braces backstop
        // for values that escape typing altogether).
        i.insert_unchecked(RelName::new("R"), OValue::oid(Oid::from_raw(99)))
            .unwrap();
        assert!(matches!(
            i.validate(),
            Err(ModelError::IllTypedRelation { .. })
        ));
    }

    #[test]
    fn projection_keeps_only_subschema() {
        let (i, _) = genesis_instance();
        let sub = i
            .schema()
            .project(
                &BTreeSet::from([RelName::new("FoundedLineage")]),
                &BTreeSet::from([ClassName::new("Gen2"), ClassName::new("Gen1")]),
            )
            .unwrap()
            .into_shared();
        let j = i.project(&sub).unwrap();
        j.validate().unwrap();
        assert_eq!(j.relation(RelName::new("FoundedLineage")).unwrap().len(), 3);
        assert!(j.relation(RelName::new("AncestorOfCelebrity")).is_err());
    }

    #[test]
    fn rename_oids_produces_equal_structure() {
        let (i, oids) = genesis_instance();
        let map: BTreeMap<Oid, Oid> = oids
            .iter()
            .enumerate()
            .map(|(k, o)| (*o, Oid::from_raw(100 + k as u64)))
            .collect();
        let j = i.rename_oids(&map).unwrap();
        j.validate().unwrap();
        assert_ne!(i, j);
        // Renaming back gives the original.
        let back: BTreeMap<Oid, Oid> = map.iter().map(|(a, b)| (*b, *a)).collect();
        assert_eq!(j.rename_oids(&back).unwrap(), i);
    }

    #[test]
    fn non_injective_rename_rejected() {
        let (i, oids) = genesis_instance();
        let map = BTreeMap::from([(oids[2], oids[3])]); // cain ↦ abel (collision)
        assert!(i.rename_oids(&map).is_err());
    }

    #[test]
    fn delete_oid_cascades() {
        let (mut i, oids) = genesis_instance();
        let cain = oids[2];
        i.delete_oid(cain).unwrap();
        // cain left his class, FoundedLineage, adam/eve's children sets, and
        // the AncestorOfCelebrity tuple mentioning him is gone.
        assert_eq!(i.class_of(cain), None);
        assert!(!i
            .relation(RelName::new("FoundedLineage"))
            .unwrap()
            .contains(&OValue::oid(cain)));
        assert_eq!(
            i.relation(RelName::new("AncestorOfCelebrity"))
                .unwrap()
                .len(),
            1
        );
        for o in i.objects() {
            assert_ne!(o, cain);
        }
        i.validate().unwrap();
    }

    #[test]
    fn invention_avoids_adopted_oids() {
        let schema = SchemaBuilder::new()
            .class("PA", TypeExpr::unit())
            .build()
            .unwrap()
            .into_shared();
        let mut i = Instance::new(schema);
        i.adopt_oid(ClassName::new("PA"), Oid::from_raw(10))
            .unwrap();
        let fresh = i.create_oid(ClassName::new("PA")).unwrap();
        assert!(fresh.raw() > 10);
    }

    #[test]
    fn branching_factor_tracks_widest_node() {
        let (i, _) = genesis_instance();
        // adam's children set has 4 elements — the widest node around
        // (tuples have 3 fields).
        assert_eq!(i.branching_factor(), 4);
        let empty = Instance::new(Arc::clone(i.schema()));
        assert_eq!(empty.branching_factor(), 0);
    }

    #[test]
    fn diff_reports_fact_changes() {
        let (a, oids) = genesis_instance();
        let (mut b, _) = genesis_instance();
        b.remove(RelName::new("FoundedLineage"), &OValue::oid(oids[2]))
            .unwrap();
        b.insert(RelName::new("FoundedLineage"), OValue::oid(oids[3]))
            .unwrap();
        let (added, removed) = a.diff(&b);
        assert_eq!(added.len(), 1);
        assert_eq!(removed.len(), 1);
        let (a2, r2) = a.diff(&a);
        assert!(a2.is_empty() && r2.is_empty());
    }

    #[test]
    fn ground_facts_reconstruct_the_instance() {
        let (i, _) = genesis_instance();
        let j = Instance::from_ground_facts(Arc::clone(i.schema()), i.ground_facts()).unwrap();
        assert_eq!(i, j);
        j.validate().unwrap();
    }

    #[test]
    fn rename_constants_is_invertible() {
        let (i, _) = genesis_instance();
        let map = BTreeMap::from([
            (Constant::str("Adam"), Constant::str("Adamo")),
            (Constant::str("Noah"), Constant::str("Noe")),
        ]);
        let j = i.rename_constants(&map).unwrap();
        assert!(j.constants().contains(&Constant::str("Adamo")));
        assert!(!j.constants().contains(&Constant::str("Adam")));
        let back = BTreeMap::from([
            (Constant::str("Adamo"), Constant::str("Adam")),
            (Constant::str("Noe"), Constant::str("Noah")),
        ]);
        assert_eq!(j.rename_constants(&back).unwrap(), i);
    }

    #[test]
    fn non_injective_constant_rename_rejected() {
        let (i, _) = genesis_instance();
        let map = BTreeMap::from([(Constant::str("Adam"), Constant::str("Eve"))]);
        assert!(i.rename_constants(&map).is_err());
    }

    #[test]
    fn enumerate_type_over_instance() {
        let (i, _) = genesis_instance();
        let gen2 = TypeExpr::class("Gen2");
        let vals = i.enumerate_type(&gen2, 1000).unwrap();
        assert_eq!(vals.len(), 4);
    }
}
