//! O-isomorphism and DO-isomorphism of instances (Section 4.1).
//!
//! Two instances "contain the same information" when they are equal up to a
//! renaming of oids — an **O-isomorphism**. This is the equivalence under
//! which IQL programs are determinate (Theorem 4.1.3) and the foundation of
//! the db-transformation definition (Definition 4.1.1, condition 4).
//!
//! The search is a color-refinement-guided backtracking: oids are first
//! partitioned by a structural *color* (class, shape of their ν-value, and
//! their occurrences in relations, iterated to a fixpoint), then a DFS maps
//! same-colored oids across the two instances, with a final exact
//! verification by renaming. Worst-case exponential (graph isomorphism),
//! entirely adequate at reproduction scale; colors almost always
//! discriminate.
//!
//! [`orbits`] additionally computes automorphism orbits *within* one
//! instance — used by the IQL⁺ `choose` primitive (Section 4.4) to check
//! that a deterministic choice does not violate genericity.

use crate::idgen::Oid;
use crate::instance::Instance;
use crate::names::RelName;
use crate::ovalue::OValue;
use crate::store::{Node, ValueId, ValueReader, ValueStore};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

type Color = u64;

/// Computes content-derived colors for every oid of the instance.
/// Colors are comparable *across* instances because they hash structure,
/// never raw oid ids (or [`ValueId`]s, which are just as instance-local).
fn refine_colors(inst: &Instance) -> BTreeMap<Oid, Color> {
    let store = inst.store();
    let oids: Vec<Oid> = inst.objects().into_iter().collect();

    // Per-oid fact occurrences, computed once up front: the store caches
    // the oid set of every interned node, so finding which facts mention
    // an oid is a scan over each fact's precomputed sorted oid slice —
    // not a `mentions_oid` tree walk per (oid, fact, round).
    let mut occurrences: BTreeMap<Oid, Vec<(RelName, ValueId)>> =
        oids.iter().map(|&o| (o, Vec::new())).collect();
    for r in inst.schema().relations() {
        for &fid in inst.relation_ids(r).expect("schema relation") {
            for &o in store.oids(fid) {
                if let Some(list) = occurrences.get_mut(&o) {
                    list.push((r, fid));
                }
            }
        }
    }

    let mut colors: BTreeMap<Oid, Color> = oids
        .iter()
        .map(|&o| {
            let mut h = DefaultHasher::new();
            match inst.class_of(o) {
                Some(c) => c.as_str().hash(&mut h),
                None => "?stray".hash(&mut h),
            }
            inst.value(o).is_some().hash(&mut h);
            (o, h.finish())
        })
        .collect();

    // Iterate refinement until stable (or a conservative bound).
    for _round in 0..oids.len().max(2) {
        let mut next: BTreeMap<Oid, Color> = BTreeMap::new();
        for &o in &oids {
            let mut h = DefaultHasher::new();
            colors[&o].hash(&mut h);
            if let Some(vid) = inst.value_id(o) {
                hash_skeleton(store, vid, &colors, &mut h);
            }
            // Occurrences in relations: multiset of focused skeletons.
            let mut occ: Vec<u64> = Vec::new();
            for &(r, fid) in &occurrences[&o] {
                let mut fh = DefaultHasher::new();
                r.as_str().hash(&mut fh);
                hash_focused(store, fid, o, &colors, &mut fh);
                occ.push(fh.finish());
            }
            occ.sort_unstable();
            occ.hash(&mut h);
            next.insert(o, h.finish());
        }
        if next == colors {
            break;
        }
        colors = next;
    }
    colors
}

/// Hashes an interned o-value with oids replaced by their colors.
fn hash_skeleton(
    store: &ValueStore,
    id: ValueId,
    colors: &BTreeMap<Oid, Color>,
    h: &mut DefaultHasher,
) {
    match store.node(id) {
        Node::Const(c) => {
            0u8.hash(h);
            c.hash(h);
        }
        Node::Oid(o) => {
            1u8.hash(h);
            colors.get(o).copied().unwrap_or(0).hash(h);
        }
        Node::Tuple(fields) => {
            2u8.hash(h);
            for &(a, fv) in fields.iter() {
                a.as_str().hash(h);
                hash_skeleton(store, fv, colors, h);
            }
        }
        Node::Set(elems) => {
            3u8.hash(h);
            let mut hs: Vec<u64> = elems
                .iter()
                .map(|&e| {
                    let mut eh = DefaultHasher::new();
                    hash_skeleton(store, e, colors, &mut eh);
                    eh.finish()
                })
                .collect();
            hs.sort_unstable();
            hs.hash(h);
        }
    }
}

/// Like [`hash_skeleton`] but distinguishes the focused oid from others.
fn hash_focused(
    store: &ValueStore,
    id: ValueId,
    focus: Oid,
    colors: &BTreeMap<Oid, Color>,
    h: &mut DefaultHasher,
) {
    match store.node(id) {
        Node::Const(c) => {
            0u8.hash(h);
            c.hash(h);
        }
        Node::Oid(o) => {
            if *o == focus {
                9u8.hash(h);
            } else {
                1u8.hash(h);
                colors.get(o).copied().unwrap_or(0).hash(h);
            }
        }
        Node::Tuple(fields) => {
            2u8.hash(h);
            for &(a, fv) in fields.iter() {
                a.as_str().hash(h);
                hash_focused(store, fv, focus, colors, h);
            }
        }
        Node::Set(elems) => {
            3u8.hash(h);
            let mut hs: Vec<u64> = elems
                .iter()
                .map(|&e| {
                    let mut eh = DefaultHasher::new();
                    hash_focused(store, e, focus, colors, &mut eh);
                    eh.finish()
                })
                .collect();
            hs.sort_unstable();
            hs.hash(h);
        }
    }
}

struct Search<'a> {
    a: &'a Instance,
    b: &'a Instance,
    a_oids: Vec<Oid>,
    colors_a: BTreeMap<Oid, Color>,
    colors_b: BTreeMap<Oid, Color>,
    by_color_b: BTreeMap<Color, Vec<Oid>>,
    map: BTreeMap<Oid, Oid>,
    used: BTreeSet<Oid>,
    nodes: usize,
    node_budget: usize,
}

impl<'a> Search<'a> {
    fn value_compatible(&self, va: &OValue, vb: &OValue) -> bool {
        match (va, vb) {
            (OValue::Const(c1), OValue::Const(c2)) => c1 == c2,
            (OValue::Oid(o1), OValue::Oid(o2)) => match self.map.get(o1) {
                Some(m) => m == o2,
                None => !self.used.contains(o2) && self.colors_a.get(o1) == self.colors_b.get(o2),
            },
            (OValue::Tuple(f1), OValue::Tuple(f2)) => {
                f1.len() == f2.len()
                    && f1.keys().eq(f2.keys())
                    && f1.iter().all(|(a, v1)| self.value_compatible(v1, &f2[a]))
            }
            // Sets: only a size check here (exact matching deferred to the
            // leaf verification) — cheap and sound.
            (OValue::Set(s1), OValue::Set(s2)) => s1.len() == s2.len(),
            _ => false,
        }
    }

    fn consistent(&self, oa: Oid, ob: Oid) -> bool {
        if self.a.class_of(oa) != self.b.class_of(ob) {
            return false;
        }
        match (self.a.value(oa), self.b.value(ob)) {
            (None, None) => true,
            (Some(va), Some(vb)) => self.value_compatible(va, vb),
            _ => false,
        }
    }

    fn dfs(&mut self, idx: usize) -> bool {
        self.nodes += 1;
        if self.nodes > self.node_budget {
            return false;
        }
        if idx == self.a_oids.len() {
            // Exact leaf verification.
            return match self.a.rename_oids(&self.map) {
                Ok(renamed) => renamed == *self.b,
                Err(_) => false,
            };
        }
        let oa = self.a_oids[idx];
        if self.map.contains_key(&oa) {
            return self.dfs(idx + 1);
        }
        let color = self.colors_a[&oa];
        let candidates: Vec<Oid> = self.by_color_b.get(&color).cloned().unwrap_or_default();
        for ob in candidates {
            if self.used.contains(&ob) || !self.consistent(oa, ob) {
                continue;
            }
            self.map.insert(oa, ob);
            self.used.insert(ob);
            if self.dfs(idx + 1) {
                return true;
            }
            self.map.remove(&oa);
            self.used.remove(&ob);
        }
        false
    }
}

/// Searches for an O-isomorphism `h` with `h(a) = b`, honoring `pins`
/// (forced assignments). Returns the full oid bijection if found.
pub fn find_o_isomorphism_pinned(
    a: &Instance,
    b: &Instance,
    pins: &BTreeMap<Oid, Oid>,
) -> Option<BTreeMap<Oid, Oid>> {
    if a.schema() != b.schema() {
        return None;
    }
    let a_objs = a.objects();
    let b_objs = b.objects();
    if a_objs.len() != b_objs.len() {
        return None;
    }
    // Constants must agree exactly (DO-isomorphism with identity on D).
    if a.constants() != b.constants() {
        return None;
    }
    let colors_a = refine_colors(a);
    let colors_b = refine_colors(b);
    // Color histograms must agree.
    let mut hist_a: BTreeMap<Color, usize> = BTreeMap::new();
    for c in colors_a.values() {
        *hist_a.entry(*c).or_default() += 1;
    }
    let mut hist_b: BTreeMap<Color, usize> = BTreeMap::new();
    for c in colors_b.values() {
        *hist_b.entry(*c).or_default() += 1;
    }
    if hist_a != hist_b {
        return None;
    }
    let mut by_color_b: BTreeMap<Color, Vec<Oid>> = BTreeMap::new();
    for (&o, &c) in &colors_b {
        by_color_b.entry(c).or_default().push(o);
    }
    // Order a-oids by candidate-set size (most constrained first).
    let mut a_oids: Vec<Oid> = a_objs.iter().copied().collect();
    a_oids.sort_by_key(|o| by_color_b.get(&colors_a[o]).map_or(0, Vec::len));

    let mut search = Search {
        a,
        b,
        a_oids,
        colors_a,
        colors_b,
        by_color_b,
        map: BTreeMap::new(),
        used: BTreeSet::new(),
        nodes: 0,
        node_budget: 2_000_000,
    };
    // Install pins.
    for (&oa, &ob) in pins {
        if !a_objs.contains(&oa) || !b_objs.contains(&ob) {
            return None;
        }
        if !search.consistent(oa, ob) {
            return None;
        }
        search.map.insert(oa, ob);
        search.used.insert(ob);
    }
    if search.dfs(0) {
        Some(search.map)
    } else {
        None
    }
}

/// Searches for an O-isomorphism `h` with `h(a) = b`.
pub fn find_o_isomorphism(a: &Instance, b: &Instance) -> Option<BTreeMap<Oid, Oid>> {
    find_o_isomorphism_pinned(a, b, &BTreeMap::new())
}

/// Are `a` and `b` O-isomorphic (equal up to renaming of oids)?
///
/// ```
/// use iql_model::instance::genesis_instance;
/// use iql_model::iso::are_o_isomorphic;
/// use std::collections::BTreeMap;
/// use iql_model::Oid;
/// let (i, oids) = genesis_instance();
/// let map: BTreeMap<Oid, Oid> = oids
///     .iter()
///     .enumerate()
///     .map(|(k, o)| (*o, Oid::from_raw(700 + k as u64)))
///     .collect();
/// let j = i.rename_oids(&map).unwrap();
/// assert!(are_o_isomorphic(&i, &j));
/// ```
pub fn are_o_isomorphic(a: &Instance, b: &Instance) -> bool {
    find_o_isomorphism(a, b).is_some()
}

/// Partitions `candidates` into automorphism orbits of `inst`: two oids
/// share an orbit iff some automorphism of the instance maps one to the
/// other. Used by `choose` (Section 4.4): picking any element of a full
/// orbit is generic.
pub fn orbits(inst: &Instance, candidates: &[Oid]) -> Vec<Vec<Oid>> {
    let mut remaining: Vec<Oid> = candidates.to_vec();
    let mut out: Vec<Vec<Oid>> = Vec::new();
    while let Some(rep) = remaining.first().copied() {
        let mut orbit = vec![rep];
        let mut rest = Vec::new();
        for &o in &remaining[1..] {
            let pins = BTreeMap::from([(rep, o)]);
            if find_o_isomorphism_pinned(inst, inst, &pins).is_some() {
                orbit.push(o);
            } else {
                rest.push(o);
            }
        }
        out.push(orbit);
        remaining = rest;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::genesis_instance;
    use crate::names::{ClassName, RelName};
    use crate::schema::SchemaBuilder;
    use crate::types::TypeExpr;
    use std::sync::Arc;

    #[test]
    fn instance_is_isomorphic_to_itself() {
        let (i, _) = genesis_instance();
        assert!(are_o_isomorphic(&i, &i));
    }

    #[test]
    fn renamed_instance_is_isomorphic() {
        let (i, oids) = genesis_instance();
        let map: BTreeMap<Oid, Oid> = oids
            .iter()
            .enumerate()
            .map(|(k, o)| (*o, Oid::from_raw(1000 - k as u64)))
            .collect();
        let j = i.rename_oids(&map).unwrap();
        let found = find_o_isomorphism(&i, &j).unwrap();
        assert_eq!(i.rename_oids(&found).unwrap(), j);
    }

    #[test]
    fn different_data_is_not_isomorphic() {
        let (i, _) = genesis_instance();
        let (mut j, _) = genesis_instance();
        j.insert(
            RelName::new("AncestorOfCelebrity"),
            crate::ovalue::OValue::tuple([
                (
                    "anc",
                    crate::ovalue::OValue::oid(
                        *j.class(ClassName::new("Gen2"))
                            .unwrap()
                            .iter()
                            .next()
                            .unwrap(),
                    ),
                ),
                ("desc", crate::ovalue::OValue::str("Enoch")),
            ]),
        )
        .unwrap();
        assert!(!are_o_isomorphic(&i, &j));
    }

    #[test]
    fn constants_must_match_exactly() {
        // O-isomorphisms fix constants pointwise: renaming a constant breaks
        // isomorphism even if the structure is identical.
        let schema = SchemaBuilder::new()
            .relation("R", TypeExpr::base())
            .build()
            .unwrap()
            .into_shared();
        let mut a = Instance::new(Arc::clone(&schema));
        a.insert(RelName::new("R"), OValue::str("x")).unwrap();
        let mut b = Instance::new(schema);
        b.insert(RelName::new("R"), OValue::str("y")).unwrap();
        assert!(!are_o_isomorphic(&a, &b));
    }

    fn quadrangle() -> (Instance, [Oid; 4]) {
        // The Figure-1 instance: four oids in a directed cycle, with a and b
        // attached to opposite diagonals.
        let schema = SchemaBuilder::new()
            .class("Q", TypeExpr::unit())
            .relation(
                "E",
                TypeExpr::tuple([
                    ("b", TypeExpr::class("Q")),
                    ("c", TypeExpr::union(TypeExpr::base(), TypeExpr::class("Q"))),
                ]),
            )
            .build()
            .unwrap()
            .into_shared();
        let mut i = Instance::new(schema);
        let q = ClassName::new("Q");
        let o1 = i.create_oid(q).unwrap();
        let o2 = i.create_oid(q).unwrap();
        let o3 = i.create_oid(q).unwrap();
        let o4 = i.create_oid(q).unwrap();
        let e = RelName::new("E");
        let pairs = [
            (o1, OValue::str("a")),
            (o3, OValue::str("a")),
            (o2, OValue::str("b")),
            (o4, OValue::str("b")),
            (o4, OValue::oid(o1)),
            (o3, OValue::oid(o4)),
            (o2, OValue::oid(o3)),
            (o1, OValue::oid(o2)),
        ];
        for (src, dst) in pairs {
            i.insert(e, OValue::tuple([("b", OValue::oid(src)), ("c", dst)]))
                .unwrap();
        }
        (i, [o1, o2, o3, o4])
    }

    #[test]
    fn quadrangle_automorphism_orbits() {
        // The paper's Claim 4.3.2 automorphism h0 (with constants swapped)
        // is a DO-isomorphism, not an O-isomorphism; with constants fixed,
        // the quadrangle still has the rotation o1↦o3, o3↦o1, o2↦o4, o4↦o2.
        let (i, [o1, o2, o3, o4]) = quadrangle();
        let orbs = orbits(&i, &[o1, o2, o3, o4]);
        // o1,o3 are attached to "a"; o2,o4 to "b"; rotation by two maps
        // o1↔o3 and o2↔o4, so there are exactly two orbits of size two.
        assert_eq!(orbs.len(), 2);
        assert!(orbs.iter().all(|o| o.len() == 2));
    }

    #[test]
    fn pinned_search_respects_pins() {
        let (i, oids) = genesis_instance();
        // Pinning cain to abel cannot extend to an isomorphism (their
        // occupation sets differ).
        let pins = BTreeMap::from([(oids[2], oids[3])]);
        assert!(find_o_isomorphism_pinned(&i, &i, &pins).is_none());
        // Pinning cain to itself succeeds.
        let pins = BTreeMap::from([(oids[2], oids[2])]);
        assert!(find_o_isomorphism_pinned(&i, &i, &pins).is_some());
    }

    #[test]
    fn genesis_orbits_are_singletons_except_symmetry() {
        let (i, oids) = genesis_instance();
        // All six persons are structurally distinguishable (names are
        // constants), so every orbit is a singleton.
        let orbs = orbits(&i, &oids);
        assert_eq!(orbs.len(), 6);
    }

    use crate::ovalue::OValue;
}
