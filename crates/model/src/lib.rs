//! # iql-model — the object-based data model
//!
//! This crate implements the *structural part* of the data model of
//! Abiteboul & Kanellakis, *Object Identity as a Query Language Primitive*
//! (SIGMOD 1989 / JACM 45(5) 1998), Sections 2 and 6:
//!
//! * [`OValue`] — o-values: constants, oids, and finite trees built from
//!   them with tuple and set constructors (Definition 2.1.1).
//! * [`TypeExpr`] — the type language `∅ | D | P | [A1:t,…] | {t} | t∨t | t∧t`
//!   with its interpretation relative to an oid assignment (Section 2.2),
//!   intersection reduction and elimination (Proposition 2.2.1), and the
//!   `*`-interpretation used for inheritance (Section 6.2).
//! * [`Schema`] and [`Instance`] — database schemas `(R, P, T)` and instances
//!   `(ρ, π, ν)` with disjoint oid assignments and a partial value map
//!   (Definitions 2.3.1 and 2.3.2), including the `ground-facts`
//!   representation and instance validation.
//! * [`iso`] — O-isomorphism and DO-isomorphism testing (Section 4.1), the
//!   equivalence under which IQL programs are determinate.
//! * [`inherit`] — isa hierarchies, inherited oid assignments, and the
//!   reduction of inheritance to union types (Section 6).
//!
//! Cyclic structures (the raison d'être of oids) are represented exactly as
//! in the paper: o-values themselves are finite trees, and cyclicity lives
//! only in the partial map `ν : Oid → OValue`. This sidesteps the
//! ownership problems cyclic data usually causes in Rust — an oid is a plain
//! interned identifier, and dereferencing goes through the instance.

pub mod constant;
pub mod error;
pub mod idgen;
pub mod index;
pub mod inherit;
pub mod instance;
pub mod iso;
pub mod names;
pub mod ovalue;
pub mod schema;
pub mod stats;
pub mod store;
pub mod types;

pub use constant::Constant;
pub use error::ModelError;
pub use idgen::{Oid, OidGen};
pub use index::{AttrIndex, RelIndexes};
pub use inherit::{IsaHierarchy, SchemaWithIsa};
pub use instance::{GroundFact, IdView, Instance};
pub use names::{AttrName, ClassName, RelName};
pub use ovalue::OValue;
pub use schema::{Schema, SchemaBuilder};
pub use stats::InstanceStats;
pub use store::{Node, Overlay, OverlayLog, ValueId, ValueInterner, ValueReader, ValueStore};
pub use types::{ClassMap, EnumUniverse, OidClasses, TypeExpr};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
