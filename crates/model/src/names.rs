//! Interned names for relations, classes, and attributes.
//!
//! The paper assumes countably infinite, pairwise disjoint sets of relation
//! names, class names, and attributes (Section 2.1). We intern each kind in a
//! process-global table so that names are `Copy` references with cheap
//! comparison; ordering and hashing are by string content, so canonical forms
//! (e.g. attribute order inside tuple o-values) are deterministic across runs.
//!
//! Interned strings are leaked; the set of schema-level names in any run is
//! small and bounded, so this is the standard trade-off.

use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A process-global string interner for one namespace.
struct Interner {
    set: Mutex<HashSet<&'static str>>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            set: Mutex::new(HashSet::new()),
        }
    }

    fn intern(&self, s: &str) -> &'static str {
        let mut set = self.set.lock().expect("interner poisoned");
        if let Some(&existing) = set.get(s) {
            return existing;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        set.insert(leaked);
        leaked
    }
}

macro_rules! interned_name {
    ($(#[$doc:meta])* $name:ident, $table:ident) => {
        static $table: OnceLock<Interner> = OnceLock::new();

        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(&'static str);

        impl $name {
            /// Interns `s` in this namespace.
            pub fn new(s: &str) -> Self {
                $name($table.get_or_init(Interner::new).intern(s))
            }

            /// The string this name was interned from.
            pub fn as_str(&self) -> &'static str {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:?})", stringify!($name), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name::new(s)
            }
        }
    };
}

interned_name!(
    /// An interned relation name `R` (Section 2.1, atomic element kind 1).
    RelName,
    REL_TABLE
);
interned_name!(
    /// An interned class name `P` (Section 2.1, atomic element kind 2).
    ClassName,
    CLASS_TABLE
);
interned_name!(
    /// An interned attribute `A` (Section 2.1, atomic element kind 3).
    AttrName,
    ATTR_TABLE
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = RelName::new("R");
        let b = RelName::new("R");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "R");
        // Dedup means pointer equality too.
        assert_eq!(a.as_str().as_ptr(), b.as_str().as_ptr());
    }

    #[test]
    fn distinct_strings_distinct_names() {
        let a = ClassName::new("P1");
        let b = ClassName::new("P2");
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let z = AttrName::new("zeta");
        let a = AttrName::new("alpha");
        assert!(a < z);
    }

    #[test]
    fn namespaces_are_disjoint_types() {
        // Same spelling in different namespaces is fine; they are different
        // Rust types, mirroring the paper's pairwise-disjoint name sets.
        let r = RelName::new("X");
        let c = ClassName::new("X");
        assert_eq!(r.as_str(), c.as_str());
    }

    #[test]
    fn display_matches_source() {
        let a = AttrName::new("children");
        assert_eq!(format!("{a}"), "children");
        assert!(format!("{a:?}").contains("children"));
    }
}
