//! O-values (Definition 2.1.1).
//!
//! The set of o-values is the smallest set containing `D ∪ O` closed under
//! finite tupling `[A1:v1, …, Ak:vk]` and finite setting `{v1, …, vk}`.
//!
//! We represent an o-value as a finite tree, exactly as the paper does
//! (Section 2.1): leaf nodes carry a constant or an oid, `×`-nodes carry
//! attribute-labelled children, and `⋆`-nodes carry an unordered,
//! duplicate-free collection of children. Using `BTreeMap`/`BTreeSet` makes
//! duplicate elimination and attribute canonicalization *structural*: two
//! o-values are equal iff their trees are, with set children compared as
//! sets. This is the canonical-form idiom used throughout database engines —
//! normalization at construction, `O(1)`-comparable thereafter.

use crate::constant::Constant;
use crate::idgen::Oid;
use crate::names::AttrName;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An o-value: constant, oid, tuple, or set (Definition 2.1.1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OValue {
    /// A constant from the base domain `D`.
    Const(Constant),
    /// An object identity from `O`.
    Oid(Oid),
    /// A finite tuple with distinct attributes; `[]` is the empty tuple.
    Tuple(BTreeMap<AttrName, OValue>),
    /// A finite, duplicate-free set; `{}` is the empty set.
    Set(BTreeSet<OValue>),
}

impl OValue {
    /// The empty tuple `[]`.
    pub fn unit() -> Self {
        OValue::Tuple(BTreeMap::new())
    }

    /// The empty set `{}`.
    pub fn empty_set() -> Self {
        OValue::Set(BTreeSet::new())
    }

    /// Builds a tuple from attribute/value pairs. Later duplicates of an
    /// attribute overwrite earlier ones (callers building from parsed syntax
    /// should reject duplicates before this point).
    pub fn tuple<I, A>(fields: I) -> Self
    where
        I: IntoIterator<Item = (A, OValue)>,
        A: Into<AttrName>,
    {
        OValue::Tuple(fields.into_iter().map(|(a, v)| (a.into(), v)).collect())
    }

    /// Builds a set; duplicates are eliminated structurally.
    pub fn set<I>(elems: I) -> Self
    where
        I: IntoIterator<Item = OValue>,
    {
        OValue::Set(elems.into_iter().collect())
    }

    /// A string constant leaf.
    pub fn str(s: &str) -> Self {
        OValue::Const(Constant::str(s))
    }

    /// An integer constant leaf.
    pub fn int(i: i64) -> Self {
        OValue::Const(Constant::int(i))
    }

    /// An oid leaf.
    pub fn oid(o: Oid) -> Self {
        OValue::Oid(o)
    }

    /// Is this a set o-value?
    pub fn is_set(&self) -> bool {
        matches!(self, OValue::Set(_))
    }

    /// Set membership test; `None` if `self` is not a set.
    pub fn set_contains(&self, v: &OValue) -> Option<bool> {
        match self {
            OValue::Set(s) => Some(s.contains(v)),
            _ => None,
        }
    }

    /// All oids occurring anywhere in this tree, collected into `out`.
    pub fn collect_oids(&self, out: &mut BTreeSet<Oid>) {
        match self {
            OValue::Const(_) => {}
            OValue::Oid(o) => {
                out.insert(*o);
            }
            OValue::Tuple(fields) => {
                for v in fields.values() {
                    v.collect_oids(out);
                }
            }
            OValue::Set(elems) => {
                for v in elems {
                    v.collect_oids(out);
                }
            }
        }
    }

    /// All constants occurring anywhere in this tree, collected into `out`.
    pub fn collect_constants(&self, out: &mut BTreeSet<Constant>) {
        match self {
            OValue::Const(c) => {
                out.insert(c.clone());
            }
            OValue::Oid(_) => {}
            OValue::Tuple(fields) => {
                for v in fields.values() {
                    v.collect_constants(out);
                }
            }
            OValue::Set(elems) => {
                for v in elems {
                    v.collect_constants(out);
                }
            }
        }
    }

    /// Does any oid occur in this tree?
    pub fn mentions_oid(&self, oid: Oid) -> bool {
        match self {
            OValue::Const(_) => false,
            OValue::Oid(o) => *o == oid,
            OValue::Tuple(fields) => fields.values().any(|v| v.mentions_oid(oid)),
            OValue::Set(elems) => elems.iter().any(|v| v.mentions_oid(oid)),
        }
    }

    /// Number of nodes in the tree representation.
    pub fn size(&self) -> usize {
        match self {
            OValue::Const(_) | OValue::Oid(_) => 1,
            OValue::Tuple(fields) => 1 + fields.values().map(OValue::size).sum::<usize>(),
            OValue::Set(elems) => 1 + elems.iter().map(OValue::size).sum::<usize>(),
        }
    }

    /// Maximum out-degree of any node — the *branching factor* used in the
    /// proof of Lemma 5.7 to bound invention-free programs.
    pub fn branching_factor(&self) -> usize {
        match self {
            OValue::Const(_) | OValue::Oid(_) => 0,
            OValue::Tuple(fields) => fields.len().max(
                fields
                    .values()
                    .map(OValue::branching_factor)
                    .max()
                    .unwrap_or(0),
            ),
            OValue::Set(elems) => elems.len().max(
                elems
                    .iter()
                    .map(OValue::branching_factor)
                    .max()
                    .unwrap_or(0),
            ),
        }
    }

    /// Applies an oid renaming to this tree, leaving unmapped oids in place.
    /// This is the action of an O-isomorphism on o-values (Section 4.1).
    pub fn rename_oids(&self, map: &BTreeMap<Oid, Oid>) -> OValue {
        if map.is_empty() {
            return self.clone();
        }
        match self {
            OValue::Const(c) => OValue::Const(c.clone()),
            OValue::Oid(o) => OValue::Oid(*map.get(o).unwrap_or(o)),
            OValue::Tuple(fields) => OValue::Tuple(
                fields
                    .iter()
                    .map(|(a, v)| (*a, v.rename_oids(map)))
                    .collect(),
            ),
            OValue::Set(elems) => OValue::Set(elems.iter().map(|v| v.rename_oids(map)).collect()),
        }
    }

    /// Applies a constant renaming to this tree, leaving unmapped constants
    /// in place. Together with [`OValue::rename_oids`] this is the action
    /// of a DO-isomorphism (Section 4.1).
    pub fn rename_constants(&self, map: &BTreeMap<Constant, Constant>) -> OValue {
        if map.is_empty() {
            return self.clone();
        }
        match self {
            OValue::Const(c) => OValue::Const(map.get(c).cloned().unwrap_or_else(|| c.clone())),
            OValue::Oid(o) => OValue::Oid(*o),
            OValue::Tuple(fields) => OValue::Tuple(
                fields
                    .iter()
                    .map(|(a, v)| (*a, v.rename_constants(map)))
                    .collect(),
            ),
            OValue::Set(elems) => {
                OValue::Set(elems.iter().map(|v| v.rename_constants(map)).collect())
            }
        }
    }

    /// Removes every (transitive) occurrence of `oid` from set elements in
    /// this tree; returns `None` if the value itself becomes illegal because
    /// `oid` occurs outside a set context (the cascade rule of IQL\*
    /// deletions, Section 4.5).
    pub fn without_oid(&self, oid: Oid) -> Option<OValue> {
        match self {
            OValue::Const(_) => Some(self.clone()),
            OValue::Oid(o) => {
                if *o == oid {
                    None
                } else {
                    Some(self.clone())
                }
            }
            OValue::Tuple(fields) => {
                let mut out = BTreeMap::new();
                for (a, v) in fields {
                    out.insert(*a, v.without_oid(oid)?);
                }
                Some(OValue::Tuple(out))
            }
            OValue::Set(elems) => Some(OValue::Set(
                elems.iter().filter_map(|v| v.without_oid(oid)).collect(),
            )),
        }
    }
}

impl fmt::Debug for OValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for OValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OValue::Const(c) => write!(f, "{c}"),
            OValue::Oid(o) => write!(f, "{o}"),
            OValue::Tuple(fields) => {
                write!(f, "[")?;
                for (i, (a, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}: {v}")?;
                }
                write!(f, "]")
            }
            OValue::Set(elems) => {
                write!(f, "{{")?;
                for (i, v) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<Constant> for OValue {
    fn from(c: Constant) -> Self {
        OValue::Const(c)
    }
}

impl From<Oid> for OValue {
    fn from(o: Oid) -> Self {
        OValue::Oid(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(n: u64) -> Oid {
        Oid::from_raw(n)
    }

    #[test]
    fn sets_eliminate_duplicates() {
        let s = OValue::set([OValue::int(1), OValue::int(1), OValue::int(2)]);
        match &s {
            OValue::Set(elems) => assert_eq!(elems.len(), 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn set_equality_is_order_insensitive() {
        let a = OValue::set([OValue::int(1), OValue::int(2)]);
        let b = OValue::set([OValue::int(2), OValue::int(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_set_vs_empty_tuple() {
        // The paper stresses the difference between {} (empty set) and []
        // (empty tuple): they are distinct o-values.
        assert_ne!(OValue::empty_set(), OValue::unit());
    }

    #[test]
    fn tuple_attribute_order_is_canonical() {
        let a = OValue::tuple([("x", OValue::int(1)), ("y", OValue::int(2))]);
        let b = OValue::tuple([("y", OValue::int(2)), ("x", OValue::int(1))]);
        assert_eq!(a, b);
    }

    #[test]
    fn collect_oids_and_constants() {
        let v = OValue::tuple([
            ("name", OValue::str("Adam")),
            (
                "children",
                OValue::set([OValue::oid(o(1)), OValue::oid(o(2))]),
            ),
        ]);
        let mut oids = BTreeSet::new();
        v.collect_oids(&mut oids);
        assert_eq!(oids.len(), 2);
        let mut consts = BTreeSet::new();
        v.collect_constants(&mut consts);
        assert_eq!(consts, BTreeSet::from([Constant::str("Adam")]));
    }

    #[test]
    fn size_and_branching() {
        let v = OValue::set([
            OValue::tuple([
                ("a", OValue::int(1)),
                ("b", OValue::int(2)),
                ("c", OValue::int(3)),
            ]),
            OValue::int(9),
        ]);
        assert_eq!(v.size(), 1 + (1 + 3) + 1);
        assert_eq!(v.branching_factor(), 3);
        assert_eq!(OValue::int(1).branching_factor(), 0);
    }

    #[test]
    fn rename_oids_acts_structurally() {
        let v = OValue::set([OValue::oid(o(1)), OValue::oid(o(2))]);
        let map = BTreeMap::from([(o(1), o(10)), (o(2), o(20))]);
        assert_eq!(
            v.rename_oids(&map),
            OValue::set([OValue::oid(o(10)), OValue::oid(o(20))])
        );
    }

    #[test]
    fn rename_can_merge_is_callers_problem() {
        // rename_oids applies an arbitrary map; bijectivity is checked by the
        // iso layer. A non-injective map may merge set elements.
        let v = OValue::set([OValue::oid(o(1)), OValue::oid(o(2))]);
        let map = BTreeMap::from([(o(1), o(5)), (o(2), o(5))]);
        match v.rename_oids(&map) {
            OValue::Set(s) => assert_eq!(s.len(), 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn without_oid_cascades() {
        let v = OValue::tuple([
            ("keep", OValue::int(1)),
            (
                "members",
                OValue::set([
                    OValue::oid(o(1)),
                    OValue::tuple([("inner", OValue::oid(o(1)))]),
                    OValue::int(7),
                ]),
            ),
        ]);
        let cleaned = v.without_oid(o(1)).unwrap();
        assert!(!cleaned.mentions_oid(o(1)));
        // The tuple element containing o1 outside a set position inside it
        // is dropped wholesale from the set.
        match &cleaned {
            OValue::Tuple(fields) => match &fields[&AttrName::new("members")] {
                OValue::Set(s) => assert_eq!(s.len(), 1),
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
        // A tuple whose field directly holds the oid is itself poisoned.
        let direct = OValue::tuple([("f", OValue::oid(o(1)))]);
        assert_eq!(direct.without_oid(o(1)), None);
    }

    #[test]
    fn display_round_trips_shape() {
        let v = OValue::tuple([
            ("name", OValue::str("Cain")),
            (
                "occupations",
                OValue::set([OValue::str("Farmer"), OValue::str("Nomad")]),
            ),
        ]);
        let s = v.to_string();
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("\"Farmer\""));
    }
}
