//! Database schemas (Definition 2.3.1) and projections (Section 3).
//!
//! A schema is a triple `(R, P, T)`: finite sets of relation and class
//! names, and a map `T` from `R ∪ P` to type expressions over `P`. Types may
//! refer to class names (giving recursive/cyclic types, as in
//! Example 1.1) but never to relation names.
//!
//! The optional isa hierarchy of Section 6 lives in [`crate::inherit`];
//! a [`Schema`] here always has pairwise-disjoint classes.

use crate::error::ModelError;
use crate::names::{ClassName, RelName};
use crate::types::TypeExpr;
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A database schema `(R, P, T)`.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<RelName, TypeExpr>,
    classes: BTreeMap<ClassName, TypeExpr>,
}

impl Schema {
    /// Builds and validates a schema: every class mentioned in any type must
    /// be declared, and types must not be syntactically bottomless (a class
    /// whose type is just another class name is permitted here — the
    /// value-based model forbids it, see `iql-vtree`).
    pub fn new<RI, CI>(relations: RI, classes: CI) -> Result<Schema>
    where
        RI: IntoIterator<Item = (RelName, TypeExpr)>,
        CI: IntoIterator<Item = (ClassName, TypeExpr)>,
    {
        let mut rel_map = BTreeMap::new();
        for (r, t) in relations {
            if rel_map.insert(r, t).is_some() {
                return Err(ModelError::DuplicateName(r.to_string()));
            }
        }
        let mut class_map = BTreeMap::new();
        for (c, t) in classes {
            if class_map.insert(c, t).is_some() {
                return Err(ModelError::DuplicateName(c.to_string()));
            }
        }
        let schema = Schema {
            relations: rel_map,
            classes: class_map,
        };
        schema.check_class_refs()?;
        Ok(schema)
    }

    /// An empty schema.
    pub fn empty() -> Schema {
        Schema {
            relations: BTreeMap::new(),
            classes: BTreeMap::new(),
        }
    }

    fn check_class_refs(&self) -> Result<()> {
        let declared: BTreeSet<ClassName> = self.classes.keys().copied().collect();
        let mut mentioned = BTreeSet::new();
        for t in self.relations.values().chain(self.classes.values()) {
            t.classes_mentioned(&mut mentioned);
        }
        for c in mentioned {
            if !declared.contains(&c) {
                return Err(ModelError::UndeclaredClass(c));
            }
        }
        Ok(())
    }

    /// The relation names `R`, in canonical order.
    pub fn relations(&self) -> impl Iterator<Item = RelName> + '_ {
        self.relations.keys().copied()
    }

    /// The class names `P`, in canonical order.
    pub fn classes(&self) -> impl Iterator<Item = ClassName> + '_ {
        self.classes.keys().copied()
    }

    /// `T(R)` — the element type of relation `R`.
    pub fn relation_type(&self, r: RelName) -> Result<&TypeExpr> {
        self.relations.get(&r).ok_or(ModelError::UnknownRelation(r))
    }

    /// `T(P)` — the value type of class `P`.
    pub fn class_type(&self, p: ClassName) -> Result<&TypeExpr> {
        self.classes.get(&p).ok_or(ModelError::UnknownClass(p))
    }

    /// Does the schema declare relation `r`?
    pub fn has_relation(&self, r: RelName) -> bool {
        self.relations.contains_key(&r)
    }

    /// Does the schema declare class `p`?
    pub fn has_class(&self, p: ClassName) -> bool {
        self.classes.contains_key(&p)
    }

    /// Is class `p` *set-valued*, i.e. `T(P) = {t}`? (`ν` must be total on
    /// such classes, Def 2.3.2 condition 3.)
    pub fn is_set_valued_class(&self, p: ClassName) -> Result<bool> {
        Ok(matches!(self.class_type(p)?, TypeExpr::Set(_)))
    }

    /// Number of relations plus classes.
    pub fn len(&self) -> usize {
        self.relations.len() + self.classes.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty() && self.classes.is_empty()
    }

    /// The projection of this schema onto the given names (Section 3): the
    /// result keeps the same `T` on a subset of `R ∪ P`. Classes referenced
    /// by kept types must themselves be kept.
    pub fn project(
        &self,
        rels: &BTreeSet<RelName>,
        classes: &BTreeSet<ClassName>,
    ) -> Result<Schema> {
        for r in rels {
            if !self.has_relation(*r) {
                return Err(ModelError::NotASubschema(r.to_string()));
            }
        }
        for c in classes {
            if !self.has_class(*c) {
                return Err(ModelError::NotASubschema(c.to_string()));
            }
        }
        Schema::new(
            rels.iter().map(|r| (*r, self.relations[r].clone())),
            classes.iter().map(|c| (*c, self.classes[c].clone())),
        )
    }

    /// Is `sub` a projection of `self` (same types on a subset of names)?
    pub fn is_projection_of(&self, sub: &Schema) -> bool {
        sub.relations
            .iter()
            .all(|(r, t)| self.relations.get(r) == Some(t))
            && sub
                .classes
                .iter()
                .all(|(c, t)| self.classes.get(c) == Some(t))
    }

    /// Merges two schemas with disjoint name sets — used to assemble a
    /// program schema `S` from input/output/temporary parts.
    pub fn disjoint_union(&self, other: &Schema) -> Result<Schema> {
        for r in other.relations.keys() {
            if self.has_relation(*r) {
                return Err(ModelError::DuplicateName(r.to_string()));
            }
        }
        for c in other.classes.keys() {
            if self.has_class(*c) {
                return Err(ModelError::DuplicateName(c.to_string()));
            }
        }
        Schema::new(
            self.relations
                .iter()
                .chain(other.relations.iter())
                .map(|(r, t)| (*r, t.clone())),
            self.classes
                .iter()
                .chain(other.classes.iter())
                .map(|(c, t)| (*c, t.clone())),
        )
    }

    /// Convenience `Arc` wrapper (instances share their schema).
    pub fn into_shared(self) -> Arc<Schema> {
        Arc::new(self)
    }

    /// The class-dependency graph: `P → Q` when `T(P)` mentions `Q`.
    pub fn class_dependencies(&self) -> BTreeMap<ClassName, BTreeSet<ClassName>> {
        self.classes
            .iter()
            .map(|(p, t)| {
                let mut deps = BTreeSet::new();
                t.classes_mentioned(&mut deps);
                (*p, deps)
            })
            .collect()
    }

    /// Is class `p` *recursive* — reachable from itself through class
    /// dependencies? Recursive classes are what oids exist to encode
    /// (Section 1: "the traditional encoding of directed, perhaps cyclic,
    /// graphs"); schemas of the complex-object models the paper
    /// generalizes have none.
    pub fn is_recursive_class(&self, p: ClassName) -> Result<bool> {
        self.class_type(p)?; // existence check
        let deps = self.class_dependencies();
        // BFS from p's direct dependencies back to p.
        let mut frontier: Vec<ClassName> = deps.get(&p).into_iter().flatten().copied().collect();
        let mut seen: BTreeSet<ClassName> = frontier.iter().copied().collect();
        while let Some(q) = frontier.pop() {
            if q == p {
                return Ok(true);
            }
            for r in deps.get(&q).into_iter().flatten() {
                if seen.insert(*r) {
                    frontier.push(*r);
                }
            }
        }
        Ok(false)
    }

    /// Does the schema have any recursive class (a *cyclic schema*,
    /// Section 1)?
    pub fn is_cyclic(&self) -> bool {
        self.classes
            .keys()
            .any(|p| self.is_recursive_class(*p).unwrap_or(false))
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema {{")?;
        for (r, t) in &self.relations {
            writeln!(f, "  relation {r}: {t};")?;
        }
        for (c, t) in &self.classes {
            writeln!(f, "  class {c}: {t};")?;
        }
        write!(f, "}}")
    }
}

/// A fluent builder for schemas, used pervasively in tests and examples.
#[derive(Default)]
pub struct SchemaBuilder {
    relations: Vec<(RelName, TypeExpr)>,
    classes: Vec<(ClassName, TypeExpr)>,
}

impl SchemaBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// Declares `relation name: {ty}` (the element type is `ty`).
    pub fn relation<N: Into<RelName>>(mut self, name: N, ty: TypeExpr) -> Self {
        self.relations.push((name.into(), ty));
        self
    }

    /// Declares `class name: ty`.
    pub fn class<N: Into<ClassName>>(mut self, name: N, ty: TypeExpr) -> Self {
        self.classes.push((name.into(), ty));
        self
    }

    /// Finishes and validates the schema.
    pub fn build(self) -> Result<Schema> {
        Schema::new(self.relations, self.classes)
    }
}

/// The Genesis schema of Example 1.1, used throughout tests, docs, and the
/// E1 experiment.
pub fn genesis_schema() -> Schema {
    use TypeExpr as T;
    SchemaBuilder::new()
        .class(
            "Gen1",
            T::tuple([
                ("name", T::base()),
                ("spouse", T::class("Gen1")),
                ("children", T::set_of(T::class("Gen2"))),
            ]),
        )
        .class(
            "Gen2",
            T::tuple([("name", T::base()), ("occupations", T::set_of(T::base()))]),
        )
        .relation("FoundedLineage", T::class("Gen2"))
        .relation(
            "AncestorOfCelebrity",
            T::tuple([
                ("anc", T::class("Gen2")),
                (
                    "desc",
                    T::union(T::base(), T::tuple([("spouse", T::base())])),
                ),
            ]),
        )
        .build()
        .expect("genesis schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_schema_builds() {
        let s = genesis_schema();
        assert_eq!(s.relations().count(), 2);
        assert_eq!(s.classes().count(), 2);
        assert!(s.has_class(ClassName::new("Gen1")));
        // Gen1 is cyclic: its type mentions Gen1 itself.
        let mut mentioned = BTreeSet::new();
        s.class_type(ClassName::new("Gen1"))
            .unwrap()
            .classes_mentioned(&mut mentioned);
        assert!(mentioned.contains(&ClassName::new("Gen1")));
    }

    #[test]
    fn undeclared_class_is_rejected() {
        let err = SchemaBuilder::new()
            .relation("R", TypeExpr::class("Ghost"))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UndeclaredClass(_)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = SchemaBuilder::new()
            .relation("R", TypeExpr::base())
            .relation("R", TypeExpr::base())
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateName(_)));
    }

    #[test]
    fn projection_roundtrip() {
        let s = genesis_schema();
        let rels = BTreeSet::from([RelName::new("FoundedLineage")]);
        let classes = BTreeSet::from([ClassName::new("Gen2")]);
        let sub = s.project(&rels, &classes).unwrap();
        assert!(s.is_projection_of(&sub));
        assert_eq!(sub.len(), 2);
    }

    #[test]
    fn projection_must_keep_referenced_classes() {
        let s = genesis_schema();
        // FoundedLineage's type references Gen2, so projecting it without
        // Gen2 produces a schema mentioning an undeclared class.
        let rels = BTreeSet::from([RelName::new("FoundedLineage")]);
        let err = s.project(&rels, &BTreeSet::new()).unwrap_err();
        assert!(matches!(err, ModelError::UndeclaredClass(_)));
    }

    #[test]
    fn projection_of_unknown_name_fails() {
        let s = genesis_schema();
        let rels = BTreeSet::from([RelName::new("Nope")]);
        assert!(matches!(
            s.project(&rels, &BTreeSet::new()),
            Err(ModelError::NotASubschema(_))
        ));
    }

    #[test]
    fn set_valued_class_detection() {
        let s = SchemaBuilder::new()
            .class("Pset", TypeExpr::set_of(TypeExpr::base()))
            .class("Ptup", TypeExpr::tuple([("a", TypeExpr::base())]))
            .build()
            .unwrap();
        assert!(s.is_set_valued_class(ClassName::new("Pset")).unwrap());
        assert!(!s.is_set_valued_class(ClassName::new("Ptup")).unwrap());
    }

    #[test]
    fn disjoint_union_and_conflicts() {
        let a = SchemaBuilder::new()
            .relation("A", TypeExpr::base())
            .build()
            .unwrap();
        let b = SchemaBuilder::new()
            .relation("B", TypeExpr::base())
            .build()
            .unwrap();
        let ab = a.disjoint_union(&b).unwrap();
        assert_eq!(ab.relations().count(), 2);
        assert!(a.disjoint_union(&a).is_err());
    }

    #[test]
    fn recursion_analysis() {
        let s = genesis_schema();
        // Gen1 mentions itself (spouse) — recursive; Gen2 is flat.
        assert!(s.is_recursive_class(ClassName::new("Gen1")).unwrap());
        assert!(!s.is_recursive_class(ClassName::new("Gen2")).unwrap());
        assert!(s.is_cyclic());
        // A mutual recursion A → B → A: both recursive.
        let m = SchemaBuilder::new()
            .class("MrA", TypeExpr::tuple([("b", TypeExpr::class("MrB"))]))
            .class("MrB", TypeExpr::set_of(TypeExpr::class("MrA")))
            .build()
            .unwrap();
        assert!(m.is_recursive_class(ClassName::new("MrA")).unwrap());
        assert!(m.is_recursive_class(ClassName::new("MrB")).unwrap());
        // A DAG of classes is not cyclic.
        let d = SchemaBuilder::new()
            .class("DagA", TypeExpr::tuple([("b", TypeExpr::class("DagB"))]))
            .class("DagB", TypeExpr::base())
            .build()
            .unwrap();
        assert!(!d.is_cyclic());
        assert!(d.is_recursive_class(ClassName::new("Ghost")).is_err());
    }

    #[test]
    fn display_renders() {
        let s = genesis_schema();
        let txt = s.to_string();
        assert!(txt.contains("class Gen1"));
        assert!(txt.contains("relation FoundedLineage"));
    }
}
