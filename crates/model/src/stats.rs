//! Cheap cardinality statistics over an instance, for cost-based planning.
//!
//! Everything here is O(1) reads off state the instance already maintains:
//! relation extents and class extents are `BTreeSet` lengths, and
//! per-attribute distinct counts come from the persistent secondary indexes
//! (a built index *is* a distinct-key census of its attribute). No sampling,
//! no histograms — the planner only needs coarse relative sizes to avoid
//! pathological join orders, and these are exact.

use crate::instance::Instance;
use crate::names::{AttrName, ClassName, RelName};

/// A read-only statistics view over one instance.
#[derive(Clone, Copy)]
pub struct InstanceStats<'a> {
    inst: &'a Instance,
}

impl<'a> InstanceStats<'a> {
    pub fn new(inst: &'a Instance) -> Self {
        InstanceStats { inst }
    }

    /// `|ρ(R)|`, or `None` for an unknown relation.
    pub fn relation_len(&self, r: RelName) -> Option<usize> {
        self.inst.relation_ids(r).ok().map(|s| s.len())
    }

    /// `|π(P)|`, or `None` for an unknown class.
    pub fn class_len(&self, p: ClassName) -> Option<usize> {
        self.inst.class(p).ok().map(|s| s.len())
    }

    /// Distinct values of `attr` across `ρ(R)` — available exactly when the
    /// `(r, attr)` index is built (the planner ensures indexes for every
    /// probe candidate before reading this).
    pub fn attr_distinct(&self, r: RelName, attr: AttrName) -> Option<usize> {
        self.inst.rel_indexes().attr_distinct(r, attr)
    }

    /// Estimated facts of `R` matching a probe on `attr`: `len / distinct`,
    /// rounded up. Falls back to `len` when the attribute has no built
    /// index (no statistic ⇒ assume the probe does not narrow).
    pub fn probe_estimate(&self, r: RelName, attr: AttrName) -> Option<usize> {
        let len = self.relation_len(r)?;
        Some(match self.attr_distinct(r, attr) {
            Some(d) if d > 0 => len.div_ceil(d),
            _ => len,
        })
    }

    /// The instance's statistics epoch — see [`Instance::stats_epoch`].
    /// Plans (and anything else derived from these statistics) cached at
    /// epoch `e` stay valid while the epoch still reads `e`.
    pub fn epoch(&self) -> u64 {
        self.inst.stats_epoch()
    }
}

/// The shared execution runtime's view of these statistics: relations are
/// handled by name, probe columns are tuple attributes, and distinct
/// counts exist exactly for built secondary indexes.
impl iql_exec::Storage for InstanceStats<'_> {
    type Rel = RelName;
    type Col = AttrName;

    fn extent(&self, rel: RelName) -> usize {
        self.relation_len(rel).unwrap_or(0)
    }

    fn distinct(&self, rel: RelName, col: AttrName) -> Option<usize> {
        self.attr_distinct(rel, col)
    }
}
