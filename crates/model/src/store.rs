//! Hash-consed o-values: an interned arena of canonical value nodes.
//!
//! [`OValue`] represents the paper's o-values as plain trees — ideal as a
//! parse/display/API surface, but every comparison, hash, and clone pays
//! O(tree). This module adds the classic *hash-consing* representation on
//! top: a [`ValueStore`] arena maps each structurally-canonical node
//! (constant, oid, tuple of `(AttrName, ValueId)`, set of `ValueId`) to a
//! unique, dense [`ValueId`]. Interning is injective on canonical forms, so
//!
//! * equality and hashing of whole values are O(1) (`u32` compare),
//! * shared substructure is stored once,
//! * per-node metadata (oid set, depth, size) is computed once at intern
//!   time and reused forever.
//!
//! The arena is append-only: a `ValueId` stays valid for the life of the
//! store. The boundary contract with the tree world is *lossless*:
//! `resolve(intern(v)) == v` for every `OValue`, and `intern(a) ==
//! intern(b)` iff `a == b`.
//!
//! [`Overlay`] layers a worker-local interner over a frozen base store so
//! parallel evaluation can intern new values without synchronization, then
//! replay them deterministically into the base via [`ValueStore::absorb`].

use crate::constant::Constant;
use crate::idgen::Oid;
use crate::names::AttrName;
use crate::ovalue::OValue;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// A handle to an interned o-value: dense, `Copy`, O(1) equality/hash.
///
/// Ids are ordered by interning order, so a `BTreeSet<ValueId>` iterates in
/// first-occurrence order — deterministic for deterministic construction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(u32);

impl ValueId {
    /// The raw index into the arena. For display and external maps only.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One structurally-canonical node of the interned representation.
///
/// Canonicalization invariants (enforced by the constructors, relied on by
/// the injectivity argument):
///
/// * `Tuple` entries are strictly sorted by attribute (hence distinct);
/// * `Set` elements are strictly sorted by id (hence duplicate-free) —
///   sorting by *id* is canonical because interning is injective, so equal
///   ids are equal values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// A constant leaf.
    Const(Constant),
    /// An oid leaf.
    Oid(Oid),
    /// A tuple node; entries strictly sorted by attribute.
    Tuple(Arc<[(AttrName, ValueId)]>),
    /// A set node; elements strictly sorted by id.
    Set(Arc<[ValueId]>),
}

/// Cached per-node facts, computed once at intern time.
#[derive(Clone)]
struct Meta {
    node: Node,
    /// Sorted, distinct oids of the whole subtree. Empty ⇔ oid-free.
    oids: Arc<[Oid]>,
    /// Does the subtree mention any constant?
    has_consts: bool,
    /// Height of the tree (leaves and empty constructors are 1).
    depth: u32,
    /// Node count of the resolved tree (shared substructure counted per
    /// occurrence, matching [`OValue::size`]); saturating.
    size: u32,
}

/// Heap-byte estimate of one freshly interned node: the fixed per-node
/// bookkeeping (arena [`Meta`] entry plus interning-map key) and the
/// payloads it retains (tuple/set spines, string bytes, the cached oid
/// slice).
fn node_heap_bytes(node: &Node, oids: &[Oid]) -> usize {
    use std::mem::size_of;
    let payload = match node {
        Node::Const(Constant::Str(s)) => s.len(),
        Node::Const(_) | Node::Oid(_) => 0,
        Node::Tuple(fields) => fields.len() * size_of::<(AttrName, ValueId)>(),
        Node::Set(elems) => elems.len() * size_of::<ValueId>(),
    };
    size_of::<Meta>() + size_of::<(Node, ValueId)>() + payload + std::mem::size_of_val(oids)
}

/// Read access to interned nodes and their metadata — implemented by both
/// [`ValueStore`] and [`Overlay`], so evaluation code can run against either.
pub trait ValueReader {
    /// The node behind `id`. Panics on a foreign id.
    fn node(&self, id: ValueId) -> &Node;
    /// The sorted, distinct oids of the subtree behind `id`.
    fn oids(&self, id: ValueId) -> &[Oid];

    /// Does the subtree behind `id` mention any oid?
    fn contains_oids(&self, id: ValueId) -> bool {
        !self.oids(id).is_empty()
    }

    /// Does the subtree behind `id` mention `oid`?
    fn mentions_oid(&self, id: ValueId, oid: Oid) -> bool {
        self.oids(id).binary_search(&oid).is_ok()
    }

    /// Rebuilds the o-value tree behind `id` (the lossless inverse of
    /// interning).
    fn resolve(&self, id: ValueId) -> OValue {
        match self.node(id) {
            Node::Const(c) => OValue::Const(c.clone()),
            Node::Oid(o) => OValue::Oid(*o),
            Node::Tuple(fields) => OValue::Tuple(
                fields
                    .iter()
                    .map(|(a, v)| (*a, self.resolve(*v)))
                    .collect::<BTreeMap<_, _>>(),
            ),
            Node::Set(elems) => OValue::Set(elems.iter().map(|v| self.resolve(*v)).collect()),
        }
    }

    /// The oid behind `id`, if it is an oid leaf.
    fn as_oid(&self, id: ValueId) -> Option<Oid> {
        match self.node(id) {
            Node::Oid(o) => Some(*o),
            _ => None,
        }
    }

    /// The elements behind `id`, if it is a set node (sorted by id).
    fn as_set(&self, id: ValueId) -> Option<&[ValueId]> {
        match self.node(id) {
            Node::Set(elems) => Some(elems),
            _ => None,
        }
    }

    /// Is `member` an element of the set behind `id`? `None` if `id` is not
    /// a set. O(log n) — elements are sorted by id.
    fn set_contains(&self, id: ValueId, member: ValueId) -> Option<bool> {
        self.as_set(id).map(|s| s.binary_search(&member).is_ok())
    }

    /// Total order on the *resolved trees* behind two ids:
    /// `cmp_resolved(a, b) == resolve(a).cmp(&resolve(b))`, without
    /// materializing either tree. Equal ids short-circuit (interning is
    /// injective), which prunes shared substructure.
    ///
    /// This order is id-numbering-independent, so two stores that interned
    /// the same values in different orders still agree on it — the property
    /// the evaluator's canonical merge order rests on.
    fn cmp_resolved(&self, a: ValueId, b: ValueId) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            return Ordering::Equal;
        }
        // Variant rank mirrors OValue's declaration (and thus derived Ord)
        // order: Const < Oid < Tuple < Set.
        fn rank(n: &Node) -> u8 {
            match n {
                Node::Const(_) => 0,
                Node::Oid(_) => 1,
                Node::Tuple(_) => 2,
                Node::Set(_) => 3,
            }
        }
        let (na, nb) = (self.node(a), self.node(b));
        match (na, nb) {
            (Node::Const(x), Node::Const(y)) => x.cmp(y),
            (Node::Oid(x), Node::Oid(y)) => x.cmp(y),
            // BTreeMap's Ord: lexicographic over (attr, value) pairs in
            // attr order — exactly the tuple node's stored order.
            (Node::Tuple(xs), Node::Tuple(ys)) => {
                for ((ax, vx), (ay, vy)) in xs.iter().zip(ys.iter()) {
                    let o = ax.cmp(ay).then_with(|| self.cmp_resolved(*vx, *vy));
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                xs.len().cmp(&ys.len())
            }
            // BTreeSet's Ord: lexicographic over elements in ascending tree
            // order. Set nodes are sorted by id, so re-sort structurally.
            (Node::Set(xs), Node::Set(ys)) => {
                let mut xs: Vec<ValueId> = xs.to_vec();
                let mut ys: Vec<ValueId> = ys.to_vec();
                xs.sort_by(|&p, &q| self.cmp_resolved(p, q));
                ys.sort_by(|&p, &q| self.cmp_resolved(p, q));
                for (&p, &q) in xs.iter().zip(ys.iter()) {
                    let o = self.cmp_resolved(p, q);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                xs.len().cmp(&ys.len())
            }
            _ => rank(na).cmp(&rank(nb)),
        }
    }
}

/// Write access: interning new values. Everything goes through the four
/// canonical constructors, which maintain the [`Node`] invariants.
pub trait ValueInterner: ValueReader {
    /// Interns a constant leaf.
    fn const_id(&mut self, c: Constant) -> ValueId;
    /// Interns an oid leaf.
    fn oid_id(&mut self, o: Oid) -> ValueId;
    /// Interns a tuple node; `fields` may arrive in any attribute order but
    /// must have distinct attributes.
    fn tuple_id(&mut self, fields: Vec<(AttrName, ValueId)>) -> ValueId;
    /// Interns a set node; `elems` may arrive unsorted and with duplicates.
    fn set_id(&mut self, elems: Vec<ValueId>) -> ValueId;

    /// Interns a whole o-value tree.
    fn intern(&mut self, v: &OValue) -> ValueId {
        match v {
            OValue::Const(c) => self.const_id(c.clone()),
            OValue::Oid(o) => self.oid_id(*o),
            OValue::Tuple(fields) => {
                let ids: Vec<(AttrName, ValueId)> = fields
                    .iter()
                    .map(|(a, child)| (*a, self.intern(child)))
                    .collect();
                self.tuple_id(ids)
            }
            OValue::Set(elems) => {
                let ids: Vec<ValueId> = elems.iter().map(|e| self.intern(e)).collect();
                self.set_id(ids)
            }
        }
    }
}

/// The hash-consing arena. Append-only; cloning is cheap-ish (nodes share
/// their `Arc` spines).
#[derive(Clone, Default)]
pub struct ValueStore {
    entries: Vec<Meta>,
    map: HashMap<Node, ValueId>,
    empty_oids: Arc<[Oid]>,
    /// Running estimate of heap bytes retained by the arena, maintained by
    /// [`ValueStore::insert_node`]. Monotone (the arena is append-only), so
    /// it doubles as a high-water mark for memory governance.
    heap_bytes: usize,
}

impl ValueStore {
    /// An empty store.
    pub fn new() -> ValueStore {
        ValueStore {
            entries: Vec::new(),
            map: HashMap::new(),
            empty_oids: Arc::from([]),
            heap_bytes: 0,
        }
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Approximate heap bytes retained by the arena: per-node bookkeeping
    /// (arena entry plus hash-map key) and the owned payloads (tuple/set
    /// spines, string constants, cached oid slices). Shared `Arc` payloads
    /// are counted per referencing node, so this over- rather than
    /// under-estimates — the safe direction for a memory budget.
    pub fn heap_bytes(&self) -> usize {
        self.heap_bytes
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The id of an already-interned canonical node, if present.
    pub fn lookup(&self, node: &Node) -> Option<ValueId> {
        self.map.get(node).copied()
    }

    /// Height of the tree behind `id`.
    pub fn depth(&self, id: ValueId) -> u32 {
        self.entries[id.0 as usize].depth
    }

    /// Node count of the resolved tree behind `id` (saturating).
    pub fn size(&self, id: ValueId) -> u32 {
        self.entries[id.0 as usize].size
    }

    /// Does the subtree behind `id` mention any constant?
    pub fn contains_constants(&self, id: ValueId) -> bool {
        self.entries[id.0 as usize].has_consts
    }

    fn insert_node(&mut self, node: Node) -> ValueId {
        if let Some(id) = self.map.get(&node) {
            return *id;
        }
        let meta = self.compute_meta(node.clone());
        self.heap_bytes += node_heap_bytes(&node, &meta.oids);
        let id =
            ValueId(u32::try_from(self.entries.len()).expect("value store exhausted (2^32 nodes)"));
        self.entries.push(meta);
        self.map.insert(node, id);
        id
    }

    fn compute_meta(&self, node: Node) -> Meta {
        let (oids, has_consts, depth, size) = match &node {
            Node::Const(_) => (Arc::clone(&self.empty_oids), true, 1, 1),
            Node::Oid(o) => (Arc::from([*o]), false, 1, 1),
            Node::Tuple(fields) => self.combine_meta(fields.iter().map(|(_, v)| *v)),
            Node::Set(elems) => self.combine_meta(elems.iter().copied()),
        };
        Meta {
            node,
            oids,
            has_consts,
            depth,
            size,
        }
    }

    fn combine_meta<I: Iterator<Item = ValueId>>(
        &self,
        children: I,
    ) -> (Arc<[Oid]>, bool, u32, u32) {
        let mut oids: Vec<Oid> = Vec::new();
        let mut single: Option<&Arc<[Oid]>> = None;
        let mut merged = false;
        let mut has_consts = false;
        let mut depth = 0u32;
        let mut size = 1u32;
        for child in children {
            let m = &self.entries[child.0 as usize];
            has_consts |= m.has_consts;
            depth = depth.max(m.depth);
            size = size.saturating_add(m.size);
            if m.oids.is_empty() {
                continue;
            }
            match single {
                None if !merged => single = Some(&m.oids),
                _ => {
                    if let Some(first) = single.take() {
                        oids.extend_from_slice(first);
                    }
                    merged = true;
                    oids.extend_from_slice(&m.oids);
                }
            }
        }
        let oids = match (single, merged) {
            // Exactly one oid-bearing child: share its (sorted) slice.
            (Some(one), false) => Arc::clone(one),
            (None, false) => Arc::clone(&self.empty_oids),
            _ => {
                oids.sort_unstable();
                oids.dedup();
                Arc::from(oids)
            }
        };
        (oids, has_consts, depth + 1, size)
    }

    /// Replays a worker [`OverlayLog`] into this store, in the overlay's
    /// creation order, and returns the mapping from overlay-local index to
    /// base id. The store must be the one the overlay was layered over (and
    /// may only have grown — by earlier `absorb` calls — since the overlay
    /// froze it); ids below the log's base length are stable by
    /// append-onlyness. Replay order is deterministic, so absorbing the
    /// per-task logs of a chunked parallel search reproduces the sequential
    /// interning order exactly.
    pub fn absorb(&mut self, log: &OverlayLog) -> Vec<ValueId> {
        debug_assert!(self.entries.len() >= log.base_len as usize);
        let mut remap: Vec<ValueId> = Vec::with_capacity(log.nodes.len());
        let fix = |id: ValueId, remap: &Vec<ValueId>| -> ValueId {
            if id.0 < log.base_len {
                id
            } else {
                remap[(id.0 - log.base_len) as usize]
            }
        };
        for node in &log.nodes {
            let new_id = match node {
                Node::Const(c) => self.const_id(c.clone()),
                Node::Oid(o) => self.oid_id(*o),
                Node::Tuple(fields) => {
                    let fixed: Vec<(AttrName, ValueId)> =
                        fields.iter().map(|(a, v)| (*a, fix(*v, &remap))).collect();
                    self.tuple_id(fixed)
                }
                Node::Set(elems) => {
                    // Re-sort through set_id: remapping may permute ids.
                    let fixed: Vec<ValueId> = elems.iter().map(|v| fix(*v, &remap)).collect();
                    self.set_id(fixed)
                }
            };
            remap.push(new_id);
        }
        remap
    }

    /// Applies an oid renaming to the value behind `id`, reusing ids for
    /// every subtree the map does not touch (checked against the cached oid
    /// metadata, so untouched subtrees cost O(oids) — no tree walk). The
    /// interned counterpart of [`OValue::rename_oids`].
    pub fn rename_oids_id(&mut self, id: ValueId, map: &BTreeMap<Oid, Oid>) -> ValueId {
        if map.is_empty() {
            return id;
        }
        let mut memo: HashMap<ValueId, ValueId> = HashMap::new();
        self.rename_oids_rec(id, map, &mut memo)
    }

    fn rename_oids_rec(
        &mut self,
        id: ValueId,
        map: &BTreeMap<Oid, Oid>,
        memo: &mut HashMap<ValueId, ValueId>,
    ) -> ValueId {
        if let Some(done) = memo.get(&id) {
            return *done;
        }
        // Untouched subtree: none of its oids are renamed.
        if !self.oids(id).iter().any(|o| map.contains_key(o)) {
            memo.insert(id, id);
            return id;
        }
        let out = match self.entries[id.0 as usize].node.clone() {
            Node::Const(_) => id,
            Node::Oid(o) => {
                let renamed = *map.get(&o).unwrap_or(&o);
                self.oid_id(renamed)
            }
            Node::Tuple(fields) => {
                let fixed: Vec<(AttrName, ValueId)> = fields
                    .iter()
                    .map(|(a, v)| (*a, self.rename_oids_rec(*v, map, memo)))
                    .collect();
                self.tuple_id(fixed)
            }
            Node::Set(elems) => {
                let fixed: Vec<ValueId> = elems
                    .iter()
                    .map(|v| self.rename_oids_rec(*v, map, memo))
                    .collect();
                self.set_id(fixed)
            }
        };
        memo.insert(id, out);
        out
    }

    /// Applies a constant renaming to the value behind `id`, reusing ids for
    /// constant-free subtrees (checked against cached metadata). The
    /// interned counterpart of [`OValue::rename_constants`].
    pub fn rename_constants_id(
        &mut self,
        id: ValueId,
        map: &BTreeMap<Constant, Constant>,
    ) -> ValueId {
        if map.is_empty() {
            return id;
        }
        let mut memo: HashMap<ValueId, ValueId> = HashMap::new();
        self.rename_constants_rec(id, map, &mut memo)
    }

    fn rename_constants_rec(
        &mut self,
        id: ValueId,
        map: &BTreeMap<Constant, Constant>,
        memo: &mut HashMap<ValueId, ValueId>,
    ) -> ValueId {
        if let Some(done) = memo.get(&id) {
            return *done;
        }
        if !self.entries[id.0 as usize].has_consts {
            memo.insert(id, id);
            return id;
        }
        let out = match self.entries[id.0 as usize].node.clone() {
            Node::Const(c) => match map.get(&c) {
                Some(renamed) => self.const_id(renamed.clone()),
                None => id,
            },
            Node::Oid(_) => id,
            Node::Tuple(fields) => {
                let fixed: Vec<(AttrName, ValueId)> = fields
                    .iter()
                    .map(|(a, v)| (*a, self.rename_constants_rec(*v, map, memo)))
                    .collect();
                self.tuple_id(fixed)
            }
            Node::Set(elems) => {
                let fixed: Vec<ValueId> = elems
                    .iter()
                    .map(|v| self.rename_constants_rec(*v, map, memo))
                    .collect();
                self.set_id(fixed)
            }
        };
        memo.insert(id, out);
        out
    }
}

impl fmt::Debug for ValueStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ValueStore({} nodes)", self.len())
    }
}

impl ValueReader for ValueStore {
    fn node(&self, id: ValueId) -> &Node {
        &self.entries[id.0 as usize].node
    }

    fn oids(&self, id: ValueId) -> &[Oid] {
        &self.entries[id.0 as usize].oids
    }
}

impl ValueInterner for ValueStore {
    fn const_id(&mut self, c: Constant) -> ValueId {
        self.insert_node(Node::Const(c))
    }

    fn oid_id(&mut self, o: Oid) -> ValueId {
        self.insert_node(Node::Oid(o))
    }

    fn tuple_id(&mut self, mut fields: Vec<(AttrName, ValueId)>) -> ValueId {
        fields.sort_by_key(|f| f.0);
        debug_assert!(
            fields.windows(2).all(|w| w[0].0 < w[1].0),
            "tuple attributes must be distinct"
        );
        self.insert_node(Node::Tuple(Arc::from(fields)))
    }

    fn set_id(&mut self, mut elems: Vec<ValueId>) -> ValueId {
        elems.sort_unstable();
        elems.dedup();
        self.insert_node(Node::Set(Arc::from(elems)))
    }
}

/// The nodes a worker-local [`Overlay`] interned beyond its frozen base, in
/// creation order — everything [`ValueStore::absorb`] needs to replay them.
#[derive(Clone, Debug, Default)]
pub struct OverlayLog {
    base_len: u32,
    nodes: Vec<Node>,
}

impl OverlayLog {
    /// The size the base store had when the overlay froze it — ids below
    /// this are base ids and survive [`ValueStore::absorb`] unchanged.
    pub fn base_len(&self) -> u32 {
        self.base_len
    }

    /// Number of overlay-local nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Did the overlay intern nothing new?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A worker-local interner layered over a frozen base store.
///
/// Lookups hit the base first, so a value already interned in the base
/// always resolves to its base id — an overlay-local id (`≥ base.len()`)
/// therefore *proves* the value is absent from the base, which is what makes
/// membership probes against base-built indexes sound without promotion.
/// New nodes get consecutive local ids; the creation log is replayed into
/// the base by [`ValueStore::absorb`] during the deterministic merge phase.
pub struct Overlay<'a> {
    base: &'a ValueStore,
    base_len: u32,
    local: Vec<Meta>,
    map: HashMap<Node, ValueId>,
    empty_oids: Arc<[Oid]>,
}

impl<'a> Overlay<'a> {
    /// A fresh overlay over `base` (frozen for the overlay's lifetime).
    pub fn new(base: &'a ValueStore) -> Overlay<'a> {
        Overlay {
            base,
            base_len: u32::try_from(base.len()).expect("value store exhausted"),
            local: Vec::new(),
            map: HashMap::new(),
            empty_oids: Arc::from([]),
        }
    }

    /// Total nodes visible (base + local).
    pub fn len(&self) -> usize {
        self.base_len as usize + self.local.len()
    }

    /// Is the overlay (including its base) empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the creation log for [`ValueStore::absorb`].
    pub fn into_log(self) -> OverlayLog {
        OverlayLog {
            base_len: self.base_len,
            nodes: self.local.into_iter().map(|m| m.node).collect(),
        }
    }

    fn meta(&self, id: ValueId) -> &Meta {
        if id.0 < self.base_len {
            &self.base.entries[id.0 as usize]
        } else {
            &self.local[(id.0 - self.base_len) as usize]
        }
    }

    fn insert_node(&mut self, node: Node) -> ValueId {
        if let Some(id) = self.base.lookup(&node) {
            return id;
        }
        if let Some(id) = self.map.get(&node) {
            return *id;
        }
        let meta = self.compute_meta(node.clone());
        let id = ValueId(
            self.base_len
                .checked_add(u32::try_from(self.local.len()).expect("overlay exhausted"))
                .expect("value store exhausted (2^32 nodes)"),
        );
        self.local.push(meta);
        self.map.insert(node, id);
        id
    }

    fn compute_meta(&self, node: Node) -> Meta {
        let (oids, has_consts, depth, size) = match &node {
            Node::Const(_) => (Arc::clone(&self.empty_oids), true, 1, 1),
            Node::Oid(o) => (Arc::from([*o]), false, 1, 1),
            Node::Tuple(fields) => self.combine_meta(fields.iter().map(|(_, v)| *v)),
            Node::Set(elems) => self.combine_meta(elems.iter().copied()),
        };
        Meta {
            node,
            oids,
            has_consts,
            depth,
            size,
        }
    }

    fn combine_meta<I: Iterator<Item = ValueId>>(
        &self,
        children: I,
    ) -> (Arc<[Oid]>, bool, u32, u32) {
        let mut oids: Vec<Oid> = Vec::new();
        let mut has_consts = false;
        let mut depth = 0u32;
        let mut size = 1u32;
        for child in children {
            let m = self.meta(child);
            has_consts |= m.has_consts;
            depth = depth.max(m.depth);
            size = size.saturating_add(m.size);
            oids.extend_from_slice(&m.oids);
        }
        oids.sort_unstable();
        oids.dedup();
        let oids: Arc<[Oid]> = if oids.is_empty() {
            Arc::clone(&self.empty_oids)
        } else {
            Arc::from(oids)
        };
        (oids, has_consts, depth + 1, size)
    }
}

impl fmt::Debug for Overlay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Overlay({} base + {} local nodes)",
            self.base_len,
            self.local.len()
        )
    }
}

impl ValueReader for Overlay<'_> {
    fn node(&self, id: ValueId) -> &Node {
        &self.meta(id).node
    }

    fn oids(&self, id: ValueId) -> &[Oid] {
        &self.meta(id).oids
    }
}

impl ValueInterner for Overlay<'_> {
    fn const_id(&mut self, c: Constant) -> ValueId {
        self.insert_node(Node::Const(c))
    }

    fn oid_id(&mut self, o: Oid) -> ValueId {
        self.insert_node(Node::Oid(o))
    }

    fn tuple_id(&mut self, mut fields: Vec<(AttrName, ValueId)>) -> ValueId {
        fields.sort_by_key(|f| f.0);
        debug_assert!(
            fields.windows(2).all(|w| w[0].0 < w[1].0),
            "tuple attributes must be distinct"
        );
        self.insert_node(Node::Tuple(Arc::from(fields)))
    }

    fn set_id(&mut self, mut elems: Vec<ValueId>) -> ValueId {
        elems.sort_unstable();
        elems.dedup();
        self.insert_node(Node::Set(Arc::from(elems)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idgen::Oid;

    fn o(n: u64) -> Oid {
        Oid::from_raw(n)
    }

    fn sample() -> OValue {
        OValue::tuple([
            ("name", OValue::str("Adam")),
            (
                "children",
                OValue::set([OValue::oid(o(2)), OValue::oid(o(3)), OValue::oid(o(4))]),
            ),
            ("spouse", OValue::oid(o(1))),
        ])
    }

    #[test]
    fn intern_resolve_roundtrip() {
        let mut s = ValueStore::new();
        let v = sample();
        let id = s.intern(&v);
        assert_eq!(s.resolve(id), v);
        let es = s.intern(&OValue::empty_set());
        assert_eq!(s.resolve(es), OValue::empty_set());
        let ut = s.intern(&OValue::unit());
        assert_eq!(s.resolve(ut), OValue::unit());
    }

    #[test]
    fn intern_is_injective_and_idempotent() {
        let mut s = ValueStore::new();
        let a = s.intern(&sample());
        let b = s.intern(&sample());
        assert_eq!(a, b, "equal values get equal ids");
        let c = s.intern(&OValue::str("Adam"));
        assert_ne!(a, c);
        // {} vs [] — the paper's favourite distinction survives interning.
        let empty_set = s.intern(&OValue::empty_set());
        let empty_tuple = s.intern(&OValue::unit());
        assert_ne!(empty_set, empty_tuple);
    }

    #[test]
    fn set_canonicalization_by_id() {
        let mut s = ValueStore::new();
        let one = s.intern(&OValue::int(1));
        let two = s.intern(&OValue::int(2));
        let a = s.set_id(vec![two, one, one]);
        let b = s.set_id(vec![one, two]);
        assert_eq!(a, b);
        assert_eq!(s.as_set(a).unwrap(), &[one, two]);
        assert_eq!(s.set_contains(a, one), Some(true));
        assert_eq!(s.set_contains(one, two), None);
    }

    #[test]
    fn shared_substructure_is_stored_once() {
        let mut s = ValueStore::new();
        let shared = OValue::set([OValue::int(1), OValue::int(2)]);
        let a = OValue::tuple([("x", shared.clone())]);
        let b = OValue::tuple([("y", shared.clone())]);
        s.intern(&a);
        let before = s.len();
        s.intern(&b);
        // Only the new tuple node is added; the shared set is reused.
        assert_eq!(s.len(), before + 1);
    }

    #[test]
    fn metadata_is_cached_correctly() {
        let mut s = ValueStore::new();
        let v = sample();
        let id = s.intern(&v);
        assert!(s.contains_oids(id));
        assert!(s.contains_constants(id));
        assert_eq!(
            s.oids(id),
            &[o(1), o(2), o(3), o(4)],
            "sorted distinct subtree oids"
        );
        assert!(s.mentions_oid(id, o(3)));
        assert!(!s.mentions_oid(id, o(9)));
        assert_eq!(s.size(id), v.size() as u32);
        // depth: tuple(1) → set(2) → oid leaf(3) counted from leaves up.
        assert_eq!(s.depth(id), 3);
        let leaf = s.intern(&OValue::int(7));
        assert_eq!(s.depth(leaf), 1);
        assert!(!s.contains_oids(leaf));
    }

    #[test]
    fn overlay_prefers_base_ids() {
        let mut base = ValueStore::new();
        let base_id = base.intern(&sample());
        let one = base.intern(&OValue::int(1));
        let mut ov = Overlay::new(&base);
        assert_eq!(ov.intern(&sample()), base_id);
        // A composite of known parts that exists in base resolves to base.
        assert_eq!(ov.intern(&OValue::int(1)), one);
        // A genuinely new value gets a local id past the base.
        let new = ov.intern(&OValue::set([OValue::int(1), OValue::str("zzz")]));
        assert!(new.raw() as usize >= base.len());
        assert_eq!(
            ov.resolve(new),
            OValue::set([OValue::int(1), OValue::str("zzz")])
        );
    }

    #[test]
    fn absorb_replays_deterministically() {
        let mut base = ValueStore::new();
        base.intern(&OValue::int(1));
        let novel = OValue::tuple([("a", OValue::int(1)), ("b", OValue::str("new"))]);
        let novel2 = OValue::set([novel.clone(), OValue::int(1)]);

        let (local_ids, log) = {
            let mut ov = Overlay::new(&base);
            let x = ov.intern(&novel);
            let y = ov.intern(&novel2);
            (vec![x, y], ov.into_log())
        };
        let remap = base.absorb(&log);
        let base_len = log.base_len;
        let fix = |id: ValueId| -> ValueId {
            if id.raw() < base_len {
                id
            } else {
                remap[(id.raw() - base_len) as usize]
            }
        };
        assert_eq!(base.resolve(fix(local_ids[0])), novel);
        assert_eq!(base.resolve(fix(local_ids[1])), novel2);
        // Absorbing the same log twice dedups to the same ids.
        let remap2 = base.absorb(&log);
        assert_eq!(remap, remap2);
    }

    #[test]
    fn two_overlays_absorb_in_task_order() {
        let mut base = ValueStore::new();
        base.intern(&OValue::int(0));
        let frozen = base.clone();
        // Two workers intern overlapping novel values against the same
        // frozen base.
        let mut ov1 = Overlay::new(&frozen);
        let a1 = ov1.intern(&OValue::str("x"));
        let mut ov2 = Overlay::new(&frozen);
        let a2 = ov2.intern(&OValue::str("x"));
        let b2 = ov2.intern(&OValue::str("y"));
        assert_eq!(a1, a2, "same frozen base, same local numbering");
        let log1 = ov1.into_log();
        let log2 = ov2.into_log();
        let r1 = base.absorb(&log1);
        let r2 = base.absorb(&log2);
        assert_eq!(r1[0], r2[0], "shared value dedups across tasks");
        assert_ne!(r2[(b2.raw() - log2.base_len) as usize], r2[0]);
    }

    #[test]
    fn rename_oids_id_reuses_untouched_subtrees() {
        let mut s = ValueStore::new();
        let untouched = s.intern(&OValue::set([OValue::oid(o(10)), OValue::int(5)]));
        let v = OValue::tuple([
            ("keep", OValue::set([OValue::oid(o(10)), OValue::int(5)])),
            ("move", OValue::oid(o(1))),
        ]);
        let id = s.intern(&v);
        // Empty map: identity, no work.
        assert_eq!(s.rename_oids_id(id, &BTreeMap::new()), id);
        let map = BTreeMap::from([(o(1), o(99))]);
        let renamed = s.rename_oids_id(id, &map);
        assert_ne!(renamed, id);
        assert_eq!(s.resolve(renamed), v.rename_oids(&map));
        // The untouched subtree keeps its id inside the renamed tuple.
        match s.node(renamed) {
            Node::Tuple(fields) => {
                let keep = fields.iter().find(|(a, _)| a.as_str() == "keep").unwrap();
                assert_eq!(keep.1, untouched);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn rename_constants_id_reuses_constant_free_subtrees() {
        let mut s = ValueStore::new();
        let oid_only = s.intern(&OValue::set([OValue::oid(o(1)), OValue::oid(o(2))]));
        let v = OValue::tuple([
            ("who", OValue::set([OValue::oid(o(1)), OValue::oid(o(2))])),
            ("name", OValue::str("Adam")),
        ]);
        let id = s.intern(&v);
        assert_eq!(s.rename_constants_id(id, &BTreeMap::new()), id);
        let map = BTreeMap::from([(Constant::str("Adam"), Constant::str("Adamo"))]);
        let renamed = s.rename_constants_id(id, &map);
        assert_eq!(s.resolve(renamed), v.rename_constants(&map));
        match s.node(renamed) {
            Node::Tuple(fields) => {
                let who = fields.iter().find(|(a, _)| a.as_str() == "who").unwrap();
                assert_eq!(who.1, oid_only);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn ids_are_ordered_by_interning_order() {
        let mut s = ValueStore::new();
        let a = s.intern(&OValue::str("first"));
        let b = s.intern(&OValue::str("second"));
        let c = s.intern(&OValue::str("first"));
        assert!(a < b);
        assert_eq!(a, c);
    }
}
