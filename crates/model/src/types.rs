//! The type language and its interpretations (Sections 2.2 and 6.2).
//!
//! Type expressions over a set of class names `P`:
//!
//! ```text
//! t ::= ∅ | D | P | [A1:t, …, Ak:t] | {t} | (t ∨ t) | (t ∧ t)
//! ```
//!
//! Given an oid assignment `π`, each type expression denotes a set of
//! o-values `⟦t⟧π` (Section 2.2). This module provides:
//!
//! * membership testing [`TypeExpr::member`] (and the `*`-interpretation
//!   [`TypeExpr::member_star`] of Section 6.2, where tuple types describe
//!   records with *at least* the listed fields);
//! * intersection **reduction** and intersection **elimination**
//!   (Proposition 2.2.1) via a canonical disjunctive normal form;
//! * equivalence over disjoint oid assignments;
//! * **active-domain enumeration** [`TypeExpr::enumerate`] — the
//!   interpretation of a type restricted to given constants and oids, which
//!   is exactly the range of a non-range-restricted IQL variable
//!   (Section 3.2, "Valuations") and the engine behind the powerset program
//!   of Example 3.4.2.

use crate::constant::Constant;
use crate::error::ModelError;
use crate::idgen::Oid;
use crate::names::{AttrName, ClassName};
use crate::ovalue::OValue;
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A type expression (Section 2.2).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TypeExpr {
    /// `∅` — the empty type, denoting the empty set of o-values.
    Empty,
    /// `D` — the base domain of constants.
    Base,
    /// A class name `P`, denoting `π(P)` (a set of oids).
    Class(ClassName),
    /// A tuple type `[A1:t1, …, Ak:tk]` with distinct attributes.
    Tuple(BTreeMap<AttrName, TypeExpr>),
    /// A finite-set type `{t}`.
    Set(Box<TypeExpr>),
    /// Union `t1 ∨ t2`.
    Union(Box<TypeExpr>, Box<TypeExpr>),
    /// Intersection `t1 ∧ t2`.
    Intersect(Box<TypeExpr>, Box<TypeExpr>),
}

/// Resolves which classes an oid belongs to when testing `v ∈ ⟦P⟧π`.
///
/// Plain instances implement this with the disjoint assignment `π`;
/// inheritance (Section 6.1) implements it with the *inherited* assignment
/// `π̄(P) = ∪{π(P') | P' ≤ P}`.
pub trait OidClasses {
    /// Does `oid` belong to (the possibly inherited extension of) `class`?
    fn oid_in_class(&self, oid: Oid, class: ClassName) -> bool;
}

/// An [`OidClasses`] view backed by an explicit map — handy for tests and
/// for enumeration contexts.
#[derive(Debug, Clone, Default)]
pub struct ClassMap {
    /// Class extent per class name.
    pub classes: BTreeMap<ClassName, BTreeSet<Oid>>,
}

impl OidClasses for ClassMap {
    fn oid_in_class(&self, oid: Oid, class: ClassName) -> bool {
        self.classes.get(&class).is_some_and(|s| s.contains(&oid))
    }
}

impl TypeExpr {
    // ------------------------------------------------------------------
    // Builders
    // ------------------------------------------------------------------

    /// The base type `D`.
    pub fn base() -> Self {
        TypeExpr::Base
    }

    /// The empty type `∅`.
    pub fn empty() -> Self {
        TypeExpr::Empty
    }

    /// A class reference `P`.
    pub fn class<C: Into<ClassName>>(c: C) -> Self {
        TypeExpr::Class(c.into())
    }

    /// A tuple type from attribute/type pairs.
    pub fn tuple<I, A>(fields: I) -> Self
    where
        I: IntoIterator<Item = (A, TypeExpr)>,
        A: Into<AttrName>,
    {
        TypeExpr::Tuple(fields.into_iter().map(|(a, t)| (a.into(), t)).collect())
    }

    /// The empty-tuple type `[]` (whose only inhabitant is `[]`).
    pub fn unit() -> Self {
        TypeExpr::Tuple(BTreeMap::new())
    }

    /// A set type `{t}`.
    pub fn set_of(t: TypeExpr) -> Self {
        TypeExpr::Set(Box::new(t))
    }

    /// Union `t1 ∨ t2`.
    pub fn union(a: TypeExpr, b: TypeExpr) -> Self {
        TypeExpr::Union(Box::new(a), Box::new(b))
    }

    /// N-ary union; the empty union is `∅`.
    pub fn union_all<I: IntoIterator<Item = TypeExpr>>(parts: I) -> Self {
        let mut iter = parts.into_iter();
        match iter.next() {
            None => TypeExpr::Empty,
            Some(first) => iter.fold(first, TypeExpr::union),
        }
    }

    /// Intersection `t1 ∧ t2`.
    pub fn inter(a: TypeExpr, b: TypeExpr) -> Self {
        TypeExpr::Intersect(Box::new(a), Box::new(b))
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// All class names mentioned in this type.
    pub fn classes_mentioned(&self, out: &mut BTreeSet<ClassName>) {
        match self {
            TypeExpr::Empty | TypeExpr::Base => {}
            TypeExpr::Class(c) => {
                out.insert(*c);
            }
            TypeExpr::Tuple(fields) => {
                for t in fields.values() {
                    t.classes_mentioned(out);
                }
            }
            TypeExpr::Set(t) => t.classes_mentioned(out),
            TypeExpr::Union(a, b) | TypeExpr::Intersect(a, b) => {
                a.classes_mentioned(out);
                b.classes_mentioned(out);
            }
        }
    }

    /// Is this type's parse tree free of `∧`-nodes?
    pub fn is_intersection_free(&self) -> bool {
        match self {
            TypeExpr::Empty | TypeExpr::Base | TypeExpr::Class(_) => true,
            TypeExpr::Tuple(fields) => fields.values().all(TypeExpr::is_intersection_free),
            TypeExpr::Set(t) => t.is_intersection_free(),
            TypeExpr::Union(a, b) => a.is_intersection_free() && b.is_intersection_free(),
            TypeExpr::Intersect(_, _) => false,
        }
    }

    /// Is this type *intersection reduced* — no `∧`-node an ancestor of a
    /// `×`, `⋆`, or `∨` node (Section 2.2)?
    pub fn is_intersection_reduced(&self) -> bool {
        fn leafish(t: &TypeExpr) -> bool {
            // Under an ∧-node only ∅, D, class names, and further ∧ of those
            // may appear.
            match t {
                TypeExpr::Empty | TypeExpr::Base | TypeExpr::Class(_) => true,
                TypeExpr::Intersect(a, b) => leafish(a) && leafish(b),
                _ => false,
            }
        }
        match self {
            TypeExpr::Empty | TypeExpr::Base | TypeExpr::Class(_) => true,
            TypeExpr::Tuple(fields) => fields.values().all(TypeExpr::is_intersection_reduced),
            TypeExpr::Set(t) => t.is_intersection_reduced(),
            TypeExpr::Union(a, b) => a.is_intersection_reduced() && b.is_intersection_reduced(),
            TypeExpr::Intersect(a, b) => leafish(a) && leafish(b),
        }
    }

    /// Replaces every occurrence of class `from` with the type `to`.
    /// Used by the inheritance translation (Def 6.2.2) and by the
    /// completeness constructions of Section 4.2.
    pub fn substitute_class(&self, from: ClassName, to: &TypeExpr) -> TypeExpr {
        match self {
            TypeExpr::Empty | TypeExpr::Base => self.clone(),
            TypeExpr::Class(c) => {
                if *c == from {
                    to.clone()
                } else {
                    self.clone()
                }
            }
            TypeExpr::Tuple(fields) => TypeExpr::Tuple(
                fields
                    .iter()
                    .map(|(a, t)| (*a, t.substitute_class(from, to)))
                    .collect(),
            ),
            TypeExpr::Set(t) => TypeExpr::set_of(t.substitute_class(from, to)),
            TypeExpr::Union(a, b) => {
                TypeExpr::union(a.substitute_class(from, to), b.substitute_class(from, to))
            }
            TypeExpr::Intersect(a, b) => {
                TypeExpr::inter(a.substitute_class(from, to), b.substitute_class(from, to))
            }
        }
    }

    // ------------------------------------------------------------------
    // Interpretation: membership
    // ------------------------------------------------------------------

    /// `v ∈ ⟦t⟧π` — standard interpretation (Section 2.2).
    ///
    /// ```
    /// use iql_model::{ClassMap, OValue, TypeExpr};
    /// let t = TypeExpr::set_of(TypeExpr::base());
    /// let cm = ClassMap::default();
    /// assert!(t.member(&OValue::set([OValue::int(1)]), &cm));
    /// assert!(!t.member(&OValue::int(1), &cm));
    /// ```
    pub fn member<C: OidClasses + ?Sized>(&self, v: &OValue, ctx: &C) -> bool {
        match self {
            TypeExpr::Empty => false,
            TypeExpr::Base => matches!(v, OValue::Const(_)),
            TypeExpr::Class(p) => match v {
                OValue::Oid(o) => ctx.oid_in_class(*o, *p),
                _ => false,
            },
            TypeExpr::Tuple(fields) => match v {
                OValue::Tuple(vals) => {
                    vals.len() == fields.len()
                        && fields
                            .iter()
                            .all(|(a, t)| vals.get(a).is_some_and(|val| t.member(val, ctx)))
                }
                _ => false,
            },
            TypeExpr::Set(t) => match v {
                OValue::Set(elems) => elems.iter().all(|e| t.member(e, ctx)),
                _ => false,
            },
            TypeExpr::Union(a, b) => a.member(v, ctx) || b.member(v, ctx),
            TypeExpr::Intersect(a, b) => a.member(v, ctx) && b.member(v, ctx),
        }
    }

    /// `v ∈ ⟦t⟧π` over an interned value — the [`TypeExpr::member`] check
    /// against a [`crate::ValueId`] read through any [`ValueReader`], without
    /// materializing the tree.
    pub fn member_id<R, C>(&self, id: crate::ValueId, reader: &R, ctx: &C) -> bool
    where
        R: crate::ValueReader + ?Sized,
        C: OidClasses + ?Sized,
    {
        use crate::Node;
        match self {
            TypeExpr::Empty => false,
            TypeExpr::Base => matches!(reader.node(id), Node::Const(_)),
            TypeExpr::Class(p) => match reader.node(id) {
                Node::Oid(o) => ctx.oid_in_class(*o, *p),
                _ => false,
            },
            TypeExpr::Tuple(fields) => match reader.node(id) {
                Node::Tuple(vals) => {
                    // Node tuples are sorted by attribute, as are TypeExpr
                    // tuples (BTreeMap) — walk both in lockstep.
                    vals.len() == fields.len()
                        && fields
                            .iter()
                            .zip(vals.iter())
                            .all(|((a, t), (a2, val))| a == a2 && t.member_id(*val, reader, ctx))
                }
                _ => false,
            },
            TypeExpr::Set(t) => match reader.node(id) {
                Node::Set(elems) => elems.iter().all(|e| t.member_id(*e, reader, ctx)),
                _ => false,
            },
            TypeExpr::Union(a, b) => a.member_id(id, reader, ctx) || b.member_id(id, reader, ctx),
            TypeExpr::Intersect(a, b) => {
                a.member_id(id, reader, ctx) && b.member_id(id, reader, ctx)
            }
        }
    }

    /// `v ∈ ⟦t⟧*π` — the `*`-interpretation of Section 6.2, where a tuple
    /// type `[A1:t1,…,Ak:tk]` denotes records with *at least* fields
    /// `A1..Ak` (of the right `*`-types) plus arbitrary extra fields.
    pub fn member_star<C: OidClasses + ?Sized>(&self, v: &OValue, ctx: &C) -> bool {
        match self {
            TypeExpr::Empty => false,
            TypeExpr::Base => matches!(v, OValue::Const(_)),
            TypeExpr::Class(p) => match v {
                OValue::Oid(o) => ctx.oid_in_class(*o, *p),
                _ => false,
            },
            TypeExpr::Tuple(fields) => match v {
                OValue::Tuple(vals) => fields
                    .iter()
                    .all(|(a, t)| vals.get(a).is_some_and(|val| t.member_star(val, ctx))),
                _ => false,
            },
            TypeExpr::Set(t) => match v {
                OValue::Set(elems) => elems.iter().all(|e| t.member_star(e, ctx)),
                _ => false,
            },
            TypeExpr::Union(a, b) => a.member_star(v, ctx) || b.member_star(v, ctx),
            TypeExpr::Intersect(a, b) => a.member_star(v, ctx) && b.member_star(v, ctx),
        }
    }

    // ------------------------------------------------------------------
    // Normal form (Proposition 2.2.1, over disjoint assignments)
    // ------------------------------------------------------------------

    /// Canonical disjunctive normal form over *disjoint* oid assignments:
    /// a set of [`TypeAtom`]s whose union is equivalent to `self` for every
    /// disjoint `π`. `∅` normalizes to the empty set of atoms.
    pub fn normalize_disjoint(&self) -> BTreeSet<TypeAtom> {
        match self {
            TypeExpr::Empty => BTreeSet::new(),
            TypeExpr::Base => BTreeSet::from([TypeAtom::Base]),
            TypeExpr::Class(p) => BTreeSet::from([TypeAtom::Class(*p)]),
            TypeExpr::Tuple(fields) => {
                // Normalize each field, then distribute unions out of the
                // tuple: [A: a∨b, B: c] ≡ [A:a,B:c] ∨ [A:b,B:c]. If any
                // field has empty interpretation the tuple type is empty.
                let mut acc: Vec<BTreeMap<AttrName, TypeAtom>> = vec![BTreeMap::new()];
                for (a, t) in fields {
                    let choices = t.normalize_disjoint();
                    if choices.is_empty() {
                        return BTreeSet::new();
                    }
                    let mut next = Vec::with_capacity(acc.len() * choices.len());
                    for partial in &acc {
                        for choice in &choices {
                            let mut p = partial.clone();
                            p.insert(*a, choice.clone());
                            next.push(p);
                        }
                    }
                    acc = next;
                }
                acc.into_iter().map(TypeAtom::Tuple).collect()
            }
            TypeExpr::Set(t) => {
                // Unions do NOT distribute through sets: {a ∨ b} keeps the
                // union inside. Note {∅} is non-empty (it contains {}).
                BTreeSet::from([TypeAtom::Set(t.normalize_disjoint())])
            }
            TypeExpr::Union(a, b) => {
                let mut s = a.normalize_disjoint();
                s.extend(b.normalize_disjoint());
                s
            }
            TypeExpr::Intersect(a, b) => {
                let left = a.normalize_disjoint();
                let right = b.normalize_disjoint();
                let mut out = BTreeSet::new();
                for x in &left {
                    for y in &right {
                        if let Some(z) = TypeAtom::intersect(x, y) {
                            out.insert(z);
                        }
                    }
                }
                out
            }
        }
    }

    /// An intersection-free type equivalent to `self` over every *disjoint*
    /// oid assignment (Proposition 2.2.1(2)). Also canonical: equivalent
    /// inputs produce syntactically equal outputs for the fragment handled
    /// by [`TypeExpr::normalize_disjoint`].
    pub fn intersection_free_disjoint(&self) -> TypeExpr {
        atoms_to_type(&self.normalize_disjoint())
    }

    /// Are `self` and `other` equivalent over every disjoint oid assignment?
    /// Decided by comparing canonical normal forms.
    pub fn equivalent_disjoint(&self, other: &TypeExpr) -> bool {
        self.normalize_disjoint() == other.normalize_disjoint()
    }

    /// An *intersection reduced* equivalent over **all** (not necessarily
    /// disjoint) assignments (Proposition 2.2.1(1)): pushes `∧` down until
    /// no `∧`-node is an ancestor of a `×`, `⋆`, or `∨` node. Intersections
    /// of class names are kept (they cannot be reduced without
    /// disjointness).
    pub fn intersection_reduce(&self) -> TypeExpr {
        match self {
            TypeExpr::Empty | TypeExpr::Base | TypeExpr::Class(_) => self.clone(),
            TypeExpr::Tuple(fields) => TypeExpr::Tuple(
                fields
                    .iter()
                    .map(|(a, t)| (*a, t.intersection_reduce()))
                    .collect(),
            ),
            TypeExpr::Set(t) => TypeExpr::set_of(t.intersection_reduce()),
            TypeExpr::Union(a, b) => {
                TypeExpr::union(a.intersection_reduce(), b.intersection_reduce())
            }
            TypeExpr::Intersect(a, b) => {
                reduce_inter(&a.intersection_reduce(), &b.intersection_reduce())
            }
        }
    }

    // ------------------------------------------------------------------
    // Active-domain enumeration
    // ------------------------------------------------------------------

    /// Enumerates `⟦t⟧` restricted to the given constants and class extents
    /// — the range of an IQL variable of this type over an instance whose
    /// constants are `universe.constants` (Section 3.2). Fails with
    /// [`ModelError::EnumerationBudget`] once more than `universe.budget`
    /// values would be produced (set types are powersets, so this is
    /// exponential by design; see Example 3.4.2).
    pub fn enumerate(&self, universe: &EnumUniverse<'_>) -> Result<Vec<OValue>> {
        let vals = self.enum_inner(universe)?;
        Ok(vals)
    }

    fn enum_inner(&self, u: &EnumUniverse<'_>) -> Result<Vec<OValue>> {
        let check = |n: usize| -> Result<()> {
            if n > u.budget {
                Err(ModelError::EnumerationBudget {
                    budget: u.budget,
                    ty: self.to_string(),
                })
            } else {
                Ok(())
            }
        };
        match self {
            TypeExpr::Empty => Ok(Vec::new()),
            TypeExpr::Base => Ok(u.constants.iter().cloned().map(OValue::Const).collect()),
            TypeExpr::Class(p) => Ok(u
                .classes
                .classes
                .get(p)
                .into_iter()
                .flatten()
                .copied()
                .map(OValue::Oid)
                .collect()),
            TypeExpr::Tuple(fields) => {
                let mut acc: Vec<BTreeMap<AttrName, OValue>> = vec![BTreeMap::new()];
                for (a, t) in fields {
                    let choices = t.enum_inner(u)?;
                    check(acc.len().saturating_mul(choices.len()))?;
                    let mut next = Vec::with_capacity(acc.len() * choices.len());
                    for partial in &acc {
                        for c in &choices {
                            let mut p = partial.clone();
                            p.insert(*a, c.clone());
                            next.push(p);
                        }
                    }
                    acc = next;
                    if acc.is_empty() {
                        return Ok(Vec::new());
                    }
                }
                Ok(acc.into_iter().map(OValue::Tuple).collect())
            }
            TypeExpr::Set(t) => {
                let elems = t.enum_inner(u)?;
                if elems.len() >= usize::BITS as usize || (1usize << elems.len()) > u.budget {
                    return Err(ModelError::EnumerationBudget {
                        budget: u.budget,
                        ty: self.to_string(),
                    });
                }
                let n = elems.len();
                let mut out = Vec::with_capacity(1 << n);
                for mask in 0..(1usize << n) {
                    let subset: BTreeSet<OValue> = elems
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, v)| v.clone())
                        .collect();
                    out.push(OValue::Set(subset));
                }
                // Element duplicates (impossible here: elems are distinct)
                // would collapse; dedup to be safe against equal enumerations
                // from union types.
                out.sort();
                out.dedup();
                Ok(out)
            }
            TypeExpr::Union(a, b) => {
                let mut out = a.enum_inner(u)?;
                out.extend(b.enum_inner(u)?);
                out.sort();
                out.dedup();
                check(out.len())?;
                Ok(out)
            }
            TypeExpr::Intersect(a, b) => {
                let left = a.enum_inner(u)?;
                Ok(left
                    .into_iter()
                    .filter(|v| b.member(v, u.classes))
                    .collect())
            }
        }
    }
}

/// The universe over which [`TypeExpr::enumerate`] interprets a type.
#[derive(Debug, Clone, Copy)]
pub struct EnumUniverse<'a> {
    /// Constants allowed at `D` leaves (normally `constants(I)`).
    pub constants: &'a [Constant],
    /// Class extents (normally the instance's `π`).
    pub classes: &'a ClassMap,
    /// Hard cap on the number of values produced at any node.
    pub budget: usize,
}

/// An atom of the canonical disjoint-assignment normal form: a type with no
/// top-level union or intersection, with unions appearing only (possibly)
/// directly under set constructors.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TypeAtom {
    /// `D`.
    Base,
    /// A class name.
    Class(ClassName),
    /// A tuple of atoms.
    Tuple(BTreeMap<AttrName, TypeAtom>),
    /// A set whose element type is a union of atoms (possibly empty: `{∅}`).
    Set(BTreeSet<TypeAtom>),
}

impl TypeAtom {
    /// Atom intersection under the disjointness assumption; `None` means the
    /// intersection is empty.
    fn intersect(a: &TypeAtom, b: &TypeAtom) -> Option<TypeAtom> {
        match (a, b) {
            (TypeAtom::Base, TypeAtom::Base) => Some(TypeAtom::Base),
            (TypeAtom::Class(p), TypeAtom::Class(q)) => {
                if p == q {
                    Some(TypeAtom::Class(*p))
                } else {
                    // Disjoint oid assignments: distinct classes never share
                    // oids, so P ∧ Q ≡ ∅.
                    None
                }
            }
            (TypeAtom::Tuple(fa), TypeAtom::Tuple(fb)) => {
                if fa.len() != fb.len() || !fa.keys().eq(fb.keys()) {
                    return None;
                }
                let mut out = BTreeMap::new();
                for (attr, ta) in fa {
                    let tb = &fb[attr];
                    out.insert(*attr, TypeAtom::intersect(ta, tb)?);
                }
                Some(TypeAtom::Tuple(out))
            }
            (TypeAtom::Set(na), TypeAtom::Set(nb)) => {
                // {t1} ∧ {t2} ≡ {t1 ∧ t2}; note this is non-empty even when
                // the element type is empty ({∅} contains {}).
                let mut out = BTreeSet::new();
                for x in na {
                    for y in nb {
                        if let Some(z) = TypeAtom::intersect(x, y) {
                            out.insert(z);
                        }
                    }
                }
                Some(TypeAtom::Set(out))
            }
            _ => None,
        }
    }

    /// Converts the atom back to a [`TypeExpr`].
    pub fn to_type(&self) -> TypeExpr {
        match self {
            TypeAtom::Base => TypeExpr::Base,
            TypeAtom::Class(p) => TypeExpr::Class(*p),
            TypeAtom::Tuple(fields) => {
                TypeExpr::Tuple(fields.iter().map(|(a, t)| (*a, t.to_type())).collect())
            }
            TypeAtom::Set(atoms) => TypeExpr::set_of(atoms_to_type(atoms)),
        }
    }
}

fn atoms_to_type(atoms: &BTreeSet<TypeAtom>) -> TypeExpr {
    TypeExpr::union_all(atoms.iter().map(TypeAtom::to_type))
}

/// `∧` pushed into two already-reduced types (over all assignments).
fn reduce_inter(a: &TypeExpr, b: &TypeExpr) -> TypeExpr {
    use TypeExpr as T;
    match (a, b) {
        (T::Empty, _) | (_, T::Empty) => T::Empty,
        (T::Union(x, y), other) => T::union(reduce_inter(x, other), reduce_inter(y, other)),
        (other, T::Union(x, y)) => T::union(reduce_inter(other, x), reduce_inter(other, y)),
        (T::Base, T::Base) => T::Base,
        (T::Tuple(fa), T::Tuple(fb)) => {
            if fa.len() != fb.len() || !fa.keys().eq(fb.keys()) {
                return T::Empty;
            }
            let mut out = BTreeMap::new();
            for (attr, ta) in fa {
                let field = reduce_inter(ta, &fb[attr]);
                out.insert(*attr, field);
            }
            // A tuple with an empty-typed field is empty.
            if out.values().any(|t| matches!(t, T::Empty)) {
                T::Empty
            } else {
                T::Tuple(out)
            }
        }
        (T::Set(ta), T::Set(tb)) => T::set_of(reduce_inter(ta, tb)),
        (T::Class(p), T::Class(q)) => {
            if p == q {
                T::Class(*p)
            } else {
                // Over all (non-disjoint) assignments P ∧ Q is irreducible;
                // keep the ∧ of class leaves, which is still "reduced".
                T::inter(T::Class(*p), T::Class(*q))
            }
        }
        // A class leaf intersected with an irreducible class intersection
        // stays a leaf-level intersection.
        (ca @ (T::Class(_) | T::Intersect(_, _)), cb @ (T::Class(_) | T::Intersect(_, _)))
            if leafish_classes(ca) && leafish_classes(cb) =>
        {
            T::inter(ca.clone(), cb.clone())
        }
        // Mixed constructors denote disjoint value shapes.
        _ => T::Empty,
    }
}

fn leafish_classes(t: &TypeExpr) -> bool {
    match t {
        TypeExpr::Class(_) => true,
        TypeExpr::Intersect(a, b) => leafish_classes(a) && leafish_classes(b),
        _ => false,
    }
}

impl fmt::Debug for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Empty => write!(f, "empty"),
            TypeExpr::Base => write!(f, "D"),
            TypeExpr::Class(c) => write!(f, "{c}"),
            TypeExpr::Tuple(fields) => {
                write!(f, "[")?;
                for (i, (a, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}: {t}")?;
                }
                write!(f, "]")
            }
            TypeExpr::Set(t) => write!(f, "{{{t}}}"),
            TypeExpr::Union(a, b) => write!(f, "({a} | {b})"),
            TypeExpr::Intersect(a, b) => write!(f, "({a} & {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> TypeExpr {
        TypeExpr::base()
    }

    fn class_map(entries: &[(&str, &[u64])]) -> ClassMap {
        let mut cm = ClassMap::default();
        for (name, oids) in entries {
            cm.classes.insert(
                ClassName::new(name),
                oids.iter().map(|&n| Oid::from_raw(n)).collect(),
            );
        }
        cm
    }

    #[test]
    fn base_membership() {
        let cm = ClassMap::default();
        assert!(d().member(&OValue::str("x"), &cm));
        assert!(!d().member(&OValue::oid(Oid::from_raw(1)), &cm));
        assert!(!d().member(&OValue::empty_set(), &cm));
    }

    #[test]
    fn class_membership_uses_assignment() {
        let cm = class_map(&[("P", &[1, 2])]);
        let t = TypeExpr::class("P");
        assert!(t.member(&OValue::oid(Oid::from_raw(1)), &cm));
        assert!(!t.member(&OValue::oid(Oid::from_raw(3)), &cm));
        assert!(!t.member(&OValue::str("P"), &cm));
    }

    #[test]
    fn tuple_membership_is_exact_width() {
        let cm = ClassMap::default();
        let t = TypeExpr::tuple([("a", d()), ("b", d())]);
        let ok = OValue::tuple([("a", OValue::int(1)), ("b", OValue::int(2))]);
        let extra = OValue::tuple([
            ("a", OValue::int(1)),
            ("b", OValue::int(2)),
            ("c", OValue::int(3)),
        ]);
        let missing = OValue::tuple([("a", OValue::int(1))]);
        assert!(t.member(&ok, &cm));
        assert!(!t.member(&extra, &cm));
        assert!(!t.member(&missing, &cm));
        // But the *-interpretation admits extra fields (Section 6.2).
        assert!(t.member_star(&extra, &cm));
        assert!(!t.member_star(&missing, &cm));
    }

    #[test]
    fn set_membership() {
        let cm = ClassMap::default();
        let t = TypeExpr::set_of(d());
        assert!(t.member(&OValue::empty_set(), &cm));
        assert!(t.member(&OValue::set([OValue::int(1), OValue::int(2)]), &cm));
        assert!(!t.member(&OValue::set([OValue::unit()]), &cm));
        // {∅} contains exactly the empty set.
        let t_empty = TypeExpr::set_of(TypeExpr::empty());
        assert!(t_empty.member(&OValue::empty_set(), &cm));
        assert!(!t_empty.member(&OValue::set([OValue::int(1)]), &cm));
    }

    #[test]
    fn union_and_intersection_membership() {
        let cm = class_map(&[("P", &[1])]);
        let t = TypeExpr::union(d(), TypeExpr::class("P"));
        assert!(t.member(&OValue::str("x"), &cm));
        assert!(t.member(&OValue::oid(Oid::from_raw(1)), &cm));
        let t2 = TypeExpr::inter(d(), TypeExpr::class("P"));
        assert!(!t2.member(&OValue::str("x"), &cm));
        assert!(!t2.member(&OValue::oid(Oid::from_raw(1)), &cm));
    }

    #[test]
    fn paper_example_intersection_of_tuples() {
        // [A1:D, A2:{P1}] ∧ [A1:D, A2:{P2}]  ≡disjoint  [A1:D, A2:{∅}]
        let p1 = TypeExpr::class("NP1");
        let p2 = TypeExpr::class("NP2");
        let lhs = TypeExpr::inter(
            TypeExpr::tuple([("A1", d()), ("A2", TypeExpr::set_of(p1))]),
            TypeExpr::tuple([("A1", d()), ("A2", TypeExpr::set_of(p2))]),
        );
        let rhs = TypeExpr::tuple([("A1", d()), ("A2", TypeExpr::set_of(TypeExpr::empty()))]);
        assert!(lhs.equivalent_disjoint(&rhs));
    }

    #[test]
    fn paper_example_mixed_intersection_is_empty() {
        // ({D} ∨ P1) ∧ P2 ≡disjoint ∅  (for distinct P1, P2)
        let t = TypeExpr::inter(
            TypeExpr::union(TypeExpr::set_of(d()), TypeExpr::class("MP1")),
            TypeExpr::class("MP2"),
        );
        assert!(t.equivalent_disjoint(&TypeExpr::empty()));
    }

    #[test]
    fn empty_tuple_field_collapses() {
        // [A1: ∅] ≡ ∅, but {∅} ≢ ∅.
        let t = TypeExpr::tuple([("A1", TypeExpr::empty())]);
        assert!(t.equivalent_disjoint(&TypeExpr::empty()));
        assert!(!TypeExpr::set_of(TypeExpr::empty()).equivalent_disjoint(&TypeExpr::empty()));
    }

    #[test]
    fn intersection_free_output_is_intersection_free() {
        let t = TypeExpr::inter(
            TypeExpr::union(d(), TypeExpr::class("QP")),
            TypeExpr::union(d(), TypeExpr::set_of(d())),
        );
        let free = t.intersection_free_disjoint();
        assert!(free.is_intersection_free());
        assert!(free.equivalent_disjoint(&t));
        assert!(free.equivalent_disjoint(&d()));
    }

    #[test]
    fn intersection_reduce_structure() {
        let t = TypeExpr::inter(
            TypeExpr::tuple([("a", TypeExpr::inter(d(), d()))]),
            TypeExpr::tuple([("a", d())]),
        );
        let r = t.intersection_reduce();
        assert!(r.is_intersection_reduced());
        assert_eq!(r, TypeExpr::tuple([("a", d())]));
        // Class-class intersections stay (irreducible without disjointness).
        let cc = TypeExpr::inter(TypeExpr::class("RA"), TypeExpr::class("RB"));
        let rr = cc.intersection_reduce();
        assert!(rr.is_intersection_reduced());
        assert!(matches!(rr, TypeExpr::Intersect(_, _)));
    }

    #[test]
    fn tuple_union_distribution_canonicalizes() {
        // [A: a∨b] ≡ [A:a] ∨ [A:b]
        let lhs = TypeExpr::tuple([("A", TypeExpr::union(d(), TypeExpr::class("DP")))]);
        let rhs = TypeExpr::union(
            TypeExpr::tuple([("A", d())]),
            TypeExpr::tuple([("A", TypeExpr::class("DP"))]),
        );
        assert!(lhs.equivalent_disjoint(&rhs));
    }

    #[test]
    fn set_union_does_not_distribute() {
        // {a ∨ b} ≢ {a} ∨ {b}: a mixed set inhabits only the former.
        let lhs = TypeExpr::set_of(TypeExpr::union(d(), TypeExpr::class("SP")));
        let rhs = TypeExpr::union(
            TypeExpr::set_of(d()),
            TypeExpr::set_of(TypeExpr::class("SP")),
        );
        assert!(!lhs.equivalent_disjoint(&rhs));
        let cm = class_map(&[("SP", &[1])]);
        let mixed = OValue::set([OValue::str("x"), OValue::oid(Oid::from_raw(1))]);
        assert!(lhs.member(&mixed, &cm));
        assert!(!rhs.member(&mixed, &cm));
    }

    #[test]
    fn enumerate_base_and_tuple() {
        let consts = vec![Constant::int(1), Constant::int(2)];
        let cm = ClassMap::default();
        let u = EnumUniverse {
            constants: &consts,
            classes: &cm,
            budget: 1000,
        };
        assert_eq!(d().enumerate(&u).unwrap().len(), 2);
        let t = TypeExpr::tuple([("a", d()), ("b", d())]);
        assert_eq!(t.enumerate(&u).unwrap().len(), 4);
    }

    #[test]
    fn enumerate_set_is_powerset() {
        let consts = vec![Constant::int(1), Constant::int(2), Constant::int(3)];
        let cm = ClassMap::default();
        let u = EnumUniverse {
            constants: &consts,
            classes: &cm,
            budget: 1000,
        };
        let vals = TypeExpr::set_of(d()).enumerate(&u).unwrap();
        assert_eq!(vals.len(), 8); // 2^3 subsets
        assert!(vals.contains(&OValue::empty_set()));
    }

    #[test]
    fn enumerate_respects_budget() {
        let consts: Vec<Constant> = (0..20).map(Constant::int).collect();
        let cm = ClassMap::default();
        let u = EnumUniverse {
            constants: &consts,
            classes: &cm,
            budget: 100,
        };
        let err = TypeExpr::set_of(d()).enumerate(&u).unwrap_err();
        assert!(matches!(err, ModelError::EnumerationBudget { .. }));
    }

    #[test]
    fn enumerate_classes_and_union() {
        let consts = vec![Constant::int(1)];
        let cm = class_map(&[("EP", &[5, 6])]);
        let u = EnumUniverse {
            constants: &consts,
            classes: &cm,
            budget: 1000,
        };
        let t = TypeExpr::union(d(), TypeExpr::class("EP"));
        let vals = t.enumerate(&u).unwrap();
        assert_eq!(vals.len(), 3);
    }

    #[test]
    fn substitute_class_rewrites_everywhere() {
        let t = TypeExpr::tuple([
            ("a", TypeExpr::class("Old")),
            ("b", TypeExpr::set_of(TypeExpr::class("Old"))),
        ]);
        let s = t.substitute_class(ClassName::new("Old"), &TypeExpr::class("New"));
        let mut seen = BTreeSet::new();
        s.classes_mentioned(&mut seen);
        assert_eq!(seen, BTreeSet::from([ClassName::new("New")]));
    }

    #[test]
    fn display_forms() {
        let t = TypeExpr::tuple([
            ("name", d()),
            ("kids", TypeExpr::set_of(TypeExpr::class("Gen2"))),
        ]);
        assert_eq!(t.to_string(), "[kids: {Gen2}, name: D]");
    }
}
