//! Regular trees as (possibly cyclic) node graphs, with bisimulation.
//!
//! A *pure value* (Section 7.1) is an infinite tree with constant, tuple,
//! and set nodes — no oids. Pure values occurring in v-instances are
//! **regular** (finitely many distinct subtrees, Proposition 7.1.3), so
//! they are exactly the trees presentable by a finite node graph: a
//! [`Forest`] node plays the role of a tree, and two nodes denote the same
//! tree iff they are **bisimilar** (with set children compared as sets of
//! classes — duplicate elimination at the semantic level, matching
//! Courcelle's regular-tree theory adapted to unordered set nodes).
//!
//! Bisimulation classes are computed by signature-based partition
//! refinement; [`Forest::minimize`] quotients a forest to one node per
//! class, which is the canonical representation used for equality.

use iql_model::{AttrName, Constant, OValue};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

/// A node index within a [`Forest`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// One node of a regular-tree presentation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// A constant leaf.
    Const(Constant),
    /// A tuple node with attribute-labelled children.
    Tuple(BTreeMap<AttrName, NodeId>),
    /// A set node with unordered children (duplicates collapse
    /// semantically, via bisimulation).
    Set(BTreeSet<NodeId>),
}

/// A finite presentation of a family of regular trees. Cycles are allowed —
/// that is the point.
#[derive(Clone, Default, Debug)]
pub struct Forest {
    nodes: Vec<Node>,
}

impl Forest {
    /// An empty forest.
    pub fn new() -> Forest {
        Forest::default()
    }

    /// Number of nodes (not trees — nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the forest empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a constant leaf.
    pub fn add_const(&mut self, c: Constant) -> NodeId {
        self.push(Node::Const(c))
    }

    /// Adds a tuple node.
    pub fn add_tuple<I, A>(&mut self, fields: I) -> NodeId
    where
        I: IntoIterator<Item = (A, NodeId)>,
        A: Into<AttrName>,
    {
        self.push(Node::Tuple(
            fields.into_iter().map(|(a, n)| (a.into(), n)).collect(),
        ))
    }

    /// Adds a set node.
    pub fn add_set<I: IntoIterator<Item = NodeId>>(&mut self, elems: I) -> NodeId {
        self.push(Node::Set(elems.into_iter().collect()))
    }

    /// Reserves an empty placeholder (filled later with [`Forest::set_node`])
    /// — the way cyclic structures are built.
    pub fn reserve(&mut self) -> NodeId {
        self.push(Node::Set(BTreeSet::new()))
    }

    /// Overwrites a node (used to close cycles on reserved slots).
    pub fn set_node(&mut self, id: NodeId, node: Node) {
        self.nodes[id.0] = node;
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// All node ids.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    // ------------------------------------------------------------------
    // Bisimulation
    // ------------------------------------------------------------------

    /// Computes the coarsest bisimulation: returns a class id per node.
    /// Two nodes get the same class iff they denote the same regular tree
    /// (set children compared as *sets of classes*).
    pub fn bisimulation_classes(&self) -> Vec<u64> {
        let n = self.nodes.len();
        // Initial colors: kind + constant payload.
        let mut colors: Vec<u64> = self
            .nodes
            .iter()
            .map(|node| {
                let mut h = DefaultHasher::new();
                match node {
                    Node::Const(c) => {
                        0u8.hash(&mut h);
                        c.hash(&mut h);
                    }
                    Node::Tuple(f) => {
                        1u8.hash(&mut h);
                        for a in f.keys() {
                            a.as_str().hash(&mut h);
                        }
                    }
                    Node::Set(_) => 2u8.hash(&mut h),
                }
                h.finish()
            })
            .collect();
        let mut distinct = count_distinct(&colors);
        for _ in 0..n.max(1) {
            let next: Vec<u64> = self
                .nodes
                .iter()
                .map(|node| {
                    let mut h = DefaultHasher::new();
                    match node {
                        Node::Const(c) => {
                            0u8.hash(&mut h);
                            c.hash(&mut h);
                        }
                        Node::Tuple(f) => {
                            1u8.hash(&mut h);
                            for (a, child) in f {
                                a.as_str().hash(&mut h);
                                colors[child.0].hash(&mut h);
                            }
                        }
                        Node::Set(elems) => {
                            2u8.hash(&mut h);
                            // Duplicate elimination: the *set* of child
                            // classes, not the multiset.
                            let classes: BTreeSet<u64> =
                                elems.iter().map(|e| colors[e.0]).collect();
                            classes.hash(&mut h);
                        }
                    }
                    h.finish()
                })
                .collect();
            let next_distinct = count_distinct(&next);
            let stable = next_distinct == distinct;
            colors = next;
            distinct = next_distinct;
            if stable {
                break;
            }
        }
        colors
    }

    /// Are two trees (nodes of this forest) equal as regular trees?
    pub fn equal(&self, a: NodeId, b: NodeId) -> bool {
        let classes = self.bisimulation_classes();
        classes[a.0] == classes[b.0]
    }

    /// Quotients the forest by bisimulation: returns the minimized forest
    /// and the mapping old-node → new-node. The minimized forest has one
    /// node per distinct regular tree — the canonical form.
    pub fn minimize(&self) -> (Forest, Vec<NodeId>) {
        let classes = self.bisimulation_classes();
        // Representative per class: the smallest node id.
        let mut rep: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, c) in classes.iter().enumerate() {
            rep.entry(*c).or_insert(i);
        }
        // New ids in representative order (deterministic).
        let mut new_id: BTreeMap<u64, NodeId> = BTreeMap::new();
        let mut order: Vec<(usize, u64)> = rep.iter().map(|(c, i)| (*i, *c)).collect();
        order.sort();
        for (k, (_, c)) in order.iter().enumerate() {
            new_id.insert(*c, NodeId(k));
        }
        let mut out = Forest::new();
        for (i, c) in order {
            let node = match &self.nodes[i] {
                Node::Const(k) => Node::Const(k.clone()),
                Node::Tuple(f) => Node::Tuple(
                    f.iter()
                        .map(|(a, ch)| (*a, new_id[&classes[ch.0]]))
                        .collect(),
                ),
                Node::Set(elems) => {
                    Node::Set(elems.iter().map(|ch| new_id[&classes[ch.0]]).collect())
                }
            };
            let id = out.push(node);
            debug_assert_eq!(id, new_id[&c]);
        }
        let mapping: Vec<NodeId> = classes.iter().map(|c| new_id[c]).collect();
        (out, mapping)
    }

    /// Number of distinct subtrees reachable from `root` — finite for every
    /// node of a finite forest, which is Proposition 7.1.3 in executable
    /// form (every pure value in a v-instance is a regular tree).
    pub fn distinct_subtrees(&self, root: NodeId) -> usize {
        let classes = self.bisimulation_classes();
        let mut seen_nodes = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if !seen_nodes.insert(n) {
                continue;
            }
            match &self.nodes[n.0] {
                Node::Const(_) => {}
                Node::Tuple(f) => stack.extend(f.values().copied()),
                Node::Set(e) => stack.extend(e.iter().copied()),
            }
        }
        let reach_classes: BTreeSet<u64> = seen_nodes.iter().map(|n| classes[n.0]).collect();
        reach_classes.len()
    }

    /// Unfolds a tree to finite depth as an o-value (for display and
    /// tests); cycles are cut with the string constant `"..."`.
    pub fn unfold(&self, root: NodeId, depth: usize) -> OValue {
        if depth == 0 {
            return OValue::str("...");
        }
        match self.node(root) {
            Node::Const(c) => OValue::Const(c.clone()),
            Node::Tuple(f) => OValue::Tuple(
                f.iter()
                    .map(|(a, ch)| (*a, self.unfold(*ch, depth - 1)))
                    .collect(),
            ),
            Node::Set(e) => OValue::Set(e.iter().map(|ch| self.unfold(*ch, depth - 1)).collect()),
        }
    }

    /// Imports an oid-free o-value as a (tree-shaped) forest fragment.
    pub fn import_ovalue(&mut self, v: &OValue) -> Option<NodeId> {
        match v {
            OValue::Const(c) => Some(self.add_const(c.clone())),
            OValue::Oid(_) => None,
            OValue::Tuple(fields) => {
                let mut out: BTreeMap<AttrName, NodeId> = BTreeMap::new();
                for (a, fv) in fields {
                    out.insert(*a, self.import_ovalue(fv)?);
                }
                Some(self.push(Node::Tuple(out)))
            }
            OValue::Set(elems) => {
                let mut out = BTreeSet::new();
                for e in elems {
                    out.insert(self.import_ovalue(e)?);
                }
                Some(self.push(Node::Set(out)))
            }
        }
    }

    /// Renders the forest fragment reachable from `roots` in Graphviz DOT —
    /// a debugging view of regular-tree presentations (cycles and sharing
    /// show up as back/cross edges).
    pub fn to_dot(&self, roots: &[NodeId]) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph forest {\n  rankdir=LR;\n");
        let mut seen = BTreeSet::new();
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            match self.node(n) {
                Node::Const(c) => {
                    let _ = writeln!(out, "  n{} [label=\"{}\", shape=plaintext];", n.0, c);
                }
                Node::Tuple(fields) => {
                    let _ = writeln!(out, "  n{} [label=\"×\", shape=circle];", n.0);
                    for (a, ch) in fields {
                        let _ = writeln!(out, "  n{} -> n{} [label=\"{}\"];", n.0, ch.0, a);
                        stack.push(*ch);
                    }
                }
                Node::Set(elems) => {
                    let _ = writeln!(out, "  n{} [label=\"∗\", shape=diamond];", n.0);
                    for ch in elems {
                        let _ = writeln!(out, "  n{} -> n{};", n.0, ch.0);
                        stack.push(*ch);
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Appends all of `other`'s nodes, returning the id offset — the basis
    /// for cross-forest equality.
    pub fn absorb(&mut self, other: &Forest) -> usize {
        let offset = self.nodes.len();
        for node in &other.nodes {
            let shifted = match node {
                Node::Const(c) => Node::Const(c.clone()),
                Node::Tuple(f) => Node::Tuple(
                    f.iter()
                        .map(|(a, ch)| (*a, NodeId(ch.0 + offset)))
                        .collect(),
                ),
                Node::Set(e) => Node::Set(e.iter().map(|ch| NodeId(ch.0 + offset)).collect()),
            };
            self.nodes.push(shifted);
        }
        offset
    }
}

fn count_distinct(colors: &[u64]) -> usize {
    let mut set: HashMap<u64, ()> = HashMap::with_capacity(colors.len());
    for c in colors {
        set.insert(*c, ());
    }
    set.len()
}

/// Cross-forest regular-tree equality: are `(fa, a)` and `(fb, b)` the same
/// tree?
pub fn trees_equal(fa: &Forest, a: NodeId, fb: &Forest, b: NodeId) -> bool {
    let mut joint = fa.clone();
    let offset = joint.absorb(fb);
    joint.equal(a, NodeId(b.0 + offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_trees_compare_structurally() {
        let mut f = Forest::new();
        let a1 = f.add_const(Constant::int(1));
        let a2 = f.add_const(Constant::int(1));
        let t1 = f.add_tuple([("x", a1)]);
        let t2 = f.add_tuple([("x", a2)]);
        assert!(f.equal(t1, t2));
        let b = f.add_const(Constant::int(2));
        let t3 = f.add_tuple([("x", b)]);
        assert!(!f.equal(t1, t3));
    }

    #[test]
    fn set_duplicates_collapse() {
        // {1, 1'} = {1}: set nodes compare as sets of classes.
        let mut f = Forest::new();
        let a1 = f.add_const(Constant::int(1));
        let a2 = f.add_const(Constant::int(1));
        let s1 = f.add_set([a1, a2]);
        let s2 = f.add_set([a1]);
        assert!(f.equal(s1, s2));
    }

    #[test]
    fn cyclic_trees_bisimilar() {
        // Two presentations of the infinite tree t = [next: t].
        let mut f = Forest::new();
        let u = f.reserve();
        f.set_node(u, Node::Tuple(BTreeMap::from([(AttrName::new("next"), u)])));
        // A two-node unrolling of the same tree.
        let v1 = f.reserve();
        let v2 = f.reserve();
        f.set_node(
            v1,
            Node::Tuple(BTreeMap::from([(AttrName::new("next"), v2)])),
        );
        f.set_node(
            v2,
            Node::Tuple(BTreeMap::from([(AttrName::new("next"), v1)])),
        );
        assert!(f.equal(u, v1));
        assert!(f.equal(v1, v2));
    }

    #[test]
    fn different_cycles_distinguished() {
        // t = [next: t] vs s = [next: [stop: "end"]] are different.
        let mut f = Forest::new();
        let u = f.reserve();
        f.set_node(u, Node::Tuple(BTreeMap::from([(AttrName::new("next"), u)])));
        let end = f.add_const(Constant::str("end"));
        let stop = f.add_tuple([("stop", end)]);
        let s = f.add_tuple([("next", stop)]);
        assert!(!f.equal(u, s));
    }

    #[test]
    fn minimize_collapses_classes() {
        let mut f = Forest::new();
        // Three copies of the same cyclic tree + one constant.
        for _ in 0..3 {
            let u = f.reserve();
            f.set_node(u, Node::Tuple(BTreeMap::from([(AttrName::new("n"), u)])));
        }
        f.add_const(Constant::int(7));
        let (min, mapping) = f.minimize();
        assert_eq!(min.len(), 2);
        assert_eq!(mapping[0], mapping[1]);
        assert_eq!(mapping[1], mapping[2]);
        assert_ne!(mapping[0], mapping[3]);
        // Minimization is idempotent.
        let (min2, _) = min.minimize();
        assert_eq!(min2.len(), 2);
    }

    #[test]
    fn distinct_subtrees_is_finite_regularity() {
        // The rational tree [a: t, b: "x"] with t cyclic has 3 distinct
        // subtrees: itself, the constant, and... let's count precisely.
        let mut f = Forest::new();
        let t = f.reserve();
        let x = f.add_const(Constant::str("x"));
        f.set_node(
            t,
            Node::Tuple(BTreeMap::from([
                (AttrName::new("a"), t),
                (AttrName::new("b"), x),
            ])),
        );
        assert_eq!(f.distinct_subtrees(t), 2);
    }

    #[test]
    fn unfold_cuts_cycles() {
        let mut f = Forest::new();
        let t = f.reserve();
        f.set_node(t, Node::Tuple(BTreeMap::from([(AttrName::new("n"), t)])));
        let v = f.unfold(t, 3);
        let s = v.to_string();
        assert!(s.contains("..."));
        assert!(s.matches("n:").count() >= 2);
    }

    #[test]
    fn dot_export_shows_cycles() {
        let mut f = Forest::new();
        let t = f.reserve();
        let label = f.add_const(Constant::str("n"));
        f.set_node(
            t,
            Node::Tuple(BTreeMap::from([
                (AttrName::new("label"), label),
                (AttrName::new("next"), t),
            ])),
        );
        let dot = f.to_dot(&[t]);
        assert!(dot.starts_with("digraph"));
        // Self-edge for the cycle.
        assert!(dot.contains(&format!("n{} -> n{}", t.0, t.0)));
        assert!(dot.contains("\"n\""));
    }

    #[test]
    fn import_and_cross_forest_equality() {
        let ov = OValue::set([OValue::int(1), OValue::int(2)]);
        let mut f1 = Forest::new();
        let n1 = f1.import_ovalue(&ov).unwrap();
        let mut f2 = Forest::new();
        let n2 = f2.import_ovalue(&ov).unwrap();
        assert!(trees_equal(&f1, n1, &f2, n2));
        let other = OValue::set([OValue::int(1)]);
        let mut f3 = Forest::new();
        let n3 = f3.import_ovalue(&other).unwrap();
        assert!(!trees_equal(&f1, n1, &f3, n3));
    }
}
