//! # iql-vtree — the value-based data model (Section 7)
//!
//! Oids can be read as "a syntactic trick to avoid manipulating recursive
//! objects". This crate makes the underlying recursive objects first-class:
//! **pure values** are regular infinite trees (Courcelle-style, adapted to
//! unordered, duplicate-free set nodes), finitely presented as cyclic node
//! graphs with **bisimulation** as equality-by-value.
//!
//! * [`forest`] — regular-tree presentations, bisimulation classes,
//!   minimization, cross-forest equality, Proposition 7.1.3 (regularity) in
//!   executable form;
//! * [`vschema`] — v-schemas and v-instances (Definitions 7.1.1/7.1.2) with
//!   coinduction-free type checking;
//! * [`translate`] — the φ (values → objects) and ψ (objects → values)
//!   translations with `ψ ∘ φ = id` (Proposition 7.1.4), and the IQLv
//!   pipeline `ψ ∘ program ∘ φ` of Theorem 7.1.5 / Figure 2, in which oids
//!   "lose all semantic denotation to become purely primitives of the
//!   language".

pub mod forest;
pub mod translate;
pub mod vschema;

pub use forest::{trees_equal, Forest, Node, NodeId};
pub use translate::{phi, psi, run_on_values};
pub use vschema::{is_v_type, vinstances_equal, VError, VInstance, VResult, VSchema};
