//! The φ and ψ translations between pure values and objects (Section 7.1)
//! and the IQLv pipeline of Theorem 7.1.5 (Figure 2).
//!
//! * **φ** ([`phi`]): *from values to objects* — one fresh oid per pure
//!   value per class (`f_P` one-to-one, images pairwise disjoint), with
//!   `ν(f_P(v))` the o-value obtained from `v` by replacing each direct
//!   class-typed subtree by its oid. Produces a legal object instance of
//!   the schema `(∅, P, T)`.
//! * **ψ** ([`psi`]): *from objects to values* — reads the equation system
//!   `{o = ν(o)}` as a regular-tree definition (its solution is unique, as
//!   in Proposition 7.1.3) and eliminates duplicates by bisimulation.
//!   Requires `ν` total — exactly the paper's premise.
//! * **Proposition 7.1.4**: `ψ(φ(I)) = I` — tested here and in the E13
//!   experiment.
//! * **IQLv** ([`run_on_values`]): evaluate an IQL program on a value-based
//!   instance via `ψ ∘ program ∘ φ` (Figure 2); automatic copy elimination
//!   happens inside ψ, which is why IQLv is vdio-complete (Theorem 7.1.5).

use crate::forest::{Forest, Node, NodeId};
use crate::vschema::{VError, VInstance, VResult, VSchema};
use iql_core::eval::{run, EvalConfig};
use iql_core::Program;
use iql_model::{
    AttrName, ClassName, Instance, Node as StoreNode, OValue, Oid, TypeExpr, ValueId, ValueReader,
    ValueStore,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// The (class, canonical node) → oid mapping φ produces.
pub type OidAssignment = BTreeMap<(ClassName, NodeId), Oid>;

/// φ: translates a v-instance into an object instance of `(∅, P, T)`.
///
/// The instance is canonicalized first, so `f_P` is well defined on pure
/// values (not on presentations). Returns the object instance and the
/// (class, canonical node) → oid mapping.
///
/// ```
/// use iql_model::{ClassName, Constant, TypeExpr};
/// use iql_vtree::{phi, psi, vinstances_equal, VInstance, VSchema};
/// let class = ClassName::new("DocNode");
/// let schema = VSchema::new([(class, TypeExpr::set_of(TypeExpr::base()))]).unwrap();
/// let mut v = VInstance::new(&schema);
/// let a = v.forest.add_const(Constant::int(1));
/// let s = v.forest.add_set([a]);
/// v.add(class, s);
/// let (obj, _) = phi(&schema, &v).unwrap();
/// assert_eq!(obj.class(class).unwrap().len(), 1);
/// let back = psi(&obj).unwrap();
/// assert!(vinstances_equal(&back, &v));  // Proposition 7.1.4
/// ```
pub fn phi(schema: &VSchema, vinst: &VInstance) -> VResult<(Instance, OidAssignment)> {
    let canon = vinst.canonicalize();
    let obj_schema = Arc::new(schema.to_object_schema());
    let mut inst = Instance::new(Arc::clone(&obj_schema));
    let mut oid_of: BTreeMap<(ClassName, NodeId), Oid> = BTreeMap::new();
    // First pass: allocate oids (disjoint across classes even for shared
    // pure values, per the paper's f_P construction).
    for (class, nodes) in &canon.classes {
        for node in nodes {
            let oid = inst.create_oid(*class).map_err(VError::Model)?;
            oid_of.insert((*class, *node), oid);
        }
    }
    // Second pass: build ν values, cutting recursion at class references.
    for (class, nodes) in &canon.classes {
        let ty = schema.class_type(*class)?.clone();
        for node in nodes {
            let v = value_of(&canon, *node, &ty, &oid_of)?;
            let oid = oid_of[&(*class, *node)];
            if matches!(ty, TypeExpr::Set(_)) {
                // Set-valued oids: install members (default was {}).
                let OValue::Set(elems) = v else {
                    unreachable!("typed above")
                };
                for e in elems {
                    inst.add_set_member(oid, e).map_err(VError::Model)?;
                }
            } else {
                inst.define_value(oid, v).map_err(VError::Model)?;
            }
        }
    }
    inst.validate().map_err(VError::Model)?;
    Ok((inst, oid_of))
}

/// Builds `w_v`: the o-value for pure value `node` at type `ty`, replacing
/// class-typed subtrees by their oids. Terminates because every cycle in a
/// well-typed v-instance passes through a class reference.
fn value_of(
    canon: &VInstance,
    node: NodeId,
    ty: &TypeExpr,
    oid_of: &OidAssignment,
) -> VResult<OValue> {
    match ty {
        TypeExpr::Base => match canon.forest.node(node) {
            Node::Const(c) => Ok(OValue::Const(c.clone())),
            _ => Err(VError::Invalid("non-constant at base type".into())),
        },
        TypeExpr::Class(p) => match oid_of.get(&(*p, node)) {
            Some(oid) => Ok(OValue::Oid(*oid)),
            None => Err(VError::IllTyped {
                class: *p,
                value: canon.forest.unfold(node, 3).to_string(),
            }),
        },
        TypeExpr::Tuple(ftys) => match canon.forest.node(node) {
            Node::Tuple(fields) => {
                let mut out: BTreeMap<AttrName, OValue> = BTreeMap::new();
                for (a, ft) in ftys {
                    let Some(child) = fields.get(a) else {
                        return Err(VError::Invalid(format!("missing field {a}")));
                    };
                    out.insert(*a, value_of(canon, *child, ft, oid_of)?);
                }
                Ok(OValue::Tuple(out))
            }
            _ => Err(VError::Invalid("non-tuple at tuple type".into())),
        },
        TypeExpr::Set(ety) => match canon.forest.node(node) {
            Node::Set(elems) => {
                let mut out = BTreeSet::new();
                for e in elems {
                    out.insert(value_of(canon, *e, ety, oid_of)?);
                }
                Ok(OValue::Set(out))
            }
            _ => Err(VError::Invalid("non-set at set type".into())),
        },
        _ => Err(VError::NotAVType(ty.to_string())),
    }
}

/// ψ: translates an object instance (over a classes-only schema, `ν`
/// total) into a v-instance — the unique solution of the equation system
/// `{o = ν(o)}`, with duplicates eliminated by bisimulation.
///
/// ν values are read as interned [`ValueId`] graphs, not trees: substructure
/// the store shares (hash-consing) becomes a *shared forest node* here, so
/// the forest handed to bisimulation is proportional to the number of
/// distinct subvalues, not to the sum of tree sizes.
pub fn psi(inst: &Instance) -> VResult<VInstance> {
    let schema = inst.schema();
    if schema.relations().next().is_some() {
        return Err(VError::Invalid(
            "ψ expects a classes-only instance (value-based schemas have no relations)".into(),
        ));
    }
    // ν must be total.
    let mut oids: Vec<Oid> = Vec::new();
    for p in schema.classes() {
        for o in inst.class(p).map_err(VError::Model)? {
            if inst.value_id(*o).is_none() {
                return Err(VError::UndefinedOid(o.raw()));
            }
            oids.push(*o);
        }
    }
    // Reserve a forest slot per oid, then fill from ν.
    let store = inst.store();
    let mut forest = Forest::new();
    let slot: BTreeMap<Oid, NodeId> = oids.iter().map(|o| (*o, forest.reserve())).collect();
    let mut memo: HashMap<ValueId, NodeId> = HashMap::new();
    for o in &oids {
        let vid = inst.value_id(*o).expect("checked total");
        // Bare-oid ν values are rejected by v-typing (T(P) is never a
        // class name, Def 7.1.1), so every slot gets composite content.
        if matches!(store.node(vid), StoreNode::Oid(_)) {
            return Err(VError::Invalid(format!(
                "ν({o}) is a bare oid; v-schemas forbid T(P) = P' (Def 7.1.1)"
            )));
        }
        let content = node_content(&mut forest, store, vid, &slot, &mut memo)?;
        forest.set_node(slot[o], content);
    }
    let classes = schema
        .classes()
        .map(|p| {
            let nodes: BTreeSet<NodeId> = inst
                .class(p)
                .expect("schema class")
                .iter()
                .map(|o| slot[o])
                .collect();
            (p, nodes)
        })
        .collect();
    Ok(VInstance { forest, classes }.canonicalize())
}

/// The forest content of an interned composite value (children built via
/// [`child_node`]). Callers install it into a slot exactly once.
fn node_content(
    forest: &mut Forest,
    store: &ValueStore,
    id: ValueId,
    slot: &BTreeMap<Oid, NodeId>,
    memo: &mut HashMap<ValueId, NodeId>,
) -> VResult<Node> {
    match store.node(id) {
        StoreNode::Const(c) => Ok(Node::Const(c.clone())),
        StoreNode::Oid(_) => unreachable!("callers handle oid leaves"),
        StoreNode::Tuple(fields) => {
            let fields = Arc::clone(fields);
            let mut out: BTreeMap<AttrName, NodeId> = BTreeMap::new();
            for &(a, fv) in fields.iter() {
                out.insert(a, child_node(forest, store, fv, slot, memo)?);
            }
            Ok(Node::Tuple(out))
        }
        StoreNode::Set(elems) => {
            let elems = Arc::clone(elems);
            let mut out = BTreeSet::new();
            for &e in elems.iter() {
                out.insert(child_node(forest, store, e, slot, memo)?);
            }
            Ok(Node::Set(out))
        }
    }
}

/// The forest node for an interned child value: oid leaves resolve to the
/// oid's reserved slot, and every other [`ValueId`] maps to one memoized
/// forest node — shared subvalues stay shared.
fn child_node(
    forest: &mut Forest,
    store: &ValueStore,
    id: ValueId,
    slot: &BTreeMap<Oid, NodeId>,
    memo: &mut HashMap<ValueId, NodeId>,
) -> VResult<NodeId> {
    if let StoreNode::Oid(o) = store.node(id) {
        return slot.get(o).copied().ok_or(VError::UndefinedOid(o.raw()));
    }
    if let Some(&n) = memo.get(&id) {
        return Ok(n);
    }
    let n = forest.reserve();
    memo.insert(id, n);
    let content = node_content(forest, store, id, slot, memo)?;
    forest.set_node(n, content);
    Ok(n)
}

/// IQLv (Theorem 7.1.5 / Figure 2): runs an IQL program on a value-based
/// instance as `ψ ∘ program ∘ φ`. The program's input schema must be the
/// object form of `schema`; its output schema must be classes-only with
/// total `ν` (which ψ checks).
pub fn run_on_values(
    prog: &Program,
    schema: &VSchema,
    vinst: &VInstance,
    cfg: &EvalConfig,
) -> VResult<VInstance> {
    let (obj, _) = phi(schema, vinst)?;
    let obj = obj
        .project(&prog.input)
        .map_err(|e| VError::Invalid(format!("input schema mismatch: {e}")))?;
    let out = run(prog, &obj, cfg).map_err(|e| VError::Invalid(e.to_string()))?;
    psi(&out.output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vschema::vinstances_equal;
    use iql_model::Constant;

    fn c(n: &str) -> ClassName {
        ClassName::new(n)
    }

    fn person_schema() -> VSchema {
        VSchema::new([(
            c("Wperson"),
            TypeExpr::tuple([
                ("name", TypeExpr::base()),
                ("friends", TypeExpr::set_of(TypeExpr::class("Wperson"))),
            ]),
        )])
        .unwrap()
    }

    fn two_friends() -> (VSchema, VInstance) {
        let schema = person_schema();
        let mut inst = VInstance::new(&schema);
        let f = &mut inst.forest;
        let alice = f.reserve();
        let bob = f.reserve();
        let an = f.add_const(Constant::str("alice"));
        let bn = f.add_const(Constant::str("bob"));
        let afr = f.add_set([bob]);
        let bfr = f.add_set([alice, bob]); // bob is his own friend too
        f.set_node(
            alice,
            Node::Tuple(
                [("name", an), ("friends", afr)]
                    .map(|(a, n)| (AttrName::new(a), n))
                    .into(),
            ),
        );
        f.set_node(
            bob,
            Node::Tuple(
                [("name", bn), ("friends", bfr)]
                    .map(|(a, n)| (AttrName::new(a), n))
                    .into(),
            ),
        );
        inst.add(c("Wperson"), alice);
        inst.add(c("Wperson"), bob);
        inst.validate(&schema).unwrap();
        (schema, inst)
    }

    #[test]
    fn phi_produces_valid_object_instance() {
        let (schema, vinst) = two_friends();
        let (obj, oid_of) = phi(&schema, &vinst).unwrap();
        obj.validate().unwrap();
        assert_eq!(obj.class(c("Wperson")).unwrap().len(), 2);
        assert_eq!(oid_of.len(), 2);
        // Cyclicity carried over: some oid's value mentions another oid.
        let oids: Vec<Oid> = obj.class(c("Wperson")).unwrap().iter().copied().collect();
        let mentions: usize = oids
            .iter()
            .filter(|o| {
                oids.iter()
                    .any(|p| obj.value(**o).is_some_and(|v| v.mentions_oid(*p)))
            })
            .count();
        assert!(mentions > 0);
    }

    #[test]
    fn psi_of_phi_is_identity() {
        // Proposition 7.1.4: ψ(φ(I)) = I.
        let (schema, vinst) = two_friends();
        let (obj, _) = phi(&schema, &vinst).unwrap();
        let back = psi(&obj).unwrap();
        assert!(vinstances_equal(&back, &vinst));
    }

    #[test]
    fn psi_eliminates_duplicates() {
        // Two distinct oids with identical (bisimilar) values collapse to
        // one pure value — "for oi and oj distinct, vi and vj may be the
        // same (duplicates eliminated)".
        let schema = person_schema();
        let obj_schema = Arc::new(schema.to_object_schema());
        let mut inst = Instance::new(obj_schema);
        let p = c("Wperson");
        let o1 = inst.create_oid(p).unwrap();
        let o2 = inst.create_oid(p).unwrap();
        // Both are "loner" persons with the same name and no friends.
        for o in [o1, o2] {
            inst.define_value(
                o,
                OValue::tuple([
                    ("name", OValue::str("twin")),
                    ("friends", OValue::empty_set()),
                ]),
            )
            .unwrap();
        }
        let v = psi(&inst).unwrap();
        assert_eq!(v.size(), 1);
    }

    #[test]
    fn psi_requires_total_nu() {
        let schema = person_schema();
        let obj_schema = Arc::new(schema.to_object_schema());
        let mut inst = Instance::new(obj_schema);
        inst.create_oid(c("Wperson")).unwrap(); // ν undefined
        assert!(matches!(psi(&inst), Err(VError::UndefinedOid(_))));
    }

    #[test]
    fn iqlv_runs_a_program_on_values() {
        // A value-based query: copy persons with a friend into a new class.
        // (Input classes-only, output classes-only: a vdio-transformation.)
        let unit = iql_core::parser::parse_unit(
            r#"
            schema {
              class Wperson: [name: D, friends: {Wperson}];
              class Social: [name: D, friends: {Wperson}];
              relation Has: [p: Wperson, s: Social];
            }
            program {
              input Wperson;
              output Social, Wperson;
              stage {
                Has(p, s) :- Wperson(p), p^ = [name: n, friends: F], F != {};
              }
              stage {
                s^ = p^ :- Has(p, s);
              }
            }
            "#,
        )
        .unwrap();
        let prog = unit.program.unwrap();
        let (schema, vinst) = two_friends();
        let out = run_on_values(&prog, &schema, &vinst, &EvalConfig::default()).unwrap();
        // Both alice and bob have friends → both copied into Social.
        assert_eq!(out.classes[&c("Social")].len(), 2);
    }
}
