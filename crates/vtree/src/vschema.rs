//! V-schemas and v-instances (Definitions 7.1.1 and 7.1.2).
//!
//! The value-based model uses only class names and the v-type expressions
//! `D | P | [A:t,…] | {t}` (no union, intersection, or `∅`). A **v-schema**
//! `(P, T)` requires `T(P)` not to be a bare class name (the paper's
//! technical condition (1), ruling out `T(P1) = P2` which specifies no
//! structure). A **v-instance** assigns each class a finite set of pure
//! values — nodes of a [`Forest`] — with `I(P) ⊆ ⟦T(P)⟧I`.

use crate::forest::{Forest, Node, NodeId};
use iql_model::{ClassName, ModelError, TypeExpr};
use std::collections::{BTreeMap, BTreeSet};

/// Errors from the value-based layer.
#[derive(Debug, Clone, PartialEq)]
pub enum VError {
    /// `T(P)` is a bare class name (violates condition (1)).
    BareClassType(ClassName),
    /// A type uses a constructor outside v-type-exp (union/intersection/∅).
    NotAVType(String),
    /// An undeclared class was referenced.
    UnknownClass(ClassName),
    /// A value violates its class's type.
    IllTyped {
        /// The class.
        class: ClassName,
        /// A rendering of the offending value (depth-limited).
        value: String,
    },
    /// A translation hit an oid with undefined value (ψ requires ν total).
    UndefinedOid(u64),
    /// Bubbled-up model error.
    Model(ModelError),
    /// Catch-all.
    Invalid(String),
}

impl std::fmt::Display for VError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VError::BareClassType(c) => {
                write!(
                    f,
                    "T({c}) is a bare class name; v-schemas forbid this (Def 7.1.1)"
                )
            }
            VError::NotAVType(t) => {
                write!(f, "type {t} is not in v-type-exp (no union/inter/empty)")
            }
            VError::UnknownClass(c) => write!(f, "unknown class {c}"),
            VError::IllTyped { class, value } => {
                write!(f, "value {value} violates T({class})")
            }
            VError::UndefinedOid(o) => {
                write!(f, "ψ requires ν to be total; oid o{o} has undefined value")
            }
            VError::Model(e) => write!(f, "{e}"),
            VError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for VError {}

impl From<ModelError> for VError {
    fn from(e: ModelError) -> Self {
        VError::Model(e)
    }
}

/// Result alias.
pub type VResult<T> = std::result::Result<T, VError>;

/// Is `t` in v-type-exp (base, class, tuple, set only)?
pub fn is_v_type(t: &TypeExpr) -> bool {
    match t {
        TypeExpr::Base | TypeExpr::Class(_) => true,
        TypeExpr::Tuple(fields) => fields.values().all(is_v_type),
        TypeExpr::Set(inner) => is_v_type(inner),
        TypeExpr::Empty | TypeExpr::Union(_, _) | TypeExpr::Intersect(_, _) => false,
    }
}

/// A v-schema `(P, T)` (Definition 7.1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VSchema {
    classes: BTreeMap<ClassName, TypeExpr>,
}

impl VSchema {
    /// Builds and validates a v-schema.
    pub fn new<I>(classes: I) -> VResult<VSchema>
    where
        I: IntoIterator<Item = (ClassName, TypeExpr)>,
    {
        let classes: BTreeMap<ClassName, TypeExpr> = classes.into_iter().collect();
        for (c, t) in &classes {
            if !is_v_type(t) {
                return Err(VError::NotAVType(t.to_string()));
            }
            if matches!(t, TypeExpr::Class(_)) {
                return Err(VError::BareClassType(*c));
            }
            let mut mentioned = BTreeSet::new();
            t.classes_mentioned(&mut mentioned);
            for m in mentioned {
                if !classes.contains_key(&m) {
                    return Err(VError::UnknownClass(m));
                }
            }
        }
        Ok(VSchema { classes })
    }

    /// The class names.
    pub fn classes(&self) -> impl Iterator<Item = ClassName> + '_ {
        self.classes.keys().copied()
    }

    /// `T(P)`.
    pub fn class_type(&self, c: ClassName) -> VResult<&TypeExpr> {
        self.classes.get(&c).ok_or(VError::UnknownClass(c))
    }

    /// Converts to the object-based schema `(∅, P, T)` — same class names
    /// and types, no relations (Section 7's comparison).
    pub fn to_object_schema(&self) -> iql_model::Schema {
        iql_model::Schema::new(
            Vec::<(iql_model::RelName, TypeExpr)>::new(),
            self.classes.iter().map(|(c, t)| (*c, t.clone())),
        )
        .expect("v-schema classes are closed")
    }
}

/// A v-instance: a finite assignment of pure values (forest nodes) to class
/// names (Definition 7.1.2).
#[derive(Debug, Clone)]
pub struct VInstance {
    /// The shared node store (possibly cyclic).
    pub forest: Forest,
    /// `I(P)` — pure values per class.
    pub classes: BTreeMap<ClassName, BTreeSet<NodeId>>,
}

impl VInstance {
    /// An empty instance over the given classes.
    pub fn new(schema: &VSchema) -> VInstance {
        VInstance {
            forest: Forest::new(),
            classes: schema.classes().map(|c| (c, BTreeSet::new())).collect(),
        }
    }

    /// Adds a value to `I(P)`.
    pub fn add(&mut self, class: ClassName, node: NodeId) {
        self.classes.entry(class).or_default().insert(node);
    }

    /// Checks `I(P) ⊆ ⟦T(P)⟧I` for every class. Membership recursion
    /// terminates because class references in v-types are checked against
    /// the assignment (not unfolded), and types are finite.
    pub fn validate(&self, schema: &VSchema) -> VResult<()> {
        for (class, nodes) in &self.classes {
            let ty = schema.class_type(*class)?;
            for node in nodes {
                if !self.member(*node, ty) {
                    return Err(VError::IllTyped {
                        class: *class,
                        value: self.forest.unfold(*node, 4).to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// `node ∈ ⟦t⟧I` (type interpretation given the finite assignment).
    pub fn member(&self, node: NodeId, t: &TypeExpr) -> bool {
        match t {
            TypeExpr::Base => matches!(self.forest.node(node), Node::Const(_)),
            TypeExpr::Class(p) => self.in_class(node, *p),
            TypeExpr::Tuple(ftys) => match self.forest.node(node) {
                Node::Tuple(fields) => {
                    fields.len() == ftys.len()
                        && ftys
                            .iter()
                            .all(|(a, ft)| fields.get(a).is_some_and(|ch| self.member(*ch, ft)))
                }
                _ => false,
            },
            TypeExpr::Set(ety) => match self.forest.node(node) {
                Node::Set(elems) => elems.iter().all(|e| self.member(*e, ety)),
                _ => false,
            },
            TypeExpr::Empty | TypeExpr::Union(_, _) | TypeExpr::Intersect(_, _) => false,
        }
    }

    /// Is the tree denoted by `node` a member of `I(P)` *as a value* (up to
    /// bisimulation, since pure values are trees, not node ids)?
    pub fn in_class(&self, node: NodeId, p: ClassName) -> bool {
        let classes = self.forest.bisimulation_classes();
        self.classes
            .get(&p)
            .is_some_and(|nodes| nodes.iter().any(|n| classes[n.0] == classes[node.0]))
    }

    /// Canonicalizes: minimizes the forest and rewrites the class
    /// assignments (duplicate values collapse).
    pub fn canonicalize(&self) -> VInstance {
        let (forest, mapping) = self.forest.minimize();
        let classes = self
            .classes
            .iter()
            .map(|(c, nodes)| (*c, nodes.iter().map(|n| mapping[n.0]).collect()))
            .collect();
        VInstance { forest, classes }
    }

    /// Total number of values across classes (after canonicalization this
    /// counts distinct pure values).
    pub fn size(&self) -> usize {
        self.classes.values().map(BTreeSet::len).sum()
    }
}

/// Semantic equality of v-instances: same classes, and per class the same
/// *set of regular trees* (order- and presentation-independent). This is
/// the equality in Proposition 7.1.4 (`ψ(φ(I)) = I`).
pub fn vinstances_equal(a: &VInstance, b: &VInstance) -> bool {
    if a.classes.keys().ne(b.classes.keys()) {
        return false;
    }
    // Joint forest → joint bisimulation classes → compare class sets.
    let mut joint = a.forest.clone();
    let offset = joint.absorb(&b.forest);
    let classes = joint.bisimulation_classes();
    for (c, nodes_a) in &a.classes {
        let nodes_b = &b.classes[c];
        let set_a: BTreeSet<u64> = nodes_a.iter().map(|n| classes[n.0]).collect();
        let set_b: BTreeSet<u64> = nodes_b.iter().map(|n| classes[n.0 + offset]).collect();
        if set_a != set_b {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use iql_model::Constant;

    fn c(n: &str) -> ClassName {
        ClassName::new(n)
    }

    fn person_schema() -> VSchema {
        // Vperson: [name: D, friends: {Vperson}] — cyclic v-schema.
        VSchema::new([(
            c("Vperson"),
            TypeExpr::tuple([
                ("name", TypeExpr::base()),
                ("friends", TypeExpr::set_of(TypeExpr::class("Vperson"))),
            ]),
        )])
        .unwrap()
    }

    #[test]
    fn bare_class_type_rejected() {
        let err = VSchema::new([
            (c("VA"), TypeExpr::class("VB")),
            (c("VB"), TypeExpr::unit()),
        ])
        .unwrap_err();
        assert!(matches!(err, VError::BareClassType(_)));
    }

    #[test]
    fn union_types_rejected() {
        let err = VSchema::new([(c("VU"), TypeExpr::union(TypeExpr::base(), TypeExpr::unit()))])
            .unwrap_err();
        assert!(matches!(err, VError::NotAVType(_)));
    }

    #[test]
    fn cyclic_v_instance_validates() {
        let schema = person_schema();
        let mut inst = VInstance::new(&schema);
        // Two mutual friends: genuinely infinite trees, finitely presented.
        let f = &mut inst.forest;
        let alice = f.reserve();
        let bob = f.reserve();
        let an = f.add_const(Constant::str("alice"));
        let bn = f.add_const(Constant::str("bob"));
        let afr = f.add_set([bob]);
        let bfr = f.add_set([alice]);
        f.set_node(
            alice,
            Node::Tuple(
                [("name", an), ("friends", afr)]
                    .map(|(a, n)| (iql_model::AttrName::new(a), n))
                    .into(),
            ),
        );
        f.set_node(
            bob,
            Node::Tuple(
                [("name", bn), ("friends", bfr)]
                    .map(|(a, n)| (iql_model::AttrName::new(a), n))
                    .into(),
            ),
        );
        inst.add(c("Vperson"), alice);
        inst.add(c("Vperson"), bob);
        inst.validate(&schema).unwrap();
        // Regularity (Prop 7.1.3): finitely many distinct subtrees.
        assert!(inst.forest.distinct_subtrees(alice) <= 6);
    }

    #[test]
    fn missing_class_member_fails_validation() {
        let schema = person_schema();
        let mut inst = VInstance::new(&schema);
        let f = &mut inst.forest;
        let stranger = f.reserve(); // a set node, not a person tuple
        let n = f.add_const(Constant::str("x"));
        let fr = f.add_set([stranger]); // friend not in I(Vperson)!
        let me = f.add_tuple([("name", n), ("friends", fr)]);
        inst.add(c("Vperson"), me);
        assert!(matches!(
            inst.validate(&schema),
            Err(VError::IllTyped { .. })
        ));
    }

    #[test]
    fn canonicalize_dedups_values() {
        let schema = VSchema::new([(c("Vset"), TypeExpr::set_of(TypeExpr::base()))]).unwrap();
        let mut inst = VInstance::new(&schema);
        let a1 = inst.forest.add_const(Constant::int(1));
        let a2 = inst.forest.add_const(Constant::int(1));
        let s1 = inst.forest.add_set([a1]);
        let s2 = inst.forest.add_set([a2]);
        inst.add(c("Vset"), s1);
        inst.add(c("Vset"), s2);
        assert_eq!(inst.size(), 2);
        let canon = inst.canonicalize();
        assert_eq!(canon.size(), 1, "duplicate pure values collapse");
        assert!(vinstances_equal(&inst, &canon));
    }

    #[test]
    fn equality_is_presentation_independent() {
        let schema = person_schema();
        // Instance A: self-loop person; Instance B: two-node unrolling.
        let build = |unroll: bool| {
            let mut inst = VInstance::new(&schema);
            let f = &mut inst.forest;
            let name = f.add_const(Constant::str("o"));
            if !unroll {
                let p = f.reserve();
                let fr = f.add_set([p]);
                f.set_node(
                    p,
                    Node::Tuple(
                        [("name", name), ("friends", fr)]
                            .map(|(a, n)| (iql_model::AttrName::new(a), n))
                            .into(),
                    ),
                );
                inst.add(c("Vperson"), p);
            } else {
                let p1 = f.reserve();
                let p2 = f.reserve();
                let fr1 = f.add_set([p2]);
                let fr2 = f.add_set([p1]);
                f.set_node(
                    p1,
                    Node::Tuple(
                        [("name", name), ("friends", fr1)]
                            .map(|(a, n)| (iql_model::AttrName::new(a), n))
                            .into(),
                    ),
                );
                f.set_node(
                    p2,
                    Node::Tuple(
                        [("name", name), ("friends", fr2)]
                            .map(|(a, n)| (iql_model::AttrName::new(a), n))
                            .into(),
                    ),
                );
                inst.add(c("Vperson"), p1);
                inst.add(c("Vperson"), p2);
            }
            inst
        };
        let a = build(false);
        let b = build(true);
        // The unrolled presentation denotes the *same single* pure value.
        assert!(vinstances_equal(&a, &b));
    }
}
