//! An application-style walkthrough: a small bibliographic database that
//! needs everything oids were invented for — *sharing* (two books, one
//! publisher object: update it once), *cyclicity* (advisors and students
//! reference each other), and *set values* (an author's publication set),
//! all queried in IQL.
//!
//! ```sh
//! cargo run -p iql --example bibliography
//! ```

use iql::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let unit = parse_unit(
        r#"
        schema {
          class Publisher: [name: D, city: D];
          class Author: [name: D, advisor: Author | D, works: {Book}];
          class Book: [title: D, by: Publisher];
          relation Catalog: Book;
          relation SameHouse: [a: D, b: D];
          relation Lineage: [student: D, mentor: D];
        }
        program {
          input Publisher, Author, Book, Catalog;
          output SameHouse, Lineage;
          // Two catalogued books by the SAME publisher object — identity,
          // not value equality: p is one shared oid.
          SameHouse(t1, t2) :-
            Catalog(b1), Catalog(b2), b1 != b2,
            b1^ = [title: t1, by: p],
            b2^ = [title: t2, by: p];
          // Advisor chains, walking the (possibly cyclic) Author graph.
          var m: Author;
          Lineage(s, t) :-
            Author(a), a^ = [name: s, advisor: m, works: W],
            m^ = [name: t, advisor: u, works: V];
        }
        instance {
          Publisher(acm);   acm^ = [name: "ACM Press", city: "New York"];
          Publisher(mkp);   mkp^ = [name: "Morgan Kaufmann", city: "San Mateo"];
          Book(b1); Book(b2); Book(b3);
          b1^ = [title: "Foundations of Databases", by: acm];
          b2^ = [title: "The Story of O2", by: mkp];
          b3^ = [title: "Principles of DBS", by: acm];
          Catalog(b1); Catalog(b2); Catalog(b3);
          Author(serge); Author(paris); Author(student);
          serge^  = [name: "Serge",  advisor: "none", works: {b1, b2}];
          paris^  = [name: "Paris",  advisor: "none", works: {b2}];
          student^ = [name: "Ada",   advisor: paris,  works: {}];
        }
        "#,
    )?;
    let program = unit.program.expect("program block");
    let input = unit.instance.expect("instance block");
    input.validate()?;

    let out = run(&program, &input, &EvalConfig::default())?;

    println!("books sharing a publisher *object* (identity, not name equality):");
    for v in out.output.relation(RelName::new("SameHouse"))? {
        println!("  {v}");
    }
    // b1 and b3 share acm, in both orders.
    assert_eq!(out.output.relation(RelName::new("SameHouse"))?.len(), 2);

    println!("\nadvisor lineage (authors whose advisor is an Author object):");
    for v in out.output.relation(RelName::new("Lineage"))? {
        println!("  {v}");
    }
    // Only Ada has an Author-typed advisor; the union's D branch ("none")
    // is filtered by the typed valuation of `m: Author`.
    assert_eq!(out.output.relation(RelName::new("Lineage"))?.len(), 1);

    // Sharing in action: one update to the publisher object is visible
    // from every book referencing it (the o-values hold the oid, not a
    // copy — Section 1's "structure sharing" motivation).
    let mut db = input.clone();
    let acm = *db
        .class(ClassName::new("Publisher"))?
        .iter()
        .next()
        .expect("publishers exist");
    db.overwrite_value(
        acm,
        OValue::tuple([
            ("name", OValue::str("ACM Press")),
            ("city", OValue::str("Boston")),
        ]),
    )?;
    db.validate()?;
    println!(
        "\nmoved the shared publisher object {acm} to Boston — every referencing book sees it"
    );
    let _ = Arc::strong_count(&program.schema);
    Ok(())
}
