//! Figure 1 and Section 4 of the paper: the hen-and-egg quadrangle.
//!
//! The query: given `R = {a, b}`, output four *new* objects arranged in a
//! directed quadrangle, with `a` wired to one diagonal and `b` to the
//! other. The paper proves (Theorem 4.3.1) that plain IQL cannot express
//! it — all four objects must be invented in the same parallel step, and
//! genericity forbids choosing a direction between them. What IQL *can* do
//! is build all copies at once (completeness up to copy, Theorem 4.2.4);
//! IQL⁺'s `choose` then selects one copy generically (Theorem 4.4.1).
//!
//! ```sh
//! cargo run --example copy_choose
//! ```

use iql::lang::programs::{quadrangle_choose_program, quadrangle_program};
use iql::model::iso::orbits;
use iql::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = EvalConfig::default();
    let mk_input = |prog: &Program| -> Result<Instance, Box<dyn std::error::Error>> {
        let mut input = Instance::new(Arc::clone(&prog.input));
        for v in ["a", "b"] {
            input.insert(RelName::new("R"), OValue::tuple([("a", OValue::str(v))]))?;
        }
        Ok(input)
    };

    // Phase 1 — plain IQL: completeness up to copy.
    let copies = quadrangle_program();
    let out = run(&copies, &mk_input(&copies)?, &cfg)?;
    let q = ClassName::new("Q");
    println!(
        "plain IQL built {} objects and {} arcs — TWO copies of the quadrangle.",
        out.output.class(q)?.len(),
        out.output.relation(RelName::new("Rp"))?.len()
    );
    println!(
        "Theorem 4.3.1: no IQL program can emit just one (copy elimination is inexpressible).\n"
    );

    // Phase 2 — IQL⁺: mark copies, delete the scaffolding (IQL*), choose
    // one mark generically, extract into fresh output objects.
    let full = quadrangle_choose_program();
    let out = run(&full, &mk_input(&full)?, &cfg)?;
    let qout = ClassName::new("Qout");
    println!(
        "IQL⁺ pipeline produced exactly one copy: {} objects, {} arcs:",
        out.output.class(qout)?.len(),
        out.output.relation(RelName::new("OutRp"))?.len()
    );
    for f in out.output.ground_facts() {
        println!("  {f}");
    }

    // The four output corners fall into two automorphism orbits (the two
    // diagonals) — the instance has the paper's rotation symmetry.
    let corners: Vec<_> = out.output.class(qout)?.iter().copied().collect();
    let orbs = orbits(&out.output, &corners);
    println!(
        "\nautomorphism orbits of the corners: {:?} (two diagonals — Figure 1's symmetry h0 restricted to O-isos)",
        orbs.iter().map(Vec::len).collect::<Vec<_>>()
    );
    assert_eq!(out.output.class(qout)?.len(), 4);
    assert_eq!(out.output.relation(RelName::new("OutRp"))?.len(), 8);
    Ok(())
}
