//! Example 1.1 from the paper: the Genesis schema and instance — cyclic
//! types (`Gen1` references itself through `spouse`), union types in
//! `AncestorOfCelebrity`, and incomplete information (`ν(other)` is
//! undefined). Then an IQL query over it: who founded a lineage *and* has a
//! known occupation set?
//!
//! ```sh
//! cargo run --example genesis
//! ```

use iql::model::instance::genesis_instance;
use iql::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (instance, _oids) = genesis_instance();
    instance.validate()?;
    println!("The Genesis instance (Example 1.1):\n{instance}\n");

    // A query over the Genesis schema. Note the dereference p^ and the
    // inequality guard: `other` has no value, so valuations are undefined
    // on p^ for it and it silently drops out — exactly the paper's
    // incomplete-information semantics.
    let unit = parse_unit(
        r#"
        schema {
          class Gen1: [name: D, spouse: Gen1, children: {Gen2}];
          class Gen2: [name: D, occupations: {D}];
          relation FoundedLineage: Gen2;
          relation AncestorOfCelebrity: [anc: Gen2, desc: (D | [spouse: D])];
          relation Founders: [name: D];
        }
        program {
          input Gen1, Gen2, FoundedLineage, AncestorOfCelebrity;
          output Founders;
          Founders(n) :- FoundedLineage(p), p^ = [name: n, occupations: O];
        }
        "#,
    )?;
    let program = unit.program.expect("program block");
    let input = instance.project(&program.input)?;
    let out = run(&program, &input, &EvalConfig::default())?;
    println!("Founders with known occupations:");
    for v in out.output.relation(RelName::new("Founders"))? {
        println!("  {v}");
    }
    // Cain and Seth found lineages with known values; `other` founded one
    // too, but nothing is known about it (ν undefined), so only 2 rows.
    assert_eq!(out.output.relation(RelName::new("Founders"))?.len(), 2);

    // Show cyclicity explicitly: follow spouse pointers twice.
    let gen1 = ClassName::new("Gen1");
    let adam = *instance.class(gen1)?.iter().next().unwrap();
    let OValue::Tuple(fields) = instance.value(adam).unwrap() else {
        unreachable!()
    };
    let OValue::Oid(eve) = fields[&AttrName::new("spouse")] else {
        unreachable!()
    };
    let OValue::Tuple(fields2) = instance.value(eve).unwrap() else {
        unreachable!()
    };
    let OValue::Oid(back) = fields2[&AttrName::new("spouse")] else {
        unreachable!()
    };
    assert_eq!(back, adam);
    println!("\ncyclicity: spouse(spouse({adam:?})) = {back:?} — the ν-graph loops, o-values stay finite trees");
    let _ = Arc::strong_count(&program.schema);
    Ok(())
}
