//! Example 1.2 from the paper: transform a directed graph stored as a flat
//! binary relation into the cyclic class representation — one object per
//! node whose value is `[name, {successor objects}]` — and back. All four
//! IQL mechanisms appear: Datalog projection, parallel oid invention, set
//! grouping through a temporary set-valued class, and weak assignment.
//!
//! ```sh
//! cargo run --example graph_transform
//! ```

use iql::lang::programs::{class_to_graph_program, graph_to_class_program};
use iql::model::iso::are_o_isomorphic;
use iql::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let encode = graph_to_class_program();
    let decode = class_to_graph_program();

    // A small cyclic graph.
    let edges = [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")];
    let mut input = Instance::new(Arc::clone(&encode.input));
    let r = RelName::new("R");
    for (s, d) in edges {
        input.insert(
            r,
            OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
        )?;
    }

    let cfg = EvalConfig::default();
    let cyclic = run(&encode, &input, &cfg)?;
    println!(
        "encoded {} edges into {} node objects ({} oids invented, {} steps):",
        edges.len(),
        cyclic.output.class(ClassName::new("P"))?.len(),
        cyclic.report.invented,
        cyclic.report.steps,
    );
    println!("{}", cyclic.output);

    // Decode back to a flat edge relation.
    let back_in = cyclic.output.project(&decode.input)?;
    let flat = run(&decode, &back_in, &cfg)?;
    println!(
        "decoded back to {} edges",
        flat.output.relation(RelName::new("Out"))?.len()
    );
    assert_eq!(
        flat.output.relation(RelName::new("Out"))?.len(),
        edges.len()
    );

    // Determinacy (Theorem 4.1.3): rerunning on a permuted input gives an
    // O-isomorphic output — "only the interrelationships of oids matter".
    let mut permuted = Instance::new(Arc::clone(&encode.input));
    for (s, d) in edges.iter().rev() {
        permuted.insert(
            r,
            OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
        )?;
    }
    let cyclic2 = run(&encode, &permuted, &cfg)?;
    assert!(are_o_isomorphic(&cyclic.output, &cyclic2.output));
    println!("second run is O-isomorphic to the first (Theorem 4.1.3)");
    Ok(())
}
