//! Example 3.4.2 from the paper: the powerset, two ways —
//!
//! 1. the one-liner `R1(X) ← X = X`, whose non-range-restricted variable
//!    ranges over the full active-domain interpretation of `{D}`;
//! 2. the range-restricted constructive program, which builds every subset
//!    through invented set-valued oids (`z^` collecting unions of pairs).
//!
//! Both are exponential — the paper's point is that this *escapes* the
//! PTIME sublanguages of Section 5, and the classifier agrees.
//!
//! ```sh
//! cargo run --example powerset
//! ```

use iql::lang::programs::{powerset_program, powerset_unrestricted_program};
use iql::lang::sublang::classify;
use iql::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let constructive = powerset_program();
    let oneliner = powerset_unrestricted_program();
    println!(
        "sublanguage classification: constructive = {}, X=X = {} (neither is IQLpr)",
        classify(&constructive),
        classify(&oneliner),
    );

    for n in [0usize, 1, 3, 5] {
        let mut i1 = Instance::new(Arc::clone(&constructive.input));
        let mut i2 = Instance::new(Arc::clone(&oneliner.input));
        for k in 0..n {
            let v = OValue::tuple([("a", OValue::str(&format!("d{k}")))]);
            i1.insert(RelName::new("R"), v.clone())?;
            i2.insert(RelName::new("R"), v)?;
        }
        let cfg = EvalConfig::default();
        let o1 = run(&constructive, &i1, &cfg)?;
        let o2 = run(&oneliner, &i2, &cfg)?;
        let r1 = o1.output.relation(RelName::new("R1"))?;
        let r2 = o2.output.relation(RelName::new("R1"))?;
        assert_eq!(r1, r2, "the two programs agree");
        assert_eq!(r1.len(), 1 << n);
        println!(
            "n = {n}: 2^{n} = {} subsets; constructive invented {} oids, one-liner used {} enumeration fallbacks",
            r1.len(),
            o1.report.invented,
            o2.report.enum_fallbacks,
        );
    }

    // Show the actual subsets for n = 3.
    let mut input = Instance::new(Arc::clone(&constructive.input));
    for k in 0..3 {
        input.insert(RelName::new("R"), OValue::tuple([("a", OValue::int(k))]))?;
    }
    let out = run(&constructive, &input, &EvalConfig::default())?;
    println!("\npowerset of {{0, 1, 2}}:");
    for v in out.output.relation(RelName::new("R1"))? {
        println!("  {v}");
    }
    Ok(())
}
