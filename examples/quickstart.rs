//! Quickstart: parse an IQL program, load data, run it, read results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The program is plain Datalog (transitive closure) — every Datalog
//! program is a valid IQL program with identical semantics (paper §3.4).

use iql::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare a schema and a program in IQL's textual syntax.
    let unit = parse_unit(
        r#"
        schema {
          relation Edge: [src: D, dst: D];
          relation Reaches: [src: D, dst: D];
        }
        program {
          input Edge;
          output Reaches;
          Reaches(x, y) :- Edge(x, y);
          Reaches(x, z) :- Reaches(x, y), Edge(y, z);
        }
        "#,
    )?;
    let program = unit.program.expect("program block present");

    // 2. Build an input instance of the program's input schema.
    let mut input = Instance::new(Arc::clone(&program.input));
    let edge = RelName::new("Edge");
    for (s, d) in [("paris", "lyon"), ("lyon", "nice"), ("nice", "rome")] {
        input.insert(
            edge,
            OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
        )?;
    }

    // 3. Run with default limits; inspect output and statistics.
    let out = run(&program, &input, &EvalConfig::default())?;
    println!("inflationary steps: {}", out.report.steps);
    println!("reachability facts:");
    for v in out.output.relation(RelName::new("Reaches"))? {
        println!("  {v}");
    }
    assert_eq!(out.output.relation(RelName::new("Reaches"))?.len(), 6);
    Ok(())
}
