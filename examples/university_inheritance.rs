//! Section 6 of the paper: type inheritance as a shorthand for union types.
//! The university hierarchy (Examples 6.1.2/6.2.1): every ta isa student
//! and instructor, every student/instructor isa person. Record fields
//! accumulate down the hierarchy via the `*`-interpretation; the schema
//! translates into a plain union-type schema on which IQL runs unchanged.
//!
//! ```sh
//! cargo run --example university_inheritance
//! ```

use iql::model::inherit::{university_schema, InheritedView};
use iql::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let uni = university_schema();
    println!(
        "declared types (succinct form, Example 6.2.1):\n{}",
        uni.schema
    );
    println!("\nmerged types (what values must actually look like, Example 6.1.2):");
    for class in ["Person", "Student", "Instructor", "Ta"] {
        let t = uni.merged_type(ClassName::new(class))?;
        println!("  t{class} = {t}");
    }

    // Build an instance: each oid's value has exactly its merged type.
    let mut inst = Instance::new(Arc::new(uni.schema.clone()));
    let ta = inst.create_oid(ClassName::new("Ta"))?;
    inst.define_value(
        ta,
        OValue::tuple([
            ("name", OValue::str("tina")),
            ("course_taken", OValue::str("logic")),
            ("course_taught", OValue::str("databases")),
        ]),
    )?;
    let prof = inst.create_oid(ClassName::new("Instructor"))?;
    inst.define_value(
        prof,
        OValue::tuple([
            ("name", OValue::str("serge")),
            ("course_taught", OValue::str("databases")),
        ]),
    )?;
    inst.insert_unchecked(
        RelName::new("Assists"),
        OValue::tuple([("who", OValue::oid(ta)), ("prof", OValue::oid(prof))]),
    )?;
    uni.validate_instance(&inst)?;
    println!("\ninstance validates under the inheritance semantics (Def 6.2.2)");

    // The inherited assignment π̄: a ta is a person, a student, and an
    // instructor all at once — while π itself stays disjoint.
    let view = InheritedView {
        inst: &inst,
        isa: &uni.isa,
    };
    for class in ["Person", "Student", "Instructor", "Ta"] {
        let t = TypeExpr::class(class);
        let is = t.member(&OValue::oid(ta), &view);
        println!("  tina ∈ π̄({class}) = {is}");
    }

    // Inheritance reduced to union types: the translated schema.
    let plain = uni.translate()?;
    println!("\ntranslated union-type schema (inheritance as shorthand, §6):\n{plain}");
    Ok(())
}
