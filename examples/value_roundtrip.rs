//! Section 7 of the paper: the value-based model. Pure values are regular
//! infinite trees; oids are "a syntactic trick" whose semantics the φ/ψ
//! translations make precise:
//!
//! * φ turns pure values into objects (one oid per value per class);
//! * ψ solves the equation system `{o = ν(o)}` back into regular trees,
//!   eliminating duplicates by bisimulation;
//! * ψ(φ(I)) = I (Proposition 7.1.4).
//!
//! ```sh
//! cargo run --example value_roundtrip
//! ```

use iql::model::{AttrName, ClassName, Constant, TypeExpr};
use iql::vtree::{phi, psi, trees_equal, vinstances_equal, Node, VInstance, VSchema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A v-schema of persons whose friends are persons — cyclic types,
    // infinite trees.
    let vperson = ClassName::new("Vperson");
    let schema = VSchema::new([(
        vperson,
        TypeExpr::tuple([
            ("name", TypeExpr::base()),
            ("friends", TypeExpr::set_of(TypeExpr::class("Vperson"))),
        ]),
    )])?;

    // Two mutual friends: each person's tree is infinite (alice contains
    // bob contains alice …) yet regular — finitely many distinct subtrees.
    let mut vinst = VInstance::new(&schema);
    let f = &mut vinst.forest;
    let alice = f.reserve();
    let bob = f.reserve();
    let an = f.add_const(Constant::str("alice"));
    let bn = f.add_const(Constant::str("bob"));
    let afr = f.add_set([bob]);
    let bfr = f.add_set([alice]);
    f.set_node(
        alice,
        Node::Tuple(
            [("name", an), ("friends", afr)]
                .map(|(a, n)| (AttrName::new(a), n))
                .into(),
        ),
    );
    f.set_node(
        bob,
        Node::Tuple(
            [("name", bn), ("friends", bfr)]
                .map(|(a, n)| (AttrName::new(a), n))
                .into(),
        ),
    );
    vinst.add(vperson, alice);
    vinst.add(vperson, bob);
    vinst.validate(&schema)?;

    println!(
        "alice's infinite tree, unfolded to depth 5:\n  {}",
        vinst.forest.unfold(alice, 5)
    );
    println!(
        "regularity (Prop 7.1.3): alice's tree has {} distinct subtrees",
        vinst.forest.distinct_subtrees(alice)
    );

    // φ: into objects. Cyclicity moves into the ν map.
    let (obj, _) = phi(&schema, &vinst)?;
    println!("\nφ(I) — the object instance:\n{obj}");

    // ψ: back to values; the roundtrip is exact.
    let back = psi(&obj)?;
    assert!(vinstances_equal(&back, &vinst));
    println!("ψ(φ(I)) = I (Proposition 7.1.4): OK");

    // Equality-by-value: a second, différently-presented copy of alice
    // denotes the same pure value.
    let mut other = iql::vtree::Forest::new();
    let a2 = other.reserve();
    let b2 = other.reserve();
    let an2 = other.add_const(Constant::str("alice"));
    let bn2 = other.add_const(Constant::str("bob"));
    let af2 = other.add_set([b2]);
    let bf2 = other.add_set([a2]);
    other.set_node(
        a2,
        Node::Tuple(
            [("name", an2), ("friends", af2)]
                .map(|(a, n)| (AttrName::new(a), n))
                .into(),
        ),
    );
    other.set_node(
        b2,
        Node::Tuple(
            [("name", bn2), ("friends", bf2)]
                .map(|(a, n)| (AttrName::new(a), n))
                .into(),
        ),
    );
    assert!(trees_equal(&vinst.forest, alice, &other, a2));
    println!("equality-by-value across presentations (bisimulation): OK");
    Ok(())
}
