//! # iql — Object Identity as a Query Language Primitive
//!
//! An open-source reproduction of Serge Abiteboul and Paris C. Kanellakis,
//! *Object Identity as a Query Language Primitive* (SIGMOD 1989; journal
//! version JACM 45(5), 1998): the object-based data model, the IQL query
//! language (with IQL⁺ `choose` and IQL\* deletions), its PTIME
//! sublanguages, type inheritance, and the value-based regular-tree model —
//! plus the Datalog and complex-object-algebra baselines the paper compares
//! against.
//!
//! This crate is an umbrella re-exporting the workspace members:
//!
//! * [`model`] — o-values, types, schemas, instances, isomorphism,
//!   inheritance (paper Sections 2, 4.1, 6);
//! * [`lang`] — the IQL language: parser, type checker, evaluator,
//!   sublanguage analysis (Sections 3–5);
//! * [`exec`] — the shared execution runtime both engines compile into:
//!   the physical-plan IR, the deterministic worker-pool driver, and the
//!   resource governor;
//! * [`datalog`] — a standalone relational Datalog engine (naive,
//!   semi-naive, stratified/inflationary negation) as the rule-language
//!   baseline;
//! * [`algebra`] — a complex-object algebra (nest/unnest/powerset) as the
//!   algebraic baseline (Section 3.4);
//! * [`vtree`] — regular trees, bisimulation, and the φ/ψ translations of
//!   the value-based model (Section 7).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduction of every example, figure, and
//! complexity theorem in the paper.

pub use iql_algebra as algebra;
pub use iql_core as lang;
pub use iql_core::Engine;
pub use iql_datalog as datalog;
pub use iql_exec as exec;
pub use iql_model as model;
pub use iql_vtree as vtree;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use iql_core::engine::Engine;
    pub use iql_core::eval::{
        run, run_governed, EvalConfig, EvalConfigBuilder, EvalOutput, EvalReport,
    };
    pub use iql_core::govern::{AbortReason, Aborted, Governor, RunOutcome};
    pub use iql_core::parser::parse_unit;
    pub use iql_core::{Head, Literal, Program, ProgramBuilder, Rule, Term};
    pub use iql_datalog::Strategy;
    pub use iql_model::{
        AttrName, ClassName, Constant, Instance, OValue, Oid, RelName, Schema, SchemaBuilder,
        TypeExpr,
    };
}
