//! `iql` — run IQL programs from the command line.
//!
//! ```text
//! iql run <file.iql> [--full] [--stats] [--threads N] [--max-steps N] …
//! iql check <file.iql>
//! iql classify <file.iql>
//! iql explain <file.iql>
//! ```
//!
//! A `.iql` file holds a `schema { … }`, optionally a `program { … }`, and
//! optionally an `instance { … }` (over the program's input schema). `run`
//! evaluates the program on the instance (empty input if absent) and prints
//! the output instance's ground facts; `check` just parses and type-checks;
//! `classify` reports the Section-5 sublanguage (IQLrr / IQLpr / IQL).
//!
//! Engine knobs are declared once in [`ENGINE_KNOBS`] — a table mapping
//! flags onto [`EvalConfigBuilder`] setters — so flag parsing, `--help`
//! text, and the config stay in sync by construction.
//!
//! `run` evaluates under the resource governor: `--timeout`, `--max-oids`,
//! and `--max-memory` bound the run, and Ctrl-C requests graceful
//! cancellation. A tripped run still prints the last consistent partial
//! result and exits with a distinct per-reason code (124 deadline,
//! 130 cancelled, 101 contained panic, 102–106 budgets).

use iql::lang::eval::{EvalConfig, EvalConfigBuilder};
use iql::lang::parser::parse_unit;
use iql::lang::sublang::{analyze_stage, classify};
use iql::prelude::{Aborted, Engine, Instance, RunOutcome};
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One engine knob: a flag, its argument shape, and the builder setter it
/// drives.
struct Knob {
    flag: &'static str,
    /// Metavar for flags taking a value; `None` for boolean switches.
    arg: Option<&'static str>,
    help: &'static str,
    apply: fn(EvalConfigBuilder, Option<&str>) -> Result<EvalConfigBuilder, String>,
}

fn required_usize(flag: &str, value: Option<&str>) -> Result<usize, String> {
    value
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("{flag} needs an integer"))
}

/// Parses `2s`, `500ms`, `1.5m`, `1h`, or a bare number of seconds.
fn parse_duration(flag: &str, value: Option<&str>) -> Result<Duration, String> {
    let v = value
        .ok_or_else(|| format!("{flag} needs a duration (e.g. 2s, 500ms)"))?
        .trim();
    let split = v.find(|c: char| c.is_ascii_alphabetic()).unwrap_or(v.len());
    let (num, unit) = v.split_at(split);
    let n: f64 = num
        .parse()
        .map_err(|_| format!("{flag}: bad duration `{v}`"))?;
    let secs = match unit {
        "ms" => n / 1000.0,
        "" | "s" => n,
        "m" => n * 60.0,
        "h" => n * 3600.0,
        _ => return Err(format!("{flag}: unknown unit `{unit}` (use ms, s, m, h)")),
    };
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("{flag}: bad duration `{v}`"));
    }
    Ok(Duration::from_secs_f64(secs))
}

/// Parses a byte count with an optional `k`/`m`/`g` (or `kb`/`mb`/`gb`)
/// suffix: `64m`, `512K`, `1g`, or bare bytes.
fn parse_bytes(flag: &str, value: Option<&str>) -> Result<usize, String> {
    let v = value
        .ok_or_else(|| format!("{flag} needs a byte count (e.g. 64m, 1g)"))?
        .trim();
    let split = v.find(|c: char| c.is_ascii_alphabetic()).unwrap_or(v.len());
    let (num, suffix) = v.split_at(split);
    let n: usize = num
        .parse()
        .map_err(|_| format!("{flag}: bad byte count `{v}`"))?;
    let mult: usize = match suffix.to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "k" | "kb" => 1 << 10,
        "m" | "mb" => 1 << 20,
        "g" | "gb" => 1 << 30,
        _ => return Err(format!("{flag}: unknown suffix `{suffix}` (use k, m, g)")),
    };
    n.checked_mul(mult)
        .ok_or_else(|| format!("{flag}: `{v}` overflows"))
}

/// The engine-knob table: every `EvalConfig` surface the CLI exposes.
const ENGINE_KNOBS: &[Knob] = &[
    Knob {
        flag: "--threads",
        arg: Some("N"),
        help: "worker threads for rule evaluation (0 = one per core; default 1)",
        apply: |b, v| Ok(b.threads(required_usize("--threads", v)?)),
    },
    Knob {
        flag: "--max-steps",
        arg: Some("N"),
        help: "inflationary step limit (default 10000)",
        apply: |b, v| Ok(b.max_steps(required_usize("--max-steps", v)?)),
    },
    Knob {
        flag: "--enum-budget",
        arg: Some("N"),
        help: "active-domain enumeration budget (default 2^20)",
        apply: |b, v| Ok(b.enum_budget(required_usize("--enum-budget", v)?)),
    },
    Knob {
        flag: "--no-index",
        arg: None,
        help: "disable per-scan hash indexes",
        apply: |b, _| Ok(b.index(false)),
    },
    Knob {
        flag: "--no-seminaive",
        arg: None,
        help: "disable delta-driven evaluation (pure naive semantics)",
        apply: |b, _| Ok(b.seminaive(false)),
    },
    Knob {
        flag: "--no-planner",
        arg: None,
        help: "disable cost-based join planning (textual literal order)",
        apply: |b, _| Ok(b.planner(false)),
    },
    Knob {
        flag: "--no-plan-cache",
        arg: None,
        help: "re-plan every rule every step instead of caching per stats epoch",
        apply: |b, _| Ok(b.plan_cache(false)),
    },
    Knob {
        flag: "--timeout",
        arg: Some("DUR"),
        help: "wall-clock deadline (2s, 500ms, 1m); prints the partial result on expiry",
        apply: |b, v| Ok(b.deadline(parse_duration("--timeout", v)?)),
    },
    Knob {
        flag: "--max-oids",
        arg: Some("N"),
        help: "abort after inventing more than N object identities",
        apply: |b, v| Ok(b.max_oids(required_usize("--max-oids", v)?)),
    },
    Knob {
        flag: "--max-memory",
        arg: Some("BYTES"),
        help: "value-store heap budget (suffixes k/m/g); aborts when exceeded",
        apply: |b, v| Ok(b.max_store_bytes(parse_bytes("--max-memory", v)?)),
    },
];

/// Set by the raw SIGINT handler; bridged onto the engine's cancellation
/// token by a detached polling thread (a signal handler must stay
/// async-signal-safe, so it only flips this flag).
#[cfg(unix)]
static SIGINT_HIT: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigint(_sig: i32) {
    SIGINT_HIT.store(true, Ordering::Relaxed);
}

/// Installs a Ctrl-C handler and returns the cancellation token it drives.
/// After the first Ctrl-C the default disposition is restored, so a second
/// Ctrl-C kills the process the ordinary way if the graceful path wedges.
#[cfg(unix)]
fn install_sigint_token() -> Arc<AtomicBool> {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
    let token = Arc::new(AtomicBool::new(false));
    let bridge = Arc::clone(&token);
    std::thread::spawn(move || loop {
        if SIGINT_HIT.load(Ordering::Relaxed) {
            bridge.store(true, Ordering::Relaxed);
            unsafe {
                signal(SIGINT, SIG_DFL);
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    });
    token
}

#[cfg(not(unix))]
fn install_sigint_token() -> Arc<AtomicBool> {
    Arc::new(AtomicBool::new(false))
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut full = false;
    let mut stats = false;
    let mut explain = false;
    let mut builder = EvalConfig::builder();
    let mut it = args.iter();
    'args: while let Some(a) = it.next() {
        for knob in ENGINE_KNOBS {
            if a.as_str() == knob.flag {
                let value = if knob.arg.is_some() {
                    it.next().map(String::as_str)
                } else {
                    None
                };
                builder = (knob.apply)(builder, value)?;
                continue 'args;
            }
        }
        match a.as_str() {
            "--full" => full = true,
            "--stats" => stats = true,
            "--explain" => explain = true,
            "--help" | "-h" => {
                print_help();
                return Ok(ExitCode::SUCCESS);
            }
            other => positional.push(other),
        }
    }
    let (cmd, file) = match positional.as_slice() {
        [cmd, file] => (*cmd, *file),
        [file] => ("run", *file),
        _ => {
            print_help();
            return Err("expected: iql [run|check|classify|explain] <file.iql>".into());
        }
    };
    // Graceful Ctrl-C only matters while the engine is evaluating.
    if cmd == "run" {
        builder = builder.cancel_token(install_sigint_token());
    }
    let cfg = builder.build();
    let src = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let unit = parse_unit(&src).map_err(|e| e.to_string())?;

    match cmd {
        "check" => {
            println!("{}", unit.schema);
            match &unit.program {
                Some(p) => println!(
                    "program OK: {} stage(s), {} rule(s)",
                    p.stages.len(),
                    p.rules().count()
                ),
                None => println!("no program block"),
            }
            if let Some(i) = &unit.instance {
                println!("instance OK: {} ground fact(s)", i.fact_count());
            }
            Ok(ExitCode::SUCCESS)
        }
        "classify" => {
            let p = unit.program.ok_or("classify needs a program block")?;
            println!("{}", classify(&p));
            for (i, stage) in p.stages.iter().enumerate() {
                let a = analyze_stage(stage, &p.schema);
                println!(
                    "stage {i}: range-restricted={} ptime-restricted={} invention-free={} recursion-free={}",
                    a.range_restricted, a.ptime_restricted, a.invention_free, a.recursion_free
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "explain" => {
            let p = unit.program.ok_or("explain needs a program block")?;
            for (i, stage) in p.stages.iter().enumerate() {
                println!("stage {i}:");
                for rule in &stage.rules {
                    print!(
                        "{}",
                        iql::lang::eval::explain_rule(rule).map_err(|e| e.to_string())?
                    );
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let p = unit.program.ok_or("run needs a program block")?;
            let engine = Engine::new(p).with_config(cfg);
            let empty;
            let input = match &unit.instance {
                Some(i) => i,
                None => {
                    empty = Instance::new(Arc::clone(&engine.program().input));
                    &empty
                }
            };
            let outcome = engine.run_governed(input).map_err(|e| e.to_string())?;
            let (out, abort) = match outcome {
                RunOutcome::Complete(out) => (*out, None),
                RunOutcome::Aborted(a) => {
                    let Aborted {
                        reason,
                        at_step,
                        elapsed,
                        partial,
                        ..
                    } = *a;
                    (partial, Some((reason, at_step, elapsed)))
                }
            };
            let shown = if full { &out.full } else { &out.output };
            // Lock stdout once and treat a broken pipe (e.g. `| head`) as
            // a normal end of output, not a panic or an error.
            let mut stdout = std::io::stdout().lock();
            for fact in shown.ground_facts() {
                if let Err(e) = writeln!(stdout, "{fact}") {
                    if e.kind() == std::io::ErrorKind::BrokenPipe {
                        break;
                    }
                    return Err(format!("writing output: {e}"));
                }
            }
            drop(stdout);
            if stats {
                eprintln!("{}", out.report);
                for ((stage, rule), fires) in &out.report.rule_fires {
                    eprintln!("stage {stage} rule {rule}: {fires} derivation(s)");
                }
                let search: u64 = out.report.step_timings.iter().map(|t| t.search_nanos).sum();
                let apply: u64 = out.report.step_timings.iter().map(|t| t.apply_nanos).sum();
                eprintln!(
                    "search={:.3}ms merge={:.3}ms threads={}",
                    search as f64 / 1e6,
                    apply as f64 / 1e6,
                    engine.config().effective_threads()
                );
            }
            if explain {
                eprintln!(
                    "plans: {} fresh, {} cached (epoch-keyed plan cache {})",
                    out.report.plans_fresh,
                    out.report.plans_cached,
                    if engine.config().use_plan_cache {
                        "on"
                    } else {
                        "off"
                    }
                );
                let mut work = out.full.clone();
                for (si, stage) in engine.program().stages.iter().enumerate() {
                    eprintln!("stage {si} (plans at the final statistics epoch):");
                    for rule in &stage.rules {
                        eprint!(
                            "{}",
                            iql::lang::eval::explain_rule_planned(rule, &mut work, engine.config())
                                .map_err(|e| e.to_string())?
                        );
                    }
                }
            }
            match abort {
                None => Ok(ExitCode::SUCCESS),
                Some((reason, at_step, elapsed)) => {
                    eprintln!(
                        "aborted: {reason} after {at_step} step(s) in {:.3}s; \
                         printed the last consistent partial result",
                        elapsed.as_secs_f64()
                    );
                    Ok(ExitCode::from(reason.exit_code()))
                }
            }
        }
        other => Err(format!("unknown command {other}; try --help")),
    }
}

fn print_help() {
    println!(
        "iql — the Identity Query Language (Abiteboul & Kanellakis, SIGMOD 1989)

USAGE:
    iql run <file.iql>       evaluate the program on the instance block
    iql check <file.iql>     parse and type-check only
    iql classify <file.iql>  report the Section-5 sublanguage
    iql explain <file.iql>   show each rule's evaluation plan

OPTIONS:
    --full             print the full fixpoint instance, not just the output
    --stats            print evaluation statistics to stderr
    --explain          after a run, print each rule's plan and the fresh/cached
                       plan counts to stderr

ENGINE OPTIONS:"
    );
    for knob in ENGINE_KNOBS {
        let flag = match knob.arg {
            Some(metavar) => format!("{} {}", knob.flag, metavar),
            None => knob.flag.to_string(),
        };
        println!("    {flag:<18} {}", knob.help);
    }
    println!(
        "
EXIT CODES (run):
    0    completed fixpoint
    101  a worker panicked (contained; partial result printed)
    102  step limit        103  fact budget       104  oid budget
    105  store-node budget 106  memory budget
    124  --timeout expired 130  interrupted (Ctrl-C)"
    );
}
