//! `iql` — run IQL programs from the command line.
//!
//! ```text
//! iql run <file.iql> [--full] [--stats] [--threads N] [--max-steps N] …
//! iql check <file.iql>
//! iql classify <file.iql>
//! iql explain <file.iql>
//! ```
//!
//! A `.iql` file holds a `schema { … }`, optionally a `program { … }`, and
//! optionally an `instance { … }` (over the program's input schema). `run`
//! evaluates the program on the instance (empty input if absent) and prints
//! the output instance's ground facts; `check` just parses and type-checks;
//! `classify` reports the Section-5 sublanguage (IQLrr / IQLpr / IQL).
//!
//! Engine knobs are declared once in [`ENGINE_KNOBS`] — a table mapping
//! flags onto [`EvalConfigBuilder`] setters — so flag parsing, `--help`
//! text, and the config stay in sync by construction.

use iql::lang::eval::{EvalConfig, EvalConfigBuilder};
use iql::lang::parser::parse_unit;
use iql::lang::sublang::{analyze_stage, classify};
use iql::prelude::Engine;
use std::process::ExitCode;

/// One engine knob: a flag, its argument shape, and the builder setter it
/// drives.
struct Knob {
    flag: &'static str,
    /// Metavar for flags taking a value; `None` for boolean switches.
    arg: Option<&'static str>,
    help: &'static str,
    apply: fn(EvalConfigBuilder, Option<&str>) -> Result<EvalConfigBuilder, String>,
}

fn required_usize(flag: &str, value: Option<&str>) -> Result<usize, String> {
    value
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("{flag} needs an integer"))
}

/// The engine-knob table: every `EvalConfig` surface the CLI exposes.
const ENGINE_KNOBS: &[Knob] = &[
    Knob {
        flag: "--threads",
        arg: Some("N"),
        help: "worker threads for rule evaluation (0 = one per core; default 1)",
        apply: |b, v| Ok(b.threads(required_usize("--threads", v)?)),
    },
    Knob {
        flag: "--max-steps",
        arg: Some("N"),
        help: "inflationary step limit (default 10000)",
        apply: |b, v| Ok(b.max_steps(required_usize("--max-steps", v)?)),
    },
    Knob {
        flag: "--enum-budget",
        arg: Some("N"),
        help: "active-domain enumeration budget (default 2^20)",
        apply: |b, v| Ok(b.enum_budget(required_usize("--enum-budget", v)?)),
    },
    Knob {
        flag: "--no-index",
        arg: None,
        help: "disable per-scan hash indexes",
        apply: |b, _| Ok(b.index(false)),
    },
    Knob {
        flag: "--no-seminaive",
        arg: None,
        help: "disable delta-driven evaluation (pure naive semantics)",
        apply: |b, _| Ok(b.seminaive(false)),
    },
    Knob {
        flag: "--no-planner",
        arg: None,
        help: "disable cost-based join planning (textual literal order)",
        apply: |b, _| Ok(b.planner(false)),
    },
];

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut full = false;
    let mut stats = false;
    let mut builder = EvalConfig::builder();
    let mut it = args.iter();
    'args: while let Some(a) = it.next() {
        for knob in ENGINE_KNOBS {
            if a.as_str() == knob.flag {
                let value = if knob.arg.is_some() {
                    it.next().map(String::as_str)
                } else {
                    None
                };
                builder = (knob.apply)(builder, value)?;
                continue 'args;
            }
        }
        match a.as_str() {
            "--full" => full = true,
            "--stats" => stats = true,
            "--help" | "-h" => {
                print_help();
                return Ok(());
            }
            other => positional.push(other),
        }
    }
    let cfg = builder.build();
    let (cmd, file) = match positional.as_slice() {
        [cmd, file] => (*cmd, *file),
        [file] => ("run", *file),
        _ => {
            print_help();
            return Err("expected: iql [run|check|classify|explain] <file.iql>".into());
        }
    };
    let src = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let unit = parse_unit(&src).map_err(|e| e.to_string())?;

    match cmd {
        "check" => {
            println!("{}", unit.schema);
            match &unit.program {
                Some(p) => println!(
                    "program OK: {} stage(s), {} rule(s)",
                    p.stages.len(),
                    p.rules().count()
                ),
                None => println!("no program block"),
            }
            if let Some(i) = &unit.instance {
                println!("instance OK: {} ground fact(s)", i.fact_count());
            }
            Ok(())
        }
        "classify" => {
            let p = unit.program.ok_or("classify needs a program block")?;
            println!("{}", classify(&p));
            for (i, stage) in p.stages.iter().enumerate() {
                let a = analyze_stage(stage, &p.schema);
                println!(
                    "stage {i}: range-restricted={} ptime-restricted={} invention-free={} recursion-free={}",
                    a.range_restricted, a.ptime_restricted, a.invention_free, a.recursion_free
                );
            }
            Ok(())
        }
        "explain" => {
            let p = unit.program.ok_or("explain needs a program block")?;
            for (i, stage) in p.stages.iter().enumerate() {
                println!("stage {i}:");
                for rule in &stage.rules {
                    print!(
                        "{}",
                        iql::lang::eval::explain_rule(rule).map_err(|e| e.to_string())?
                    );
                }
            }
            Ok(())
        }
        "run" => {
            let p = unit.program.ok_or("run needs a program block")?;
            let engine = Engine::new(p).with_config(cfg);
            let out = match unit.instance {
                Some(i) => engine.run(&i),
                None => engine.run_empty(),
            }
            .map_err(|e| e.to_string())?;
            let shown = if full { &out.full } else { &out.output };
            for fact in shown.ground_facts() {
                println!("{fact}");
            }
            if stats {
                eprintln!("{}", out.report);
                for ((stage, rule), fires) in &out.report.rule_fires {
                    eprintln!("stage {stage} rule {rule}: {fires} derivation(s)");
                }
                let search: u64 = out.report.step_timings.iter().map(|t| t.search_nanos).sum();
                let apply: u64 = out.report.step_timings.iter().map(|t| t.apply_nanos).sum();
                eprintln!(
                    "search={:.3}ms merge={:.3}ms threads={}",
                    search as f64 / 1e6,
                    apply as f64 / 1e6,
                    engine.config().effective_threads()
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command {other}; try --help")),
    }
}

fn print_help() {
    println!(
        "iql — the Identity Query Language (Abiteboul & Kanellakis, SIGMOD 1989)

USAGE:
    iql run <file.iql>       evaluate the program on the instance block
    iql check <file.iql>     parse and type-check only
    iql classify <file.iql>  report the Section-5 sublanguage
    iql explain <file.iql>   show each rule's evaluation plan

OPTIONS:
    --full             print the full fixpoint instance, not just the output
    --stats            print evaluation statistics to stderr

ENGINE OPTIONS:"
    );
    for knob in ENGINE_KNOBS {
        let flag = match knob.arg {
            Some(metavar) => format!("{} {}", knob.flag, metavar),
            None => knob.flag.to_string(),
        };
        println!("    {flag:<18} {}", knob.help);
    }
}
