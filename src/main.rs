//! `iql` — run IQL programs from the command line.
//!
//! ```text
//! iql run <file.iql> [--full] [--stats] [--max-steps N] [--enum-budget N]
//! iql check <file.iql>
//! iql classify <file.iql>
//! ```
//!
//! A `.iql` file holds a `schema { … }`, optionally a `program { … }`, and
//! optionally an `instance { … }` (over the program's input schema). `run`
//! evaluates the program on the instance (empty input if absent) and prints
//! the output instance's ground facts; `check` just parses and type-checks;
//! `classify` reports the Section-5 sublanguage (IQLrr / IQLpr / IQL).

use iql::lang::eval::{run, EvalConfig};
use iql::lang::parser::parse_unit;
use iql::lang::sublang::{analyze_stage, classify};
use iql::model::Instance;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut full = false;
    let mut stats = false;
    let mut cfg = EvalConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--stats" => stats = true,
            "--no-index" => cfg.use_index = false,
            "--no-seminaive" => cfg.use_seminaive = false,
            "--max-steps" => {
                cfg.max_steps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-steps needs an integer")?;
            }
            "--enum-budget" => {
                cfg.enum_budget = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--enum-budget needs an integer")?;
            }
            "--help" | "-h" => {
                print_help();
                return Ok(());
            }
            other => positional.push(other),
        }
    }
    let (cmd, file) = match positional.as_slice() {
        [cmd, file] => (*cmd, *file),
        [file] => ("run", *file),
        _ => {
            print_help();
            return Err("expected: iql [run|check|classify] <file.iql>".into());
        }
    };
    let src = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let unit = parse_unit(&src).map_err(|e| e.to_string())?;

    match cmd {
        "check" => {
            println!("{}", unit.schema);
            match &unit.program {
                Some(p) => println!(
                    "program OK: {} stage(s), {} rule(s)",
                    p.stages.len(),
                    p.rules().count()
                ),
                None => println!("no program block"),
            }
            if let Some(i) = &unit.instance {
                println!("instance OK: {} ground fact(s)", i.fact_count());
            }
            Ok(())
        }
        "classify" => {
            let p = unit.program.ok_or("classify needs a program block")?;
            println!("{}", classify(&p));
            for (i, stage) in p.stages.iter().enumerate() {
                let a = analyze_stage(stage, &p.schema);
                println!(
                    "stage {i}: range-restricted={} ptime-restricted={} invention-free={} recursion-free={}",
                    a.range_restricted, a.ptime_restricted, a.invention_free, a.recursion_free
                );
            }
            Ok(())
        }
        "explain" => {
            let p = unit.program.ok_or("explain needs a program block")?;
            for (i, stage) in p.stages.iter().enumerate() {
                println!("stage {i}:");
                for rule in &stage.rules {
                    print!(
                        "{}",
                        iql::lang::eval::explain_rule(rule).map_err(|e| e.to_string())?
                    );
                }
            }
            Ok(())
        }
        "run" => {
            let p = unit.program.ok_or("run needs a program block")?;
            let input = match unit.instance {
                Some(i) => i,
                None => Instance::new(Arc::clone(&p.input)),
            };
            let out = run(&p, &input, &cfg).map_err(|e| e.to_string())?;
            let shown = if full { &out.full } else { &out.output };
            for fact in shown.ground_facts() {
                println!("{fact}");
            }
            if stats {
                eprintln!(
                    "steps={} invented={} facts_added={} facts_deleted={} enum_fallbacks={}",
                    out.report.steps,
                    out.report.invented,
                    out.report.facts_added,
                    out.report.facts_deleted,
                    out.report.enum_fallbacks
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command {other}; try --help")),
    }
}

fn print_help() {
    println!(
        "iql — the Identity Query Language (Abiteboul & Kanellakis, SIGMOD 1989)

USAGE:
    iql run <file.iql>       evaluate the program on the instance block
    iql check <file.iql>     parse and type-check only
    iql classify <file.iql>  report the Section-5 sublanguage
    iql explain <file.iql>   show each rule's evaluation plan

OPTIONS:
    --full             print the full fixpoint instance, not just the output
    --stats            print evaluation statistics to stderr
    --max-steps N      inflationary step limit (default 10000)
    --enum-budget N    active-domain enumeration budget (default 2^20)
    --no-index         disable per-scan hash indexes
    --no-seminaive     disable delta-driven evaluation (pure naive semantics)"
    );
}
