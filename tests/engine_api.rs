//! Integration tests for the public engine API surface: the [`Engine`]
//! facade, the [`EvalConfig`] builder, the Datalog [`Strategy`] entry
//! point, and the bit-identical guarantee of parallel evaluation — all
//! dependency-free so tier-1 catches accidental breakage.

#![deny(deprecated)]

use iql::lang::programs::{
    graph_to_class_program, parallel_join_program, transitive_closure_program,
};
use iql::prelude::*;
use std::sync::Arc;

/// Deterministic xorshift64* — keeps these tests free of external crates.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn random_edges(n: usize, m: usize, seed: u64) -> Vec<(String, String)> {
    let mut rng = XorShift(seed | 1);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let s = rng.next() as usize % n;
        let d = rng.next() as usize % n;
        if s != d {
            edges.push((format!("n{s}"), format!("n{d}")));
        }
    }
    edges
}

fn edge_input(
    prog: &Program,
    rel: &str,
    attrs: (&str, &str),
    edges: &[(String, String)],
) -> Instance {
    let mut input = Instance::new(Arc::clone(&prog.input));
    for (s, d) in edges {
        input
            .insert_unchecked(
                RelName::new(rel),
                OValue::tuple([(attrs.0, OValue::str(s)), (attrs.1, OValue::str(d))]),
            )
            .unwrap();
    }
    input
}

// ---------------------------------------------------------------------
// EvalConfig builder
// ---------------------------------------------------------------------

#[test]
fn builder_sets_every_knob() {
    let cfg = EvalConfig::builder()
        .max_steps(7)
        .enum_budget(11)
        .max_facts(13)
        .check_output(false)
        .index(false)
        .seminaive(false)
        .nondeterministic_choice(true)
        .threads(5)
        .build();
    assert_eq!(cfg.max_steps, 7);
    assert_eq!(cfg.enum_budget, 11);
    assert_eq!(cfg.max_facts, 13);
    assert!(!cfg.check_output);
    assert!(!cfg.use_index);
    assert!(!cfg.use_seminaive);
    assert!(cfg.nondeterministic_choice);
    assert_eq!(cfg.threads, 5);
    assert_eq!(cfg.effective_threads(), 5);
    // to_builder derives a variant without disturbing the rest.
    let derived = cfg.to_builder().threads(2).build();
    assert_eq!(derived.threads, 2);
    assert_eq!(derived.max_steps, 7);
    assert!(!derived.use_seminaive);
}

#[test]
fn default_config_is_sequential() {
    let cfg = EvalConfig::default();
    assert_eq!(cfg.threads, 1);
    assert_eq!(cfg.effective_threads(), 1);
    // threads = 0 resolves to the machine's parallelism, never 0.
    let auto = EvalConfig::builder().threads(0).build();
    assert!(auto.effective_threads() >= 1);
}

// ---------------------------------------------------------------------
// Engine facade
// ---------------------------------------------------------------------

#[test]
fn engine_matches_direct_run() {
    let prog = transitive_closure_program();
    let edges = random_edges(12, 24, 42);
    let input = edge_input(&prog, "Edge", ("src", "dst"), &edges);
    let direct = run(&prog, &input, &EvalConfig::default()).unwrap();
    let engine = Engine::new(transitive_closure_program());
    let via_engine = engine.run(&input).unwrap();
    assert_eq!(
        direct.output.ground_facts(),
        via_engine.output.ground_facts()
    );
    assert_eq!(direct.report.counters(), via_engine.report.counters());
}

#[test]
fn engine_with_config_and_accessors() {
    let cfg = EvalConfig::builder().threads(2).build();
    let engine = Engine::new(transitive_closure_program()).with_config(cfg);
    assert_eq!(engine.config().threads, 2);
    assert_eq!(engine.program().stages.len(), 1);
    // An empty input runs fine through the facade.
    let out = engine.run_empty().unwrap();
    assert_eq!(out.report.facts_added, 0);
}

// ---------------------------------------------------------------------
// Datalog Strategy entry point
// ---------------------------------------------------------------------

#[test]
fn strategy_entry_point_covers_all_strategies() {
    let dl =
        iql::datalog::parse_program("Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).")
            .unwrap();
    let mut db = iql::datalog::Database::new();
    for (s, d) in [(1i64, 2), (2, 3), (3, 4)] {
        db.insert("Edge", vec![Constant::int(s), Constant::int(d)])
            .unwrap();
    }
    let mut results = Vec::new();
    for strategy in [
        Strategy::Naive,
        Strategy::SemiNaive,
        Strategy::Inflationary,
        Strategy::Stratified,
    ] {
        let (out, stats) = iql::datalog::eval(&dl, &db, strategy).unwrap();
        assert_eq!(out.relation("Tc").unwrap().len(), 6, "{strategy}");
        assert_eq!(stats.threads, 1, "{strategy}");
        results.push(out);
    }
    for other in &results[1..] {
        assert_eq!(results[0], *other, "strategies disagree on positive TC");
    }
    assert_eq!(Strategy::SemiNaive.to_string(), "semi-naive");
}

// ---------------------------------------------------------------------
// Parallel evaluation: bit-identical output on a fixed workload
// ---------------------------------------------------------------------

#[test]
fn parallel_eval_bit_identical_across_thread_counts() {
    for (prog, rel) in [
        (graph_to_class_program(), "R"),
        (parallel_join_program(), "Edge"),
    ] {
        let edges = random_edges(20, 60, 7);
        let input = edge_input(&prog, rel, ("src", "dst"), &edges);
        let engine = |threads: usize| {
            Engine::new(prog.clone()).with_config(EvalConfig::builder().threads(threads).build())
        };
        let baseline = engine(1).run(&input).unwrap();
        assert!(baseline.report.invented > 0, "workload must invent oids");
        for threads in [2usize, 4, 8] {
            let par = engine(threads).run(&input).unwrap();
            // Same facts, same invented-oid numbering, same counters —
            // not merely isomorphic.
            assert_eq!(
                baseline.full.ground_facts(),
                par.full.ground_facts(),
                "{prog} differs at {threads} threads"
            );
            assert_eq!(
                baseline.report.counters(),
                par.report.counters(),
                "{prog} report drift at {threads} threads"
            );
        }
    }
}

#[test]
fn parallel_report_exposes_step_profile() {
    let prog = parallel_join_program();
    let edges = random_edges(16, 48, 3);
    let input = edge_input(&prog, "Edge", ("src", "dst"), &edges);
    let out = Engine::new(prog)
        .with_config(EvalConfig::builder().threads(4).build())
        .run(&input)
        .unwrap();
    // One timing entry per step, stamped with stage/step indices.
    assert_eq!(out.report.step_timings.len(), out.report.steps);
    assert_eq!(out.report.stages, 2);
    assert!(out.report.step_timings.iter().any(|t| t.fires > 0));
    // Per-rule derivation counters sum to the total fires.
    let from_rules: usize = out.report.rule_fires.values().sum();
    let from_steps: usize = out.report.step_timings.iter().map(|t| t.fires).sum();
    assert_eq!(from_rules, from_steps);
}
