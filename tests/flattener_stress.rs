//! Stress and edge tests for the Prop-4.2.2 machinery: the generated
//! flattener across a gallery of schemas, and the copies machinery at odd
//! sizes.

#![deny(deprecated)]

use iql::lang::encode::{decode, encode, flat_schema, generate_flattener};
use iql::model::iso::are_o_isomorphic;
use iql::prelude::*;
use std::sync::Arc;

fn roundtrip(inst: &Instance) {
    // Native encoder.
    let flat = encode(inst).unwrap();
    let back = decode(&flat, inst.schema()).unwrap();
    assert!(are_o_isomorphic(&back, inst), "native encode/decode failed");
    // Generated IQL program.
    let prog = generate_flattener(inst.schema()).unwrap();
    let out = run(
        &prog,
        &inst.project(&prog.input).unwrap(),
        &EvalConfig::default(),
    )
    .unwrap();
    let flat_view = out.output.project(&Arc::new(flat_schema())).unwrap();
    let back2 = decode(&flat_view, inst.schema()).unwrap();
    assert!(are_o_isomorphic(&back2, inst), "generated flattener failed");
}

#[test]
fn gallery_deeply_nested_tuples() {
    let schema = SchemaBuilder::new()
        .relation(
            "Deep",
            TypeExpr::tuple([(
                "a",
                TypeExpr::tuple([("b", TypeExpr::tuple([("c", TypeExpr::base())]))]),
            )]),
        )
        .build()
        .unwrap()
        .into_shared();
    let mut inst = Instance::new(Arc::clone(&schema));
    inst.insert(
        RelName::new("Deep"),
        OValue::tuple([(
            "a",
            OValue::tuple([("b", OValue::tuple([("c", OValue::str("leaf"))]))]),
        )]),
    )
    .unwrap();
    roundtrip(&inst);
}

#[test]
fn gallery_set_of_tuples_of_sets() {
    let schema = SchemaBuilder::new()
        .relation(
            "Mix",
            TypeExpr::set_of(TypeExpr::tuple([
                ("k", TypeExpr::base()),
                ("vs", TypeExpr::set_of(TypeExpr::base())),
            ])),
        )
        .build()
        .unwrap()
        .into_shared();
    let mut inst = Instance::new(Arc::clone(&schema));
    inst.insert(
        RelName::new("Mix"),
        OValue::set([
            OValue::tuple([
                ("k", OValue::int(1)),
                ("vs", OValue::set([OValue::int(10), OValue::int(11)])),
            ]),
            OValue::tuple([("k", OValue::int(2)), ("vs", OValue::empty_set())]),
        ]),
    )
    .unwrap();
    roundtrip(&inst);
}

#[test]
fn gallery_union_of_three_branches() {
    use TypeExpr as T;
    let schema = SchemaBuilder::new()
        .class("FsQ", T::unit())
        .relation(
            "Tri",
            T::union(
                T::base(),
                T::union(T::class("FsQ"), T::tuple([("pair", T::base())])),
            ),
        )
        .build()
        .unwrap()
        .into_shared();
    let mut inst = Instance::new(Arc::clone(&schema));
    let q = inst.create_oid(ClassName::new("FsQ")).unwrap();
    inst.insert(RelName::new("Tri"), OValue::str("plain"))
        .unwrap();
    inst.insert(RelName::new("Tri"), OValue::oid(q)).unwrap();
    inst.insert(
        RelName::new("Tri"),
        OValue::tuple([("pair", OValue::str("wrapped"))]),
    )
    .unwrap();
    roundtrip(&inst);
}

#[test]
fn gallery_mutually_recursive_classes() {
    use TypeExpr as T;
    let schema = SchemaBuilder::new()
        .class("FsEven", T::tuple([("next", T::set_of(T::class("FsOdd")))]))
        .class("FsOdd", T::tuple([("next", T::set_of(T::class("FsEven")))]))
        .build()
        .unwrap()
        .into_shared();
    let mut inst = Instance::new(Arc::clone(&schema));
    let e = inst.create_oid(ClassName::new("FsEven")).unwrap();
    let o = inst.create_oid(ClassName::new("FsOdd")).unwrap();
    inst.define_value(e, OValue::tuple([("next", OValue::set([OValue::oid(o)]))]))
        .unwrap();
    inst.define_value(o, OValue::tuple([("next", OValue::set([OValue::oid(e)]))]))
        .unwrap();
    inst.validate().unwrap();
    roundtrip(&inst);
}

#[test]
fn gallery_undefined_values_are_preserved() {
    use TypeExpr as T;
    let schema = SchemaBuilder::new()
        .class("FsMaybe", T::tuple([("tag", T::base())]))
        .build()
        .unwrap()
        .into_shared();
    let mut inst = Instance::new(Arc::clone(&schema));
    let def = inst.create_oid(ClassName::new("FsMaybe")).unwrap();
    let _undef = inst.create_oid(ClassName::new("FsMaybe")).unwrap();
    inst.define_value(def, OValue::tuple([("tag", OValue::str("known"))]))
        .unwrap();
    // Native path: the undefined oid must come back undefined.
    let flat = encode(&inst).unwrap();
    assert_eq!(flat.relation(RelName::new("ValueOf")).unwrap().len(), 1);
    let back = decode(&flat, inst.schema()).unwrap();
    assert!(are_o_isomorphic(&back, &inst));
    roundtrip(&inst);
}

#[test]
fn copies_of_copies_compose() {
    use iql::lang::completeness::{check_instance_with_copies, eliminate_copies, make_copies};
    let (genesis, _) = iql::model::instance::genesis_instance();
    let twice = make_copies(&genesis, 2).unwrap();
    // An instance-with-copies is itself an instance with classes, so the
    // machinery composes: copies of the copies-instance.
    let meta = make_copies(&twice, 2).unwrap();
    assert_eq!(check_instance_with_copies(&meta, &twice).unwrap(), 2);
    let back = eliminate_copies(&meta, twice.schema()).unwrap();
    assert!(are_o_isomorphic(&back, &twice));
}
