//! Integration tests for the resource-governance subsystem: deadlines,
//! deterministic budgets, cancellation tokens, and contained worker panics
//! across both the IQL evaluator and the Datalog baseline.
//!
//! Deliberately proptest-free so the suite runs in dependency-stripped
//! environments; the randomized governor properties live in
//! `tests/proptests.rs`.

use iql::datalog::{
    eval_governed as dl_eval_governed, eval_with as dl_eval_with, parse_program, Database, DlError,
    Strategy,
};
use iql::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The divergent chain-grower from `examples/iql/divergent.iql`: every
/// step invents a fresh oid for the head-only class-typed variable `z`,
/// so the fixpoint never closes.
const DIVERGENT: &str = r#"
schema {
  class Node: [tag: D];
  relation R3: [src: Node, dst: Node];
}
program {
  input Node, R3;
  output R3;
  R3(y, z) :- R3(x, y);
}
instance {
  Node(a); a^ = [tag: "seed-a"];
  Node(b); b^ = [tag: "seed-b"];
  R3(a, b);
}
"#;

/// Two independent rules over a shared input; used for panic-containment
/// tests (rule 0 is sacrificed, rule 1 must survive).
const TWO_RULES: &str = r#"
schema {
  relation Edge: [s: D, d: D];
  relation A: [x: D];
  relation B: [x: D];
}
program {
  input Edge;
  output A, B;
  A(x) :- Edge(x, y);
  B(y) :- Edge(x, y);
}
instance {
  Edge("a", "b");
  Edge("b", "c");
  Edge("c", "d");
}
"#;

fn parsed(src: &str) -> (Program, Instance) {
    let unit = parse_unit(src).expect("test program parses");
    (
        unit.program.expect("program block"),
        unit.instance.expect("instance block"),
    )
}

/// Sorted rendering of an instance's ground facts, for exact comparison
/// of partial results across engine configurations.
fn facts(inst: &Instance) -> Vec<String> {
    let mut v: Vec<String> = inst.ground_facts().iter().map(|f| f.to_string()).collect();
    v.sort();
    v
}

/// A named budget scenario: a label, the builder knob that sets the
/// budget, and the abort reason it must produce.
type BudgetCase = (
    &'static str,
    fn(EvalConfigBuilder) -> EvalConfigBuilder,
    fn(&AbortReason) -> bool,
);

fn expect_aborted(outcome: RunOutcome) -> Aborted {
    match outcome {
        RunOutcome::Aborted(a) => *a,
        RunOutcome::Complete(_) => panic!("expected an aborted run, got a completed fixpoint"),
    }
}

// ---------------------------------------------------------------------
// IQL: asynchronous trips (deadline, cancellation)
// ---------------------------------------------------------------------

#[test]
fn deadline_stops_divergent_run_at_any_thread_count() {
    let deadline = Duration::from_millis(300);
    for threads in [1usize, 2, 4] {
        let (prog, inst) = parsed(DIVERGENT);
        let cfg = EvalConfig::builder()
            .threads(threads)
            .deadline(deadline)
            .build();
        let outcome = Engine::new(prog)
            .with_config(cfg)
            .run_governed(&inst)
            .expect("governed run is not an error");
        let aborted = expect_aborted(outcome);
        assert_eq!(aborted.reason, AbortReason::Deadline, "threads={threads}");
        assert!(
            aborted.elapsed < deadline * 2,
            "threads={threads}: stopped only after {:?}",
            aborted.elapsed
        );
        assert!(aborted.at_step > 0, "threads={threads}");
        // The partial result is the last consistent snapshot: the seed
        // fact plus one chain link per completed step.
        let partial = facts(&aborted.partial.output);
        assert!(!partial.is_empty(), "threads={threads}");
        assert!(partial.len() >= aborted.at_step, "threads={threads}");
    }
}

#[test]
fn pre_set_cancel_token_aborts_before_the_first_step() {
    let (prog, inst) = parsed(DIVERGENT);
    let token = Arc::new(AtomicBool::new(true));
    let cfg = EvalConfig::builder()
        .cancel_token(Arc::clone(&token))
        .build();
    let aborted = expect_aborted(
        Engine::new(prog)
            .with_config(cfg)
            .run_governed(&inst)
            .unwrap(),
    );
    assert_eq!(aborted.reason, AbortReason::Cancelled);
    assert_eq!(aborted.at_step, 0);
    // Nothing was derived: the partial is just the seeded input.
    assert_eq!(facts(&aborted.partial.output), facts(&aborted.partial.full));
}

#[test]
fn cancel_token_flipped_mid_run_stops_the_run() {
    let (prog, inst) = parsed(DIVERGENT);
    let token = Arc::new(AtomicBool::new(false));
    let cfg = EvalConfig::builder()
        .threads(2)
        .cancel_token(Arc::clone(&token))
        .build();
    let flipper = {
        let token = Arc::clone(&token);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.store(true, Ordering::Relaxed);
        })
    };
    let start = Instant::now();
    let aborted = expect_aborted(
        Engine::new(prog)
            .with_config(cfg)
            .run_governed(&inst)
            .unwrap(),
    );
    flipper.join().unwrap();
    assert_eq!(aborted.reason, AbortReason::Cancelled);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "cancellation token ignored for {:?}",
        start.elapsed()
    );
    assert!(!facts(&aborted.partial.output).is_empty());
}

// ---------------------------------------------------------------------
// IQL: deterministic budgets — the abort-reason × engine-config matrix
// ---------------------------------------------------------------------

/// Step-boundary budgets are deterministic: the same budget must produce
/// the same abort reason AND the same partial result at every thread
/// count and under every planner/seminaive combination, because budget
/// checks only happen between steps and step semantics are confluent.
#[test]
fn deterministic_budgets_abort_identically_across_engine_configs() {
    let budgets: &[BudgetCase] = &[
        (
            "step limit",
            |b| b.max_steps(25),
            |r| matches!(r, AbortReason::StepLimit { limit: 25 }),
        ),
        (
            "fact budget",
            |b| b.max_facts(60),
            |r| matches!(r, AbortReason::FactBudget { limit: 60 }),
        ),
        (
            "oid budget",
            |b| b.max_oids(40),
            |r| matches!(r, AbortReason::OidBudget { limit: 40 }),
        ),
    ];
    for (name, setup, is_expected) in budgets {
        let mut reference: Option<Vec<String>> = None;
        for threads in [1usize, 2, 4] {
            for seminaive in [true, false] {
                for planner in [true, false] {
                    let (prog, inst) = parsed(DIVERGENT);
                    let cfg = setup(EvalConfig::builder())
                        .threads(threads)
                        .seminaive(seminaive)
                        .planner(planner)
                        .build();
                    let aborted = expect_aborted(
                        Engine::new(prog)
                            .with_config(cfg)
                            .run_governed(&inst)
                            .unwrap(),
                    );
                    assert!(
                        is_expected(&aborted.reason),
                        "{name} (threads={threads} seminaive={seminaive} planner={planner}): \
                         got {:?}",
                        aborted.reason
                    );
                    let partial = facts(&aborted.partial.output);
                    assert!(!partial.is_empty(), "{name}: empty partial");
                    match &reference {
                        None => reference = Some(partial),
                        Some(expected) => assert_eq!(
                            &partial, expected,
                            "{name} (threads={threads} seminaive={seminaive} \
                             planner={planner}): partial result diverged"
                        ),
                    }
                }
            }
        }
    }
}

/// Store budgets trip deterministically across thread counts (store
/// growth per step is merge-order-independent).
#[test]
fn store_budgets_trip_identically_across_thread_counts() {
    let budgets: &[BudgetCase] = &[
        (
            "store nodes",
            |b| b.max_store_nodes(120),
            |r| matches!(r, AbortReason::StoreBudget { limit: 120 }),
        ),
        (
            "store bytes",
            |b| b.max_store_bytes(4096),
            |r| matches!(r, AbortReason::MemoryBudget { limit: 4096 }),
        ),
    ];
    for (name, setup, is_expected) in budgets {
        let mut reference: Option<Vec<String>> = None;
        for threads in [1usize, 2, 4] {
            let (prog, inst) = parsed(DIVERGENT);
            let cfg = setup(EvalConfig::builder()).threads(threads).build();
            let aborted = expect_aborted(
                Engine::new(prog)
                    .with_config(cfg)
                    .run_governed(&inst)
                    .unwrap(),
            );
            assert!(
                is_expected(&aborted.reason),
                "{name} (threads={threads}): got {:?}",
                aborted.reason
            );
            let partial = facts(&aborted.partial.output);
            match &reference {
                None => reference = Some(partial),
                Some(expected) => assert_eq!(&partial, expected, "{name} threads={threads}"),
            }
        }
    }
}

/// A budget-tripped partial is a prefix of the (finite) full run: rerun
/// the divergent program under a looser step limit and check containment.
#[test]
fn budget_partial_is_a_prefix_of_a_longer_run() {
    let run_with_steps = |max_steps: usize| {
        let (prog, inst) = parsed(DIVERGENT);
        let cfg = EvalConfig::builder().max_steps(max_steps).build();
        let aborted = expect_aborted(
            Engine::new(prog)
                .with_config(cfg)
                .run_governed(&inst)
                .unwrap(),
        );
        facts(&aborted.partial.output)
    };
    let short = run_with_steps(10);
    let long = run_with_steps(30);
    for fact in &short {
        assert!(long.contains(fact), "{fact} lost between step 10 and 30");
    }
    assert!(long.len() > short.len());
}

// ---------------------------------------------------------------------
// IQL: contained worker panics
// ---------------------------------------------------------------------

#[test]
fn worker_panic_is_contained_and_sibling_rules_survive() {
    for threads in [1usize, 2] {
        let (prog, inst) = parsed(TWO_RULES);
        let cfg = EvalConfig::builder()
            .threads(threads)
            .test_panic_rule(0)
            .build();
        let aborted = expect_aborted(
            Engine::new(prog)
                .with_config(cfg)
                .run_governed(&inst)
                .unwrap(),
        );
        assert_eq!(
            aborted.reason,
            AbortReason::WorkerPanic { rule: 0 },
            "threads={threads}"
        );
        let partial = facts(&aborted.partial.output);
        // Rule 1 (B) ran in the same step and its derivations are kept;
        // rule 0 (A) panicked before deriving anything.
        assert!(
            partial.iter().any(|f| f.starts_with("B(")),
            "threads={threads}: sibling rule's facts lost: {partial:?}"
        );
        assert!(
            partial.iter().all(|f| !f.starts_with("A(")),
            "threads={threads}: panicked rule still derived: {partial:?}"
        );
        assert_eq!(aborted.reason.exit_code(), 101);
    }
}

// ---------------------------------------------------------------------
// Datalog: the same guard surface on the baseline engine
// ---------------------------------------------------------------------

const DL_TC: &str = "Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).";

fn dl_chain(n: i64) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert("Edge", vec![Constant::int(i), Constant::int(i + 1)])
            .unwrap();
    }
    db
}

#[test]
fn datalog_round_limit_returns_partial_database() {
    let prog = parse_program(DL_TC).unwrap();
    let edb = dl_chain(6);
    let gov = Governor::unlimited().with_max_steps(2);
    let mut reference: Option<usize> = None;
    for strategy in [Strategy::Naive, Strategy::SemiNaive] {
        for threads in [1usize, 4] {
            let (db, stats) = dl_eval_governed(&prog, &edb, strategy, threads, &gov).unwrap();
            assert_eq!(
                stats.trip,
                Some(AbortReason::StepLimit { limit: 2 }),
                "{strategy:?} threads={threads}"
            );
            // Partial: more than the EDB, less than the full closure.
            assert!(db.size() > edb.size(), "{strategy:?} threads={threads}");
            let full = dl_eval_with(&prog, &edb, strategy, 1).unwrap().0;
            assert!(db.size() < full.size(), "{strategy:?} threads={threads}");
            match reference {
                None => reference = Some(db.size()),
                Some(expected) => assert_eq!(
                    db.size(),
                    expected,
                    "{strategy:?} threads={threads}: partial size diverged"
                ),
            }
        }
    }
}

#[test]
fn datalog_fact_budget_trips() {
    let prog = parse_program(DL_TC).unwrap();
    let edb = dl_chain(8);
    let gov = Governor::unlimited().with_max_facts(12);
    let (db, stats) = dl_eval_governed(&prog, &edb, Strategy::SemiNaive, 2, &gov).unwrap();
    assert_eq!(stats.trip, Some(AbortReason::FactBudget { limit: 12 }));
    assert!(db.size() > 12, "trip fires once the budget is exceeded");
}

#[test]
fn datalog_pre_set_cancel_returns_the_edb() {
    let prog = parse_program(DL_TC).unwrap();
    let edb = dl_chain(4);
    let token = Arc::new(AtomicBool::new(true));
    let gov = Governor::unlimited().with_cancel_token(Arc::clone(&token));
    let (db, stats) = dl_eval_governed(&prog, &edb, Strategy::SemiNaive, 1, &gov).unwrap();
    assert_eq!(stats.trip, Some(AbortReason::Cancelled));
    assert_eq!(db.size(), edb.size());
}

#[test]
fn datalog_deadline_stops_a_heavy_closure() {
    let prog = parse_program(DL_TC).unwrap();
    let edb = dl_chain(1500);
    let deadline = Duration::from_millis(500);
    for threads in [1usize, 4] {
        let gov = Governor::unlimited().with_deadline(deadline);
        let start = Instant::now();
        let (db, stats) =
            dl_eval_governed(&prog, &edb, Strategy::SemiNaive, threads, &gov).unwrap();
        let took = start.elapsed();
        assert_eq!(stats.trip, Some(AbortReason::Deadline), "threads={threads}");
        assert!(
            took < deadline * 2,
            "threads={threads}: stopped only after {took:?}"
        );
        // The interrupted round is discarded wholesale, so the partial is
        // a consistent round boundary: at least the EDB survives.
        assert!(db.size() >= edb.size(), "threads={threads}");
    }
}

/// Both panic-injection scenarios share the process-global
/// `TEST_PANIC_RULE` switch, so they run inside one test to stay
/// serialized under the parallel test harness.
#[test]
fn datalog_worker_panic_is_contained() {
    use iql::datalog::engine::TEST_PANIC_RULE;
    let prog = parse_program("A(y) :- Edge(x, y). B(x) :- Edge(x, y).").unwrap();
    let edb = dl_chain(3);
    TEST_PANIC_RULE.store(0, Ordering::SeqCst);
    // Governed entry point: graceful — rule 1's tuples survive the round.
    let (db, stats) =
        dl_eval_governed(&prog, &edb, Strategy::Naive, 2, &Governor::unlimited()).unwrap();
    assert_eq!(stats.trip, Some(AbortReason::WorkerPanic { rule: 0 }));
    assert!(db.relation("B").is_some_and(|r| !r.is_empty()));
    assert!(db.relation("A").is_none_or(|r| r.is_empty()));
    // Legacy entry point: a contained panic is a fault, not a budget.
    let err = dl_eval_with(&prog, &edb, Strategy::Naive, 2).unwrap_err();
    assert_eq!(err, DlError::WorkerPanic { rule: 0 });
    TEST_PANIC_RULE.store(usize::MAX, Ordering::SeqCst);
}
