//! A systematic battery: every canned paper program is run under input
//! permutation, constant renaming, and both evaluator modes, checking the
//! db-transformation invariants of Definition 4.1.1 across the board.

#![deny(deprecated)]

use iql::lang::programs::*;
use iql::model::iso::are_o_isomorphic;
use iql::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Programs whose input is a single binary string relation, with the
/// relation/attribute names to feed.
fn binary_input_programs() -> Vec<(Program, &'static str, (&'static str, &'static str))> {
    vec![
        (transitive_closure_program(), "Edge", ("src", "dst")),
        (graph_to_class_program(), "R", ("src", "dst")),
        (nest_program(), "R2", ("a", "b")),
    ]
}

fn build_input(prog: &Program, rel: &str, attrs: (&str, &str), edges: &[(&str, &str)]) -> Instance {
    let mut input = Instance::new(Arc::clone(&prog.input));
    for (s, d) in edges {
        input
            .insert(
                RelName::new(rel),
                OValue::tuple([(attrs.0, OValue::str(s)), (attrs.1, OValue::str(d))]),
            )
            .unwrap();
    }
    input
}

const EDGES: [(&str, &str); 5] = [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c"), ("c", "d")];

#[test]
fn battery_insertion_order_invariance() {
    for (prog, rel, attrs) in binary_input_programs() {
        let fwd = build_input(&prog, rel, attrs, &EDGES);
        let mut rev_edges = EDGES;
        rev_edges.reverse();
        let rev = build_input(&prog, rel, attrs, &rev_edges);
        let o1 = run(&prog, &fwd, &EvalConfig::default()).unwrap();
        let o2 = run(&prog, &rev, &EvalConfig::default()).unwrap();
        assert!(
            are_o_isomorphic(&o1.output, &o2.output),
            "order dependence in {prog}"
        );
    }
}

#[test]
fn battery_genericity_under_constant_renaming() {
    let h: BTreeMap<Constant, Constant> = [("a", "w1"), ("b", "w2"), ("c", "w3"), ("d", "w4")]
        .into_iter()
        .map(|(x, y)| (Constant::str(x), Constant::str(y)))
        .collect();
    for (prog, rel, attrs) in binary_input_programs() {
        let input = build_input(&prog, rel, attrs, &EDGES);
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        let renamed_in = input.rename_constants(&h).unwrap();
        let out_h = run(&prog, &renamed_in, &EvalConfig::default()).unwrap();
        let expected = out.output.rename_constants(&h).unwrap();
        assert!(
            are_o_isomorphic(&out_h.output, &expected),
            "genericity violated in {prog}"
        );
    }
}

#[test]
fn battery_evaluator_modes_agree() {
    let naive = EvalConfig::builder().seminaive(false).build();
    let no_index = EvalConfig::builder().index(false).build();
    for (prog, rel, attrs) in binary_input_programs() {
        let input = build_input(&prog, rel, attrs, &EDGES);
        let a = run(&prog, &input, &EvalConfig::default()).unwrap();
        let b = run(&prog, &input, &naive).unwrap();
        let c = run(&prog, &input, &no_index).unwrap();
        assert!(
            are_o_isomorphic(&a.output, &b.output),
            "seminaive disagrees in {prog}"
        );
        assert!(
            are_o_isomorphic(&a.output, &c.output),
            "index mode disagrees in {prog}"
        );
    }
}

#[test]
fn battery_outputs_validate_and_steps_bounded() {
    for (prog, rel, attrs) in binary_input_programs() {
        let input = build_input(&prog, rel, attrs, &EDGES);
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        out.output.validate().unwrap();
        out.full.validate().unwrap();
        // Naive steps are bounded by facts added + stages + slack.
        assert!(out.report.steps <= out.report.facts_added + prog.stages.len() * 2 + 4);
    }
}

#[test]
fn battery_idempotent_reruns() {
    // Running a program twice on the same input gives O-isomorphic outputs
    // even though fresh oid numbers differ between runs of one process.
    for (prog, rel, attrs) in binary_input_programs() {
        let input = build_input(&prog, rel, attrs, &EDGES);
        let a = run(&prog, &input, &EvalConfig::default()).unwrap();
        let b = run(&prog, &input, &EvalConfig::default()).unwrap();
        assert!(are_o_isomorphic(&a.output, &b.output));
    }
}

#[test]
fn iso_scales_to_moderate_instances() {
    // The color-refinement + backtracking search handles a ~100-oid cyclic
    // instance promptly: two independent runs of the graph transformation
    // on a 40-node random digraph.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(2026);
    let mut edges: Vec<(String, String)> = Vec::new();
    for _ in 0..80 {
        let s = rng.gen_range(0..40);
        let d = rng.gen_range(0..40);
        if s != d {
            edges.push((format!("g{s}"), format!("g{d}")));
        }
    }
    let prog = graph_to_class_program();
    let build = |order: &[(String, String)]| {
        let mut input = Instance::new(Arc::clone(&prog.input));
        for (s, d) in order {
            let _ = input.insert(
                RelName::new("R"),
                OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
            );
        }
        input
    };
    let mut rev = edges.clone();
    rev.reverse();
    let o1 = run(&prog, &build(&edges), &EvalConfig::default()).unwrap();
    let o2 = run(&prog, &build(&rev), &EvalConfig::default()).unwrap();
    let start = std::time::Instant::now();
    assert!(are_o_isomorphic(&o1.output, &o2.output));
    assert!(
        start.elapsed().as_secs() < 30,
        "isomorphism search took too long: {:?}",
        start.elapsed()
    );
}

#[test]
fn battery_no_constants_invented() {
    // Definition 4.1.1 corollary: constants(J) ⊆ constants(I).
    for (prog, rel, attrs) in binary_input_programs() {
        let input = build_input(&prog, rel, attrs, &EDGES);
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        let in_consts = input.constants();
        for c in out.output.constants() {
            assert!(
                in_consts.contains(&c),
                "constant {c} appeared from nowhere in {prog}"
            );
        }
    }
}

#[test]
fn cached_counts_agree_with_ground_facts() {
    // `fact_count` and `objects` now run off the store's cached per-node
    // oid metadata and the id mirrors. They must agree exactly with the
    // slow reference derived from the ground-fact representation — on the
    // Genesis instance and on every evaluated battery output.
    use iql::model::instance::{genesis_instance, GroundFact};
    use iql::model::Oid;
    use std::collections::BTreeSet;

    fn reference_counts(inst: &Instance) -> (usize, BTreeSet<Oid>) {
        let facts = inst.ground_facts();
        let mut objects = BTreeSet::new();
        for f in &facts {
            match f {
                GroundFact::Rel(_, v) => v.collect_oids(&mut objects),
                GroundFact::Class(_, o) => {
                    objects.insert(*o);
                }
                GroundFact::SetMember(o, v) | GroundFact::Value(o, v) => {
                    objects.insert(*o);
                    v.collect_oids(&mut objects);
                }
            }
        }
        // ν entries that produce no fact (empty set value / undefined
        // value) still put their oid in scope via the class facts, so the
        // ground-fact walk is a complete reference for `objects`.
        (facts.len(), objects)
    }

    let (genesis, _) = genesis_instance();
    let mut instances = vec![genesis];
    for (prog, rel, attrs) in binary_input_programs() {
        let input = build_input(&prog, rel, attrs, &EDGES);
        let out = run(&prog, &input, &EvalConfig::default()).unwrap();
        instances.push(out.full);
        instances.push(out.output);
    }
    for inst in &instances {
        let (ref_count, ref_objects) = reference_counts(inst);
        assert_eq!(inst.fact_count(), ref_count, "fact_count drifted");
        assert_eq!(inst.objects(), ref_objects, "objects drifted");
    }
}
