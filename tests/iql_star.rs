//! Integration tests pinning IQL\* (deletions, Section 4.5) corner cases
//! and the interaction of additions and deletions within one step.

#![deny(deprecated)]

use iql::prelude::*;
use std::sync::Arc;

fn cfg() -> EvalConfig {
    EvalConfig::default()
}

#[test]
fn deletion_wins_over_same_step_addition() {
    // Add(x) and Del(x) both applicable in the same step: our documented
    // conflict policy is deletion-wins (the paper leaves the policy to the
    // *-language machinery; see eval.rs module docs).
    let unit = parse_unit(
        r#"
        schema {
          relation Src: [a: D];
          relation Out: [a: D];
        }
        program {
          input Src, Out;
          output Out;
          Out(x) :- Src(x);
          del Out(x) :- Src(x), Out(x);
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    input
        .insert(
            RelName::new("Src"),
            OValue::tuple([("a", OValue::str("v"))]),
        )
        .unwrap();
    // Pre-populate Out so the delete rule fires in step 1 alongside the add.
    input
        .insert(
            RelName::new("Out"),
            OValue::tuple([("a", OValue::str("v"))]),
        )
        .unwrap();
    // This program oscillates (add when absent, delete when present); the
    // step limit is the documented backstop.
    let mut c = cfg();
    c.max_steps = 10;
    let err = run(&prog, &input, &c).unwrap_err();
    assert!(matches!(err, iql::lang::IqlError::StepLimit { .. }));
}

#[test]
fn delete_set_members() {
    let unit = parse_unit(
        r#"
        schema {
          class Box: {D};
          relation Banned: [b: D];
          relation Holder: [h: Box];
        }
        program {
          input Box, Banned, Holder;
          output Box, Holder;
          del x^(v) :- Holder(x), Banned(v), x^(v);
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    let b = input.create_oid(ClassName::new("Box")).unwrap();
    for v in ["keep", "drop1", "drop2"] {
        input.add_set_member(b, OValue::str(v)).unwrap();
    }
    for v in ["drop1", "drop2"] {
        input
            .insert(
                RelName::new("Banned"),
                OValue::tuple([("b", OValue::str(v))]),
            )
            .unwrap();
    }
    input
        .insert(
            RelName::new("Holder"),
            OValue::tuple([("h", OValue::oid(b))]),
        )
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    assert_eq!(
        out.output.value(b),
        Some(&OValue::set([OValue::str("keep")]))
    );
}

#[test]
fn deleting_an_oid_in_a_set_value_cascades() {
    let unit = parse_unit(
        r#"
        schema {
          class Team: {Player};
          class Player: [name: D];
          relation Cut: [n: D];
        }
        program {
          input Team, Player, Cut;
          output Team, Player;
          del Player(p) :- Cut(n), Player(p), p^ = [name: n];
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    let team = input.create_oid(ClassName::new("Team")).unwrap();
    let p1 = input.create_oid(ClassName::new("Player")).unwrap();
    let p2 = input.create_oid(ClassName::new("Player")).unwrap();
    input
        .define_value(p1, OValue::tuple([("name", OValue::str("ann"))]))
        .unwrap();
    input
        .define_value(p2, OValue::tuple([("name", OValue::str("bob"))]))
        .unwrap();
    input.add_set_member(team, OValue::oid(p1)).unwrap();
    input.add_set_member(team, OValue::oid(p2)).unwrap();
    input
        .insert(
            RelName::new("Cut"),
            OValue::tuple([("n", OValue::str("ann"))]),
        )
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    // ann's oid left Player AND the team's set value.
    assert_eq!(out.output.class(ClassName::new("Player")).unwrap().len(), 1);
    assert_eq!(
        out.output.value(team),
        Some(&OValue::set([OValue::oid(p2)]))
    );
    out.output.validate().unwrap();
}

#[test]
fn insert_then_delete_across_stages_is_deterministic() {
    // Stage 1 inserts everything; stage 2 deletes the flagged ones — the
    // staged (stratified) idiom, no oscillation.
    let unit = parse_unit(
        r#"
        schema {
          relation Src: [a: D];
          relation Flag: [a: D];
          relation Out: [a: D];
        }
        program {
          input Src, Flag;
          output Out;
          stage {
            Out(x) :- Src(x);
          }
          stage {
            del Out(x) :- Flag(x);
          }
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    for v in ["a", "b", "c"] {
        input
            .insert(RelName::new("Src"), OValue::tuple([("a", OValue::str(v))]))
            .unwrap();
    }
    input
        .insert(
            RelName::new("Flag"),
            OValue::tuple([("a", OValue::str("b"))]),
        )
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    assert_eq!(out.output.relation(RelName::new("Out")).unwrap().len(), 2);
    assert_eq!(out.report.facts_deleted, 1);
}

#[test]
fn flattener_program_is_available_from_public_api() {
    // The Prop-4.2.2 compiler end-to-end through the umbrella crate.
    use iql::lang::encode::{decode, flat_schema, generate_flattener};
    let (genesis, _) = iql::model::instance::genesis_instance();
    let prog = generate_flattener(genesis.schema()).unwrap();
    // The generated program is honest IQL: it classifies, prints, reparses.
    let reparsed = parse_unit(&prog.to_source()).unwrap().program.unwrap();
    assert_eq!(reparsed.stages, prog.stages);
    let out = run(&prog, &genesis.project(&prog.input).unwrap(), &cfg()).unwrap();
    let back = decode(
        &out.output.project(&Arc::new(flat_schema())).unwrap(),
        genesis.schema(),
    )
    .unwrap();
    assert!(iql::model::iso::are_o_isomorphic(&back, &genesis));
}
