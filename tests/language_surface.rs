//! Robustness tests for the textual language surface: lexer/parser edge
//! cases, precedence, error positions, and the sublanguage classifier on a
//! battery of programs.

#![deny(deprecated)]

use iql::lang::parser::{parse_type, parse_unit};
use iql::lang::sublang::{classify, SubLanguage};
use iql::lang::IqlError;
use iql::prelude::*;

#[test]
fn type_precedence_union_binds_looser_than_intersection() {
    // a | b & c parses as a | (b & c).
    let t = parse_type("D | VlP & VlQ").unwrap();
    match t {
        TypeExpr::Union(l, r) => {
            assert_eq!(*l, TypeExpr::base());
            assert!(matches!(*r, TypeExpr::Intersect(_, _)));
        }
        other => panic!("expected union at top, got {other}"),
    }
    // Parens override.
    let t = parse_type("(D | VlP) & VlQ").unwrap();
    assert!(matches!(t, TypeExpr::Intersect(_, _)));
}

#[test]
fn nested_type_constructors_parse() {
    let t = parse_type("{[a: {D}, b: VlP | D]}").unwrap();
    let rendered = t.to_string();
    assert!(rendered.contains("{[a: {D}"));
}

#[test]
fn duplicate_attribute_rejected_with_position() {
    let err = parse_unit("schema { relation R: [a: D, a: D]; }").unwrap_err();
    match err {
        IqlError::Parse { line, msg, .. } => {
            assert_eq!(line, 1);
            assert!(msg.contains("duplicate attribute"));
        }
        other => panic!("expected parse error, got {other}"),
    }
}

#[test]
fn comments_and_whitespace_are_ignored() {
    let unit =
        parse_unit("schema {\n  // a comment\n  relation R: [a: D]; // trailing\n}\n// done\n")
            .unwrap();
    assert_eq!(unit.schema.relations().count(), 1);
}

#[test]
fn string_escapes_in_constants() {
    let unit = parse_unit(
        r#"
        schema { relation R: [a: D]; }
        instance { R("line\nbreak"); R("tab\there"); R("quote\"inside"); }
        "#,
    )
    .unwrap();
    let inst = unit.instance.unwrap();
    assert_eq!(inst.relation(RelName::new("R")).unwrap().len(), 3);
}

#[test]
fn unterminated_string_is_an_error() {
    let err = parse_unit("schema { relation R: [a: D]; }\ninstance { R(\"oops); }").unwrap_err();
    assert!(err.to_string().contains("unterminated"));
}

#[test]
fn arity_mismatch_in_positional_shorthand() {
    let err = parse_unit(
        r#"
        schema { relation R: [a: D, b: D]; relation S: [a: D]; }
        program { input R; output S; S(x) :- R(x, y, z); }
        "#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("attributes"));
}

#[test]
fn head_must_be_a_schema_name() {
    let err = parse_unit(
        r#"
        schema { relation R: [a: D]; }
        program { input R; output R; Ghost(x) :- R(x); }
        "#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("Ghost"));
}

#[test]
fn keywords_do_not_leak_into_identifiers() {
    // `notx` is a variable, not `not x`; `chooser` is a variable too.
    let unit = parse_unit(
        r#"
        schema { relation R: [a: D]; relation S: [a: D]; }
        program { input R; output S; S(notx) :- R(notx), notx != "choose"; }
        "#,
    )
    .unwrap();
    assert!(unit.program.is_some());
}

#[test]
fn classifier_battery() {
    use iql::lang::programs::*;
    let expectations = [
        (transitive_closure_program(), SubLanguage::Iqlrr),
        (unreachable_program(), SubLanguage::Iqlrr),
        (graph_to_class_program(), SubLanguage::Iqlrr),
        (class_to_graph_program(), SubLanguage::Iqlrr),
        (unnest_program(), SubLanguage::Iqlrr),
        (nest_program(), SubLanguage::Iqlrr),
        (powerset_program(), SubLanguage::FullIql),
        (powerset_unrestricted_program(), SubLanguage::FullIql),
        (quadrangle_choose_program(), SubLanguage::FullIql), // choose/del
        (quadrangle_ordered_program(), SubLanguage::Iqlrr),
        (union_encode_program(), SubLanguage::Iqlrr),
        (union_decode_program(), SubLanguage::Iqlrr),
    ];
    for (prog, expected) in expectations {
        assert_eq!(classify(&prog), expected, "misclassified:\n{prog}");
    }
}

#[test]
fn ptime_but_not_range_restricted() {
    // A variable of tuple-of-base type with no generator: ptime-restricted
    // (set-free type) but not range-restricted — the gap between
    // Definitions 5.1 and 5.2.
    let unit = parse_unit(
        r#"
        schema {
          relation R: [a: D];
          relation S: [p: [u: D, v: D]];
        }
        program {
          input R;
          output S;
          var t: [u: D, v: D];
          S(t) :- R(x), t = t;
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    assert_eq!(classify(&prog), SubLanguage::Iqlpr);
    // And it actually evaluates by enumerating the tuple space.
    let mut input = Instance::new(std::sync::Arc::clone(&prog.input));
    input
        .insert(RelName::new("R"), OValue::tuple([("a", OValue::str("k"))]))
        .unwrap();
    let out = run(&prog, &input, &EvalConfig::default()).unwrap();
    // One constant → exactly one [u:k, v:k] tuple.
    assert_eq!(out.output.relation(RelName::new("S")).unwrap().len(), 1);
    assert!(out.report.enum_fallbacks > 0);
}

#[test]
fn explain_via_cli_surface() {
    let prog = iql::lang::programs::transitive_closure_program();
    for stage in &prog.stages {
        for rule in &stage.rules {
            let plan = iql::lang::eval::explain_rule(rule).unwrap();
            assert!(plan.contains("plan for"));
        }
    }
}

#[test]
fn stratified_three_levels() {
    // A 3-stratum Datalog program through the dedicated engine.
    let p = iql::datalog::parse_program(
        r#"
        Reach(y) :- Start(y).
        Reach(y) :- Reach(x), Edge(x, y).
        Dead(x) :- Node(x), !Reach(x).
        Alive(x) :- Node(x), !Dead(x).
        "#,
    )
    .unwrap();
    let strata = iql::datalog::stratify(&p).unwrap();
    assert_eq!(strata.len(), 3);
    let mut db = iql::datalog::Database::new();
    for (s, d) in [(1i64, 2), (2, 3)] {
        db.insert("Edge", vec![Constant::int(s), Constant::int(d)])
            .unwrap();
        db.insert("Node", vec![Constant::int(s)]).unwrap();
        db.insert("Node", vec![Constant::int(d)]).unwrap();
    }
    db.insert("Node", vec![Constant::int(9)]).unwrap();
    db.insert("Start", vec![Constant::int(1)]).unwrap();
    let (out, _) = iql::datalog::eval(&p, &db, iql::datalog::Strategy::Stratified).unwrap();
    assert_eq!(out.relation("Dead").unwrap().len(), 1); // node 9
    assert_eq!(out.relation("Alive").unwrap().len(), 3); // 1, 2, 3
}
