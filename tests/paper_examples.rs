//! Integration tests: every worked example of the paper, end-to-end
//! through the public API (parser → type checker → evaluator → model).

use iql::lang::programs::*;
use iql::lang::sublang::{classify, SubLanguage};
use iql::model::iso::are_o_isomorphic;
use iql::prelude::*;
use std::sync::Arc;

fn cfg() -> EvalConfig {
    EvalConfig::default()
}

fn edge_input(prog: &Program, rel: &str, a: (&str, &str), edges: &[(&str, &str)]) -> Instance {
    let mut input = Instance::new(Arc::clone(&prog.input));
    for (s, d) in edges {
        input
            .insert(
                RelName::new(rel),
                OValue::tuple([(a.0, OValue::str(s)), (a.1, OValue::str(d))]),
            )
            .unwrap();
    }
    input
}

#[test]
fn example_1_1_genesis_validates_and_queries() {
    let (inst, _) = iql::model::instance::genesis_instance();
    inst.validate().unwrap();
    assert_eq!(inst.fact_count(), 16);
    // AncestorOfCelebrity exercises union types: one row per branch.
    let anc = inst.relation(RelName::new("AncestorOfCelebrity")).unwrap();
    assert_eq!(anc.len(), 2);
}

#[test]
fn example_1_2_graph_roundtrip_and_determinacy() {
    let enc = graph_to_class_program();
    let dec = class_to_graph_program();
    assert_eq!(classify(&enc), SubLanguage::Iqlrr);
    let edges = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "c")];
    let input = edge_input(&enc, "R", ("src", "dst"), &edges);
    let out = run(&enc, &input, &cfg()).unwrap();
    assert_eq!(out.output.class(ClassName::new("P")).unwrap().len(), 4);
    assert_eq!(out.report.invented, 8, "two oids per node (P and P')");

    let back = run(&dec, &out.output.project(&dec.input).unwrap(), &cfg()).unwrap();
    assert_eq!(
        back.output.relation(RelName::new("Out")).unwrap().len(),
        edges.len()
    );

    // Determinacy across permuted inputs.
    let mut rev = edges;
    rev.reverse();
    let out2 = run(&enc, &edge_input(&enc, "R", ("src", "dst"), &rev), &cfg()).unwrap();
    assert!(are_o_isomorphic(&out.output, &out2.output));
}

#[test]
fn example_3_4_1_nest_unnest_inverse() {
    let nest = nest_program();
    let unnest = unnest_program();
    let pairs = [
        ("k1", "a"),
        ("k1", "b"),
        ("k2", "c"),
        ("k3", "d"),
        ("k3", "e"),
    ];
    let input = edge_input(&nest, "R2", ("a", "b"), &pairs);
    let nested = run(&nest, &input, &cfg()).unwrap();
    assert_eq!(nested.output.relation(RelName::new("R3")).unwrap().len(), 3);

    let mut flat_in = Instance::new(Arc::clone(&unnest.input));
    for v in nested.output.relation(RelName::new("R3")).unwrap() {
        flat_in.insert(RelName::new("R1"), v.clone()).unwrap();
    }
    let flat = run(&unnest, &flat_in, &cfg()).unwrap();
    assert_eq!(
        flat.output.relation(RelName::new("R2")).unwrap(),
        input.relation(RelName::new("R2")).unwrap()
    );
}

#[test]
fn example_3_4_2_powerset_both_ways() {
    let p1 = powerset_program();
    let p2 = powerset_unrestricted_program();
    for n in 0..6usize {
        let mut i1 = Instance::new(Arc::clone(&p1.input));
        let mut i2 = Instance::new(Arc::clone(&p2.input));
        for k in 0..n {
            let v = OValue::tuple([("a", OValue::int(k as i64))]);
            i1.insert(RelName::new("R"), v.clone()).unwrap();
            i2.insert(RelName::new("R"), v).unwrap();
        }
        let o1 = run(&p1, &i1, &cfg()).unwrap();
        let o2 = run(&p2, &i2, &cfg()).unwrap();
        assert_eq!(
            o1.output.relation(RelName::new("R1")).unwrap().len(),
            1 << n
        );
        assert_eq!(
            o1.output.relation(RelName::new("R1")).unwrap(),
            o2.output.relation(RelName::new("R1")).unwrap()
        );
    }
}

#[test]
fn example_3_4_2_divergence_is_caught() {
    // R3(y, z) :- R3(x, y) — invention in a loop never terminates; the
    // evaluator's step limit catches it (paper: "may clearly be the cause
    // of nonterminating computations").
    let unit = parse_unit(
        r#"
        schema {
          relation R3: [a: P, b: P];
          class P: [];
        }
        program {
          input R3, P;
          output R3;
          R3(y, z) :- R3(x, y);
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    let p = ClassName::new("P");
    let a = input.create_oid(p).unwrap();
    let b = input.create_oid(p).unwrap();
    input
        .insert(
            RelName::new("R3"),
            OValue::tuple([("a", OValue::oid(a)), ("b", OValue::oid(b))]),
        )
        .unwrap();
    let mut c = cfg();
    c.max_steps = 50;
    let err = run(&prog, &input, &c).unwrap_err();
    assert!(matches!(err, iql::lang::IqlError::StepLimit { .. }));
}

#[test]
fn example_3_4_3_union_roundtrip_random() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let enc = union_encode_program();
    let dec = union_decode_program();
    for seed in 0..5u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 2 + (seed as usize % 6);
        let mut input = Instance::new(Arc::clone(&enc.input));
        let p = ClassName::new("P");
        let oids: Vec<_> = (0..n).map(|_| input.create_oid(p).unwrap()).collect();
        for &o in &oids {
            if rng.gen_bool(0.5) {
                input
                    .define_value(o, OValue::oid(oids[rng.gen_range(0..n)]))
                    .unwrap();
            } else {
                input
                    .define_value(
                        o,
                        OValue::tuple([
                            ("A1", OValue::oid(oids[rng.gen_range(0..n)])),
                            ("A2", OValue::oid(oids[rng.gen_range(0..n)])),
                        ]),
                    )
                    .unwrap();
            }
        }
        input.validate().unwrap();
        let mid = run(&enc, &input, &cfg()).unwrap();
        let back = run(&dec, &mid.output.project(&dec.input).unwrap(), &cfg()).unwrap();
        assert!(
            are_o_isomorphic(&back.output, &input),
            "decode(encode(I)) ≅ I at seed {seed}"
        );
    }
}

#[test]
fn figure_1_copies_and_choose() {
    let copies = quadrangle_program();
    let full = quadrangle_choose_program();
    let mk = |prog: &Program| {
        let mut input = Instance::new(Arc::clone(&prog.input));
        for v in ["a", "b"] {
            input
                .insert(RelName::new("R"), OValue::tuple([("a", OValue::str(v))]))
                .unwrap();
        }
        input
    };
    let two = run(&copies, &mk(&copies), &cfg()).unwrap();
    assert_eq!(two.output.class(ClassName::new("Q")).unwrap().len(), 8);
    let one = run(&full, &mk(&full), &cfg()).unwrap();
    assert_eq!(one.output.class(ClassName::new("Qout")).unwrap().len(), 4);
    assert_eq!(one.output.relation(RelName::new("OutRp")).unwrap().len(), 8);
}

#[test]
fn choose_fails_when_not_generic() {
    // Two P-objects distinguishable by their values: choosing one would
    // violate genericity, and the evaluator refuses.
    let unit = parse_unit(
        r#"
        schema {
          class P: [tag: D];
          relation Winner: [w: P];
        }
        program {
          input P;
          output Winner;
          Winner(x) :- choose;
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    let p = ClassName::new("P");
    for tag in ["red", "blue"] {
        let o = input.create_oid(p).unwrap();
        input
            .define_value(o, OValue::tuple([("tag", OValue::str(tag))]))
            .unwrap();
    }
    let err = run(&prog, &input, &cfg()).unwrap_err();
    assert!(matches!(err, iql::lang::IqlError::ChoiceNotGeneric { .. }));

    // N-IQL (Remark N-IQL) permits the non-generic pick.
    let mut nd = cfg();
    nd.nondeterministic_choice = true;
    let out = run(&prog, &input, &nd).unwrap();
    assert_eq!(
        out.output.relation(RelName::new("Winner")).unwrap().len(),
        1
    );

    // With indistinguishable objects the same program succeeds.
    let mut input2 = Instance::new(Arc::clone(&prog.input));
    for _ in 0..2 {
        let o = input2.create_oid(p).unwrap();
        input2
            .define_value(o, OValue::tuple([("tag", OValue::str("same"))]))
            .unwrap();
    }
    let out = run(&prog, &input2, &cfg()).unwrap();
    assert_eq!(
        out.output.relation(RelName::new("Winner")).unwrap().len(),
        1
    );
}

#[test]
fn choose_on_empty_class_fails() {
    let unit = parse_unit(
        r#"
        schema {
          class P: [];
          relation Winner: [w: P];
        }
        program {
          input P;
          output Winner;
          Winner(x) :- choose;
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let input = Instance::new(Arc::clone(&prog.input));
    let err = run(&prog, &input, &cfg()).unwrap_err();
    assert!(matches!(err, iql::lang::IqlError::ChoiceEmpty));
}

#[test]
fn section_4_5_deletions_with_oid_cascade() {
    let unit = parse_unit(
        r#"
        schema {
          class P: [name: D];
          relation Member: [who: P, team: D];
          relation Fired: [name: D];
        }
        program {
          input P, Member, Fired;
          output P, Member;
          del P(x) :- Fired(n), P(x), x^ = [name: n];
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    let p = ClassName::new("P");
    let ann = input.create_oid(p).unwrap();
    let bob = input.create_oid(p).unwrap();
    input
        .define_value(ann, OValue::tuple([("name", OValue::str("ann"))]))
        .unwrap();
    input
        .define_value(bob, OValue::tuple([("name", OValue::str("bob"))]))
        .unwrap();
    for (o, t) in [(ann, "sales"), (bob, "eng")] {
        input
            .insert(
                RelName::new("Member"),
                OValue::tuple([("who", OValue::oid(o)), ("team", OValue::str(t))]),
            )
            .unwrap();
    }
    input
        .insert(
            RelName::new("Fired"),
            OValue::tuple([("name", OValue::str("ann"))]),
        )
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    // ann's oid is gone from P and the cascade removed her Member tuple.
    assert_eq!(out.output.class(p).unwrap().len(), 1);
    assert_eq!(
        out.output.relation(RelName::new("Member")).unwrap().len(),
        1
    );
    out.output.validate().unwrap();
}

#[test]
fn stratified_negation_via_stages() {
    let prog = unreachable_program();
    let input = edge_input(&prog, "Edge", ("src", "dst"), &[("a", "b"), ("c", "d")]);
    let mut input = input;
    input
        .insert(
            RelName::new("Source"),
            OValue::tuple([("node", OValue::str("a"))]),
        )
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    assert_eq!(
        out.output.relation(RelName::new("Unreach")).unwrap().len(),
        2
    );
}

#[test]
fn datalog_embedding_agrees_with_dedicated_engine() {
    let dl =
        iql::datalog::parse_program("Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).")
            .unwrap();
    let iql_prog = iql::datalog::convert::to_iql(&dl, &["Edge"], &["Tc"]).unwrap();
    let mut db = iql::datalog::Database::new();
    for (s, d) in [(1, 2), (2, 3), (3, 1), (3, 4)] {
        db.insert("Edge", vec![Constant::int(s), Constant::int(d)])
            .unwrap();
    }
    let (expect, _) = iql::datalog::eval(&dl, &db, Strategy::SemiNaive).unwrap();
    let input =
        iql::datalog::convert::database_to_instance(&db, &["Edge"], &iql_prog.input).unwrap();
    let out = run(&iql_prog, &input, &cfg()).unwrap();
    let got = iql::datalog::convert::instance_to_database(&out.output).unwrap();
    assert_eq!(
        got.relation("Tc").unwrap().len(),
        expect.relation("Tc").unwrap().len()
    );
}
